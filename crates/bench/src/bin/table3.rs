//! Regenerates Table 3 of the survey: the collected-papers taxonomy —
//! the full 39-method literature table plus the subset implemented in
//! this repository.

use kgrec_bench::{preflight_registry, print_text_table};
use kgrec_core::taxonomy::{table3, Technique};
use kgrec_models::registry::all_models;

fn main() {
    preflight_registry();
    println!("TABLE 3 — Collected papers: usage type and framework techniques\n");
    let implemented: Vec<&'static str> = all_models(true)
        .iter()
        .map(|m| m.taxonomy().method)
        .filter(|&m| !matches!(m, "MostPop" | "ItemKNN" | "BPR-MF"))
        .collect();
    let techniques = Technique::all();
    let mut headers: Vec<&str> = vec!["Method", "Venue", "Year", "Usage", "Impl."];
    for t in &techniques {
        headers.push(t.label());
    }
    let rows: Vec<Vec<String>> = table3()
        .into_iter()
        .map(|row| {
            let mut cells = vec![
                format!("{} [{}]", row.method, row.reference),
                row.venue.to_owned(),
                row.year.to_string(),
                row.usage.label().to_owned(),
                if implemented.contains(&row.method) { "yes".into() } else { String::new() },
            ];
            for t in &techniques {
                cells.push(if row.uses(*t) { "x".into() } else { String::new() });
            }
            cells
        })
        .collect();
    print_text_table(&headers, &rows);
    println!(
        "\n{} of the 39 surveyed methods are implemented in kgrec-models \
         (one representative per taxonomy cell; see DESIGN.md §4).",
        implemented.len()
    );
}
