//! Shared section encoders/decoders for KGE model persistence.
//!
//! Every KGE family stores its parameters as embedding tables (plus, for
//! TransR, per-relation projection matrices), so all five `Persistable`
//! impls share these helpers. Decoding follows the gather-then-commit
//! contract of [`kgrec_store::Persistable`]: helpers validate the stored
//! shape against the live model and return owned data, and the caller
//! copies everything into the model only after every section decoded.

use kgrec_linalg::{EmbeddingTable, Matrix};
use kgrec_store::{Section, SnapshotReader, StoreError};

/// Encodes an embedding table as `rows (u64) | dim (u64) | data (f32 LE)`.
pub(crate) fn table_section(table: &EmbeddingTable) -> Section {
    let mut s = Section::new();
    s.put_u64(table.len() as u64);
    s.put_u64(table.dim() as u64);
    s.put_f32s(table.data());
    s
}

/// Decodes a table section, validating its shape against `live`.
pub(crate) fn read_table(
    reader: &SnapshotReader,
    name: &str,
    live: &EmbeddingTable,
) -> Result<Vec<f32>, StoreError> {
    let mut c = reader.section(name)?;
    let rows = c.take_u64()? as usize;
    let dim = c.take_u64()? as usize;
    if rows != live.len() || dim != live.dim() {
        return Err(StoreError::ShapeMismatch {
            section: name.to_string(),
            detail: format!("stored {rows}×{dim}, live {}×{}", live.len(), live.dim()),
        });
    }
    c.take_f32s(rows * dim)
}

/// Encodes a list of equally-shaped matrices as
/// `count (u64) | rows (u64) | cols (u64) | data…`.
pub(crate) fn matrices_section(mats: &[Matrix]) -> Section {
    let mut s = Section::new();
    s.put_u64(mats.len() as u64);
    let (rows, cols) = mats.first().map_or((0, 0), |m| (m.rows(), m.cols()));
    s.put_u64(rows as u64);
    s.put_u64(cols as u64);
    for m in mats {
        s.put_f32s(m.data());
    }
    s
}

/// Decodes a matrices section, validating count and shape against `live`.
/// Returns one owned data vector per matrix.
pub(crate) fn read_matrices(
    reader: &SnapshotReader,
    name: &str,
    live: &[Matrix],
) -> Result<Vec<Vec<f32>>, StoreError> {
    let mut c = reader.section(name)?;
    let count = c.take_u64()? as usize;
    let rows = c.take_u64()? as usize;
    let cols = c.take_u64()? as usize;
    let (live_rows, live_cols) = live.first().map_or((0, 0), |m| (m.rows(), m.cols()));
    if count != live.len() || rows != live_rows || cols != live_cols {
        return Err(StoreError::ShapeMismatch {
            section: name.to_string(),
            detail: format!(
                "stored {count}×({rows}×{cols}), live {}×({live_rows}×{live_cols})",
                live.len()
            ),
        });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(c.take_f32s(rows * cols)?);
    }
    Ok(out)
}

/// Encodes a single scalar hyperparameter section.
pub(crate) fn scalar_section(value: f32) -> Section {
    let mut s = Section::new();
    s.put_f32(value);
    s
}

/// Decodes a single scalar hyperparameter section.
pub(crate) fn read_scalar(reader: &SnapshotReader, name: &str) -> Result<f32, StoreError> {
    let mut c = reader.section(name)?;
    c.take_f32()
}
