//! The end-to-end checkpoint-recovery drill behind
//! `eval_suite --inject-fault=<storage-fault>` and the `crash_drill`
//! binary: train → checkpoint every epoch → corrupt the store the way a
//! crashing process or failing disk would → "restart" with a fresh model
//! → assert the resume degrades gracefully (previous good generation, or
//! fresh training) and finishes with parameters bit-identical to an
//! uninterrupted run. A panic anywhere in recovery fails the drill.

use kgrec_core::panic_message;
use kgrec_graph::{KgBuilder, KnowledgeGraph};
use kgrec_kge::{train_checkpointed, TrainConfig, TransE};
use kgrec_linalg::DivergencePolicy;
use kgrec_store::{inject_storage, CheckpointStore, StorageFault};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

const DIM: usize = 8;
const EPOCHS: usize = 6;

/// What one storage-fault drill observed.
#[derive(Debug, Clone)]
pub struct DrillOutcome {
    /// The fault that was injected.
    pub fault: StorageFault,
    /// Generation the restarted run resumed from (`None` = cold start).
    pub resumed_from: Option<u64>,
    /// Epoch the restarted run resumed at.
    pub start_epoch: usize,
    /// Whether the restarted run ended with a usable model.
    pub usable: bool,
    /// Whether the recovered parameters are bit-identical to the
    /// uninterrupted run's.
    pub bit_identical: bool,
    /// Panic message, if recovery panicked (an automatic drill failure).
    pub panicked: Option<String>,
}

impl DrillOutcome {
    /// Whether the drill passed: no panic, a usable model, and parameters
    /// bit-identical to the uninterrupted run.
    pub fn passed(&self) -> bool {
        self.panicked.is_none() && self.usable && self.bit_identical
    }

    /// One status line for drill reports.
    pub fn describe(&self) -> String {
        let recovery = match (&self.panicked, self.resumed_from) {
            (Some(msg), _) => format!("PANICKED: {msg}"),
            (None, Some(generation)) => {
                format!("resumed from generation {generation} at epoch {}", self.start_epoch)
            }
            (None, None) => "cold start (retrained from scratch)".to_string(),
        };
        format!(
            "{:<22} {} | usable={} bit-identical={} -> {}",
            self.fault.label(),
            recovery,
            self.usable,
            self.bit_identical,
            if self.passed() { "ok" } else { "FAILED" }
        )
    }
}

/// A small two-cluster graph, deterministic and fast to train on.
fn drill_graph() -> KnowledgeGraph {
    let mut b = KgBuilder::new();
    let ty = b.entity_type("node");
    let es: Vec<_> = (0..10).map(|i| b.entity(&format!("n{i}"), ty)).collect();
    let r = b.relation("linked");
    for cluster in [0..5usize, 5..10] {
        for i in cluster.clone() {
            for j in cluster.clone() {
                if i != j {
                    b.triple(es[i], r, es[j]);
                }
            }
        }
    }
    b.build(false)
}

fn drill_config() -> TrainConfig {
    TrainConfig { epochs: EPOCHS, learning_rate: 0.05, seed: 33, threads: Some(1) }
}

/// Runs one storage-fault drill in `dir` (wiped first).
///
/// The sequence: a full checkpointed training run populates `dir` with
/// one generation per epoch; `fault` is injected; a fresh model (with a
/// *different* init seed, which a correct resume must ignore) restarts
/// `train_checkpointed` against the damaged store. The drill passes when
/// recovery neither panics nor loads garbage: the restarted run must end
/// bit-identical to the uninterrupted one.
pub fn run_storage_drill(fault: StorageFault, dir: &Path) -> DrillOutcome {
    let _ = std::fs::remove_dir_all(dir);
    let graph = drill_graph();
    let config = drill_config();

    // Keep every generation so corrupting the newest still leaves
    // predecessors to fall back to.
    let store = match CheckpointStore::open(dir) {
        Ok(s) => s.with_retention(EPOCHS + 2),
        Err(e) => {
            return DrillOutcome {
                fault,
                resumed_from: None,
                start_epoch: 0,
                usable: false,
                bit_identical: false,
                panicked: Some(format!("opening store: {e}")),
            }
        }
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut reference =
        TransE::new(&mut rng, graph.num_entities(), graph.num_relations(), DIM, 1.0);
    train_checkpointed(&mut reference, &graph, &config, DivergencePolicy::default(), &store);

    if let Err(e) = inject_storage(&store, fault) {
        return DrillOutcome {
            fault,
            resumed_from: None,
            start_epoch: 0,
            usable: false,
            bit_identical: false,
            panicked: Some(format!("injecting fault: {e}")),
        };
    }

    // "Restart the process": fresh init from a different seed — only the
    // checkpoint (or a full retrain) can reproduce the reference bits.
    let graph2 = graph;
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(4242);
        let mut resumed =
            TransE::new(&mut rng, graph2.num_entities(), graph2.num_relations(), DIM, 1.0);
        let report =
            train_checkpointed(&mut resumed, &graph2, &config, DivergencePolicy::default(), &store);
        (resumed, report)
    }));
    match caught {
        Ok((resumed, report)) => {
            let bit_identical = reference
                .entities()
                .data()
                .iter()
                .zip(resumed.entities().data())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            DrillOutcome {
                fault,
                resumed_from: report.resumed_from,
                start_epoch: report.start_epoch,
                usable: report.usable(),
                bit_identical,
                panicked: None,
            }
        }
        Err(payload) => DrillOutcome {
            fault,
            resumed_from: None,
            start_epoch: 0,
            usable: false,
            bit_identical: false,
            panicked: Some(panic_message(payload.as_ref())),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_storage_fault_drill_passes() {
        let root = std::env::temp_dir().join(format!("kgrec_bench_drill_{}", std::process::id()));
        for fault in StorageFault::all() {
            let outcome = run_storage_drill(fault, &root.join(fault.label()));
            assert!(outcome.passed(), "{}", outcome.describe());
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
