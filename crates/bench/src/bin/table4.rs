//! Regenerates Table 4 of the survey: datasets per application scenario.
//!
//! Usage: `cargo run --release -p kgrec-bench --bin table4 [--verify]
//! [--threads N]`
//!
//! With `--verify`, every dataset backed by an offline generator is
//! actually generated — sharded across the worker pool — and the table
//! gains measured `users / items / interactions / triples` columns, so
//! the printed row provably matches what `kgrec-data` synthesizes.

use kgrec_bench::{par, preflight_registry, print_text_table, threads_from_args};
use kgrec_data::registry::table4;
use kgrec_data::synth::{generate, ScenarioConfig};

/// Maps a registry generator name to its `ScenarioConfig` preset (the
/// registry's own unit test keeps this list exhaustive).
fn preset(generator: &str) -> ScenarioConfig {
    match generator {
        "movielens_100k_like" => ScenarioConfig::movielens_100k_like(),
        "movielens_1m_like" => ScenarioConfig::movielens_1m_like(),
        "book_crossing_like" => ScenarioConfig::book_crossing_like(),
        "amazon_product_like" => ScenarioConfig::amazon_product_like(),
        "bing_news_like" => ScenarioConfig::bing_news_like(),
        "yelp_like" => ScenarioConfig::yelp_like(),
        "lastfm_like" => ScenarioConfig::lastfm_like(),
        "weibo_like" => ScenarioConfig::weibo_like(),
        other => panic!("registry names unknown generator {other:?}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let verify = args.iter().any(|a| a == "--verify");
    let threads = par::resolve_threads(threads_from_args(&args));
    preflight_registry();
    println!("TABLE 4 — Datasets for different application scenarios\n");
    let entries = table4();
    let mut rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.scenario.name().to_owned(),
                e.name.to_owned(),
                e.papers.iter().map(|p| format!("[{p}]")).collect::<Vec<_>>().join(", "),
                e.generator.map(|g| format!("ScenarioConfig::{g}()")).unwrap_or_default(),
            ]
        })
        .collect();
    if verify {
        eprintln!("table4 --verify: generating datasets on {threads} worker thread(s)");
        // One shard per generator-backed row; rows without a generator
        // resolve to an empty stats cell without occupying a worker.
        let stats: Vec<Option<String>> = par::par_map(&entries, threads, |_, e| {
            e.generator.map(|g| {
                let synth = generate(&preset(g), 2024);
                format!(
                    "{}u / {}i / {} inter / {} triples",
                    synth.dataset.interactions.num_users(),
                    synth.dataset.interactions.num_items(),
                    synth.dataset.interactions.num_interactions(),
                    synth.dataset.graph.num_triples()
                )
            })
        });
        for (row, stat) in rows.iter_mut().zip(stats) {
            row.push(stat.unwrap_or_default());
        }
        print_text_table(
            &["Scenario", "Dataset", "Papers", "Offline generator", "Generated size"],
            &rows,
        );
    } else {
        print_text_table(&["Scenario", "Dataset", "Papers", "Offline generator"], &rows);
    }
    println!(
        "\nDatasets with an offline generator are simulated by kgrec-data's \
         planted-topic synthesizer (DESIGN.md §2)."
    );
}
