//! The framework layer of `kgrec` — the survey's contribution as code.
//!
//! "A Survey on Knowledge Graph-Based Recommender Systems" contributes a
//! taxonomy and a formal vocabulary rather than a single algorithm; this
//! crate is that contribution made executable:
//!
//! * [`recommender`] — the [`recommender::Recommender`] trait every method
//!   in `kgrec-models` implements, with the `f: u × v → ŷ` scoring
//!   interface of survey Eq. 1;
//! * [`taxonomy`] — the Table 3 classification (usage type × techniques),
//!   attached to every model as machine-readable metadata, plus the full
//!   39-paper literature table;
//! * [`metrics`] — AUC, Precision@K, Recall@K, NDCG@K, HitRate@K, MRR;
//! * [`protocol`] — the two evaluation protocols of the surveyed papers:
//!   CTR-style pointwise evaluation and full-ranking top-K evaluation;
//! * [`supervisor`] — the training supervisor: panic-isolated,
//!   budgeted, retry-with-backoff execution of any `fit`
//!   ([`supervisor::supervise_fit`]), reporting the
//!   `ok → retried → degraded → failed` state machine the evaluation
//!   harness renders per model;
//! * [`explain`] — the explanation engine: reasoning paths between a user
//!   and a recommended item in the user–item graph (survey Section 4's
//!   explainability thread, and Figure 1's reasoning example);
//! * [`kg_registry`] — the Table 1 catalog of public knowledge graphs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod explain;
pub mod kg_registry;
pub mod metrics;
pub mod protocol;
pub mod recommender;
pub mod supervisor;
pub mod taxonomy;

pub use error::CoreError;
pub use explain::{Explainer, Explanation};
pub use recommender::{Recommender, TrainContext};
pub use supervisor::{
    panic_message, supervise_fit, supervise_fit_checkpointed, FitOutcome, FitStatus,
    SupervisorConfig,
};
pub use taxonomy::{Taxonomy, Technique, UsageType};
