//! TransH (Wang et al. 2014): translation on relation-specific hyperplanes.
//!
//! Each relation carries a hyperplane normal `w_r` (kept unit-norm) and a
//! translation `d_r` on that hyperplane. Entities are projected before
//! translating: `h⊥ = h − (wᵀh)w`, `d(h,r,t) = ‖h⊥ + d_r − t⊥‖²`, allowing
//! an entity to have different projections per relation — the fix for
//! TransE's problems with 1-to-N / N-to-1 relations.

use crate::grad::{GradBatch, GradOp};
use crate::model::KgeModel;
use kgrec_graph::{EntityId, RelationId, Triple};
use kgrec_linalg::{vector, EmbeddingTable, Scratch};
use rand::Rng;

/// Grad-batch table id of the entity table.
const T_ENT: u8 = 0;
/// Grad-batch table id of the translation table.
const T_TRA: u8 = 1;
/// Grad-batch table id of the hyperplane-normal table.
const T_NOR: u8 = 2;

/// The TransH model.
#[derive(Debug)]
pub struct TransH {
    entities: EmbeddingTable,
    translations: EmbeddingTable,
    normals: EmbeddingTable,
    scratch: Scratch,
    /// Ranking margin `γ`.
    pub margin: f32,
}

impl Clone for TransH {
    fn clone(&self) -> Self {
        Self {
            entities: self.entities.clone(),
            translations: self.translations.clone(),
            normals: self.normals.clone(),
            scratch: Scratch::new(),
            margin: self.margin,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.entities.clone_from(&source.entities);
        self.translations.clone_from(&source.translations);
        self.normals.clone_from(&source.normals);
        self.margin = source.margin;
    }
}

impl TransH {
    /// Creates a TransH model.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        margin: f32,
    ) -> Self {
        let entities = EmbeddingTable::transe_init(rng, num_entities, dim);
        let translations = EmbeddingTable::transe_init(rng, num_relations, dim);
        let mut normals = EmbeddingTable::transe_init(rng, num_relations, dim);
        normals.normalize_rows();
        Self { entities, translations, normals, scratch: Scratch::new(), margin }
    }

    /// Hyperplane distance; see module docs.
    pub fn distance(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
        let w = self.normals.row(r.index());
        let dr = self.translations.row(r.index());
        let hv = self.entities.row(h.index());
        let tv = self.entities.row(t.index());
        let ch = vector::dot(w, hv);
        let ct = vector::dot(w, tv);
        let mut acc = 0.0f32;
        for i in 0..hv.len() {
            let v = (hv[i] - ch * w[i]) + dr[i] - (tv[i] - ct * w[i]);
            acc += v * v;
        }
        acc
    }

    /// The residual `v = h⊥ + d_r − t⊥` used by all gradients.
    #[cfg(test)]
    fn residual(&self, h: EntityId, r: RelationId, t: EntityId) -> Vec<f32> {
        let mut v = vec![0.0f32; self.entities.dim()];
        self.residual_into(h, r, t, &mut v);
        v
    }

    /// `residual` into a caller-owned buffer.
    fn residual_into(&self, h: EntityId, r: RelationId, t: EntityId, out: &mut [f32]) {
        let w = self.normals.row(r.index());
        let dr = self.translations.row(r.index());
        let hv = self.entities.row(h.index());
        let tv = self.entities.row(t.index());
        let ch = vector::dot(w, hv);
        let ct = vector::dot(w, tv);
        for i in 0..hv.len() {
            out[i] = (hv[i] - ch * w[i]) + dr[i] - (tv[i] - ct * w[i]);
        }
    }

    /// Applies `−lr·scale·∂d/∂θ` to every parameter of the triple.
    ///
    /// Derivation (with `u = h − t`, `c = wᵀu`, `v = u − c·w + d_r`):
    /// `∂d/∂h = 2(v − (wᵀv)w)`, `∂d/∂t = −∂d/∂h`, `∂d/∂d_r = 2v`,
    /// `∂d/∂w = −2[(vᵀw)·u + (wᵀu)·v]`.
    ///
    /// All temporaries come from the scratch arena; the gradients are
    /// finished while the parameter rows are only borrowed immutably, so no
    /// row needs to be copied out first.
    fn apply(&mut self, triple: Triple, scale: f32, lr: f32) {
        let d = self.entities.dim();
        let mut v = self.scratch.take(d);
        let mut u = self.scratch.take(d);
        let mut grad_h = self.scratch.take(d);
        let mut grad_dr = self.scratch.take(d);
        let mut grad_w = self.scratch.take(d);
        self.residual_into(triple.head, triple.rel, triple.tail, &mut v);
        {
            let w = self.normals.row(triple.rel.index());
            let hv = self.entities.row(triple.head.index());
            let tv = self.entities.row(triple.tail.index());
            let wv = vector::dot(w, &v);
            vector::sub_into(hv, tv, &mut u);
            let wu = vector::dot(w, &u);
            for i in 0..d {
                grad_h[i] = 2.0 * (v[i] - wv * w[i]);
                grad_w[i] = -2.0 * (wv * u[i] + wu * v[i]);
            }
            vector::scale_assign(2.0, &v, &mut grad_dr);
        }

        self.entities.add_to_row(triple.head.index(), -lr * scale, &grad_h);
        self.entities.add_to_row(triple.tail.index(), lr * scale, &grad_h);
        self.translations.add_to_row(triple.rel.index(), -lr * scale, &grad_dr);
        self.normals.add_to_row(triple.rel.index(), -lr * scale, &grad_w);
        // Per-update constraints (‖e‖ ≤ 1, ‖w‖ = 1) keep the margin loss
        // from diverging between epochs.
        vector::project_to_ball(self.entities.row_mut(triple.head.index()), 1.0);
        vector::project_to_ball(self.entities.row_mut(triple.tail.index()), 1.0);
        vector::normalize(self.normals.row_mut(triple.rel.index()));
        self.scratch.put(v);
        self.scratch.put(u);
        self.scratch.put(grad_h);
        self.scratch.put(grad_dr);
        self.scratch.put(grad_w);
    }

    /// Records the ops of `apply(triple, scale, lr)` into `out`. The
    /// gradients use the same formulas as `apply` (with `u = h − t`
    /// expanded in place instead of materialised), and the two ball
    /// projections plus the normal renormalization replay in the same
    /// order.
    fn record_apply(&self, triple: Triple, scale: f32, out: &mut GradBatch) {
        let d = self.entities.dim();
        let seg_v = out.alloc(d);
        self.residual_into(triple.head, triple.rel, triple.tail, out.seg_mut(seg_v));
        let w = self.normals.row(triple.rel.index());
        let hv = self.entities.row(triple.head.index());
        let tv = self.entities.row(triple.tail.index());
        let wv = vector::dot(w, out.seg(seg_v));
        let mut wu = 0.0f32;
        for i in 0..d {
            wu += w[i] * (hv[i] - tv[i]);
        }
        let seg_gh = out.alloc(d);
        {
            let (gh, [v]) = out.seg_mut_with(seg_gh, [seg_v]);
            for i in 0..d {
                gh[i] = 2.0 * (v[i] - wv * w[i]);
            }
        }
        let seg_gdr = out.alloc(d);
        {
            let (gdr, [v]) = out.seg_mut_with(seg_gdr, [seg_v]);
            vector::scale_assign(2.0, v, gdr);
        }
        let seg_gw = out.alloc(d);
        {
            let (gw, [v]) = out.seg_mut_with(seg_gw, [seg_v]);
            for i in 0..d {
                gw[i] = -2.0 * (wv * (hv[i] - tv[i]) + wu * v[i]);
            }
        }
        out.push_op(GradOp::AddRow { table: T_ENT, row: triple.head.0, coeff: scale, seg: seg_gh });
        out.push_op(GradOp::AddRow {
            table: T_ENT,
            row: triple.tail.0,
            coeff: -scale,
            seg: seg_gh,
        });
        out.push_op(GradOp::AddRow { table: T_TRA, row: triple.rel.0, coeff: scale, seg: seg_gdr });
        out.push_op(GradOp::AddRow { table: T_NOR, row: triple.rel.0, coeff: scale, seg: seg_gw });
        out.push_op(GradOp::ProjectBall { table: T_ENT, row: triple.head.0, radius: 1.0 });
        out.push_op(GradOp::ProjectBall { table: T_ENT, row: triple.tail.0, radius: 1.0 });
        out.push_op(GradOp::NormalizeRow { table: T_NOR, row: triple.rel.0 });
    }

    /// Read access to the entity table.
    pub fn entities(&self) -> &EmbeddingTable {
        &self.entities
    }
}

impl KgeModel for TransH {
    fn dim(&self) -> usize {
        self.entities.dim()
    }

    fn num_entities(&self) -> usize {
        self.entities.len()
    }

    fn num_relations(&self) -> usize {
        self.translations.len()
    }

    fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
        -self.distance(h, r, t)
    }

    fn entity_embedding(&self, e: EntityId) -> &[f32] {
        self.entities.row(e.index())
    }

    fn relation_embedding(&self, r: RelationId) -> &[f32] {
        self.translations.row(r.index())
    }

    fn train_pair(&mut self, pos: Triple, neg: Triple, lr: f32) -> f32 {
        let loss = self.margin + self.distance(pos.head, pos.rel, pos.tail)
            - self.distance(neg.head, neg.rel, neg.tail);
        if loss > 0.0 {
            self.apply(pos, 1.0, lr);
            self.apply(neg, -1.0, lr);
            loss
        } else {
            0.0
        }
    }

    fn supports_grad_batches(&self) -> bool {
        true
    }

    fn grad_pair(&self, pos: Triple, neg: Triple, out: &mut GradBatch) -> f32 {
        let loss = self.margin + self.distance(pos.head, pos.rel, pos.tail)
            - self.distance(neg.head, neg.rel, neg.tail);
        if loss > 0.0 {
            self.record_apply(pos, 1.0, out);
            self.record_apply(neg, -1.0, out);
            loss
        } else {
            0.0
        }
    }

    fn apply_grads(&mut self, batch: &GradBatch, lr: f32) {
        for op in batch.ops() {
            match *op {
                GradOp::AddRow { table, row, coeff, seg } => {
                    let t = match table {
                        T_ENT => &mut self.entities,
                        T_TRA => &mut self.translations,
                        _ => &mut self.normals,
                    };
                    t.add_to_row(row as usize, -lr * coeff, batch.seg(seg));
                }
                GradOp::ProjectBall { row, radius, .. } => {
                    vector::project_to_ball(self.entities.row_mut(row as usize), radius);
                }
                GradOp::NormalizeRow { row, .. } => {
                    vector::normalize(self.normals.row_mut(row as usize));
                }
                _ => unreachable!("TransH records no matrix ops"),
            }
        }
    }

    fn post_epoch(&mut self) {
        self.entities.project_rows_to_ball(1.0);
        self.normals.normalize_rows();
    }

    fn name(&self) -> &'static str {
        "TransH"
    }
}

impl kgrec_store::Persistable for TransH {
    fn snapshot_id(&self) -> &'static str {
        "kge.transh"
    }

    fn write_state(
        &self,
        writer: &mut kgrec_store::SnapshotWriter,
    ) -> Result<(), kgrec_store::StoreError> {
        writer.add("entities", crate::persist::table_section(&self.entities))?;
        writer.add("translations", crate::persist::table_section(&self.translations))?;
        writer.add("normals", crate::persist::table_section(&self.normals))?;
        writer.add("hyper", crate::persist::scalar_section(self.margin))
    }

    fn read_state(
        &mut self,
        reader: &kgrec_store::SnapshotReader,
    ) -> Result<(), kgrec_store::StoreError> {
        let ent = crate::persist::read_table(reader, "entities", &self.entities)?;
        let tra = crate::persist::read_table(reader, "translations", &self.translations)?;
        let nor = crate::persist::read_table(reader, "normals", &self.normals)?;
        let margin = crate::persist::read_scalar(reader, "hyper")?;
        self.entities.data_mut().copy_from_slice(&ent);
        self.translations.data_mut().copy_from_slice(&tra);
        self.normals.data_mut().copy_from_slice(&nor);
        self.margin = margin;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_linalg::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> TransH {
        let mut rng = StdRng::seed_from_u64(21);
        TransH::new(&mut rng, 4, 2, 5, 1.0)
    }

    #[test]
    fn projection_removes_normal_component() {
        let m = model();
        let (h, r, t) = (EntityId(0), RelationId(0), EntityId(1));
        // The residual must be orthogonal to w up to the d_r component:
        // v = h⊥ − t⊥ + d_r where h⊥, t⊥ ⊥ w.
        let v = m.residual(h, r, t);
        let w = m.normals.row(0);
        let dr = m.translations.row(0);
        let lhs = vector::dot(w, &v);
        let rhs = vector::dot(w, dr);
        assert!((lhs - rhs).abs() < 1e-5, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn head_gradient_matches_finite_difference() {
        let m = model();
        let (h, r, t) = (EntityId(0), RelationId(1), EntityId(2));
        let v = m.residual(h, r, t);
        let w = m.normals.row(r.index());
        let wv = vector::dot(w, &v);
        let grad_h: Vec<f32> = (0..v.len()).map(|i| 2.0 * (v[i] - wv * w[i])).collect();
        let mut params = m.entities.row(h.index()).to_vec();
        let m2 = m.clone();
        gradcheck::assert_gradient(&mut params, &grad_h, 1e-3, 1e-2, |p| {
            let mut mm = m2.clone();
            mm.entities.row_mut(h.index()).copy_from_slice(p);
            mm.distance(h, r, t)
        });
    }

    #[test]
    fn normal_gradient_matches_finite_difference() {
        let m = model();
        let (h, r, t) = (EntityId(0), RelationId(1), EntityId(2));
        let v = m.residual(h, r, t);
        let w = m.normals.row(r.index()).to_vec();
        let hv = m.entities.row(h.index());
        let tv = m.entities.row(t.index());
        let u: Vec<f32> = hv.iter().zip(tv.iter()).map(|(a, b)| a - b).collect();
        let wv = vector::dot(&w, &v);
        let wu = vector::dot(&w, &u);
        let grad_w: Vec<f32> = (0..v.len()).map(|i| -2.0 * (wv * u[i] + wu * v[i])).collect();
        let mut params = w.clone();
        let m2 = m.clone();
        gradcheck::assert_gradient(&mut params, &grad_w, 1e-3, 1e-2, |p| {
            let mut mm = m2.clone();
            mm.normals.row_mut(r.index()).copy_from_slice(p);
            mm.distance(h, r, t)
        });
    }

    #[test]
    fn training_separates_pos_from_neg() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = TransH::new(&mut rng, 6, 2, 8, 1.0);
        let pos = Triple::new(EntityId(0), RelationId(0), EntityId(1));
        let neg = Triple::new(EntityId(0), RelationId(0), EntityId(2));
        for _ in 0..300 {
            m.train_pair(pos, neg, 0.03);
            m.post_epoch();
        }
        assert!(m.score(pos.head, pos.rel, pos.tail) > m.score(neg.head, neg.rel, neg.tail));
    }

    #[test]
    fn post_epoch_constraints() {
        let mut m = model();
        m.entities.row_mut(0).fill(4.0);
        m.normals.row_mut(0).fill(2.0);
        m.post_epoch();
        assert!(vector::norm(m.entities.row(0)) <= 1.0 + 1e-5);
        assert!((vector::norm(m.normals.row(0)) - 1.0).abs() < 1e-5);
    }
}
