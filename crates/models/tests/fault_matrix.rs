//! The fault matrix: every registry model × every injected dataset fault,
//! trained under the supervisor. The contract of ISSUE 3: a model facing a
//! corrupted bundle either trains successfully or fails with a *typed*
//! error — no panic escapes the supervisor, and any model reported usable
//! must emit only finite (or `-∞`) scores.

use kgrec_core::supervisor::{supervise_fit, FitStatus, SupervisorConfig};
use kgrec_core::Recommender;
use kgrec_data::faults::{inject, Fault};
use kgrec_data::synth::{generate, ScenarioConfig};
use kgrec_data::{ItemId, KgDataset, UserId};
use kgrec_models::registry::all_models;

/// A scenario small enough to fit every model quickly but carrying token
/// lists so the text model (DKN) joins the matrix.
fn matrix_bundle() -> KgDataset {
    let mut cfg = ScenarioConfig::tiny();
    cfg.num_users = 16;
    cfg.num_items = 24;
    cfg.mean_interactions_per_user = 6.0;
    cfg.words_per_item = Some(3);
    generate(&cfg, 77).dataset
}

/// Scores a usable model over a grid and via `recommend`, asserting the
/// finite-score convention (`-∞` = "never recommend" is legal).
fn assert_finite_scores(model: &dyn Recommender, label: &str) {
    let items = model.num_items().min(12);
    for u in 0..6u32 {
        for i in 0..items {
            let s = model.score(UserId(u), ItemId(i as u32));
            assert!(
                !s.is_nan() && s != f32::INFINITY,
                "{label}: score(u{u}, i{i}) = {s} is not a legal score"
            );
        }
        for (item, s) in model.recommend(UserId(u), 5, &[]) {
            assert!(s.is_finite(), "{label}: recommend(u{u}) surfaced {s} for {item:?}");
        }
    }
}

#[test]
fn every_model_survives_every_fault() {
    // The matrix intentionally provokes panics inside `fit`; the
    // supervisor converts them to typed errors, so silence the default
    // hook's backtrace spam.
    std::panic::set_hook(Box::new(|_| {}));

    let mut outcomes: Vec<String> = Vec::new();
    for &fault in Fault::all() {
        let mut dataset = matrix_bundle();
        inject(&mut dataset, fault);
        let train = dataset.interactions.clone();
        for mut model in all_models(true) {
            let name = model.name();
            // No retries inside the matrix: deterministic faults replay
            // the same failure and would only double the runtime. The
            // retry path is exercised by the supervisor's unit tests.
            let config = SupervisorConfig::default().with_max_retries(0);
            let outcome = supervise_fit(model.as_mut(), &dataset, &train, &config);
            if outcome.status == FitStatus::Failed {
                assert!(
                    outcome.reason.is_some(),
                    "{name} × {fault}: failure must carry a typed reason"
                );
            } else {
                assert_finite_scores(model.as_ref(), &format!("{name} × {fault}"));
            }
            outcomes.push(format!(
                "{name} × {fault}: {}{}",
                outcome.status.label(),
                outcome.reason.as_deref().map(|r| format!(" ({r})")).unwrap_or_default()
            ));
        }
    }
    let _ = std::panic::take_hook();
    // The matrix must actually have exercised failure paths: the dangling
    // alignment corrupts id spaces beyond what any model can absorb.
    assert!(
        outcomes.iter().any(|o| o.contains("failed")),
        "no fault produced a failure — injectors are toothless:\n{}",
        outcomes.join("\n")
    );
}

/// Runs one matrix cell under the supervisor and renders the outcome the
/// same way for the serial and the parallel runs.
fn run_cell(fault: Fault, which: usize) -> String {
    let mut dataset = matrix_bundle();
    inject(&mut dataset, fault);
    let train = dataset.interactions.clone();
    let mut model = all_models(true).swap_remove(which);
    let name = model.name();
    let config = SupervisorConfig::default().with_max_retries(0);
    let outcome = supervise_fit(model.as_mut(), &dataset, &train, &config);
    format!(
        "{name} × {fault}: {}{}",
        outcome.status.label(),
        outcome.reason.as_deref().map(|r| format!(" ({r})")).unwrap_or_default()
    )
}

#[test]
fn fault_matrix_on_the_pool_matches_serial_cell_for_cell() {
    // The matrix deliberately provokes panics; the supervisor absorbs
    // them inside each worker, so the pool must neither deadlock nor
    // cross-contaminate cells. Every (fault × model) cell is one shard.
    // Two faults keep the runtime sane: the id-space corruption that
    // fails models outright (panic path) and the NaN corruption that
    // degrades them (numeric path); the full matrix already runs
    // serially in `every_model_survives_every_fault`.
    std::panic::set_hook(Box::new(|_| {}));
    let models = all_models(true).len();
    let cells: Vec<(Fault, usize)> = [Fault::DanglingAlignment, Fault::NanRatings]
        .iter()
        .flat_map(|&fault| (0..models).map(move |which| (fault, which)))
        .collect();
    let serial: Vec<String> = cells.iter().map(|&(fault, which)| run_cell(fault, which)).collect();
    let parallel =
        kgrec_linalg::par::par_map(&cells, 4, |_, &(fault, which)| run_cell(fault, which));
    assert_eq!(parallel, serial, "fault matrix diverged between 1 and 4 threads");
    let _ = std::panic::take_hook();
    assert!(
        serial.iter().any(|o| o.contains("failed")),
        "no fault produced a failure — injectors are toothless:\n{}",
        serial.join("\n")
    );
}

#[test]
fn clean_bundle_trains_ok_under_supervision() {
    let dataset = matrix_bundle();
    let train = dataset.interactions.clone();
    for mut model in all_models(true) {
        let name = model.name();
        let outcome = supervise_fit(model.as_mut(), &dataset, &train, &SupervisorConfig::default());
        assert_eq!(outcome.status, FitStatus::Ok, "{name} on a clean bundle: {:?}", outcome.reason);
        assert_finite_scores(model.as_ref(), name);
    }
}
