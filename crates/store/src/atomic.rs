//! Atomic file replacement.
//!
//! The only sanctioned way to put bytes on disk in the persistence layer
//! (enforced by kglint SA007). The protocol is the classic crash-safe
//! sequence:
//!
//! 1. write the full payload to a sibling temp file,
//! 2. `fsync` the temp file so the *data* is durable,
//! 3. `rename` over the destination — atomic on POSIX filesystems,
//! 4. `fsync` the parent directory so the *rename* is durable.
//!
//! A crash at any point leaves either the old file or the new file at the
//! destination path, never a prefix of the new one. Stray `.tmp` files from
//! a crash between (1) and (3) are ignored by readers and overwritten by
//! the next writer.

use crate::error::StoreError;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Returns the sibling temp path used while writing `path` atomically.
///
/// Exposed so the fault injector can simulate a crash that leaves the temp
/// file behind (torn write) exactly where the writer would have put it.
#[must_use]
pub fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(std::ffi::OsStr::to_os_string).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replaces `path` with `bytes`.
///
/// # Errors
/// Returns [`StoreError::Io`] if any step of the write/sync/rename protocol
/// fails; the destination file is left untouched in that case.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = temp_path(path);
    {
        // kglint::allow(SA007, this is the atomic writer every other persistence path is required to call)
        let mut f = fs::File::create(&tmp)
            .map_err(|e| StoreError::io(format!("create {}", tmp.display()), e))?;
        f.write_all(bytes).map_err(|e| StoreError::io(format!("write {}", tmp.display()), e))?;
        f.sync_all().map_err(|e| StoreError::io(format!("fsync {}", tmp.display()), e))?;
    }
    fs::rename(&tmp, path).map_err(|e| {
        StoreError::io(format!("rename {} -> {}", tmp.display(), path.display()), e)
    })?;
    if let Some(parent) = path.parent() {
        // Make the rename itself durable. Directory fsync can legitimately
        // be unsupported on some filesystems; treat only real failures on
        // openable directories as errors.
        if let Ok(dir) = fs::File::open(parent) {
            dir.sync_all()
                .map_err(|e| StoreError::io(format!("fsync dir {}", parent.display()), e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kgrec_store_atomic_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch_dir("replace");
        let path = dir.join("file.bin");
        write_atomic(&path, b"first").expect("first write");
        assert_eq!(fs::read(&path).expect("read"), b"first");
        write_atomic(&path, b"second, longer payload").expect("second write");
        assert_eq!(fs::read(&path).expect("read"), b"second, longer payload");
        // No temp litter after a successful write.
        assert!(!temp_path(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_path_is_a_sibling() {
        let p = Path::new("/a/b/model.snap");
        assert_eq!(temp_path(p), Path::new("/a/b/model.snap.tmp"));
    }

    #[test]
    fn missing_parent_fails_cleanly() {
        let dir = scratch_dir("noparent");
        let path = dir.join("does/not/exist/file.bin");
        let err = write_atomic(&path, b"x").expect_err("should fail");
        assert!(matches!(err, StoreError::Io { .. }));
        let _ = fs::remove_dir_all(&dir);
    }
}
