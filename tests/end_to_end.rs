//! End-to-end integration: dataset generation → splitting → training →
//! evaluation → explanation, across crates.

use kgrec_core::explain::Explainer;
use kgrec_core::protocol::{evaluate_ctr, evaluate_topk};
use kgrec_core::{Recommender, TrainContext};
use kgrec_data::negative::labeled_eval_set;
use kgrec_data::split::ratio_split;
use kgrec_data::synth::{generate, ScenarioConfig};
use kgrec_data::UserId;
use kgrec_models::baselines::{BprMf, MostPop};
use kgrec_models::embedding::Cfkg;
use kgrec_models::unified::RippleNet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The survey's central empirical claim: with sparse interactions, a
/// KG-aware model beats KG-free CF. This is the repository's headline
/// regression test.
#[test]
fn kg_side_information_helps_under_sparsity() {
    let cfg = ScenarioConfig::tiny().with_sparsity_factor(0.3);
    let synth = generate(&cfg, 99);
    let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
    let ctx = TrainContext::new(&synth.dataset, &split.train);
    let mut rng = StdRng::seed_from_u64(5);
    let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);

    let mut bpr = BprMf::default_config();
    bpr.fit(&ctx).unwrap();
    let bpr_auc = evaluate_ctr(&bpr, &pairs).auc;

    let mut pop = MostPop::new();
    pop.fit(&ctx).unwrap();
    let pop_auc = evaluate_ctr(&pop, &pairs).auc;

    let mut cfkg = Cfkg::default_config();
    cfkg.fit(&ctx).unwrap();
    let cfkg_auc = evaluate_ctr(&cfkg, &pairs).auc;

    let best_baseline = bpr_auc.max(pop_auc);
    assert!(
        cfkg_auc > best_baseline,
        "KG-aware CFKG ({cfkg_auc:.4}) must beat baselines ({best_baseline:.4}) when sparse"
    );
}

/// Top-K and CTR protocols must agree on ordering for clearly separated
/// models (an oracle-vs-popularity sanity check at the protocol level).
#[test]
fn protocols_are_consistent_across_crates() {
    let synth = generate(&ScenarioConfig::tiny(), 17);
    let split = ratio_split(&synth.dataset.interactions, 0.2, 2);
    let ctx = TrainContext::new(&synth.dataset, &split.train);
    let mut rng = StdRng::seed_from_u64(3);
    let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);

    let mut bpr = BprMf::default_config();
    bpr.fit(&ctx).unwrap();
    let mut pop = MostPop::new();
    pop.fit(&ctx).unwrap();

    let bpr_ctr = evaluate_ctr(&bpr, &pairs).auc;
    let pop_ctr = evaluate_ctr(&pop, &pairs).auc;
    let bpr_topk = evaluate_topk(&bpr, &split.train, &split.test, &[10]).cutoffs[0].recall;
    let pop_topk = evaluate_topk(&pop, &split.train, &split.test, &[10]).cutoffs[0].recall;
    assert!(bpr_ctr > pop_ctr, "BPR must beat popularity on CTR");
    assert!(bpr_topk > pop_topk, "BPR must beat popularity on Recall@10");
}

/// Recommendations from a path-connected model must come with at least
/// one reasoning path — the explainability contract of the survey.
#[test]
fn recommendations_are_explainable() {
    let synth = generate(&ScenarioConfig::tiny(), 23);
    let split = ratio_split(&synth.dataset.interactions, 0.2, 4);
    let ctx = TrainContext::new(&synth.dataset, &split.train);
    let mut cfkg = Cfkg::default_config();
    cfkg.fit(&ctx).unwrap();
    let uig = cfkg.user_item_graph().unwrap();
    let explainer = Explainer::new(uig);
    let mut explained = 0usize;
    let mut recommended = 0usize;
    for u in 0..10u32 {
        let user = UserId(u);
        for (item, _) in cfkg.recommend(user, 3, split.train.items_of(user)) {
            recommended += 1;
            if !explainer.explain(user, item).is_empty() {
                explained += 1;
            }
        }
    }
    assert!(recommended > 0);
    // The planted generator connects items densely through attributes;
    // the vast majority of recommendations must be explainable.
    assert!(
        explained * 10 >= recommended * 8,
        "only {explained}/{recommended} recommendations explainable"
    );
}

/// Train/test discipline: a model must never see test interactions. The
/// user–item graph materialized from train must not contain test edges.
#[test]
fn no_test_leakage_into_user_item_graph() {
    let synth = generate(&ScenarioConfig::tiny(), 31);
    let split = ratio_split(&synth.dataset.interactions, 0.2, 5);
    let uig = synth.dataset.user_item_graph(&split.train);
    for (u, i, _) in split.test.iter() {
        let ue = uig.user_entities[u.index()];
        let ie = uig.item_entities[i.index()];
        assert!(
            !uig.graph.contains(ue, uig.interact, ie),
            "test edge ({u}, {i}) leaked into the training graph"
        );
    }
}

/// The §6 "user side information" extension: social links change the
/// user–item graph and flow into graph-based models.
#[test]
fn social_links_reach_graph_models() {
    let base = ScenarioConfig::tiny().with_sparsity_factor(0.4);
    let social_cfg = base.with_social_links(4);
    let synth = generate(&social_cfg, 55);
    assert!(synth.dataset.social_links.is_some());
    let split = ratio_split(&synth.dataset.interactions, 0.2, 6);
    let uig = synth.dataset.user_item_graph(&split.train);
    let friend = uig.graph.relation_by_name("friend").expect("friend relation exists");
    // At least one friendship edge made it into the graph.
    let has_friend_edge = uig
        .user_entities
        .iter()
        .any(|&u| uig.graph.neighbors_by_relation(u, friend).iter().count() > 0);
    assert!(has_friend_edge);
    // Training a graph model on it works and scores stay finite.
    let ctx = TrainContext::new(&synth.dataset, &split.train);
    let mut m = Cfkg::default_config();
    m.fit(&ctx).unwrap();
    assert!(m.score(UserId(0), kgrec_data::ItemId(0)).is_finite());
}

/// Determinism across the whole pipeline: same seeds, same metrics.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let synth = generate(&ScenarioConfig::tiny(), 7);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 8);
        let ctx = TrainContext::new(&synth.dataset, &split.train);
        let mut m = RippleNet::default_config();
        m.fit(&ctx).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        evaluate_ctr(&m, &pairs).auc
    };
    assert_eq!(run(), run());
}
