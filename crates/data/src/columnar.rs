//! Columnar interaction storage: sorted user/item/rating/timestamp
//! columns behind a per-user `u32` offset index.
//!
//! This is the million-user replacement for per-user interaction `Vec`s:
//! one contiguous column per attribute (structure of arrays), user-major
//! sorted by `(user, item)`, plus an item-major index for audience scans.
//! [`crate::InteractionMatrix`] is a thin facade over this module — the
//! survey models keep their familiar accessors while the storage
//! underneath is flat, compact, and appendable.
//!
//! Two properties are load-bearing and pinned by tests:
//!
//! * **Dedup order** — duplicate `(user, item)` pairs collapse keeping the
//!   FIRST occurrence of the input order (stable sort + first-wins dedup),
//!   exactly like the pointer-based predecessor.
//! * **Append equivalence** — [`ColumnarInteractions::append`] produces a
//!   store byte-identical to a one-shot build over the concatenated input
//!   (existing rows win over appended rows; first-wins within a batch),
//!   which is what makes incremental ingest deterministic.

use crate::ids::{ItemId, UserId};
use crate::interactions::Interaction;
use kgrec_graph::id32;

/// Timestamp sentinel for rows without an event time.
pub const NO_TIMESTAMP: u64 = u64::MAX;

/// Sorted columnar interaction store (user-major) with an item-major index.
#[derive(Debug, Clone)]
pub struct ColumnarInteractions {
    num_users: usize,
    num_items: usize,
    /// Per-user row ranges, length `num_users + 1`, monotone.
    u_offsets: Vec<u32>,
    /// Item column, strictly increasing within each user's range.
    items: Vec<ItemId>,
    /// Rating column aligned with `items` (`NaN` = implicit).
    ratings: Vec<f32>,
    /// Timestamp column aligned with `items` ([`NO_TIMESTAMP`] = absent).
    timestamps: Vec<u64>,
    /// Per-item row ranges into `i_users`, length `num_items + 1`.
    i_offsets: Vec<u32>,
    /// User column of the item-major index, sorted within each item.
    i_users: Vec<UserId>,
}

/// One structural defect found by [`ColumnarInteractions::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnarViolation {
    /// `u_offsets` has the wrong length for the user count.
    UserOffsetLength {
        /// Actual length.
        got: usize,
        /// Expected length (`num_users + 1`).
        want: usize,
    },
    /// `u_offsets[index] > u_offsets[index + 1]`.
    UserOffsetNotMonotone {
        /// First index of the decreasing pair.
        index: usize,
    },
    /// The final user offset does not equal the row count.
    UserOffsetEndMismatch {
        /// `u_offsets[last]`.
        got: u32,
        /// Row-column length.
        want: usize,
    },
    /// The item/rating/timestamp columns have differing lengths.
    ColumnLengthMismatch {
        /// `(items, ratings, timestamps)` lengths.
        lengths: (usize, usize, usize),
    },
    /// Row `row` references an item outside the item id space.
    ItemOutOfRange {
        /// Offending row index.
        row: usize,
        /// The out-of-range item.
        item: ItemId,
    },
    /// User `user`'s items are not strictly increasing at `row`.
    ItemsNotSorted {
        /// The user whose history is out of order.
        user: UserId,
        /// Row index of the violation.
        row: usize,
    },
    /// The item-major index disagrees with the user-major columns.
    ItemIndexMismatch {
        /// Description of the disagreement.
        detail: String,
    },
}

impl std::fmt::Display for ColumnarViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnarViolation::UserOffsetLength { got, want } => {
                write!(f, "user offset array length {got}, want {want}")
            }
            ColumnarViolation::UserOffsetNotMonotone { index } => {
                write!(f, "user offset array decreases at index {index}")
            }
            ColumnarViolation::UserOffsetEndMismatch { got, want } => {
                write!(f, "final user offset {got} does not match row count {want}")
            }
            ColumnarViolation::ColumnLengthMismatch { lengths } => {
                write!(
                    f,
                    "columns disagree: {} items, {} ratings, {} timestamps",
                    lengths.0, lengths.1, lengths.2
                )
            }
            ColumnarViolation::ItemOutOfRange { row, item } => {
                write!(f, "row {row} item {item} out of item range")
            }
            ColumnarViolation::ItemsNotSorted { user, row } => {
                write!(f, "user {user} history not strictly increasing at row {row}")
            }
            ColumnarViolation::ItemIndexMismatch { detail } => {
                write!(f, "item-major index mismatch: {detail}")
            }
        }
    }
}

impl ColumnarInteractions {
    /// Builds the store from an interaction list. Duplicate `(user, item)`
    /// pairs collapse keeping the first occurrence of the input order
    /// (stable sort, first-wins dedup).
    ///
    /// # Panics
    /// Panics if any interaction references a user or item out of range.
    pub fn from_interactions(
        num_users: usize,
        num_items: usize,
        interactions: &[Interaction],
    ) -> Self {
        for it in interactions {
            assert!(it.user.index() < num_users, "interaction user out of range");
            assert!(it.item.index() < num_items, "interaction item out of range");
        }
        let mut sorted: Vec<&Interaction> = interactions.iter().collect();
        sorted.sort_by_key(|it| (it.user.0, it.item.0));
        sorted.dedup_by_key(|it| (it.user.0, it.item.0));

        let mut builder = ColumnarBuilder::new(num_users, num_items);
        for it in &sorted {
            builder.push(it.user, it.item, it.rating, it.timestamp);
        }
        builder.finish()
    }

    /// Assembles a store from raw columns with **no validation**.
    ///
    /// Exists for the kglint `MD007` corrupted fixtures; production code
    /// goes through [`Self::from_interactions`] or [`ColumnarBuilder`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        num_users: usize,
        num_items: usize,
        u_offsets: Vec<u32>,
        items: Vec<ItemId>,
        ratings: Vec<f32>,
        timestamps: Vec<u64>,
        i_offsets: Vec<u32>,
        i_users: Vec<UserId>,
    ) -> Self {
        Self { num_users, num_items, u_offsets, items, ratings, timestamps, i_offsets, i_users }
    }

    /// Number of users `m`.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items `n`.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of stored rows `|R|`.
    pub fn num_rows(&self) -> usize {
        self.items.len()
    }

    /// The row range of `user`.
    #[inline]
    pub fn user_range(&self, user: UserId) -> std::ops::Range<usize> {
        self.u_offsets[user.index()] as usize..self.u_offsets[user.index() + 1] as usize
    }

    /// Items interacted by `user`, sorted by item id.
    #[inline]
    pub fn items_of(&self, user: UserId) -> &[ItemId] {
        &self.items[self.user_range(user)]
    }

    /// Ratings aligned with [`Self::items_of`] (`NaN` for implicit rows).
    #[inline]
    pub fn ratings_of(&self, user: UserId) -> &[f32] {
        &self.ratings[self.user_range(user)]
    }

    /// Timestamps aligned with [`Self::items_of`] ([`NO_TIMESTAMP`] for
    /// rows without an event time).
    #[inline]
    pub fn timestamps_of(&self, user: UserId) -> &[u64] {
        &self.timestamps[self.user_range(user)]
    }

    /// Users who interacted with `item`, sorted by user id.
    #[inline]
    pub fn users_of(&self, item: ItemId) -> &[UserId] {
        &self.i_users
            [self.i_offsets[item.index()] as usize..self.i_offsets[item.index() + 1] as usize]
    }

    /// History length of `user`.
    #[inline]
    pub fn user_degree(&self, user: UserId) -> usize {
        (self.u_offsets[user.index() + 1] - self.u_offsets[user.index()]) as usize
    }

    /// Audience size of `item`.
    #[inline]
    pub fn item_degree(&self, item: ItemId) -> usize {
        (self.i_offsets[item.index() + 1] - self.i_offsets[item.index()]) as usize
    }

    /// Whether `R_{user,item} = 1`.
    pub fn contains(&self, user: UserId, item: ItemId) -> bool {
        self.items_of(user).binary_search(&item).is_ok()
    }

    /// Raw user offset column (integrity checks and shard planning).
    pub fn u_offsets(&self) -> &[u32] {
        &self.u_offsets
    }

    /// Heap bytes held by all six columns.
    pub fn memory_bytes(&self) -> usize {
        self.u_offsets.len() * 4
            + self.items.len() * 4
            + self.ratings.len() * 4
            + self.timestamps.len() * 8
            + self.i_offsets.len() * 4
            + self.i_users.len() * 4
    }

    /// Merges `batch` into the store: existing rows win over appended
    /// rows for the same `(user, item)`; within `batch`, the first
    /// occurrence wins. The result is byte-identical to
    /// [`Self::from_interactions`] over the concatenation of the current
    /// rows and `batch` — the property the ingest determinism test pins.
    ///
    /// # Panics
    /// Panics if any batch row references a user or item out of range.
    pub fn append(&self, batch: &[Interaction]) -> Self {
        for it in batch {
            assert!(it.user.index() < self.num_users, "append user out of range");
            assert!(it.item.index() < self.num_items, "append item out of range");
        }
        let mut add: Vec<&Interaction> = batch.iter().collect();
        add.sort_by_key(|it| (it.user.0, it.item.0));
        add.dedup_by_key(|it| (it.user.0, it.item.0));

        let mut builder = ColumnarBuilder::new(self.num_users, self.num_items);
        let mut b = 0usize; // cursor into `add`
        for u in 0..self.num_users {
            let user = UserId(id32(u));
            let range = self.user_range(user);
            let mut e = range.start; // cursor into existing rows
            loop {
                let existing = (e < range.end).then(|| self.items[e]);
                let added = (b < add.len() && add[b].user == user).then(|| add[b].item);
                match (existing, added) {
                    (None, None) => break,
                    (Some(_), Some(ai)) if self.items[e] == ai => {
                        // Existing row wins; the batch duplicate is dropped.
                        b += 1;
                    }
                    (Some(ei), Some(ai)) if ai < ei => {
                        builder.push_raw(user, ai, add[b].rating, add[b].timestamp);
                        b += 1;
                    }
                    (Some(_), _) => {
                        builder.push_existing(
                            user,
                            self.items[e],
                            self.ratings[e],
                            self.timestamps[e],
                        );
                        e += 1;
                    }
                    (None, Some(ai)) => {
                        builder.push_raw(user, ai, add[b].rating, add[b].timestamp);
                        b += 1;
                    }
                }
            }
        }
        builder.finish()
    }

    /// FNV-1a digest over every column — a cheap byte-identity fingerprint
    /// for the ingest determinism tests.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_usize(self.num_users);
        h.write_usize(self.num_items);
        for &o in &self.u_offsets {
            h.write_u32(o);
        }
        for &i in &self.items {
            h.write_u32(i.0);
        }
        for &r in &self.ratings {
            h.write_u32(r.to_bits());
        }
        for &t in &self.timestamps {
            h.write_u64(t);
        }
        for &o in &self.i_offsets {
            h.write_u32(o);
        }
        for &u in &self.i_users {
            h.write_u32(u.0);
        }
        h.finish()
    }

    /// Structural integrity scan: monotone offsets, consistent column
    /// lengths, in-range strictly-sorted items, and an item-major index
    /// that agrees with the user-major columns.
    pub fn validate(&self) -> Vec<ColumnarViolation> {
        let mut out = Vec::new();
        if self.u_offsets.len() != self.num_users + 1 {
            out.push(ColumnarViolation::UserOffsetLength {
                got: self.u_offsets.len(),
                want: self.num_users + 1,
            });
            return out;
        }
        for i in 0..self.num_users {
            if self.u_offsets[i] > self.u_offsets[i + 1] {
                out.push(ColumnarViolation::UserOffsetNotMonotone { index: i });
            }
        }
        if !out.is_empty() {
            return out;
        }
        if self.items.len() != self.ratings.len() || self.ratings.len() != self.timestamps.len() {
            out.push(ColumnarViolation::ColumnLengthMismatch {
                lengths: (self.items.len(), self.ratings.len(), self.timestamps.len()),
            });
            return out;
        }
        if self.u_offsets[self.num_users] as usize != self.items.len() {
            out.push(ColumnarViolation::UserOffsetEndMismatch {
                got: self.u_offsets[self.num_users],
                want: self.items.len(),
            });
            return out;
        }
        for u in 0..self.num_users {
            let user = UserId(id32(u));
            let range = self.user_range(user);
            for row in range.clone() {
                if self.items[row].index() >= self.num_items {
                    out.push(ColumnarViolation::ItemOutOfRange { row, item: self.items[row] });
                }
                if row > range.start && self.items[row - 1] >= self.items[row] {
                    out.push(ColumnarViolation::ItemsNotSorted { user, row });
                }
            }
        }
        if !out.is_empty() {
            return out;
        }
        // Item-major index must be exactly the counting-sort transpose.
        let rebuilt =
            build_item_index(self.num_users, self.num_items, &self.u_offsets, &self.items);
        if rebuilt.0 != self.i_offsets {
            out.push(ColumnarViolation::ItemIndexMismatch {
                detail: "item offsets disagree with user-major columns".into(),
            });
        } else if rebuilt.1 != self.i_users {
            out.push(ColumnarViolation::ItemIndexMismatch {
                detail: "item user column disagrees with user-major columns".into(),
            });
        }
        out
    }
}

/// Builds the item-major `(i_offsets, i_users)` index from user-major
/// columns via counting sort — O(rows + items), no comparison sort.
fn build_item_index(
    num_users: usize,
    num_items: usize,
    u_offsets: &[u32],
    items: &[ItemId],
) -> (Vec<u32>, Vec<UserId>) {
    let mut i_offsets = vec![0u32; num_items + 1];
    for &it in items {
        i_offsets[it.index() + 1] += 1;
    }
    for i in 0..num_items {
        i_offsets[i + 1] += i_offsets[i];
    }
    let mut cursor = i_offsets.clone();
    let mut i_users = vec![UserId(0); items.len()];
    // User-major iteration emits users in increasing order per item, so
    // each item's audience comes out sorted.
    for u in 0..num_users {
        for row in u_offsets[u] as usize..u_offsets[u + 1] as usize {
            let slot = &mut cursor[items[row].index()];
            i_users[*slot as usize] = UserId(id32(u));
            *slot += 1;
        }
    }
    (i_offsets, i_users)
}

/// Streaming builder: rows are pushed in `(user, item)` order (strictly
/// increasing items within a user, non-decreasing users) and the columns
/// are laid down directly — no intermediate `Vec<Interaction>`. This is
/// what lets the `huge` generator stream 10M rows without materializing
/// them twice.
#[derive(Debug)]
pub struct ColumnarBuilder {
    num_users: usize,
    num_items: usize,
    counts: Vec<u32>,
    items: Vec<ItemId>,
    ratings: Vec<f32>,
    timestamps: Vec<u64>,
    last: Option<(UserId, ItemId)>,
}

impl ColumnarBuilder {
    /// A builder for an `m × n` store.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        Self {
            num_users,
            num_items,
            counts: vec![0u32; num_users],
            items: Vec::new(),
            ratings: Vec::new(),
            timestamps: Vec::new(),
            last: None,
        }
    }

    /// Reserves capacity for `rows` upcoming pushes.
    pub fn reserve(&mut self, rows: usize) {
        self.items.reserve(rows);
        self.ratings.reserve(rows);
        self.timestamps.reserve(rows);
    }

    /// Appends one row. Rows must arrive sorted by `(user, item)` with no
    /// duplicates.
    ///
    /// # Panics
    /// Panics on out-of-range ids or out-of-order pushes.
    pub fn push(
        &mut self,
        user: UserId,
        item: ItemId,
        rating: Option<f32>,
        timestamp: Option<u64>,
    ) {
        self.push_existing(
            user,
            item,
            rating.unwrap_or(f32::NAN),
            timestamp.unwrap_or(NO_TIMESTAMP),
        );
    }

    /// [`Self::push`] for rows whose rating/timestamp are already in
    /// column form (`NaN` / [`NO_TIMESTAMP`] sentinels).
    fn push_existing(&mut self, user: UserId, item: ItemId, rating: f32, timestamp: u64) {
        assert!(user.index() < self.num_users, "builder user out of range");
        assert!(item.index() < self.num_items, "builder item out of range");
        if let Some((lu, li)) = self.last {
            assert!(
                (user.0, item.0) > (lu.0, li.0),
                "builder rows must be pushed in strict (user, item) order"
            );
        }
        self.last = Some((user, item));
        self.counts[user.index()] += 1;
        self.items.push(item);
        self.ratings.push(rating);
        self.timestamps.push(timestamp);
    }

    /// Internal alias used by [`ColumnarInteractions::append`].
    fn push_raw(
        &mut self,
        user: UserId,
        item: ItemId,
        rating: Option<f32>,
        timestamp: Option<u64>,
    ) {
        self.push(user, item, rating, timestamp);
    }

    /// Finalizes the columns and builds the item-major index.
    pub fn finish(self) -> ColumnarInteractions {
        let mut u_offsets = vec![0u32; self.num_users + 1];
        for (u, &c) in self.counts.iter().enumerate() {
            u_offsets[u + 1] = u_offsets[u] + c;
        }
        let (i_offsets, i_users) =
            build_item_index(self.num_users, self.num_items, &u_offsets, &self.items);
        ColumnarInteractions {
            num_users: self.num_users,
            num_items: self.num_items,
            u_offsets,
            items: self.items,
            ratings: self.ratings,
            timestamps: self.timestamps,
            i_offsets,
            i_users,
        }
    }
}

/// Minimal FNV-1a 64-bit hasher (dependency-free, deterministic).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Interaction> {
        vec![
            Interaction::implicit(UserId(0), ItemId(1)),
            Interaction::rated(UserId(0), ItemId(3), 5.0),
            Interaction::implicit(UserId(2), ItemId(1)),
            Interaction::implicit(UserId(2), ItemId(0)),
        ]
    }

    #[test]
    fn build_and_access() {
        let c = ColumnarInteractions::from_interactions(3, 4, &rows());
        assert_eq!(c.num_rows(), 4);
        assert_eq!(c.items_of(UserId(0)), &[ItemId(1), ItemId(3)]);
        assert_eq!(c.items_of(UserId(1)), &[] as &[ItemId]);
        assert_eq!(c.users_of(ItemId(1)), &[UserId(0), UserId(2)]);
        assert!(c.ratings_of(UserId(0))[0].is_nan());
        assert_eq!(c.ratings_of(UserId(0))[1], 5.0);
        assert_eq!(c.timestamps_of(UserId(0)), &[NO_TIMESTAMP, NO_TIMESTAMP]);
        assert!(c.contains(UserId(2), ItemId(0)));
        assert!(!c.contains(UserId(1), ItemId(0)));
    }

    #[test]
    fn first_occurrence_wins_dedup() {
        let c = ColumnarInteractions::from_interactions(
            1,
            2,
            &[
                Interaction::rated(UserId(0), ItemId(1), 1.0),
                Interaction::rated(UserId(0), ItemId(1), 5.0),
            ],
        );
        assert_eq!(c.num_rows(), 1);
        assert_eq!(c.ratings_of(UserId(0)), &[1.0]);
    }

    #[test]
    fn append_matches_one_shot_build() {
        let all = rows();
        let (first, second) = all.split_at(2);
        let one_shot = ColumnarInteractions::from_interactions(3, 4, &all);
        let grown = ColumnarInteractions::from_interactions(3, 4, first).append(second);
        assert_eq!(one_shot.digest(), grown.digest());
    }

    #[test]
    fn append_existing_rows_win() {
        let base = ColumnarInteractions::from_interactions(
            1,
            2,
            &[Interaction::rated(UserId(0), ItemId(0), 2.0)],
        );
        let grown = base.append(&[Interaction::rated(UserId(0), ItemId(0), 5.0)]);
        assert_eq!(grown.num_rows(), 1);
        assert_eq!(grown.ratings_of(UserId(0)), &[2.0]);
    }

    #[test]
    fn timestamps_carried() {
        let c = ColumnarInteractions::from_interactions(
            1,
            2,
            &[Interaction { user: UserId(0), item: ItemId(1), rating: None, timestamp: Some(42) }],
        );
        assert_eq!(c.timestamps_of(UserId(0)), &[42]);
    }

    #[test]
    fn validate_accepts_sound_store() {
        let c = ColumnarInteractions::from_interactions(3, 4, &rows());
        assert!(c.validate().is_empty());
    }

    #[test]
    fn validate_flags_corruption() {
        let mut c = ColumnarInteractions::from_interactions(3, 4, &rows());
        c.u_offsets[1] = 4;
        assert!(c
            .validate()
            .iter()
            .any(|v| matches!(v, ColumnarViolation::UserOffsetNotMonotone { index: 1 })));
        let mut c = ColumnarInteractions::from_interactions(3, 4, &rows());
        c.items[0] = ItemId(9);
        assert!(c
            .validate()
            .iter()
            .any(|v| matches!(v, ColumnarViolation::ItemOutOfRange { row: 0, .. })));
        let mut c = ColumnarInteractions::from_interactions(3, 4, &rows());
        c.i_users[1] = UserId(1);
        assert!(c
            .validate()
            .iter()
            .any(|v| matches!(v, ColumnarViolation::ItemIndexMismatch { .. })));
    }

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let a = ColumnarInteractions::from_interactions(3, 4, &rows());
        let b = ColumnarInteractions::from_interactions(3, 4, &rows());
        assert_eq!(a.digest(), b.digest());
        let c = ColumnarInteractions::from_interactions(
            3,
            4,
            &[Interaction::implicit(UserId(0), ItemId(1))],
        );
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    #[should_panic(expected = "strict (user, item) order")]
    fn builder_rejects_out_of_order_pushes() {
        let mut b = ColumnarBuilder::new(2, 2);
        b.push(UserId(1), ItemId(0), None, None);
        b.push(UserId(0), ItemId(0), None, None);
    }
}
