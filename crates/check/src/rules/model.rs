//! Model-metadata and configuration rules (`MD0xx`).

use crate::bundle::CheckBundle;
use crate::diagnostic::{Diagnostic, Severity, Subject};
use crate::rules::Rule;
use kgrec_core::taxonomy::table3;
use kgrec_data::dataset::{FRIEND_RELATION, INTERACT_RELATION};
use kgrec_models::registry::all_models;
use std::collections::BTreeSet;

/// `MD001`: the model registry agrees with the survey's Table 3.
///
/// Every non-baseline model's taxonomy row must name a Table 3 method,
/// and model names must be unique — the harness keys result tables by
/// them.
pub struct RegistryConsistency;

impl Rule for RegistryConsistency {
    fn code(&self) -> &'static str {
        "MD001"
    }

    fn summary(&self) -> &'static str {
        "registry taxonomy rows resolve against Table 3 and names are unique"
    }

    fn check(&self, _bundle: &CheckBundle<'_>) -> Vec<Diagnostic> {
        let table: BTreeSet<&str> = table3().iter().map(|t| t.method).collect();
        let models = all_models(true);
        let mut out = Vec::new();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for m in &models {
            let t = m.taxonomy();
            if t.venue != "baseline" && !table.contains(t.method) {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    Subject::Model(m.name().to_owned()),
                    format!("taxonomy method '{}' does not appear in Table 3", t.method),
                ));
            }
            if !seen.insert(m.name()) {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    Subject::Registry,
                    format!("duplicate model name '{}' in the registry", m.name()),
                ));
            }
        }
        out
    }
}

/// `MD002`: meta-path schemas resolve against the relation vocabulary.
///
/// Two checks: every explicitly supplied schema name must exist in the
/// user–item-graph vocabulary (item-KG relations plus `interact`,
/// `interact_inv`, and `friend` when social links are present), and every
/// base attribute relation must have its materialized inverse — without
/// it the canonical `U-interact-I-r-A-r_inv-I` path is unresolvable and
/// path-based models silently skip the relation.
pub struct MetaPathSchemas;

impl Rule for MetaPathSchemas {
    fn code(&self) -> &'static str {
        "MD002"
    }

    fn summary(&self) -> &'static str {
        "meta-path schemas resolve against the relation vocabulary"
    }

    fn check(&self, bundle: &CheckBundle<'_>) -> Vec<Diagnostic> {
        let ds = bundle.dataset;
        let g = &ds.graph;
        let mut vocab: BTreeSet<String> = (0..g.num_relations() as u32)
            .map(|r| g.relation_name(kgrec_graph::RelationId(r)).to_owned())
            .collect();
        vocab.insert(INTERACT_RELATION.to_owned());
        vocab.insert(format!("{INTERACT_RELATION}_inv"));
        if ds.social_links.is_some() {
            vocab.insert(FRIEND_RELATION.to_owned());
        }
        let mut out = Vec::new();
        for schema in &bundle.metapath_schemas {
            let rendered = schema.join("->");
            if schema.is_empty() {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    Subject::MetaPath(rendered.clone()),
                    "empty meta-path schema".to_owned(),
                ));
                continue;
            }
            for name in schema {
                if !vocab.contains(name) {
                    out.push(Diagnostic::new(
                        self.code(),
                        Severity::Error,
                        Subject::MetaPath(rendered.clone()),
                        format!("relation '{name}' not in the vocabulary"),
                    ));
                }
            }
        }
        // Canonical-path resolvability: each base relation needs its
        // inverse so HeteRec/FMG-style models can walk back to items.
        for r in 0..g.num_base_relations() as u32 {
            let name = g.relation_name(kgrec_graph::RelationId(r));
            if name == INTERACT_RELATION || name.ends_with("_inv") {
                continue;
            }
            let inv = format!("{name}_inv");
            if !vocab.contains(&inv) {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Warning,
                    Subject::Relation(r),
                    format!(
                        "relation '{name}' has no inverse '{inv}'; the canonical meta-path \
                         through it cannot return to items"
                    ),
                ));
            }
        }
        out
    }
}

/// Valid range for one known hyper-parameter: hard bounds (outside =
/// error) and a soft ceiling (above = warning).
struct ParamSpec {
    name: &'static str,
    hard_min: f64,
    hard_max: f64,
    soft_max: f64,
    /// Whether `hard_min` itself is excluded (e.g. learning rate > 0).
    exclusive_min: bool,
}

const PARAM_SPECS: &[ParamSpec] = &[
    ParamSpec {
        name: "dim",
        hard_min: 1.0,
        hard_max: 4096.0,
        soft_max: 512.0,
        exclusive_min: false,
    },
    ParamSpec { name: "hops", hard_min: 1.0, hard_max: 8.0, soft_max: 4.0, exclusive_min: false },
    ParamSpec {
        name: "neighbors",
        hard_min: 1.0,
        hard_max: 1024.0,
        soft_max: 128.0,
        exclusive_min: false,
    },
    ParamSpec {
        name: "memories_per_hop",
        hard_min: 1.0,
        hard_max: 4096.0,
        soft_max: 512.0,
        exclusive_min: false,
    },
    ParamSpec {
        name: "epochs",
        hard_min: 1.0,
        hard_max: 100_000.0,
        soft_max: 10_000.0,
        exclusive_min: false,
    },
    ParamSpec {
        name: "learning_rate",
        hard_min: 0.0,
        hard_max: 10.0,
        soft_max: 1.0,
        exclusive_min: true,
    },
    ParamSpec { name: "l2", hard_min: 0.0, hard_max: 1000.0, soft_max: 1.0, exclusive_min: false },
];

/// `MD003`: hop/dim-style hyper-parameters sit in valid ranges.
///
/// Hard violations (zero dimensions, zero hops, non-positive learning
/// rate, non-finite anything) are errors; implausibly large values are
/// warnings. Parameters with unknown names are ignored — the table only
/// covers semantics the checker understands.
pub struct HyperParamRanges;

impl Rule for HyperParamRanges {
    fn code(&self) -> &'static str {
        "MD003"
    }

    fn summary(&self) -> &'static str {
        "model hyper-parameters are finite and within plausible ranges"
    }

    fn check(&self, bundle: &CheckBundle<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for hp in &bundle.hyperparams {
            let subject = Subject::Param { model: hp.model.clone(), name: hp.name.clone() };
            if !hp.value.is_finite() {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    subject,
                    format!("value {} is not finite", hp.value),
                ));
                continue;
            }
            let Some(spec) = PARAM_SPECS.iter().find(|s| s.name == hp.name) else {
                continue;
            };
            let below =
                hp.value < spec.hard_min || (spec.exclusive_min && hp.value == spec.hard_min);
            if below || hp.value > spec.hard_max {
                let lo_bracket = if spec.exclusive_min { '(' } else { '[' };
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    subject,
                    format!(
                        "value {} outside valid range {lo_bracket}{}, {}]",
                        hp.value, spec.hard_min, spec.hard_max
                    ),
                ));
            } else if hp.value > spec.soft_max {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Warning,
                    subject,
                    format!("value {} above the plausible ceiling {}", hp.value, spec.soft_max),
                ));
            }
        }
        out
    }
}

/// Whether a hyper-parameter name denotes a learning rate (`MD005`).
///
/// Matches the canonical `learning_rate`, any decorated variant containing
/// it (`kg_learning_rate`), the bare `lr`, and `_lr`-suffixed names.
fn is_learning_rate_name(name: &str) -> bool {
    name.contains("learning_rate") || name == "lr" || name.ends_with("_lr")
}

/// `MD005`: learning-rate hyper-parameters are finite and positive.
///
/// Complements `MD003`, whose spec table only matches the exact name
/// `learning_rate`: models carry decorated variants (KGAT's
/// `kg_learning_rate`, `actor_lr`, …) that the table cannot enumerate. A
/// zero rate freezes training, a negative one ascends the loss, and a
/// non-finite one poisons every update — the static root causes the
/// training supervisor later sees as divergence or NaN losses.
pub struct LearningRateSanity;

impl Rule for LearningRateSanity {
    fn code(&self) -> &'static str {
        "MD005"
    }

    fn summary(&self) -> &'static str {
        "learning-rate hyper-parameters are finite and positive"
    }

    fn check(&self, bundle: &CheckBundle<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for hp in &bundle.hyperparams {
            if !is_learning_rate_name(&hp.name) {
                continue;
            }
            if !hp.value.is_finite() || hp.value <= 0.0 {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    Subject::Param { model: hp.model.clone(), name: hp.name.clone() },
                    format!(
                        "learning rate {} would freeze, invert or poison training; \
                         it must be finite and > 0",
                        hp.value
                    ),
                ));
            }
        }
        out
    }
}

/// `MD004`: attached float buffers contain only finite values.
///
/// The hook models and harnesses use after training: attach embedding
/// tables or score vectors to the bundle and a single NaN or infinity —
/// the classic symptom of a diverged learning rate — becomes a diagnostic
/// instead of a silently poisoned metric.
pub struct NonFiniteValues;

impl Rule for NonFiniteValues {
    fn code(&self) -> &'static str {
        "MD004"
    }

    fn summary(&self) -> &'static str {
        "audited float buffers (embeddings, scores) are finite"
    }

    fn check(&self, bundle: &CheckBundle<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for audit in &bundle.float_audits {
            let mut nan = 0usize;
            let mut inf = 0usize;
            let mut first = None;
            for (i, v) in audit.values.iter().enumerate() {
                if v.is_nan() {
                    nan += 1;
                    first.get_or_insert(i);
                } else if v.is_infinite() {
                    inf += 1;
                    first.get_or_insert(i);
                }
            }
            if nan + inf > 0 {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    Subject::Values(audit.label.to_owned()),
                    format!(
                        "{nan} NaN and {inf} infinite of {} values (first at index {})",
                        audit.values.len(),
                        first.unwrap_or(0)
                    ),
                ));
            }
        }
        out
    }
}
