//! The versioned binary snapshot format.
//!
//! Hand-rolled (no serde — the offline build vendors no such crate) and
//! deliberately simple enough to decode with a hex dump:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"KGRS"
//! 4       4     format version   (u32 LE, currently 1)
//! 8       2+n   model id         (u16 LE length + UTF-8 bytes)
//! ..      8     seed             (u64 LE)
//! ..      8     config hash      (u64 LE, FNV-1a of the model config)
//! ..      4     section count    (u32 LE)
//! ..      *     section table:   per section
//!                 u16 LE name length + UTF-8 name
//!                 u64 LE payload offset (relative to payload start)
//!                 u64 LE payload length
//!                 u32 LE CRC32 of the payload bytes
//! ..      *     payload          (concatenated section payloads)
//! ```
//!
//! All integers are little-endian. Floats are stored as raw `f32` LE bits,
//! so a save→load round trip is bit-exact — the foundation of the
//! save→load→score bit-identity property tests.
//!
//! Verification order on open: magic → version → structural decode →
//! per-section CRC. The version check precedes everything else so a future
//! format bump is reported as [`StoreError::UnsupportedVersion`] rather
//! than as a decoding artifact.

use crate::atomic::write_atomic;
use crate::crc::crc32;
use crate::error::StoreError;
use std::fs;
use std::path::Path;

/// Snapshot magic: "KGRS" (KGRec Snapshot).
pub const MAGIC: [u8; 4] = *b"KGRS";

/// Highest snapshot format version this build reads and the version it
/// writes.
pub const FORMAT_VERSION: u32 = 1;

/// Identity and provenance header carried by every snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Stable model identifier, e.g. `"kge.transe"`.
    pub model_id: String,
    /// RNG seed the persisted state was trained under.
    pub seed: u64,
    /// FNV-1a hash of the model configuration (see [`crate::config_hash`]).
    pub config_hash: u64,
}

/// A growable byte buffer for one named section's payload.
#[derive(Debug, Default)]
pub struct Section {
    bytes: Vec<u8>,
}

impl Section {
    /// Creates an empty section payload.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u32` (LE).
    pub fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (LE).
    pub fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as raw LE bits.
    pub fn put_f32(&mut self, v: f32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a slice of `f32`s as raw LE bits, without a length prefix.
    ///
    /// Callers record the shape separately (rows/dim) so the reader can
    /// validate it against the live model before copying anything.
    pub fn put_f32s(&mut self, vs: &[f32]) {
        self.bytes.reserve(vs.len() * 4);
        for &v in vs {
            self.bytes.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Payload length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Builds a snapshot: metadata plus an ordered list of named sections.
#[derive(Debug)]
pub struct SnapshotWriter {
    meta: SnapshotMeta,
    sections: Vec<(String, Section)>,
}

impl SnapshotWriter {
    /// Starts a snapshot for the given metadata header.
    #[must_use]
    pub fn new(meta: SnapshotMeta) -> Self {
        Self { meta, sections: Vec::new() }
    }

    /// Adds a named section. Names must be unique within a snapshot;
    /// duplicates would make [`SnapshotReader::section`] ambiguous, so the
    /// writer rejects them.
    ///
    /// # Errors
    /// [`StoreError::Manifest`] if `name` was already added.
    pub fn add(&mut self, name: &str, section: Section) -> Result<(), StoreError> {
        if self.sections.iter().any(|(n, _)| n == name) {
            return Err(StoreError::Manifest { detail: format!("duplicate section `{name}`") });
        }
        self.sections.push((name.to_string(), section));
        Ok(())
    }

    /// Serializes the snapshot to its on-disk byte representation.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut header = Vec::with_capacity(64);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        put_str(&mut header, &self.meta.model_id);
        header.extend_from_slice(&self.meta.seed.to_le_bytes());
        header.extend_from_slice(&self.meta.config_hash.to_le_bytes());
        let count = u32::try_from(self.sections.len()).unwrap_or(u32::MAX);
        header.extend_from_slice(&count.to_le_bytes());
        let mut offset: u64 = 0;
        for (name, section) in &self.sections {
            put_str(&mut header, name);
            header.extend_from_slice(&offset.to_le_bytes());
            header.extend_from_slice(&(section.bytes.len() as u64).to_le_bytes());
            header.extend_from_slice(&crc32(&section.bytes).to_le_bytes());
            offset += section.bytes.len() as u64;
        }
        let mut out = header;
        for (_, section) in &self.sections {
            out.extend_from_slice(&section.bytes);
        }
        out
    }

    /// Serializes and writes the snapshot atomically to `path`.
    ///
    /// # Errors
    /// Propagates [`StoreError::Io`] from the atomic writer.
    pub fn write_to(&self, path: &Path) -> Result<(), StoreError> {
        write_atomic(path, &self.to_bytes())
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).unwrap_or(u16::MAX);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

/// One decoded section-table entry.
#[derive(Debug)]
struct TocEntry {
    name: String,
    /// Absolute byte range of the payload within the file.
    start: usize,
    end: usize,
    crc: u32,
    /// Absolute offset of the stored CRC field itself (fault injection).
    crc_field_offset: usize,
}

/// A fully verified, in-memory snapshot ready for section reads.
#[derive(Debug)]
pub struct SnapshotReader {
    meta: SnapshotMeta,
    toc: Vec<TocEntry>,
    data: Vec<u8>,
}

impl SnapshotReader {
    /// Decodes and verifies a snapshot from raw bytes.
    ///
    /// Every section CRC is checked here, up front: a reader that got past
    /// this constructor can never hand out corrupted payload bytes.
    ///
    /// # Errors
    /// Any [`StoreError`] integrity variant, depending on which defense
    /// rejected the bytes.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, StoreError> {
        let (meta, toc) = parse_header(&data)?;
        for entry in &toc {
            let computed = crc32(&data[entry.start..entry.end]);
            if computed != entry.crc {
                return Err(StoreError::ChecksumMismatch {
                    section: entry.name.clone(),
                    stored: entry.crc,
                    computed,
                });
            }
        }
        Ok(Self { meta, toc, data })
    }

    /// Reads and verifies a snapshot file.
    ///
    /// # Errors
    /// [`StoreError::Io`] if the file cannot be read, otherwise any
    /// integrity error from [`Self::from_bytes`].
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let data =
            fs::read(path).map_err(|e| StoreError::io(format!("read {}", path.display()), e))?;
        Self::from_bytes(data)
    }

    /// The snapshot's identity header.
    #[must_use]
    pub fn meta(&self) -> &SnapshotMeta {
        &self.meta
    }

    /// Names of all sections, in file order.
    #[must_use]
    pub fn section_names(&self) -> Vec<&str> {
        self.toc.iter().map(|e| e.name.as_str()).collect()
    }

    /// Opens a cursor over a named section's payload.
    ///
    /// # Errors
    /// [`StoreError::MissingSection`] if no section has that name.
    pub fn section(&self, name: &str) -> Result<SectionCursor<'_>, StoreError> {
        let entry = self
            .toc
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| StoreError::MissingSection { name: name.to_string() })?;
        Ok(SectionCursor { name: &entry.name, bytes: &self.data[entry.start..entry.end], pos: 0 })
    }
}

/// Sequential reader over one section's payload.
///
/// Every `take_*` returns [`StoreError::Truncated`] on underrun instead of
/// panicking — a structurally valid snapshot with a short section must
/// reject cleanly, not crash the recovery path.
#[derive(Debug)]
pub struct SectionCursor<'a> {
    name: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl SectionCursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], StoreError> {
        if self.pos + n > self.bytes.len() {
            return Err(StoreError::Truncated {
                detail: format!(
                    "section `{}`: wanted {n} bytes at {}, have {}",
                    self.name,
                    self.pos,
                    self.bytes.len() - self.pos
                ),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u32` (LE).
    ///
    /// # Errors
    /// [`StoreError::Truncated`] on underrun.
    pub fn take_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` (LE).
    ///
    /// # Errors
    /// [`StoreError::Truncated`] on underrun.
    pub fn take_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f32` from raw LE bits.
    ///
    /// # Errors
    /// [`StoreError::Truncated`] on underrun.
    pub fn take_f32(&mut self) -> Result<f32, StoreError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads exactly `n` `f32`s into a fresh vector.
    ///
    /// # Errors
    /// [`StoreError::Truncated`] on underrun.
    pub fn take_f32s(&mut self, n: usize) -> Result<Vec<f32>, StoreError> {
        let raw = self.take(n * 4)?;
        let mut out = Vec::with_capacity(n);
        for chunk in raw.chunks_exact(4) {
            out.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        Ok(out)
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

fn parse_header(data: &[u8]) -> Result<(SnapshotMeta, Vec<TocEntry>), StoreError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize, what: &str| -> Result<usize, StoreError> {
        if *pos + n > data.len() {
            return Err(StoreError::Truncated { detail: format!("header: {what}") });
        }
        let at = *pos;
        *pos += n;
        Ok(at)
    };

    let at = take(&mut pos, 4, "magic")?;
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&data[at..at + 4]);
    if magic != MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let at = take(&mut pos, 4, "format version")?;
    let version = u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]]);
    if version > FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version, supported: FORMAT_VERSION });
    }
    let model_id = take_str(data, &mut pos, "model id")?;
    let at = take(&mut pos, 8, "seed")?;
    let seed = u64_at(data, at);
    let at = take(&mut pos, 8, "config hash")?;
    let config_hash = u64_at(data, at);
    let at = take(&mut pos, 4, "section count")?;
    let count = u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]]);
    // A snapshot holds a handful of sections; an absurd count means the
    // header bytes are garbage that happened to keep the magic intact.
    if count > 4096 {
        return Err(StoreError::Truncated {
            detail: format!("section count {count} is implausible"),
        });
    }

    let mut raw = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name = take_str(data, &mut pos, "section name")?;
        let at = take(&mut pos, 8, "section offset")?;
        let offset = u64_at(data, at);
        let at = take(&mut pos, 8, "section length")?;
        let len = u64_at(data, at);
        let at = take(&mut pos, 4, "section crc")?;
        let crc = u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]]);
        raw.push((name, offset, len, crc, at));
    }
    let payload_start = pos;
    let payload_len = data.len() - payload_start;

    let mut toc = Vec::with_capacity(raw.len());
    for (name, offset, len, crc, crc_field_offset) in raw {
        let end = offset.checked_add(len);
        let fits = end.is_some_and(|e| e <= payload_len as u64);
        if !fits {
            return Err(StoreError::Truncated {
                detail: format!(
                    "section `{name}`: range {offset}+{len} exceeds payload of {payload_len} bytes"
                ),
            });
        }
        let start = payload_start + offset as usize;
        toc.push(TocEntry { name, start, end: start + len as usize, crc, crc_field_offset });
    }
    Ok((SnapshotMeta { model_id, seed, config_hash }, toc))
}

fn u64_at(data: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(b)
}

fn take_str(data: &[u8], pos: &mut usize, what: &str) -> Result<String, StoreError> {
    if *pos + 2 > data.len() {
        return Err(StoreError::Truncated { detail: format!("header: {what} length") });
    }
    let len = u16::from_le_bytes([data[*pos], data[*pos + 1]]) as usize;
    *pos += 2;
    if *pos + len > data.len() {
        return Err(StoreError::Truncated { detail: format!("header: {what} bytes") });
    }
    let s = std::str::from_utf8(&data[*pos..*pos + len])
        .map_err(|_| StoreError::Truncated { detail: format!("header: {what} not UTF-8") })?
        .to_string();
    *pos += len;
    Ok(s)
}

/// Flips bits in the *stored* CRC of the first section, leaving the payload
/// intact. Used by [`crate::faults`] to exercise the checksum defense in
/// isolation from payload corruption.
pub(crate) fn corrupt_first_stored_crc(bytes: &mut [u8]) -> Result<(), StoreError> {
    let (_, toc) = parse_header(bytes)?;
    let entry = toc
        .first()
        .ok_or(StoreError::Truncated { detail: "no sections to corrupt".to_string() })?;
    bytes[entry.crc_field_offset] ^= 0xFF;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotWriter {
        let meta = SnapshotMeta {
            model_id: "kge.test".to_string(),
            seed: 42,
            config_hash: 0xDEAD_BEEF_CAFE_F00D,
        };
        let mut w = SnapshotWriter::new(meta);
        let mut s = Section::new();
        s.put_u64(3);
        s.put_f32s(&[1.0, -2.5, f32::MIN_POSITIVE]);
        w.add("weights", s).expect("add");
        let mut h = Section::new();
        h.put_f32(0.5);
        w.add("hyper", h).expect("add");
        w
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let bytes = sample().to_bytes();
        let r = SnapshotReader::from_bytes(bytes).expect("decode");
        assert_eq!(r.meta().model_id, "kge.test");
        assert_eq!(r.meta().seed, 42);
        assert_eq!(r.meta().config_hash, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(r.section_names(), vec!["weights", "hyper"]);
        let mut c = r.section("weights").expect("section");
        assert_eq!(c.take_u64().expect("n"), 3);
        let vs = c.take_f32s(3).expect("f32s");
        assert_eq!(vs[0].to_bits(), 1.0f32.to_bits());
        assert_eq!(vs[1].to_bits(), (-2.5f32).to_bits());
        assert_eq!(vs[2].to_bits(), f32::MIN_POSITIVE.to_bits());
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn duplicate_section_rejected() {
        let mut w = sample();
        let err = w.add("weights", Section::new()).expect_err("dup");
        assert!(matches!(err, StoreError::Manifest { .. }));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(SnapshotReader::from_bytes(bytes), Err(StoreError::BadMagic { .. })));
    }

    #[test]
    fn future_version_rejected_before_anything_else() {
        let mut bytes = sample().to_bytes();
        bytes[4..8].copy_from_slice(&999u32.to_le_bytes());
        assert!(matches!(
            SnapshotReader::from_bytes(bytes),
            Err(StoreError::UnsupportedVersion { found: 999, .. })
        ));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [3, 7, 10, bytes.len() / 2, bytes.len() - 1] {
            let short = bytes[..cut].to_vec();
            let err = SnapshotReader::from_bytes(short).expect_err("truncated must fail");
            assert!(
                matches!(err, StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. }),
                "cut at {cut}: unexpected {err}"
            );
        }
    }

    #[test]
    fn payload_bit_flip_rejected() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        assert!(matches!(
            SnapshotReader::from_bytes(bytes),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn stored_crc_corruption_rejected() {
        let mut bytes = sample().to_bytes();
        corrupt_first_stored_crc(&mut bytes).expect("corrupt");
        let err = SnapshotReader::from_bytes(bytes).expect_err("must fail");
        match err {
            StoreError::ChecksumMismatch { section, .. } => assert_eq!(section, "weights"),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn missing_section_reported() {
        let r = SnapshotReader::from_bytes(sample().to_bytes()).expect("decode");
        assert!(matches!(r.section("nope"), Err(StoreError::MissingSection { .. })));
    }

    #[test]
    fn cursor_underrun_is_an_error_not_a_panic() {
        let r = SnapshotReader::from_bytes(sample().to_bytes()).expect("decode");
        let mut c = r.section("hyper").expect("section");
        c.take_f32().expect("first f32");
        assert!(matches!(c.take_u64(), Err(StoreError::Truncated { .. })));
    }
}
