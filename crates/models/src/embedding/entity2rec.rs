//! entity2rec (Palumbo et al. 2017): property-specific entity relatedness.
//!
//! For every relation of the item KG, a property-specific entity
//! embedding is trained with meta-path-constrained random walks +
//! skip-gram (metapath2vec). A user–item pair is described by one
//! relatedness feature per property — cosine between the item and the
//! mean of the user's history in that property space — plus a
//! collaborative feature from walks over the user–item graph. A logistic
//! ranker learns the feature weights (the paper's learning-to-rank step,
//! simplified to pointwise logistic regression).

use crate::common::{sample_observed, taxonomy_of};
use kgrec_core::{CoreError, Recommender, Taxonomy, TrainContext};
use kgrec_data::negative::sample_negative;
use kgrec_data::{ItemId, UserId};
use kgrec_graph::{MetaPath, RelationId};
use kgrec_kge::metapath2vec::{metapath2vec, Metapath2VecConfig};
use kgrec_linalg::{vector, EmbeddingTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// entity2rec hyper-parameters.
#[derive(Debug, Clone)]
pub struct Entity2RecConfig {
    /// Skip-gram embedding dimension.
    pub dim: usize,
    /// Ranker training epochs.
    pub epochs: usize,
    /// Ranker learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Entity2RecConfig {
    fn default() -> Self {
        Self { dim: 16, epochs: 30, learning_rate: 0.1, seed: 43 }
    }
}

/// The entity2rec model.
#[derive(Debug)]
pub struct Entity2Rec {
    /// Hyper-parameters.
    pub config: Entity2RecConfig,
    /// One embedding space per property (relation).
    property_embeddings: Vec<EmbeddingTable>,
    /// Collaborative space over the user–item graph.
    collab: Option<EmbeddingTable>,
    collab_users: Vec<kgrec_graph::EntityId>,
    collab_items: Vec<kgrec_graph::EntityId>,
    alignment: Vec<kgrec_graph::EntityId>,
    histories: Vec<Vec<ItemId>>,
    weights: Vec<f32>,
    bias: f32,
    num_items: usize,
}

impl Entity2Rec {
    /// Creates an unfitted model.
    pub fn new(config: Entity2RecConfig) -> Self {
        Self {
            config,
            property_embeddings: Vec::new(),
            collab: None,
            collab_users: Vec::new(),
            collab_items: Vec::new(),
            alignment: Vec::new(),
            histories: Vec::new(),
            weights: Vec::new(),
            bias: 0.0,
            num_items: 0,
        }
    }

    /// Creates a model with default hyper-parameters.
    pub fn default_config() -> Self {
        Self::new(Entity2RecConfig::default())
    }

    /// The feature vector of a `(user, item)` pair: one property
    /// relatedness per relation plus the collaborative relatedness.
    fn features(&self, user: UserId, item: ItemId) -> Vec<f32> {
        let hist = &self.histories[user.index()];
        let mut out = Vec::with_capacity(self.property_embeddings.len() + 1);
        for table in &self.property_embeddings {
            if hist.is_empty() {
                out.push(0.0);
                continue;
            }
            let ids: Vec<usize> = hist.iter().map(|&i| self.alignment[i.index()].index()).collect();
            let profile = table.mean_of_rows(&ids);
            out.push(vector::cosine(&profile, table.row(self.alignment[item.index()].index())));
        }
        let collab = self.collab.as_ref().expect("Entity2Rec: fit before score");
        out.push(vector::cosine(
            collab.row(self.collab_users[user.index()].index()),
            collab.row(self.collab_items[item.index()].index()),
        ));
        out
    }
}

impl Recommender for Entity2Rec {
    fn name(&self) -> &'static str {
        "entity2rec"
    }

    fn taxonomy(&self) -> Taxonomy {
        taxonomy_of("entity2rec")
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        let graph = &ctx.dataset.graph;
        self.alignment = ctx.dataset.item_entities.clone();
        self.num_items = ctx.num_items();
        self.histories =
            (0..ctx.num_users()).map(|u| ctx.train.items_of(UserId(u as u32)).to_vec()).collect();
        // Property-specific spaces: walks constrained to r / r_inv hops.
        let base = graph.num_base_relations();
        let mp_cfg = Metapath2VecConfig {
            dim: self.config.dim,
            walks_per_entity: 3,
            walk_length: 6,
            window: 2,
            negatives: 2,
            learning_rate: 0.05,
            epochs: 2,
            seed: self.config.seed,
        };
        self.property_embeddings = (0..base)
            .map(|r| {
                let has_inv = graph.num_relations() >= 2 * base;
                let pattern = if has_inv {
                    MetaPath::new(vec![RelationId(r as u32), RelationId((r + base) as u32)])
                } else {
                    MetaPath::new(vec![RelationId(r as u32)])
                };
                metapath2vec(graph, Some(&pattern), &mp_cfg)
            })
            .collect();
        // Collaborative space over the user–item graph (unconstrained
        // walks; the interact edges dominate connectivity there).
        let uig = ctx.dataset.user_item_graph(ctx.train);
        let collab_cfg = Metapath2VecConfig { seed: self.config.seed.wrapping_add(1), ..mp_cfg };
        self.collab = Some(metapath2vec(&uig.graph, None, &collab_cfg));
        self.collab_users = uig.user_entities;
        self.collab_items = uig.item_entities;
        // Logistic ranker over the features.
        let n_feat = self.property_embeddings.len() + 1;
        self.weights = vec![0.0; n_feat];
        self.bias = 0.0;
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(2));
        let lr = self.config.learning_rate;
        for _ in 0..self.config.epochs {
            for _ in 0..ctx.train.num_interactions() {
                let Some((u, pos)) = sample_observed(ctx.train, &mut rng) else { break };
                let Some(neg) = sample_negative(ctx.train, u, &mut rng) else { continue };
                for (item, label) in [(pos, 1.0f32), (neg, 0.0)] {
                    let f = self.features(u, item);
                    let z = vector::dot(&self.weights, &f) + self.bias;
                    let dz = vector::sigmoid(z) - label;
                    for (w, x) in self.weights.iter_mut().zip(f.iter()) {
                        *w -= lr * dz * x;
                    }
                    self.bias -= lr * dz;
                }
            }
        }
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        vector::dot(&self.weights, &self.features(user, item)) + self.bias
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::protocol::evaluate_ctr;
    use kgrec_data::negative::labeled_eval_set;
    use kgrec_data::split::ratio_split;
    use kgrec_data::synth::{generate, ScenarioConfig};

    #[test]
    fn beats_chance_on_planted_data() {
        let synth = generate(&ScenarioConfig::tiny(), 42);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = Entity2Rec::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        let rep = evaluate_ctr(&m, &pairs);
        assert!(rep.auc > 0.6, "AUC {}", rep.auc);
    }

    #[test]
    fn feature_vector_has_one_slot_per_property_plus_collab() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = Entity2Rec::new(Entity2RecConfig { epochs: 1, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let f = m.features(UserId(0), ItemId(0));
        assert_eq!(f.len(), synth.dataset.graph.num_base_relations() + 1);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn empty_history_features_are_zero() {
        let synth = generate(&ScenarioConfig::tiny(), 2);
        let empty_train = kgrec_data::InteractionMatrix::from_interactions(
            synth.dataset.interactions.num_users(),
            synth.dataset.interactions.num_items(),
            &synth
                .dataset
                .interactions
                .iter()
                .filter(|(u, _, _)| u.0 != 0)
                .map(|(u, i, _)| kgrec_data::Interaction::implicit(u, i))
                .collect::<Vec<_>>(),
        );
        let mut m = Entity2Rec::new(Entity2RecConfig { epochs: 1, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &empty_train)).unwrap();
        let f = m.features(UserId(0), ItemId(0));
        // All property features are zero for an empty history; the
        // collaborative feature may still be nonzero via graph structure.
        for x in &f[..f.len() - 1] {
            assert_eq!(*x, 0.0);
        }
    }
}
