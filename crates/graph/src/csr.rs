//! Flat-array CSR adjacency: the million-entity storage layout.
//!
//! The predecessor layout stored out-edges as a `Vec<(RelationId,
//! EntityId)>` of tuples *and* kept a second full copy of every fact in a
//! `Vec<Triple>` — 20 bytes per triple plus `usize` offsets. This module
//! packs the same information into four parallel `u32` columns (structure
//! of arrays): `offsets` index the per-head edge ranges, and
//! `heads`/`rels`/`tails` hold the facts head-major sorted by
//! `(head, rel, tail)`. 12 bytes per triple, one copy, and neighbor
//! expansions that only need tails touch a third of the bytes the tuple
//! layout did.
//!
//! The layout is validated structurally by [`CsrAdjacency::validate`]
//! (the data half of the kglint `MD007` shard-integrity rule) and pinned
//! behaviorally to a pointer-based reference adjacency by the equivalence
//! proptests in `tests/proptest_csr.rs`.

use crate::ids::{id32, EntityId, RelationId, Triple};

/// Compressed-sparse-row adjacency over dense `u32` entity ids.
///
/// Immutable once built. Edge `i` is the fact
/// `⟨heads[i], rels[i], tails[i]⟩`; the edges of entity `e` occupy
/// `offsets[e] .. offsets[e+1]` and are sorted by `(rel, tail)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrAdjacency {
    /// Per-entity edge ranges, length `num_entities + 1`, monotone.
    offsets: Vec<u32>,
    /// Head column (redundant with `offsets` but gives O(1) fact lookup
    /// by edge index — the KGE trainers sample facts uniformly).
    heads: Vec<EntityId>,
    /// Relation column.
    rels: Vec<RelationId>,
    /// Tail column.
    tails: Vec<EntityId>,
}

/// One structural defect found by [`CsrAdjacency::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrViolation {
    /// `offsets` has the wrong length for the entity count.
    OffsetLength {
        /// Actual length of the offset array.
        got: usize,
        /// Expected length (`num_entities + 1`).
        want: usize,
    },
    /// `offsets[index] > offsets[index + 1]` — a negative-size range.
    OffsetNotMonotone {
        /// First index of the decreasing pair.
        index: usize,
    },
    /// The final offset does not equal the edge-column length.
    OffsetEndMismatch {
        /// `offsets[last]`.
        got: u32,
        /// Edge-column length.
        want: usize,
    },
    /// The three edge columns have differing lengths.
    ColumnLengthMismatch {
        /// `(heads, rels, tails)` lengths.
        lengths: (usize, usize, usize),
    },
    /// Edge `edge` stores a head inconsistent with the offset ranges.
    HeadMismatch {
        /// Offending edge index.
        edge: usize,
        /// The head recorded in the column.
        got: EntityId,
        /// The head implied by `offsets`.
        want: EntityId,
    },
    /// Edge `edge` points at a tail outside the entity id space.
    TailOutOfRange {
        /// Offending edge index.
        edge: usize,
        /// The out-of-range tail.
        tail: EntityId,
    },
    /// Edge `edge` carries a relation outside the relation id space.
    RelOutOfRange {
        /// Offending edge index.
        edge: usize,
        /// The out-of-range relation.
        rel: RelationId,
    },
}

impl std::fmt::Display for CsrViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrViolation::OffsetLength { got, want } => {
                write!(f, "offset array length {got}, want {want}")
            }
            CsrViolation::OffsetNotMonotone { index } => {
                write!(f, "offset array decreases at index {index}")
            }
            CsrViolation::OffsetEndMismatch { got, want } => {
                write!(f, "final offset {got} does not match edge count {want}")
            }
            CsrViolation::ColumnLengthMismatch { lengths } => {
                write!(
                    f,
                    "edge columns disagree: {} heads, {} rels, {} tails",
                    lengths.0, lengths.1, lengths.2
                )
            }
            CsrViolation::HeadMismatch { edge, got, want } => {
                write!(f, "edge {edge} records head {got} but lies in {want}'s range")
            }
            CsrViolation::TailOutOfRange { edge, tail } => {
                write!(f, "edge {edge} tail {tail} out of entity range")
            }
            CsrViolation::RelOutOfRange { edge, rel } => {
                write!(f, "edge {edge} relation {rel} out of relation range")
            }
        }
    }
}

impl CsrAdjacency {
    /// Builds the adjacency from triples already sorted by
    /// `(head, rel, tail)` via a counting pass over heads.
    ///
    /// # Panics
    /// Panics (debug assertion) when the input is not head-major sorted —
    /// callers own the sort so the build stays a single linear pass.
    pub fn from_sorted_triples(num_entities: usize, triples: &[Triple]) -> Self {
        debug_assert!(
            triples.windows(2).all(|w| (w[0].head.0, w[0].rel.0, w[0].tail.0)
                <= (w[1].head.0, w[1].rel.0, w[1].tail.0)),
            "CsrAdjacency::from_sorted_triples: input not sorted"
        );
        let mut offsets = vec![0u32; num_entities + 1];
        for t in triples {
            offsets[t.head.index() + 1] += 1;
        }
        for i in 0..num_entities {
            offsets[i + 1] += offsets[i];
        }
        let heads = triples.iter().map(|t| t.head).collect();
        let rels = triples.iter().map(|t| t.rel).collect();
        let tails = triples.iter().map(|t| t.tail).collect();
        Self { offsets, heads, rels, tails }
    }

    /// Assembles an adjacency from raw columns with **no validation**.
    ///
    /// Exists for the kglint `MD007` corrupted fixtures and for tests
    /// that need a structurally broken layout; production code goes
    /// through [`Self::from_sorted_triples`].
    pub fn from_raw_parts(
        offsets: Vec<u32>,
        heads: Vec<EntityId>,
        rels: Vec<RelationId>,
        tails: Vec<EntityId>,
    ) -> Self {
        Self { offsets, heads, rels, tails }
    }

    /// Number of entities this adjacency spans.
    pub fn num_entities(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of stored edges (facts).
    pub fn num_edges(&self) -> usize {
        self.tails.len()
    }

    /// Out-degree of entity `e`.
    #[inline]
    pub fn degree(&self, e: EntityId) -> usize {
        (self.offsets[e.index() + 1] - self.offsets[e.index()]) as usize
    }

    /// The edge-index range of entity `e`.
    #[inline]
    pub fn range(&self, e: EntityId) -> std::ops::Range<usize> {
        self.offsets[e.index()] as usize..self.offsets[e.index() + 1] as usize
    }

    /// Relation column slice of `e`'s out-edges.
    #[inline]
    pub fn rel_slice(&self, e: EntityId) -> &[RelationId] {
        &self.rels[self.range(e)]
    }

    /// Tail column slice of `e`'s out-edges.
    #[inline]
    pub fn tail_slice(&self, e: EntityId) -> &[EntityId] {
        &self.tails[self.range(e)]
    }

    /// The `k`-th out-edge of `e` as a `(relation, tail)` pair.
    #[inline]
    pub fn edge_at(&self, e: EntityId, k: usize) -> (RelationId, EntityId) {
        let i = self.offsets[e.index()] as usize + k;
        (self.rels[i], self.tails[i])
    }

    /// The fact stored at edge index `i` (head-major order).
    #[inline]
    pub fn triple_at(&self, i: usize) -> Triple {
        Triple::new(self.heads[i], self.rels[i], self.tails[i])
    }

    /// Iterates all facts in head-major sorted order.
    pub fn iter_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        (0..self.num_edges()).map(|i| self.triple_at(i))
    }

    /// Raw offset column (for integrity checks and bench accounting).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Heap bytes held by the four columns.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.num_edges() * 12
    }

    /// Structural integrity scan: monotone offsets, consistent column
    /// lengths, heads matching their offset range, tails/relations inside
    /// the given id spaces. Returns every defect found (empty = sound).
    pub fn validate(&self, num_entities: usize, num_relations: usize) -> Vec<CsrViolation> {
        let mut out = Vec::new();
        if self.offsets.len() != num_entities + 1 {
            out.push(CsrViolation::OffsetLength {
                got: self.offsets.len(),
                want: num_entities + 1,
            });
            return out; // ranges below would index out of bounds
        }
        for i in 0..num_entities {
            if self.offsets[i] > self.offsets[i + 1] {
                out.push(CsrViolation::OffsetNotMonotone { index: i });
            }
        }
        if !out.is_empty() {
            return out;
        }
        if self.heads.len() != self.rels.len() || self.rels.len() != self.tails.len() {
            out.push(CsrViolation::ColumnLengthMismatch {
                lengths: (self.heads.len(), self.rels.len(), self.tails.len()),
            });
            return out;
        }
        if self.offsets[num_entities] as usize != self.tails.len() {
            out.push(CsrViolation::OffsetEndMismatch {
                got: self.offsets[num_entities],
                want: self.tails.len(),
            });
            return out;
        }
        for e in 0..num_entities {
            let want = EntityId(id32(e));
            for i in self.range(want) {
                if self.heads[i] != want {
                    out.push(CsrViolation::HeadMismatch { edge: i, got: self.heads[i], want });
                }
                if self.tails[i].index() >= num_entities {
                    out.push(CsrViolation::TailOutOfRange { edge: i, tail: self.tails[i] });
                }
                if self.rels[i].index() >= num_relations {
                    out.push(CsrViolation::RelOutOfRange { edge: i, rel: self.rels[i] });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples() -> Vec<Triple> {
        vec![
            Triple::new(EntityId(0), RelationId(0), EntityId(1)),
            Triple::new(EntityId(0), RelationId(1), EntityId(2)),
            Triple::new(EntityId(2), RelationId(0), EntityId(0)),
        ]
    }

    #[test]
    fn build_and_access() {
        let a = CsrAdjacency::from_sorted_triples(3, &triples());
        assert_eq!(a.num_entities(), 3);
        assert_eq!(a.num_edges(), 3);
        assert_eq!(a.degree(EntityId(0)), 2);
        assert_eq!(a.degree(EntityId(1)), 0);
        assert_eq!(a.tail_slice(EntityId(0)), &[EntityId(1), EntityId(2)]);
        assert_eq!(a.rel_slice(EntityId(0)), &[RelationId(0), RelationId(1)]);
        assert_eq!(a.edge_at(EntityId(2), 0), (RelationId(0), EntityId(0)));
        assert_eq!(a.triple_at(1), triples()[1]);
        assert_eq!(a.iter_triples().collect::<Vec<_>>(), triples());
    }

    #[test]
    fn validate_accepts_sound_layout() {
        let a = CsrAdjacency::from_sorted_triples(3, &triples());
        assert!(a.validate(3, 2).is_empty());
    }

    #[test]
    fn validate_flags_nonmonotone_offsets() {
        let mut a = CsrAdjacency::from_sorted_triples(3, &triples());
        a.offsets[1] = 3;
        let v = a.validate(3, 2);
        assert!(v.iter().any(|v| matches!(v, CsrViolation::OffsetNotMonotone { index: 1 })));
    }

    #[test]
    fn validate_flags_out_of_range_tail() {
        let mut a = CsrAdjacency::from_sorted_triples(3, &triples());
        a.tails[2] = EntityId(9);
        let v = a.validate(3, 2);
        assert!(v
            .iter()
            .any(|v| matches!(v, CsrViolation::TailOutOfRange { edge: 2, tail: EntityId(9) })));
    }

    #[test]
    fn validate_flags_head_mismatch() {
        let mut a = CsrAdjacency::from_sorted_triples(3, &triples());
        a.heads[0] = EntityId(2);
        let v = a.validate(3, 2);
        assert!(v.iter().any(|v| matches!(v, CsrViolation::HeadMismatch { edge: 0, .. })));
    }

    #[test]
    fn memory_accounting_counts_columns() {
        let a = CsrAdjacency::from_sorted_triples(3, &triples());
        assert_eq!(a.memory_bytes(), 4 * 4 + 3 * 12);
    }
}
