//! AKUPM-lite (Tang et al. 2019): attention-enhanced knowledge-aware
//! user preference modeling.
//!
//! Like RippleNet, the user is modeled from the multi-hop ripple sets of
//! their click history; AKUPM's distinguishing ingredients are (a)
//! TransR-pretrained entity representations and (b) *self-attention* over
//! the ripple tails — here a candidate-conditioned bilinear attention
//! `p_i = softmax(t_iᵀ·W·v)` — aggregated per hop and summed into the
//! user vector. Scored with `σ(uᵀv)` and trained end-to-end (entities,
//! `W`) with hand-derived gradients.

use crate::common::{sample_observed, taxonomy_of};
use kgrec_core::{CoreError, Recommender, Taxonomy, TrainContext};
use kgrec_data::negative::sample_negative;
use kgrec_data::{ItemId, UserId};
use kgrec_graph::ripple::{ripple_sets, RippleSets};
use kgrec_graph::EntityId;
use kgrec_kge::{train as kge_train, TrainConfig, TransR};
use kgrec_linalg::{vector, EmbeddingTable, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// AKUPM-lite hyper-parameters.
#[derive(Debug, Clone)]
pub struct AkupmLiteConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Hops.
    pub hops: usize,
    /// Ripple memories per hop.
    pub memories_per_hop: usize,
    /// TransR pre-training epochs.
    pub kge_epochs: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AkupmLiteConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            hops: 2,
            memories_per_hop: 16,
            kge_epochs: 10,
            epochs: 15,
            learning_rate: 0.03,
            seed: 101,
        }
    }
}

/// The AKUPM-lite model.
#[derive(Debug)]
pub struct AkupmLite {
    /// Hyper-parameters.
    pub config: AkupmLiteConfig,
    entities: EmbeddingTable,
    attention: Matrix,
    ripples: Vec<RippleSets>,
    alignment: Vec<EntityId>,
}

impl AkupmLite {
    /// Creates an unfitted model.
    pub fn new(config: AkupmLiteConfig) -> Self {
        Self {
            config,
            entities: EmbeddingTable::zeros(0, 1),
            attention: Matrix::zeros(0, 0),
            ripples: Vec::new(),
            alignment: Vec::new(),
        }
    }

    /// Creates a model with default hyper-parameters.
    pub fn default_config() -> Self {
        Self::new(AkupmLiteConfig::default())
    }

    /// Forward: user vector and score for a candidate.
    /// Returns `(z, per-hop attention, user_vec, Wv)`.
    fn forward(&self, user: UserId, item: ItemId) -> (f32, Vec<Vec<f32>>, Vec<f32>, Vec<f32>) {
        let d = self.config.dim;
        let v = self.entities.row(self.alignment[item.index()].index()).to_vec();
        let wv = self.attention.matvec(&v);
        let sets = &self.ripples[user.index()];
        let mut user_vec = vec![0.0f32; d];
        let mut probs = Vec::with_capacity(self.config.hops);
        for k in 0..self.config.hops {
            let hop = sets.hop(k);
            if hop.is_empty() {
                probs.push(Vec::new());
                continue;
            }
            let mut scores: Vec<f32> =
                hop.iter().map(|t| vector::dot(self.entities.row(t.tail.index()), &wv)).collect();
            vector::softmax_in_place(&mut scores);
            for (p, t) in scores.iter().zip(hop.iter()) {
                vector::axpy(*p, self.entities.row(t.tail.index()), &mut user_vec);
            }
            probs.push(scores);
        }
        let z = vector::dot(&user_vec, &v);
        (z, probs, user_vec, wv)
    }

    /// One BCE SGD step.
    fn step(&mut self, user: UserId, item: ItemId, label: f32, lr: f32) {
        let (z, probs, user_vec, wv) = self.forward(user, item);
        let dz = vector::sigmoid(z) - label;
        let item_ent = self.alignment[item.index()];
        let v = self.entities.row(item_ent.index()).to_vec();
        let sets = self.ripples[user.index()].clone();
        // dL/du = dz·v ; dL/dv gets dz·u plus attention terms.
        let du: Vec<f32> = v.iter().map(|x| dz * x).collect();
        let mut dv: Vec<f32> = user_vec.iter().map(|x| dz * x).collect();
        let mut dwv = vec![0.0f32; v.len()];
        for k in 0..self.config.hops {
            let hop = sets.hop(k);
            if hop.is_empty() {
                continue;
            }
            let p = &probs[k];
            // u += Σ p_i t_i: dL/dp_i = du·t_i; dL/dt_i += p_i·du.
            let mut dl_dp = Vec::with_capacity(hop.len());
            for (i, t) in hop.iter().enumerate() {
                dl_dp.push(vector::dot(&du, self.entities.row(t.tail.index())));
                let scaled: Vec<f32> = du.iter().map(|x| p[i] * x).collect();
                self.entities.add_to_row(t.tail.index(), -lr, &scaled);
            }
            let ds = vector::softmax_backward(p, &dl_dp);
            // s_i = t_iᵀ (W v): ∂/∂t = Wv; ∂/∂(Wv) = t.
            for (i, t) in hop.iter().enumerate() {
                let scaled: Vec<f32> = wv.iter().map(|x| ds[i] * x).collect();
                self.entities.add_to_row(t.tail.index(), -lr, &scaled);
                vector::axpy(ds[i], self.entities.row(t.tail.index()), &mut dwv);
            }
        }
        // Wv chain: dL/dW = dwv·vᵀ ; dL/dv += Wᵀ·dwv.
        let dv_att = self.attention.matvec_t(&dwv);
        vector::axpy(1.0, &dv_att, &mut dv);
        self.attention.rank1_update(-lr, &dwv, &v);
        self.entities.add_to_row(item_ent.index(), -lr, &dv);
        // Norm constraints: entities stay in the unit ball (the TransR
        // invariant they were initialized under) and the attention
        // matrix's Frobenius norm stays bounded — without these the
        // mutually-reinforcing updates diverge on larger datasets.
        vector::project_to_ball(self.entities.row_mut(item_ent.index()), 1.0);
        for t in sets.all_triples() {
            vector::project_to_ball(self.entities.row_mut(t.tail.index()), 1.0);
        }
        let bound = 2.0 * (self.attention.rows() as f32).sqrt();
        let norm = self.attention.frobenius_norm();
        if norm > bound {
            let ratio = bound / norm;
            for x in self.attention.data_mut().iter_mut() {
                *x *= ratio;
            }
        }
    }
}

impl Recommender for AkupmLite {
    fn name(&self) -> &'static str {
        "AKUPM"
    }

    fn fit_epochs(&self) -> usize {
        self.config.epochs
    }

    fn taxonomy(&self) -> Taxonomy {
        taxonomy_of("AKUPM")
    }

    fn prepare_retry(&mut self, attempt: u32) -> bool {
        self.config.learning_rate *= 0.5;
        self.config.seed = self.config.seed.wrapping_add(u64::from(attempt)).wrapping_mul(31);
        true
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d = self.config.dim;
        let graph = &ctx.dataset.graph;
        // TransR pre-training for the entity representations.
        let mut kge =
            TransR::new(&mut rng, graph.num_entities(), graph.num_relations().max(1), d, d, 1.0);
        if graph.num_triples() > 0 {
            kge_train(
                &mut kge,
                graph,
                &TrainConfig {
                    epochs: self.config.kge_epochs,
                    learning_rate: 0.03,
                    seed: self.config.seed.wrapping_add(1),
                    threads: None,
                },
            );
        }
        self.entities = kge.entities().clone();
        self.attention = Matrix::identity(d);
        self.alignment = ctx.dataset.item_entities.clone();
        self.ripples = (0..ctx.num_users())
            .map(|u| {
                let seeds: Vec<EntityId> = ctx
                    .train
                    .items_of(UserId(u as u32))
                    .iter()
                    .map(|&i| self.alignment[i.index()])
                    .collect();
                ripple_sets(
                    graph,
                    &seeds,
                    self.config.hops,
                    self.config.memories_per_hop,
                    true,
                    &mut rng,
                )
            })
            .collect();
        let lr = self.config.learning_rate;
        for _ in 0..self.config.epochs {
            for _ in 0..ctx.train.num_interactions() {
                let Some((u, pos)) = sample_observed(ctx.train, &mut rng) else { break };
                self.step(u, pos, 1.0, lr);
                if let Some(neg) = sample_negative(ctx.train, u, &mut rng) {
                    self.step(u, neg, 0.0, lr);
                }
            }
        }
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.forward(user, item).0
    }

    fn num_items(&self) -> usize {
        self.alignment.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::protocol::evaluate_ctr;
    use kgrec_data::negative::labeled_eval_set;
    use kgrec_data::split::ratio_split;
    use kgrec_data::synth::{generate, ScenarioConfig};

    #[test]
    fn beats_chance_on_planted_data() {
        let synth = generate(&ScenarioConfig::tiny(), 42);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = AkupmLite::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        let rep = evaluate_ctr(&m, &pairs);
        assert!(rep.auc > 0.6, "AUC {}", rep.auc);
    }

    #[test]
    fn attention_per_hop_is_distribution() {
        let synth = generate(&ScenarioConfig::tiny(), 3);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = AkupmLite::new(AkupmLiteConfig { epochs: 1, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let (_, probs, _, _) = m.forward(UserId(0), ItemId(0));
        for p in &probs {
            if !p.is_empty() {
                let s: f32 = p.iter().sum();
                assert!((s - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn entities_initialized_from_transr() {
        // With zero training epochs the entity table must equal the
        // TransR pre-trained table (not a fresh random one).
        let synth = generate(&ScenarioConfig::tiny(), 4);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = AkupmLite::new(AkupmLiteConfig { epochs: 0, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        // TransR rows are ball-projected; sanity-check the invariant.
        for i in 0..m.entities.len() {
            assert!(vector::norm(m.entities.row(i)) <= 1.0 + 1e-4);
        }
    }
}
