//! Crash-safe versioned model persistence for the kgrec workspace.
//!
//! ROADMAP item 1 (online serving) is blocked on "versioned save/load of
//! embedding tables and model state". This crate provides that layer with
//! zero external dependencies, consistent with the vendored-offline build:
//!
//! * [`snapshot`] — a hand-rolled binary snapshot format: magic + format
//!   version + model id + seed + config hash header, a section table, and a
//!   CRC32 checksum per section. No serde.
//! * [`atomic`] — atomic file replacement (temp file + fsync + rename +
//!   parent-directory fsync) so a crash mid-write never leaves a torn file
//!   where a reader expects a snapshot.
//! * [`persist`] — the [`Persistable`] trait every checkpointable model
//!   implements, plus save/load entry points.
//! * [`checkpoint`] — a generation-numbered checkpoint directory with a
//!   manifest, a last-good pointer, and retention.
//! * [`faults`] — a deterministic storage-fault injector in the spirit of
//!   `kgrec_data::faults`, used by the recovery-matrix tests and the
//!   `eval_suite` / `crash_drill` storage drills.
//!
//! The recovery contract: a corrupted artifact must *reject cleanly* (an
//! error, never a panic and never silently loaded garbage), and recovery
//! falls back generation by generation to the most recent artifact that
//! still verifies, then to fresh training.

pub mod atomic;
pub mod checkpoint;
pub mod crc;
pub mod error;
pub mod faults;
pub mod persist;
pub mod snapshot;

pub use checkpoint::{
    CheckpointStore, GenerationInfo, Recovery, LAST_GOOD_FILE, MANIFEST_FILE, SNAPSHOT_FILE,
};
pub use error::StoreError;
pub use faults::{inject_storage, StorageFault};
pub use persist::{load_snapshot, save_snapshot, Persistable};
pub use snapshot::{Section, SectionCursor, SnapshotMeta, SnapshotReader, SnapshotWriter};

/// FNV-1a 64-bit hash of a byte string.
///
/// Used to fingerprint model configurations inside snapshot headers; the
/// exact function matters less than it being stable across runs and builds,
/// which a hand-rolled FNV guarantees (`DefaultHasher` does not).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes a list of config fragments into a single snapshot config hash.
///
/// Fragments are joined with an unambiguous separator before hashing so
/// `["ab", "c"]` and `["a", "bc"]` produce different fingerprints.
#[must_use]
pub fn config_hash(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        h = fnv1a_continue(h, part.as_bytes());
        h = fnv1a_continue(h, &[0x1f]);
    }
    h
}

fn fnv1a_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Reference values for FNV-1a 64 from the FNV specification.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn config_hash_is_separator_sensitive() {
        assert_ne!(config_hash(&["ab", "c"]), config_hash(&["a", "bc"]));
        assert_ne!(config_hash(&["ab"]), config_hash(&["ab", ""]));
        assert_eq!(config_hash(&["x", "y"]), config_hash(&["x", "y"]));
    }
}
