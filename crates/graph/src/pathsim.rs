//! PathSim meta-path similarity (Sun et al., survey Eq. 12).
//!
//! `s(x, y) = 2·|p_{x⇝y}| / (|p_{x⇝x}| + |p_{y⇝y}|)` where the paths follow
//! a *symmetric* meta-path (one ending at the type it starts from, e.g.
//! movie → genre → movie). The path-based recommenders use PathSim both as
//! a regularizer (Hete-MF/Hete-CF) and to diffuse the interaction matrix
//! (HeteRec).

use crate::graph::KnowledgeGraph;
use crate::ids::{id32, EntityId};
use crate::metapath::MetaPath;

/// A sparse, row-indexed similarity matrix over a fixed entity list.
///
/// `rows[i]` holds `(j, sim)` pairs — positions refer to the entity list
/// the matrix was computed over, not global entity ids, so the matrix can
/// be used directly to index item latent-factor tables.
#[derive(Debug, Clone)]
pub struct SimilarityMatrix {
    entities: Vec<EntityId>,
    rows: Vec<Vec<(u32, f32)>>,
}

impl SimilarityMatrix {
    /// The entity list the matrix is defined over.
    pub fn entities(&self) -> &[EntityId] {
        &self.entities
    }

    /// Number of rows (== entities).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sparse row `i`: `(column, similarity)` pairs sorted by column.
    pub fn row(&self, i: usize) -> &[(u32, f32)] {
        &self.rows[i]
    }

    /// Similarity between positions `i` and `j` (0.0 when absent).
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.rows[i].binary_search_by_key(&id32(j), |&(c, _)| c).map_or(0.0, |k| self.rows[i][k].1)
    }

    /// Total number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Keeps only the `k` strongest similarities per row (ties toward
    /// smaller column indices), preserving the sorted-by-column layout.
    pub fn truncate_rows(&mut self, k: usize) {
        for row in &mut self.rows {
            if row.len() <= k {
                continue;
            }
            row.sort_by(|a, b| {
                b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
            });
            row.truncate(k);
            row.sort_by_key(|&(c, _)| c);
        }
    }
}

/// Computes the PathSim matrix over `entities` for a symmetric `metapath`.
///
/// Self-similarities (`s(x,x) = 1` by construction) are *not* stored.
/// Pairs with zero connecting paths are not stored either. Entities with no
/// self-walks (unreachable under the meta-path) get empty rows.
pub fn pathsim_matrix(
    graph: &KnowledgeGraph,
    entities: &[EntityId],
    metapath: &MetaPath,
) -> SimilarityMatrix {
    // Position lookup: global entity id -> position in `entities`.
    let mut pos = vec![u32::MAX; graph.num_entities()];
    for (i, e) in entities.iter().enumerate() {
        pos[e.index()] = id32(i);
    }
    // Walk counts from every listed entity.
    let counts: Vec<Vec<(EntityId, f64)>> =
        entities.iter().map(|&e| metapath.walk_counts(graph, e)).collect();
    // Self-counts |p_{x⇝x}|.
    let self_counts: Vec<f64> = entities
        .iter()
        .zip(counts.iter())
        .map(|(&e, row)| row.binary_search_by_key(&e.0, |&(t, _)| t.0).map_or(0.0, |k| row[k].1))
        .collect();
    let mut rows = Vec::with_capacity(entities.len());
    for (i, row) in counts.iter().enumerate() {
        let mut out = Vec::new();
        for &(t, c) in row {
            let j = pos[t.index()];
            if j == u32::MAX || j as usize == i {
                continue;
            }
            let denom = self_counts[i] + self_counts[j as usize];
            if denom > 0.0 && c > 0.0 {
                out.push((j, (2.0 * c / denom) as f32));
            }
        }
        out.sort_by_key(|&(c, _)| c);
        rows.push(out);
    }
    SimilarityMatrix { entities: entities.to_vec(), rows }
}

/// PathSim between two specific entities under `metapath`.
pub fn pathsim_pair(graph: &KnowledgeGraph, x: EntityId, y: EntityId, metapath: &MetaPath) -> f32 {
    let cx = metapath.walk_counts(graph, x);
    let get = |row: &[(EntityId, f64)], e: EntityId| {
        row.binary_search_by_key(&e.0, |&(t, _)| t.0).map_or(0.0, |k| row[k].1)
    };
    let xy = get(&cx, y);
    if xy == 0.0 {
        return 0.0;
    }
    let xx = get(&cx, x);
    let cy = metapath.walk_counts(graph, y);
    let yy = get(&cy, y);
    let denom = xx + yy;
    if denom == 0.0 {
        0.0
    } else {
        (2.0 * xy / denom) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KgBuilder;

    /// m1,m2 share genre g1; m3 has g2; m4 shares both g1 and g2 with none.
    fn toy() -> (KnowledgeGraph, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let tm = b.entity_type("movie");
        let tg = b.entity_type("genre");
        let m1 = b.entity("m1", tm);
        let m2 = b.entity("m2", tm);
        let m3 = b.entity("m3", tm);
        let g1 = b.entity("g1", tg);
        let g2 = b.entity("g2", tg);
        let r = b.relation("genre");
        b.triple(m1, r, g1);
        b.triple(m2, r, g1);
        b.triple(m2, r, g2);
        b.triple(m3, r, g2);
        let g = b.build(true);
        let movies = vec![m1, m2, m3];
        (g, movies)
    }

    fn mgm(g: &KnowledgeGraph) -> MetaPath {
        MetaPath::from_names(g, &["genre", "genre_inv"]).unwrap()
    }

    #[test]
    fn pathsim_symmetric() {
        let (g, movies) = toy();
        let m = pathsim_matrix(&g, &movies, &mgm(&g));
        for i in 0..movies.len() {
            for j in 0..movies.len() {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-6, "i={i} j={j}");
            }
        }
    }

    #[test]
    fn pathsim_in_unit_interval() {
        let (g, movies) = toy();
        let m = pathsim_matrix(&g, &movies, &mgm(&g));
        for i in 0..m.len() {
            for &(_, s) in m.row(i) {
                assert!((0.0..=1.0).contains(&s), "s={s}");
            }
        }
    }

    #[test]
    fn pathsim_known_values() {
        let (g, movies) = toy();
        let m = pathsim_matrix(&g, &movies, &mgm(&g));
        // m1: self-count 1; m2: self-count 2 (two genres); shared paths m1-m2: 1.
        // s(m1,m2) = 2*1/(1+2) = 2/3.
        assert!((m.get(0, 1) - 2.0 / 3.0).abs() < 1e-6);
        // m1 and m3 share nothing.
        assert_eq!(m.get(0, 2), 0.0);
        // m2 and m3 share g2: s = 2*1/(2+1) = 2/3.
        assert!((m.get(1, 2) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn pathsim_pair_matches_matrix() {
        let (g, movies) = toy();
        let m = pathsim_matrix(&g, &movies, &mgm(&g));
        let p = mgm(&g);
        for i in 0..movies.len() {
            for j in 0..movies.len() {
                if i == j {
                    continue;
                }
                let pair = pathsim_pair(&g, movies[i], movies[j], &p);
                assert!((pair - m.get(i, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn self_similarity_not_stored() {
        let (g, movies) = toy();
        let m = pathsim_matrix(&g, &movies, &mgm(&g));
        for i in 0..m.len() {
            assert!(m.row(i).iter().all(|&(j, _)| j as usize != i));
        }
    }

    #[test]
    fn isolated_entity_empty_row() {
        let mut b = KgBuilder::new();
        let tm = b.entity_type("movie");
        let tg = b.entity_type("genre");
        let m1 = b.entity("m1", tm);
        let m2 = b.entity("m2", tm);
        let g1 = b.entity("g1", tg);
        let r = b.relation("genre");
        b.triple(m1, r, g1);
        let g = b.build(true);
        let p = MetaPath::from_names(&g, &["genre", "genre_inv"]).unwrap();
        let m = pathsim_matrix(&g, &[m1, m2], &p);
        assert!(m.row(1).is_empty());
        assert_eq!(m.nnz(), 0);
    }
}
