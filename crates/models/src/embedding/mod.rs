//! Embedding-based methods (survey Section 4.1): KGE-derived
//! representations enrich the user/item latent vectors.

mod cfkg;
mod cke;
mod dkn;
mod entity2rec;
mod kge_rec;
mod ktup;
mod mkr;
mod rcf;
mod shine;

pub use cfkg::{Cfkg, CfkgConfig};
pub use cke::{Cke, CkeConfig};
pub use dkn::{DknConfig, DknLite};
pub use entity2rec::{Entity2Rec, Entity2RecConfig};
pub use kge_rec::{KgeBackend, KgeRecommender, KgeRecommenderConfig};
pub use ktup::{Ktup, KtupConfig};
pub use mkr::{Mkr, MkrConfig};
pub use rcf::{Rcf, RcfConfig};
pub use shine::{Shine, ShineConfig};
