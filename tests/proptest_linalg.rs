//! Property-based tests for the linear-algebra substrate.

use kgrec_linalg::rnn::RnnCell;
use kgrec_linalg::{vector, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn softmax_is_distribution(xs in prop::collection::vec(-50.0f32..50.0, 1..20)) {
        let p = vector::softmax(&xs);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum={}", sum);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_shift_invariant(xs in prop::collection::vec(-20.0f32..20.0, 1..10), c in -50.0f32..50.0) {
        let a = vector::softmax(&xs);
        let shifted: Vec<f32> = xs.iter().map(|x| x + c).collect();
        let b = vector::softmax(&shifted);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn dot_is_bilinear(a in arb_vec(6), b in arb_vec(6), c in arb_vec(6), s in -5.0f32..5.0) {
        // dot(a + s·b, c) = dot(a, c) + s·dot(b, c)
        let lhs_vec: Vec<f32> = a.iter().zip(b.iter()).map(|(x, y)| x + s * y).collect();
        let lhs = vector::dot(&lhs_vec, &c);
        let rhs = vector::dot(&a, &c) + s * vector::dot(&b, &c);
        prop_assert!((lhs - rhs).abs() < 1e-2, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn normalize_produces_unit_or_zero(mut xs in arb_vec(8)) {
        vector::normalize(&mut xs);
        let n = vector::norm(&xs);
        prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-4, "norm={}", n);
    }

    #[test]
    fn project_to_ball_never_grows(xs in arb_vec(8), r in 0.1f32..5.0) {
        let before = vector::norm(&xs);
        let mut ys = xs.clone();
        vector::project_to_ball(&mut ys, r);
        let after = vector::norm(&ys);
        prop_assert!(after <= r + 1e-4);
        prop_assert!(after <= before + 1e-4);
    }

    #[test]
    fn matvec_linearity(data in prop::collection::vec(-5.0f32..5.0, 12), x in arb_vec(4), y in arb_vec(4)) {
        let m = Matrix::from_vec(3, 4, data);
        let sum: Vec<f32> = x.iter().zip(y.iter()).map(|(a, b)| a + b).collect();
        let lhs = m.matvec(&sum);
        let rx = m.matvec(&x);
        let ry = m.matvec(&y);
        for i in 0..3 {
            prop_assert!((lhs[i] - (rx[i] + ry[i])).abs() < 1e-2);
        }
    }

    #[test]
    fn matvec_t_is_adjoint(data in prop::collection::vec(-5.0f32..5.0, 12), x in arb_vec(4), y in arb_vec(3)) {
        // ⟨A·x, y⟩ = ⟨x, Aᵀ·y⟩
        let m = Matrix::from_vec(3, 4, data);
        let lhs = vector::dot(&m.matvec(&x), &y);
        let rhs = vector::dot(&x, &m.matvec_t(&y));
        prop_assert!((lhs - rhs).abs() < 1e-1 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn sigmoid_and_log_sigmoid_consistent(x in -30.0f32..30.0) {
        let s = vector::sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
        // σ(x) + σ(−x) = 1
        prop_assert!((s + vector::sigmoid(-x) - 1.0).abs() < 1e-5);
        // log σ(x) ≤ 0
        prop_assert!(vector::log_sigmoid(x) <= 1e-7);
    }

    #[test]
    fn rnn_bptt_matches_finite_difference(seed in 0u64..500, len in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cell = RnnCell::new(&mut rng, 2, 3);
        let seq: Vec<Vec<f32>> = (0..len)
            .map(|i| vec![((seed + i as u64) % 7) as f32 * 0.1 - 0.3, 0.2])
            .collect();
        let trace = cell.forward(&seq);
        let dl = vec![1.0f32; 3];
        let dinputs = cell.backward(&trace, &dl);
        let eps = 1e-3;
        for t in 0..seq.len() {
            for i in 0..2 {
                let mut sp = seq.clone();
                sp[t][i] += eps;
                let mut sm = seq.clone();
                sm[t][i] -= eps;
                let lp: f32 = cell.forward(&sp).final_hidden().iter().sum();
                let lm: f32 = cell.forward(&sm).final_hidden().iter().sum();
                let fd = (lp - lm) / (2.0 * eps);
                prop_assert!((dinputs[t][i] - fd).abs() < 2e-2,
                    "t={} i={} an={} fd={}", t, i, dinputs[t][i], fd);
            }
        }
    }

    #[test]
    fn top_k_indices_sorted_by_value(xs in prop::collection::vec(-100.0f32..100.0, 1..30), k in 1usize..10) {
        let idx = vector::top_k_indices(&xs, k);
        prop_assert_eq!(idx.len(), k.min(xs.len()));
        for w in idx.windows(2) {
            prop_assert!(xs[w[0]] >= xs[w[1]]);
        }
    }
}
