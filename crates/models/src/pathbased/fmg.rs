//! FMG-lite (Zhao et al. 2017): meta-graph based recommendation fusion.
//!
//! Each meta-graph's diffused interaction matrix is factorized; the
//! per-meta-graph latent products `û^(l) ⊙ v̂^(l)` are concatenated into a
//! feature vector, and a second-order **factorization machine** fuses
//! them (the paper's "MF + FM" pipeline). Meta-graphs are represented as
//! weighted unions of meta-paths (see `kgrec_graph::MetaGraph`): the
//! single-path graphs plus one fused all-attributes graph, whose
//! commuting counts a single path cannot express.

use crate::common::{sample_observed, taxonomy_of};
use crate::pathbased::util::{canonical_metapaths, item_of_entity};
use kgrec_core::{CoreError, Recommender, Taxonomy, TrainContext};
use kgrec_data::negative::sample_negative;
use kgrec_data::{ItemId, UserId};
use kgrec_graph::MetaGraph;
use kgrec_linalg::{vector, EmbeddingTable, Matrix};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// FMG-lite hyper-parameters.
#[derive(Debug, Clone)]
pub struct FmgLiteConfig {
    /// MF rank per meta-graph.
    pub rank: usize,
    /// MF epochs.
    pub mf_epochs: usize,
    /// FM training epochs.
    pub fm_epochs: usize,
    /// FM pairwise factor dimension.
    pub fm_factors: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FmgLiteConfig {
    fn default() -> Self {
        Self { rank: 8, mf_epochs: 20, fm_epochs: 15, fm_factors: 4, learning_rate: 0.05, seed: 67 }
    }
}

#[derive(Debug)]
struct GraphFactors {
    users: EmbeddingTable,
    items: EmbeddingTable,
}

/// The FMG-lite model.
#[derive(Debug)]
pub struct FmgLite {
    /// Hyper-parameters.
    pub config: FmgLiteConfig,
    factors: Vec<GraphFactors>,
    /// FM parameters over the `L·rank` feature vector.
    w0: f32,
    w: Vec<f32>,
    v: Matrix,
    num_items: usize,
}

impl FmgLite {
    /// Creates an unfitted model.
    pub fn new(config: FmgLiteConfig) -> Self {
        Self {
            config,
            factors: Vec::new(),
            w0: 0.0,
            w: Vec::new(),
            v: Matrix::zeros(0, 0),
            num_items: 0,
        }
    }

    /// Creates a model with default hyper-parameters.
    pub fn default_config() -> Self {
        Self::new(FmgLiteConfig::default())
    }

    /// Feature vector `x_{u,i} = ⊕_l (û_l ⊙ v̂_l)`.
    fn features(&self, user: UserId, item: ItemId) -> Vec<f32> {
        let mut x = Vec::with_capacity(self.factors.len() * self.config.rank);
        for f in &self.factors {
            x.extend(vector::hadamard(f.users.row(user.index()), f.items.row(item.index())));
        }
        x
    }

    /// FM forward with the O(n·f) sum trick. Returns `(ŷ, per-factor
    /// sums S_f)` for reuse in the backward pass.
    fn fm_forward(&self, x: &[f32]) -> (f32, Vec<f32>) {
        let f_dim = self.config.fm_factors;
        let mut y = self.w0 + vector::dot(&self.w, x);
        let mut sums = vec![0.0f32; f_dim];
        for f in 0..f_dim {
            let mut s = 0.0f32;
            let mut s2 = 0.0f32;
            for (i, &xi) in x.iter().enumerate() {
                let vif = self.v.get(i, f);
                s += vif * xi;
                s2 += vif * vif * xi * xi;
            }
            sums[f] = s;
            y += 0.5 * (s * s - s2);
        }
        (y, sums)
    }
}

impl Recommender for FmgLite {
    fn name(&self) -> &'static str {
        "FMG"
    }

    fn taxonomy(&self) -> Taxonomy {
        taxonomy_of("FMG")
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.num_items = ctx.num_items();
        let uig = ctx.dataset.user_item_graph(ctx.train);
        let metapaths = canonical_metapaths(&uig);
        let item_map = item_of_entity(&uig);
        // Meta-graphs: each single path, plus the fused attribute graph.
        let mut metagraphs: Vec<MetaGraph> =
            metapaths.iter().map(|p| MetaGraph::new(vec![p.clone()])).collect();
        if metapaths.len() > 2 {
            metagraphs.push(MetaGraph::new(metapaths[1..].to_vec()));
        }
        // Per-meta-graph diffusion + plain MF.
        let rank = self.config.rank;
        let lr = self.config.learning_rate;
        let scale = 1.0 / (rank as f32).sqrt();
        self.factors = metagraphs
            .iter()
            .map(|mg| {
                let mut users = EmbeddingTable::uniform(&mut rng, ctx.num_users(), rank, scale);
                let mut items = EmbeddingTable::uniform(&mut rng, ctx.num_items(), rank, scale);
                // Diffused rows.
                let rows: Vec<Vec<(u32, f32)>> = (0..ctx.num_users())
                    .map(|u| {
                        let src = uig.user_entities[u];
                        let mut acc: Vec<(u32, f64)> = mg
                            .walk_counts(&uig.graph, src)
                            .into_iter()
                            .filter_map(|(e, c)| item_map[e.index()].map(|it| (it.0, c)))
                            .collect();
                        acc.sort_by_key(|&(i, _)| i);
                        // Max-normalize (see HeteRec: sum-normalized
                        // targets collapse the factorization).
                        let peak: f64 = acc.iter().map(|&(_, c)| c).fold(0.0, f64::max);
                        if peak > 0.0 {
                            acc.into_iter().map(|(i, c)| (i, (c / peak) as f32)).collect()
                        } else {
                            Vec::new()
                        }
                    })
                    .collect();
                for _ in 0..self.config.mf_epochs {
                    for (u, row) in rows.iter().enumerate() {
                        for &(i, target) in row {
                            mf_step(&mut users, &mut items, u, i as usize, target, lr);
                        }
                        for _ in 0..row.len().max(1) {
                            let i = rng.gen_range(0..ctx.num_items());
                            if row.binary_search_by_key(&(i as u32), |&(j, _)| j).is_err() {
                                mf_step(&mut users, &mut items, u, i, 0.0, lr);
                            }
                        }
                    }
                }
                GraphFactors { users, items }
            })
            .collect();
        // FM over the fused features.
        let n_feat = self.factors.len() * rank;
        self.w0 = 0.0;
        self.w = vec![0.0; n_feat];
        let mut v = Matrix::zeros(n_feat, self.config.fm_factors);
        kgrec_linalg::init::gaussian(&mut rng, v.data_mut(), 0.0, 0.01);
        self.v = v;
        for _ in 0..self.config.fm_epochs {
            for _ in 0..ctx.train.num_interactions() {
                let Some((u, pos)) = sample_observed(ctx.train, &mut rng) else { break };
                let neg = sample_negative(ctx.train, u, &mut rng);
                for (item, label) in [(Some(pos), 1.0f32), (neg, 0.0)]
                    .into_iter()
                    .filter_map(|(i, y)| i.map(|i| (i, y)))
                {
                    let x = self.features(u, item);
                    let (y, sums) = self.fm_forward(&x);
                    let dz = vector::sigmoid(y) - label;
                    self.w0 -= lr * dz;
                    for i in 0..n_feat {
                        self.w[i] -= lr * dz * x[i];
                        for f in 0..self.config.fm_factors {
                            // dŷ/dv_if = x_i (S_f − v_if x_i)
                            let vif = self.v.get(i, f);
                            let grad = x[i] * (sums[f] - vif * x[i]);
                            self.v.set(i, f, vif - lr * dz * grad);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.fm_forward(&self.features(user, item)).0
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

fn mf_step(
    users: &mut EmbeddingTable,
    items: &mut EmbeddingTable,
    u: usize,
    i: usize,
    target: f32,
    lr: f32,
) {
    let uv = users.row(u).to_vec();
    let iv = items.row(i).to_vec();
    let err = vector::dot(&uv, &iv) - target;
    let urow = users.row_mut(u);
    for k in 0..urow.len() {
        urow[k] -= lr * 2.0 * err * iv[k];
    }
    let irow = items.row_mut(i);
    for k in 0..irow.len() {
        irow[k] -= lr * 2.0 * err * uv[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::protocol::evaluate_ctr;
    use kgrec_data::negative::labeled_eval_set;
    use kgrec_data::split::ratio_split;
    use kgrec_data::synth::{generate, ScenarioConfig};
    use kgrec_linalg::gradcheck;

    #[test]
    fn beats_chance_on_planted_data() {
        let synth = generate(&ScenarioConfig::tiny(), 42);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = FmgLite::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        let rep = evaluate_ctr(&m, &pairs);
        assert!(rep.auc > 0.6, "AUC {}", rep.auc);
    }

    #[test]
    fn fm_gradient_matches_finite_difference() {
        let mut m = FmgLite::new(FmgLiteConfig { fm_factors: 3, ..Default::default() });
        let n = 5;
        m.w0 = 0.1;
        m.w = vec![0.2, -0.1, 0.3, 0.0, 0.15];
        let mut v = Matrix::zeros(n, 3);
        let mut rng = StdRng::seed_from_u64(2);
        kgrec_linalg::init::gaussian(&mut rng, v.data_mut(), 0.0, 0.3);
        m.v = v;
        let x = vec![0.5f32, -0.3, 0.8, 0.2, -0.6];
        let (_, sums) = m.fm_forward(&x);
        // Analytic dŷ/dv_{i,f}.
        for i in 0..n {
            for f in 0..3 {
                let vif = m.v.get(i, f);
                let analytic = x[i] * (sums[f] - vif * x[i]);
                let mut params = vec![vif];
                let m2 = &m;
                gradcheck::assert_gradient(&mut params, &[analytic], 1e-3, 1e-2, |p| {
                    let mut mm = FmgLite::new(m2.config.clone());
                    mm.w0 = m2.w0;
                    mm.w = m2.w.clone();
                    mm.v = m2.v.clone();
                    mm.v.set(i, f, p[0]);
                    mm.fm_forward(&x).0
                });
            }
        }
    }

    #[test]
    fn fused_metagraph_added_for_multi_relation_kgs() {
        let synth = generate(&ScenarioConfig::tiny(), 3);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m =
            FmgLite::new(FmgLiteConfig { mf_epochs: 2, fm_epochs: 1, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        // tiny: collaborative + genre + maker single paths + fused = 4.
        assert_eq!(m.factors.len(), 4);
    }
}
