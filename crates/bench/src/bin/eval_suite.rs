//! The cross-method evaluation suite: measures the survey's qualitative
//! claims on the synthetic dataset family.
//!
//! Claims checked (survey Sections 4 and 6):
//!
//! 1. KG side information improves over KG-free CF, and the gap widens
//!    under sparsity (the data-sparsity/cold-start motivation of §1);
//! 2. unified methods are at or above the best embedding-based and
//!    path-based methods (§4.3's "fully exploit information" argument);
//! 3. path-based and unified methods expose reasoning paths (checked by
//!    the figure1/explanation machinery, reported here as coverage).
//!
//! Every model trains under the supervisor, so a panicking or diverging
//! model becomes a `failed` row in the outcome table instead of killing
//! the run.
//!
//! Usage:
//! `cargo run --release -p kgrec-bench --bin eval_suite -- [--quick]
//! [--inject-fault[=<label>]]`
//!
//! `--inject-fault` is the graceful-degradation drill: it appends the
//! deliberately broken models of [`kgrec_bench::doubles`] to the roster
//! and, when a label is given (e.g. `--inject-fault=nan-ratings`, see
//! [`kgrec_data::Fault`]), also corrupts every scenario bundle with that
//! dataset fault before splitting. The suite must still finish all
//! scenarios and report the casualties in the outcome summary.

use kgrec_bench::doubles::{NanBot, PanicBot, RecoverBot};
use kgrec_bench::{
    evaluate_model_supervised, outcome_counts, preflight_check, preflight_report, print_eval_table,
    print_outcome_summary, standard_split, EvalRow, ModelReport,
};
use kgrec_core::{Recommender, SupervisorConfig};
use kgrec_data::synth::{generate, ScenarioConfig};
use kgrec_data::Fault;
use kgrec_models::registry::all_models;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let inject = args.iter().any(|a| a == "--inject-fault" || a.starts_with("--inject-fault="));
    let fault: Option<Fault> = args.iter().find_map(|a| {
        a.strip_prefix("--inject-fault=").map(|label| match Fault::from_label(label) {
            Some(f) => f,
            None => {
                let known: Vec<&str> = Fault::all().iter().map(Fault::label).collect();
                panic!("unknown fault label {label:?}; known labels: {}", known.join(", "));
            }
        })
    });
    if inject {
        // The drill provokes panics on purpose; keep the default hook's
        // backtrace spam out of the report.
        std::panic::set_hook(Box::new(|_| {}));
        match fault {
            Some(f) => println!("fault drill: broken models + dataset fault `{f}`"),
            None => println!("fault drill: broken models on an otherwise clean bundle"),
        }
    }
    let scenarios: Vec<(ScenarioConfig, bool)> = if quick {
        vec![
            (ScenarioConfig::tiny(), false),
            (ScenarioConfig::tiny().with_sparsity_factor(0.3), false),
        ]
    } else {
        vec![
            (ScenarioConfig::movielens_100k_like(), false),
            (ScenarioConfig::movielens_100k_like().with_sparsity_factor(0.25), false),
            (ScenarioConfig::book_crossing_like(), false),
            (ScenarioConfig::lastfm_like(), false),
            (ScenarioConfig::bing_news_like(), true),
        ]
    };
    let supervisor = SupervisorConfig::default();
    let mut summaries = Vec::new();
    let mut totals = [0usize; 4];
    for (cfg, with_text) in &scenarios {
        let mut synth = generate(cfg, 2024);
        if let Some(f) = fault {
            kgrec_data::inject(&mut synth.dataset, f);
        }
        let split = standard_split(&synth, 7);
        if inject {
            // A corrupted bundle is the point of the drill: report what
            // kglint sees and push on into the supervised evaluation.
            preflight_report(&synth, &split);
        } else {
            preflight_check(&synth, &split);
        }
        println!(
            "\nscenario {}: {} users, {} items, {} interactions, {} KG triples",
            cfg.name,
            cfg.num_users,
            cfg.num_items,
            synth.dataset.interactions.num_interactions(),
            synth.dataset.graph.num_triples()
        );
        let mut roster: Vec<Box<dyn Recommender>> = all_models(*with_text);
        if inject {
            roster.push(Box::new(PanicBot));
            roster.push(Box::new(NanBot::default()));
            roster.push(Box::new(RecoverBot::new(1)));
        }
        let mut reports: Vec<ModelReport> = Vec::new();
        for mut model in roster {
            let report = evaluate_model_supervised(model.as_mut(), &synth, &split, 11, &supervisor);
            match &report.row {
                Some(row) => println!("  done: {} (AUC {:.4})", row.model, row.auc),
                None => println!(
                    "  FAILED: {} ({})",
                    report.model,
                    report.outcome.reason.as_deref().unwrap_or("no reason recorded")
                ),
            }
            reports.push(report);
        }
        let rows: Vec<EvalRow> = reports.iter().filter_map(|r| r.row.clone()).collect();
        print_eval_table(&cfg.name, &rows);
        print_outcome_summary(&cfg.name, &reports);
        let counts = outcome_counts(&reports);
        for (t, c) in totals.iter_mut().zip(counts) {
            *t += c;
        }
        summaries.push((cfg.name.clone(), rows));
    }
    // --- Claim checks ---
    println!("\n== Claim checks ==");
    for (name, rows) in &summaries {
        let best = |filter: &dyn Fn(&&EvalRow) -> bool| {
            rows.iter().filter(filter).map(|r| r.auc).fold(f64::NAN, f64::max)
        };
        let best_baseline = best(&|r| r.family == "baseline");
        let best_kg = best(&|r| r.family != "baseline");
        let best_unified = best(&|r| r.family == "Uni.");
        println!(
            "{name}: best baseline AUC {best_baseline:.4} | best KG-aware {best_kg:.4} | \
             best unified {best_unified:.4} | KG-aware wins: {}",
            best_kg > best_baseline
        );
    }
    let [ok, retried, degraded, failed] = totals;
    println!(
        "\n== Suite outcome: {ok} ok | {retried} retried | {degraded} degraded | {failed} failed \
         across {} scenarios ==",
        scenarios.len()
    );
    if inject && failed == 0 {
        panic!("fault drill expected at least one failed outcome — injection is broken");
    }
}
