//! Dense identifier newtypes and the triple type.
//!
//! Following the notation of Table 2 of the survey: entities `e_k`,
//! relations `r_k`, and facts `⟨e_h, r, e_t⟩`. Ids are dense `u32`s so the
//! rest of the workspace can index `Vec`s and embedding tables directly.

/// Identifier of an entity (node) in a [`crate::KnowledgeGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

/// Identifier of a relation type (edge label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(pub u32);

/// Identifier of an entity *type* (the `A` of the HIN schema `(A, R)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityTypeId(pub u32);

impl EntityId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelationId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EntityTypeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for RelationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Checked narrowing of a `usize` index into the dense `u32` id space.
///
/// Every id in the workspace is a `u32`; a raw `as u32` on an index
/// past 4 billion would silently wrap and alias two different
/// users/items/entities — the kind of corruption no test notices until
/// metrics drift. This helper panics on overflow instead. The `SA005`
/// source rule (`kglint --src`) flags raw narrowing casts in the
/// id-space crates and demands this.
#[inline]
pub fn id32(index: usize) -> u32 {
    u32::try_from(index).expect("id space exceeds u32")
}

/// One fact `⟨head, relation, tail⟩` of the knowledge graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Head entity `e_h`.
    pub head: EntityId,
    /// Relation `r`.
    pub rel: RelationId,
    /// Tail entity `e_t`.
    pub tail: EntityId,
}

impl Triple {
    /// Convenience constructor.
    pub fn new(head: EntityId, rel: RelationId, tail: EntityId) -> Self {
        Self { head, rel, tail }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_index_roundtrip() {
        assert_eq!(EntityId(7).index(), 7);
        assert_eq!(RelationId(3).index(), 3);
        assert_eq!(EntityTypeId(2).index(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(EntityId(1).to_string(), "e1");
        assert_eq!(RelationId(4).to_string(), "r4");
    }

    #[test]
    fn id32_narrows_in_range_values() {
        assert_eq!(id32(0), 0);
        assert_eq!(id32(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "id space exceeds u32")]
    fn id32_panics_instead_of_truncating() {
        let _ = id32(u32::MAX as usize + 1);
    }

    #[test]
    fn triple_equality() {
        let t = Triple::new(EntityId(1), RelationId(2), EntityId(3));
        assert_eq!(t, Triple { head: EntityId(1), rel: RelationId(2), tail: EntityId(3) });
    }
}
