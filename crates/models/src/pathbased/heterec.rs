//! HeteRec / HeteRec-p (Yu et al. 2013/2014): diffused preference
//! factorization over meta-paths.
//!
//! Per meta-path `l`, the interaction matrix is diffused —
//! `R̃^(l) = R·S^(l)`, realized as walk counts from each user's entity
//! along the path — then factorized with non-negative MF (survey Eq. 16).
//! The final score combines the per-path predictions with learned weights
//! `θ_l` (Eq. 17). HeteRec-p personalizes the weights by clustering users
//! (Eq. 18) — implemented as k-means on the users' diffused profiles with
//! per-cluster weights mixed by cosine to the centroids.

use crate::common::{sample_observed, taxonomy_of};
use crate::pathbased::util::{canonical_metapaths, item_of_entity};
use kgrec_core::{CoreError, Recommender, Taxonomy, TrainContext};
use kgrec_data::negative::sample_negative;
use kgrec_data::{ItemId, UserId};
use kgrec_linalg::{vector, EmbeddingTable};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// HeteRec hyper-parameters (shared by HeteRec-p).
#[derive(Debug, Clone)]
pub struct HeteRecConfig {
    /// NMF rank per meta-path.
    pub rank: usize,
    /// NMF epochs.
    pub nmf_epochs: usize,
    /// Weight-learning epochs.
    pub weight_epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Number of user clusters (HeteRec-p only).
    pub clusters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HeteRecConfig {
    fn default() -> Self {
        Self {
            rank: 8,
            nmf_epochs: 25,
            weight_epochs: 15,
            learning_rate: 0.05,
            clusters: 4,
            seed: 59,
        }
    }
}

/// Per-path factorization state.
#[derive(Debug)]
struct PathFactors {
    users: EmbeddingTable,
    items: EmbeddingTable,
}

impl PathFactors {
    fn predict(&self, u: usize, i: usize) -> f32 {
        self.users.row_dot(u, &self.items, i)
    }
}

/// Shared fit: diffuse, factorize, return per-path factors.
fn fit_path_factors(
    ctx: &TrainContext<'_>,
    config: &HeteRecConfig,
    rng: &mut StdRng,
) -> Vec<PathFactors> {
    let uig = ctx.dataset.user_item_graph(ctx.train);
    let metapaths = canonical_metapaths(&uig);
    let item_map = item_of_entity(&uig);
    let mut out = Vec::with_capacity(metapaths.len());
    for mp in &metapaths {
        // Diffused preference rows: row-normalized walk counts to items.
        let mut rows: Vec<Vec<(u32, f32)>> = Vec::with_capacity(ctx.num_users());
        for u in 0..ctx.num_users() {
            let src = uig.user_entities[u];
            let mut acc: Vec<(u32, f64)> = mp
                .walk_counts(&uig.graph, src)
                .into_iter()
                .filter_map(|(e, c)| item_map[e.index()].map(|it| (it.0, c)))
                .collect();
            acc.sort_by_key(|&(i, _)| i);
            // Max-normalize: the strongest diffusion target becomes 1.
            // (Sum-normalizing makes every target ~1/reachable-items,
            // which collapses the non-negative factorization to zero.)
            let peak: f64 = acc.iter().map(|&(_, c)| c).fold(0.0, f64::max);
            rows.push(if peak > 0.0 {
                acc.into_iter().map(|(i, c)| (i, (c / peak) as f32)).collect()
            } else {
                Vec::new()
            });
        }
        // Non-negative factorization by projected SGD on the nonzeros
        // plus sampled zeros (survey Eq. 16's argmin with U,V ≥ 0).
        let scale = 1.0 / (config.rank as f32).sqrt();
        let mut users = EmbeddingTable::uniform(rng, ctx.num_users(), config.rank, scale);
        let mut items = EmbeddingTable::uniform(rng, ctx.num_items(), config.rank, scale);
        // Shift to non-negative start.
        for v in users.data_mut().iter_mut() {
            *v = v.abs();
        }
        for v in items.data_mut().iter_mut() {
            *v = v.abs();
        }
        let lr = config.learning_rate;
        for _ in 0..config.nmf_epochs {
            for (u, row) in rows.iter().enumerate() {
                for &(i, target) in row {
                    nmf_step(&mut users, &mut items, u, i as usize, target, lr);
                }
                // One sampled zero per nonzero keeps the factors from
                // collapsing to all-positive predictions.
                for _ in 0..row.len().max(1) {
                    let i = rng.gen_range(0..ctx.num_items());
                    if row.binary_search_by_key(&(i as u32), |&(j, _)| j).is_err() {
                        nmf_step(&mut users, &mut items, u, i, 0.0, lr);
                    }
                }
            }
        }
        out.push(PathFactors { users, items });
    }
    out
}

fn nmf_step(
    users: &mut EmbeddingTable,
    items: &mut EmbeddingTable,
    u: usize,
    i: usize,
    target: f32,
    lr: f32,
) {
    let uv = users.row(u).to_vec();
    let iv = items.row(i).to_vec();
    let err = vector::dot(&uv, &iv) - target;
    let urow = users.row_mut(u);
    for k in 0..urow.len() {
        urow[k] = (urow[k] - lr * 2.0 * err * iv[k]).max(0.0);
    }
    let irow = items.row_mut(i);
    for k in 0..irow.len() {
        irow[k] = (irow[k] - lr * 2.0 * err * uv[k]).max(0.0);
    }
}

/// Learns global path weights `θ` with BPR over the per-path predictions.
fn learn_weights(
    ctx: &TrainContext<'_>,
    factors: &[PathFactors],
    config: &HeteRecConfig,
    rng: &mut StdRng,
) -> Vec<f32> {
    let mut theta = vec![1.0f32 / factors.len().max(1) as f32; factors.len()];
    let lr = config.learning_rate;
    for _ in 0..config.weight_epochs {
        for _ in 0..ctx.train.num_interactions() {
            let Some((u, pos)) = sample_observed(ctx.train, rng) else { break };
            let Some(neg) = sample_negative(ctx.train, u, rng) else { continue };
            let fp: Vec<f32> = factors.iter().map(|f| f.predict(u.index(), pos.index())).collect();
            let fn_: Vec<f32> = factors.iter().map(|f| f.predict(u.index(), neg.index())).collect();
            let x = vector::dot(&theta, &fp) - vector::dot(&theta, &fn_);
            let g = -vector::sigmoid(-x);
            for l in 0..theta.len() {
                theta[l] -= lr * g * (fp[l] - fn_[l]);
            }
        }
    }
    theta
}

/// The HeteRec model (global weights, survey Eq. 17).
#[derive(Debug)]
pub struct HeteRec {
    /// Hyper-parameters.
    pub config: HeteRecConfig,
    factors: Vec<PathFactors>,
    theta: Vec<f32>,
    num_items: usize,
}

impl HeteRec {
    /// Creates an unfitted model.
    pub fn new(config: HeteRecConfig) -> Self {
        Self { config, factors: Vec::new(), theta: Vec::new(), num_items: 0 }
    }

    /// Creates a model with default hyper-parameters.
    pub fn default_config() -> Self {
        Self::new(HeteRecConfig::default())
    }

    /// The learned path weights (after `fit`).
    pub fn path_weights(&self) -> &[f32] {
        &self.theta
    }
}

impl Recommender for HeteRec {
    fn name(&self) -> &'static str {
        "HeteRec"
    }

    fn taxonomy(&self) -> Taxonomy {
        taxonomy_of("HeteRec")
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.num_items = ctx.num_items();
        self.factors = fit_path_factors(ctx, &self.config, &mut rng);
        self.theta = learn_weights(ctx, &self.factors, &self.config, &mut rng);
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.factors
            .iter()
            .zip(self.theta.iter())
            .map(|(f, &t)| t * f.predict(user.index(), item.index()))
            .sum()
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

/// The HeteRec-p model (per-cluster weights, survey Eq. 18).
#[derive(Debug)]
pub struct HeteRecP {
    /// Hyper-parameters.
    pub config: HeteRecConfig,
    factors: Vec<PathFactors>,
    /// Cluster centroids in the concatenated per-path user-factor space.
    centroids: Vec<Vec<f32>>,
    /// Per-cluster path weights `θ^k`.
    cluster_theta: Vec<Vec<f32>>,
    /// Per-user cosine similarity to each centroid.
    memberships: Vec<Vec<f32>>,
    num_items: usize,
}

impl HeteRecP {
    /// Creates an unfitted model.
    pub fn new(config: HeteRecConfig) -> Self {
        Self {
            config,
            factors: Vec::new(),
            centroids: Vec::new(),
            cluster_theta: Vec::new(),
            memberships: Vec::new(),
            num_items: 0,
        }
    }

    /// Creates a model with default hyper-parameters.
    pub fn default_config() -> Self {
        Self::new(HeteRecConfig::default())
    }

    fn user_profile(factors: &[PathFactors], u: usize) -> Vec<f32> {
        let mut out = Vec::new();
        for f in factors {
            out.extend_from_slice(f.users.row(u));
        }
        out
    }
}

impl Recommender for HeteRecP {
    fn name(&self) -> &'static str {
        "HeteRec_p"
    }

    fn taxonomy(&self) -> Taxonomy {
        taxonomy_of("HeteRec_p")
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.num_items = ctx.num_items();
        self.factors = fit_path_factors(ctx, &self.config, &mut rng);
        // K-means over user profiles.
        let m = ctx.num_users();
        let c = self.config.clusters.clamp(1, m.max(1));
        let profiles: Vec<Vec<f32>> =
            (0..m).map(|u| Self::user_profile(&self.factors, u)).collect();
        let mut centroids: Vec<Vec<f32>> = (0..c).map(|k| profiles[k * m / c].clone()).collect();
        let mut assign = vec![0usize; m];
        for _ in 0..10 {
            for (u, p) in profiles.iter().enumerate() {
                let mut best = (f32::INFINITY, 0usize);
                for (k, cen) in centroids.iter().enumerate() {
                    let d = vector::dist_sq(p, cen);
                    if d < best.0 {
                        best = (d, k);
                    }
                }
                assign[u] = best.1;
            }
            for (k, cen) in centroids.iter_mut().enumerate() {
                let members: Vec<usize> = (0..m).filter(|&u| assign[u] == k).collect();
                if members.is_empty() {
                    continue;
                }
                cen.fill(0.0);
                for &u in &members {
                    vector::axpy(1.0, &profiles[u], cen);
                }
                vector::scale(cen, 1.0 / members.len() as f32);
            }
        }
        self.memberships = profiles
            .iter()
            .map(|p| {
                let sims: Vec<f32> =
                    centroids.iter().map(|c| vector::cosine(p, c).max(0.0)).collect();
                let total: f32 = sims.iter().sum();
                if total > 0.0 {
                    sims.iter().map(|s| s / total).collect()
                } else {
                    vec![1.0 / c as f32; c]
                }
            })
            .collect();
        self.centroids = centroids;
        // Per-cluster weights: BPR restricted to the cluster's members
        // (weighted by membership through the sampling filter).
        let lr = self.config.learning_rate;
        let mut cluster_theta =
            vec![vec![1.0f32 / self.factors.len().max(1) as f32; self.factors.len()]; c];
        for _ in 0..self.config.weight_epochs {
            for _ in 0..ctx.train.num_interactions() {
                let Some((u, pos)) = sample_observed(ctx.train, &mut rng) else { break };
                let Some(neg) = sample_negative(ctx.train, u, &mut rng) else { continue };
                let k = assign[u.index()];
                let fp: Vec<f32> =
                    self.factors.iter().map(|f| f.predict(u.index(), pos.index())).collect();
                let fn_: Vec<f32> =
                    self.factors.iter().map(|f| f.predict(u.index(), neg.index())).collect();
                let theta = &mut cluster_theta[k];
                let x = vector::dot(theta, &fp) - vector::dot(theta, &fn_);
                let g = -vector::sigmoid(-x);
                for l in 0..theta.len() {
                    theta[l] -= lr * g * (fp[l] - fn_[l]);
                }
            }
        }
        self.cluster_theta = cluster_theta;
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        // Eq. 18: Σ_k sim(C_k, u) Σ_l θ^k_l · û·v̂.
        let mem = &self.memberships[user.index()];
        let preds: Vec<f32> =
            self.factors.iter().map(|f| f.predict(user.index(), item.index())).collect();
        mem.iter()
            .zip(self.cluster_theta.iter())
            .map(|(&w, theta)| w * vector::dot(theta, &preds))
            .sum()
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::protocol::evaluate_ctr;
    use kgrec_data::negative::labeled_eval_set;
    use kgrec_data::split::ratio_split;
    use kgrec_data::synth::{generate, ScenarioConfig};

    #[test]
    fn heterec_beats_chance() {
        let synth = generate(&ScenarioConfig::tiny(), 42);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = HeteRec::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        let rep = evaluate_ctr(&m, &pairs);
        assert!(rep.auc > 0.6, "AUC {}", rep.auc);
    }

    #[test]
    fn heterec_p_beats_chance() {
        let synth = generate(&ScenarioConfig::tiny(), 42);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = HeteRecP::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        let rep = evaluate_ctr(&m, &pairs);
        assert!(rep.auc > 0.6, "AUC {}", rep.auc);
    }

    #[test]
    fn nmf_factors_stay_nonnegative() {
        let synth = generate(&ScenarioConfig::tiny(), 3);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = HeteRec::new(HeteRecConfig { nmf_epochs: 5, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        for f in &m.factors {
            assert!(f.users.data().iter().all(|&v| v >= 0.0));
            assert!(f.items.data().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn memberships_are_distributions() {
        let synth = generate(&ScenarioConfig::tiny(), 4);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m =
            HeteRecP::new(HeteRecConfig { nmf_epochs: 3, weight_epochs: 2, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        for mem in &m.memberships {
            let s: f32 = mem.iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "sum={s}");
        }
    }

    #[test]
    fn path_weights_learned() {
        let synth = generate(&ScenarioConfig::tiny(), 7);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = HeteRec::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        // 1 collaborative + 2 attribute paths for tiny.
        assert_eq!(m.path_weights().len(), 3);
        // Weights moved away from the uniform initialization.
        let uniform = 1.0 / 3.0;
        assert!(m.path_weights().iter().any(|&t| (t - uniform).abs() > 1e-4));
    }
}
