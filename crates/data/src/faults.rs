//! Deterministic fault injection for robustness testing.
//!
//! Each [`Fault`] is a mutator that corrupts a [`KgDataset`] in a way
//! observed to break recommender training in the wild: dangling
//! item↔entity alignments, duplicate or self-loop triples, NaN ratings
//! colliding with the implicit-feedback sentinel, out-of-vocabulary text
//! tokens, users or items stripped of every interaction, and adversarial
//! all-identical ratings (zero label variance).
//!
//! The mutators are **deterministic** — no RNG — so a failing
//! model × fault pair reproduces exactly. They deliberately bypass the
//! validating constructors ([`KgDataset::new`],
//! [`InteractionMatrix::from_interactions`]'s dedup aside) by mutating the
//! bundle's public fields and reassembling the graph through
//! [`KnowledgeGraph::from_parts`], which sorts but does not deduplicate.
//!
//! The intended consumer is the fault-matrix integration test in
//! `kgrec-models` and the `eval_suite --inject-fault` smoke run: every
//! registry model must either train on a corrupted bundle or fail with a
//! typed error under the training supervisor — never an escaped panic,
//! never a non-finite score.

use crate::dataset::KgDataset;
use crate::interactions::{Interaction, InteractionMatrix};
use kgrec_graph::{id32, EntityId, EntityTypeId, KnowledgeGraph, RelationId, Triple};

/// A deterministic dataset corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Every 7th item's aligned entity id points past the graph's entity
    /// range (a stale alignment after a graph rebuild).
    DanglingAlignment,
    /// Self-loop triples `(e, r, e)` on every 5th item entity (relation 0).
    SelfLoopTriples,
    /// The first quarter of the triple list appears twice (an unclean
    /// merge of two dump files).
    DuplicateTriples,
    /// Every 3rd interaction's rating is forced to NaN — colliding with
    /// the NaN-means-implicit sentinel of
    /// [`InteractionMatrix::ratings_of`].
    NanRatings,
    /// Item token lists contain ids at and past `vocab_size` (an
    /// embedding-table indexing hazard). No-op when the bundle carries no
    /// token lists.
    CorruptTextTokens,
    /// The first quarter of users (at least one) lose every interaction:
    /// cold-start users that positive-samplers must not spin on.
    EmptyUsers,
    /// The first quarter of items (at least one) lose every interaction:
    /// items with zero audience.
    EmptyItems,
    /// Every interaction carries the identical explicit rating 3.0 — zero
    /// label variance, degenerate for rating-normalizing models.
    IdenticalRatings,
}

impl Fault {
    /// All faults, in a stable order (the fault-matrix iteration order).
    pub fn all() -> &'static [Fault] {
        &[
            Fault::DanglingAlignment,
            Fault::SelfLoopTriples,
            Fault::DuplicateTriples,
            Fault::NanRatings,
            Fault::CorruptTextTokens,
            Fault::EmptyUsers,
            Fault::EmptyItems,
            Fault::IdenticalRatings,
        ]
    }

    /// Stable kebab-case label (used by `eval_suite --inject-fault`).
    pub fn label(&self) -> &'static str {
        match self {
            Fault::DanglingAlignment => "dangling-alignment",
            Fault::SelfLoopTriples => "self-loop-triples",
            Fault::DuplicateTriples => "duplicate-triples",
            Fault::NanRatings => "nan-ratings",
            Fault::CorruptTextTokens => "corrupt-text-tokens",
            Fault::EmptyUsers => "empty-users",
            Fault::EmptyItems => "empty-items",
            Fault::IdenticalRatings => "identical-ratings",
        }
    }

    /// Parses a [`Fault::label`] back into a fault.
    pub fn from_label(label: &str) -> Option<Fault> {
        Fault::all().iter().copied().find(|f| f.label() == label)
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Applies `fault` to `dataset` in place. Deterministic: the same bundle
/// and fault always produce the same corruption.
pub fn inject(dataset: &mut KgDataset, fault: Fault) {
    match fault {
        Fault::DanglingAlignment => {
            let n = id32(dataset.graph.num_entities());
            for (j, e) in dataset.item_entities.iter_mut().enumerate() {
                if j.is_multiple_of(7) {
                    *e = EntityId(n + id32(j));
                }
            }
        }
        Fault::SelfLoopTriples => {
            if dataset.graph.num_relations() == 0 {
                return;
            }
            let extra: Vec<Triple> = dataset
                .item_entities
                .iter()
                .enumerate()
                .filter(|(j, _)| j.is_multiple_of(5))
                .map(|(_, &e)| Triple::new(e, RelationId(0), e))
                .collect();
            dataset.graph = rebuild_with(&dataset.graph, extra);
        }
        Fault::DuplicateTriples => {
            let quarter = dataset.graph.num_triples() / 4 + 1;
            let extra: Vec<Triple> = dataset.graph.iter_triples().take(quarter).collect();
            dataset.graph = rebuild_with(&dataset.graph, extra);
        }
        Fault::NanRatings => {
            let mut interactions = collect(&dataset.interactions);
            for (k, it) in interactions.iter_mut().enumerate() {
                if k.is_multiple_of(3) {
                    it.rating = Some(f32::NAN);
                }
            }
            dataset.interactions = rebuild_matrix(&dataset.interactions, &interactions);
        }
        Fault::CorruptTextTokens => {
            let vocab = id32(dataset.vocab_size);
            if let Some(words) = dataset.item_words.as_mut() {
                for (j, list) in words.iter_mut().enumerate() {
                    for (k, w) in list.iter_mut().enumerate() {
                        if (j + k).is_multiple_of(4) {
                            *w += vocab;
                        }
                    }
                }
            }
        }
        Fault::EmptyUsers => {
            let cutoff = (dataset.interactions.num_users() / 4).max(1);
            let interactions: Vec<Interaction> = collect(&dataset.interactions)
                .into_iter()
                .filter(|it| it.user.index() >= cutoff)
                .collect();
            dataset.interactions = rebuild_matrix(&dataset.interactions, &interactions);
        }
        Fault::EmptyItems => {
            let cutoff = (dataset.interactions.num_items() / 4).max(1);
            let interactions: Vec<Interaction> = collect(&dataset.interactions)
                .into_iter()
                .filter(|it| it.item.index() >= cutoff)
                .collect();
            dataset.interactions = rebuild_matrix(&dataset.interactions, &interactions);
        }
        Fault::IdenticalRatings => {
            let mut interactions = collect(&dataset.interactions);
            for it in &mut interactions {
                it.rating = Some(3.0);
            }
            dataset.interactions = rebuild_matrix(&dataset.interactions, &interactions);
        }
    }
}

/// Extracts the interaction list back out of a matrix, preserving the
/// NaN-means-implicit convention.
fn collect(m: &InteractionMatrix) -> Vec<Interaction> {
    m.iter()
        .map(
            |(u, i, r)| {
                if r.is_nan() {
                    Interaction::implicit(u, i)
                } else {
                    Interaction::rated(u, i, r)
                }
            },
        )
        .collect()
}

/// Rebuilds a matrix over the same `(m, n)` shape from a mutated
/// interaction list.
fn rebuild_matrix(original: &InteractionMatrix, interactions: &[Interaction]) -> InteractionMatrix {
    InteractionMatrix::from_interactions(original.num_users(), original.num_items(), interactions)
}

/// Reassembles `graph` with `extra` triples appended, bypassing the
/// builder's deduplication ([`KnowledgeGraph::from_parts`] sorts only).
fn rebuild_with(graph: &KnowledgeGraph, extra: Vec<Triple>) -> KnowledgeGraph {
    let entity_names: Vec<String> = (0..graph.num_entities())
        .map(|e| graph.entity_name(EntityId(id32(e))).to_owned())
        .collect();
    let entity_types: Vec<EntityTypeId> =
        (0..graph.num_entities()).map(|e| graph.entity_type(EntityId(id32(e)))).collect();
    let type_names: Vec<String> = (0..graph.num_entity_types())
        .map(|t| graph.type_name(EntityTypeId(id32(t))).to_owned())
        .collect();
    let relation_names: Vec<String> = (0..graph.num_relations())
        .map(|r| graph.relation_name(RelationId(id32(r))).to_owned())
        .collect();
    let mut triples: Vec<Triple> = graph.iter_triples().collect();
    triples.extend(extra);
    KnowledgeGraph::from_parts(
        entity_names,
        entity_types,
        type_names,
        relation_names,
        graph.num_base_relations(),
        triples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ItemId, UserId};
    use crate::synth::{generate, ScenarioConfig};

    fn bundle() -> KgDataset {
        generate(&ScenarioConfig::tiny(), 42).dataset
    }

    fn news_bundle() -> KgDataset {
        let mut cfg = ScenarioConfig::tiny();
        cfg.words_per_item = Some(4);
        generate(&cfg, 42).dataset
    }

    #[test]
    fn labels_roundtrip() {
        for &f in Fault::all() {
            assert_eq!(Fault::from_label(f.label()), Some(f));
            assert_eq!(f.to_string(), f.label());
        }
        assert_eq!(Fault::from_label("no-such-fault"), None);
    }

    #[test]
    fn dangling_alignment_points_past_entity_range() {
        let mut d = bundle();
        let n = d.graph.num_entities();
        inject(&mut d, Fault::DanglingAlignment);
        assert!(d.item_entities[0].index() >= n, "item 0 must dangle");
        assert!(d.item_entities.iter().any(|e| e.index() < n), "not every item dangles");
    }

    #[test]
    fn self_loops_injected() {
        let mut d = bundle();
        let before = d.graph.num_triples();
        inject(&mut d, Fault::SelfLoopTriples);
        assert!(d.graph.num_triples() > before);
        let loops =
            d.graph.iter_triples().filter(|t| t.head == t.tail && t.rel == RelationId(0)).count();
        assert!(loops >= d.item_entities.len() / 5, "only {loops} self-loops");
    }

    #[test]
    fn duplicates_survive_rebuild() {
        let mut d = bundle();
        let before = d.graph.num_triples();
        inject(&mut d, Fault::DuplicateTriples);
        assert_eq!(d.graph.num_triples(), before + before / 4 + 1);
        // At least one adjacent pair in the sorted list is identical.
        let ts: Vec<Triple> = d.graph.iter_triples().collect();
        assert!(ts.windows(2).any(|w| w[0] == w[1]));
    }

    #[test]
    fn nan_ratings_poison_every_third() {
        let mut d = bundle();
        let total = d.interactions.num_interactions();
        inject(&mut d, Fault::NanRatings);
        assert_eq!(d.interactions.num_interactions(), total, "shape preserved");
        let nans = d.interactions.iter().filter(|(_, _, r)| r.is_nan()).count();
        assert!(nans * 3 >= total, "only {nans}/{total} NaN");
    }

    #[test]
    fn corrupt_tokens_exceed_vocab() {
        let mut d = news_bundle();
        let vocab = d.vocab_size;
        inject(&mut d, Fault::CorruptTextTokens);
        let words = d.item_words.as_ref().unwrap();
        assert!(words.iter().flatten().any(|&w| w as usize >= vocab));
    }

    #[test]
    fn corrupt_tokens_noop_without_text() {
        let mut d = bundle();
        inject(&mut d, Fault::CorruptTextTokens);
        assert!(d.item_words.is_none());
    }

    #[test]
    fn empty_users_strip_a_prefix() {
        let mut d = bundle();
        inject(&mut d, Fault::EmptyUsers);
        let cutoff = (d.interactions.num_users() / 4).max(1);
        for u in 0..cutoff {
            assert_eq!(d.interactions.user_degree(UserId(u as u32)), 0, "user {u}");
        }
        assert!(d.interactions.num_interactions() > 0, "other users keep history");
    }

    #[test]
    fn empty_items_strip_a_prefix() {
        let mut d = bundle();
        inject(&mut d, Fault::EmptyItems);
        let cutoff = (d.interactions.num_items() / 4).max(1);
        for j in 0..cutoff {
            assert_eq!(d.interactions.item_degree(ItemId(j as u32)), 0, "item {j}");
        }
        assert!(d.interactions.num_interactions() > 0);
    }

    #[test]
    fn identical_ratings_zero_variance() {
        let mut d = bundle();
        inject(&mut d, Fault::IdenticalRatings);
        assert!(d.interactions.iter().all(|(_, _, r)| r == 3.0));
    }

    #[test]
    fn injection_is_deterministic() {
        for &f in Fault::all() {
            let mut a = bundle();
            let mut b = bundle();
            inject(&mut a, f);
            inject(&mut b, f);
            assert_eq!(a.graph.num_triples(), b.graph.num_triples(), "{f}");
            assert_eq!(a.item_entities, b.item_entities, "{f}");
            let ia: Vec<_> = a.interactions.iter().map(|(u, i, _)| (u, i)).collect();
            let ib: Vec<_> = b.interactions.iter().map(|(u, i, _)| (u, i)).collect();
            assert_eq!(ia, ib, "{f}");
        }
    }
}
