//! Item-based k-nearest-neighbor collaborative filtering.
//!
//! The memory-based CF technique of survey Section 2.2: item–item cosine
//! similarity over audiences, scores summed across the user's history.
//! Only the top `neighbors` similar items per item are retained.

use crate::common::baseline_taxonomy;
use kgrec_core::{CoreError, Recommender, Taxonomy, TrainContext};
use kgrec_data::{InteractionMatrix, ItemId, UserId};

/// Item-based KNN recommender.
#[derive(Debug)]
pub struct ItemKnn {
    /// Number of similar items kept per item.
    pub neighbors: usize,
    /// `sims[i]` = top-(`neighbors`) `(other_item, cosine)` pairs.
    sims: Vec<Vec<(u32, f32)>>,
    train: Option<InteractionMatrix>,
}

impl ItemKnn {
    /// Creates an ItemKNN with the given neighborhood size.
    pub fn new(neighbors: usize) -> Self {
        Self { neighbors, sims: Vec::new(), train: None }
    }

    /// Cosine similarity of two item audiences (sorted user lists).
    fn audience_cosine(a: &[UserId], b: &[UserId]) -> f32 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        // Sorted-merge intersection count.
        let mut i = 0;
        let mut j = 0;
        let mut inter = 0usize;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        inter as f32 / ((a.len() * b.len()) as f32).sqrt()
    }
}

impl Recommender for ItemKnn {
    fn name(&self) -> &'static str {
        "ItemKNN"
    }

    fn taxonomy(&self) -> Taxonomy {
        baseline_taxonomy("ItemKNN")
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        let n = ctx.num_items();
        let train = ctx.train;
        let mut sims = vec![Vec::new(); n];
        for i in 0..n {
            let ai = train.users_of(ItemId(i as u32));
            if ai.is_empty() {
                continue;
            }
            let mut row: Vec<(u32, f32)> = Vec::new();
            // Only items sharing at least one user can have nonzero
            // similarity: enumerate candidates through co-interactions.
            let mut cands: Vec<u32> = ai
                .iter()
                .flat_map(|&u| train.items_of(u).iter().map(|it| it.0))
                .filter(|&j| j as usize != i)
                .collect();
            cands.sort_unstable();
            cands.dedup();
            for j in cands {
                let s = Self::audience_cosine(ai, train.users_of(ItemId(j)));
                if s > 0.0 {
                    row.push((j, s));
                }
            }
            row.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            row.truncate(self.neighbors);
            row.sort_by_key(|&(j, _)| j);
            sims[i] = row;
        }
        self.sims = sims;
        self.train = Some(train.clone());
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        let train = self.train.as_ref().expect("ItemKnn: fit before score");
        let row = &self.sims[item.index()];
        let mut acc = 0.0f32;
        for &hist in train.items_of(user) {
            if let Ok(k) = row.binary_search_by_key(&hist.0, |&(j, _)| j) {
                acc += row[k].1;
            }
        }
        acc
    }

    fn num_items(&self) -> usize {
        self.sims.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_data::interactions::Interaction;
    use kgrec_data::KgDataset;
    use kgrec_graph::KgBuilder;

    fn make(users: &[(u32, &[u32])]) -> (KgDataset, InteractionMatrix) {
        let n_items = 4;
        let mut b = KgBuilder::new();
        let ty = b.entity_type("item");
        let ents: Vec<_> = (0..n_items).map(|i| b.entity(&format!("i{i}"), ty)).collect();
        let graph = b.build(false);
        let mut inter = Vec::new();
        for &(u, items) in users {
            for &i in items {
                inter.push(Interaction::implicit(UserId(u), ItemId(i)));
            }
        }
        let train = InteractionMatrix::from_interactions(users.len(), n_items, &inter);
        (KgDataset::new(train.clone(), graph, ents), train)
    }

    #[test]
    fn co_consumed_items_recommended() {
        // Users 0,1 consume {0,1}; user 2 consumed only 0 -> expect 1.
        let (ds, train) = make(&[(0, &[0, 1]), (1, &[0, 1]), (2, &[0])]);
        let mut m = ItemKnn::new(10);
        m.fit(&TrainContext::new(&ds, &train)).unwrap();
        let recs = m.recommend(UserId(2), 1, train.items_of(UserId(2)));
        assert_eq!(recs[0].0, ItemId(1));
    }

    #[test]
    fn cosine_known_value() {
        let a = [UserId(0), UserId(1)];
        let b = [UserId(1), UserId(2)];
        let s = ItemKnn::audience_cosine(&a, &b);
        assert!((s - 0.5).abs() < 1e-6);
        assert_eq!(ItemKnn::audience_cosine(&a, &[]), 0.0);
    }

    #[test]
    fn neighbor_cap_respected() {
        let (ds, train) = make(&[(0, &[0, 1, 2, 3]), (1, &[0, 1, 2, 3]), (2, &[0, 1, 2, 3])]);
        let mut m = ItemKnn::new(2);
        m.fit(&TrainContext::new(&ds, &train)).unwrap();
        for row in &m.sims {
            assert!(row.len() <= 2);
        }
    }

    #[test]
    fn cold_item_scores_zero() {
        let (ds, train) = make(&[(0, &[0]), (1, &[0])]);
        let mut m = ItemKnn::new(5);
        m.fit(&TrainContext::new(&ds, &train)).unwrap();
        assert_eq!(m.score(UserId(0), ItemId(3)), 0.0);
    }
}
