//! Numerical-stability monitoring of training loss curves.
//!
//! Every iterative trainer in the workspace produces a per-epoch loss
//! curve. Two silent failure modes poison results without crashing: the
//! loss turns NaN/∞ (an exploded learning rate) and the model keeps
//! "training" on garbage, or the loss climbs away from its best value
//! (divergence) and the final parameters are worse than an early epoch's.
//!
//! [`LossMonitor`] detects both online. Trainers feed it one loss per
//! epoch and act on the returned [`LossVerdict`]: stop (and roll back to
//! the last healthy snapshot) on [`LossVerdict::NonFinite`] or
//! [`LossVerdict::Diverging`], keep going on [`LossVerdict::Healthy`].
//! The `kgrec-core` training supervisor converts verdicts into typed
//! errors and drives retries with learning-rate backoff.

/// When a loss curve counts as diverging.
#[derive(Debug, Clone)]
pub struct DivergencePolicy {
    /// The loss is "bad" when it exceeds `factor ×` the best loss seen so
    /// far (best is tracked as the running minimum of finite losses).
    pub factor: f32,
    /// Number of *consecutive* bad epochs before the verdict flips to
    /// [`LossVerdict::Diverging`]. Tolerates transient SGD noise.
    pub patience: usize,
    /// Absolute ceiling: any finite loss above this is bad regardless of
    /// the running minimum (catches curves that explode before a
    /// meaningful minimum exists).
    pub max_loss: f32,
}

impl Default for DivergencePolicy {
    fn default() -> Self {
        Self { factor: 4.0, patience: 3, max_loss: 1e6 }
    }
}

/// Per-epoch verdict of a [`LossMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossVerdict {
    /// Loss is finite and not diverging; keep training.
    Healthy,
    /// Loss is NaN or ±∞; stop immediately, the parameters are garbage.
    NonFinite,
    /// Loss has exceeded the divergence policy's tolerance for
    /// `patience` consecutive epochs; stop and roll back.
    Diverging,
}

/// Online divergence detector over a training loss curve.
///
/// ```
/// use kgrec_linalg::stability::{DivergencePolicy, LossMonitor, LossVerdict};
///
/// let mut m = LossMonitor::new(DivergencePolicy { factor: 2.0, patience: 2, max_loss: 1e6 });
/// assert_eq!(m.observe(1.0), LossVerdict::Healthy);
/// assert_eq!(m.observe(0.5), LossVerdict::Healthy);
/// assert_eq!(m.observe(1.5), LossVerdict::Healthy); // 1st bad epoch
/// assert_eq!(m.observe(2.0), LossVerdict::Diverging); // 2nd in a row
/// assert_eq!(m.observe(f32::NAN), LossVerdict::NonFinite);
/// ```
#[derive(Debug, Clone)]
pub struct LossMonitor {
    policy: DivergencePolicy,
    best: Option<f32>,
    bad_streak: usize,
    epochs: usize,
}

impl LossMonitor {
    /// Creates a monitor with the given policy.
    pub fn new(policy: DivergencePolicy) -> Self {
        Self { policy, best: None, bad_streak: 0, epochs: 0 }
    }

    /// Creates a monitor with [`DivergencePolicy::default`].
    pub fn with_defaults() -> Self {
        Self::new(DivergencePolicy::default())
    }

    /// Feeds one epoch's loss and returns the verdict.
    pub fn observe(&mut self, loss: f32) -> LossVerdict {
        self.epochs += 1;
        if !loss.is_finite() {
            return LossVerdict::NonFinite;
        }
        let bad = loss > self.policy.max_loss
            || self.best.is_some_and(|b| loss > self.policy.factor * b.max(f32::EPSILON));
        if bad {
            self.bad_streak += 1;
            if self.bad_streak >= self.policy.patience {
                return LossVerdict::Diverging;
            }
        } else {
            self.bad_streak = 0;
            self.best = Some(self.best.map_or(loss, |b| b.min(loss)));
        }
        LossVerdict::Healthy
    }

    /// Best (minimum) finite loss observed so far, if any epoch was
    /// healthy.
    pub fn best_loss(&self) -> Option<f32> {
        self.best
    }

    /// Number of epochs observed.
    pub fn epochs_observed(&self) -> usize {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_decreasing_curve() {
        let mut m = LossMonitor::with_defaults();
        for i in 0..50 {
            let loss = 1.0 / (1.0 + i as f32);
            assert_eq!(m.observe(loss), LossVerdict::Healthy);
        }
        assert!(m.best_loss().unwrap() < 0.03);
        assert_eq!(m.epochs_observed(), 50);
    }

    #[test]
    fn nan_detected_immediately() {
        let mut m = LossMonitor::with_defaults();
        assert_eq!(m.observe(0.5), LossVerdict::Healthy);
        assert_eq!(m.observe(f32::NAN), LossVerdict::NonFinite);
        assert_eq!(m.observe(f32::INFINITY), LossVerdict::NonFinite);
    }

    #[test]
    fn divergence_needs_consecutive_bad_epochs() {
        let p = DivergencePolicy { factor: 2.0, patience: 3, max_loss: 1e6 };
        let mut m = LossMonitor::new(p);
        assert_eq!(m.observe(1.0), LossVerdict::Healthy);
        // Two bad epochs, then recovery: streak resets.
        assert_eq!(m.observe(5.0), LossVerdict::Healthy);
        assert_eq!(m.observe(5.0), LossVerdict::Healthy);
        assert_eq!(m.observe(0.9), LossVerdict::Healthy);
        // Three bad in a row now trips.
        assert_eq!(m.observe(5.0), LossVerdict::Healthy);
        assert_eq!(m.observe(5.0), LossVerdict::Healthy);
        assert_eq!(m.observe(5.0), LossVerdict::Diverging);
    }

    #[test]
    fn absolute_ceiling_trips_without_a_minimum() {
        let p = DivergencePolicy { factor: 4.0, patience: 2, max_loss: 100.0 };
        let mut m = LossMonitor::new(p);
        // First epochs already above the ceiling: no best yet, still bad.
        assert_eq!(m.observe(1e4), LossVerdict::Healthy);
        assert_eq!(m.observe(1e5), LossVerdict::Diverging);
        assert_eq!(m.best_loss(), None);
    }

    #[test]
    fn zero_best_does_not_divide_away_divergence() {
        // A perfect 0.0 loss followed by any positive loss must be able to
        // trip (guarded by the EPSILON floor).
        let p = DivergencePolicy { factor: 2.0, patience: 1, max_loss: 1e6 };
        let mut m = LossMonitor::new(p);
        assert_eq!(m.observe(0.0), LossVerdict::Healthy);
        assert_eq!(m.observe(1.0), LossVerdict::Diverging);
    }
}
