//! Golden regression test: `eval_suite --quick --no-timing` must
//! reproduce `tests/golden/eval_quick.txt` byte for byte — at one
//! thread *and* at four. This pins two contracts at once:
//!
//! 1. the evaluation pipeline is deterministic across processes (seeded
//!    RNG everywhere, no hash-order leakage into metrics);
//! 2. the worker pool is invisible in the output: thread count changes
//!    wall-clock only, which `--no-timing` masks.
//!
//! Regenerate after an intentional metrics change with:
//! `cargo run --release -p kgrec-bench --bin eval_suite -- --quick \
//!  --no-timing > tests/golden/eval_quick.txt`

use std::process::Command;

const GOLDEN: &str = include_str!("golden/eval_quick.txt");

fn quick_suite_stdout(threads: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_eval_suite"))
        .args(["--quick", "--no-timing", "--threads", threads])
        .output()
        .expect("spawning eval_suite");
    assert!(
        out.status.success(),
        "eval_suite --threads {threads} exited with {:?}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("eval_suite stdout is UTF-8")
}

/// Diff-style assertion: on mismatch, name the first differing line so
/// the failure is readable without an external diff tool.
fn assert_matches_golden(actual: &str, label: &str) {
    if actual == GOLDEN {
        return;
    }
    for (n, (got, want)) in actual.lines().zip(GOLDEN.lines()).enumerate() {
        assert_eq!(got, want, "{label}: first divergence at line {}", n + 1);
    }
    panic!(
        "{label}: output is a strict prefix/extension of the golden file \
         ({} vs {} lines)",
        actual.lines().count(),
        GOLDEN.lines().count()
    );
}

#[test]
fn quick_suite_matches_golden_serially() {
    assert_matches_golden(&quick_suite_stdout("1"), "--threads 1");
}

#[test]
fn quick_suite_matches_golden_on_four_threads() {
    assert_matches_golden(&quick_suite_stdout("4"), "--threads 4");
}
