//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this crate vendors the
//! API subset kgrec's property tests use: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, range / tuple / `Just` /
//! `any::<bool>()` strategies, `prop::collection::{vec, btree_set}`, the
//! `prop_map` / `prop_flat_map` / `prop_shuffle` combinators, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! reports the case number and message only. Case generation is
//! deterministic — the RNG is seeded from the test name — so a failure
//! reproduces exactly on re-run, which recovers most of the debugging
//! value shrinking provides.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (subset of upstream `proptest`'s `Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Failure raised by `prop_assert!` family macros inside a test body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// Derives a deterministic per-test RNG from the test's name.
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of test inputs.
///
/// Upstream proptest separates `Strategy` from `ValueTree` (for
/// shrinking); without shrinking a strategy is just a seeded generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns —
    /// the dependent-generation combinator.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Shuffles generated collections uniformly.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// Map combinator; see [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Flat-map combinator; see [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Collections that support uniform in-place shuffling.
pub trait Shuffleable {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Shuffle combinator; see [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut v = self.inner.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Clone,
    RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait ArbitraryValue {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl ArbitraryValue for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0..=u8::MAX)
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u32>()
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>()
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the unconstrained strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Size specifications accepted by the collection strategies: a fixed
    /// `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete size.
        fn sample(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with length in `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<S::Value>` with target size drawn from
    /// `size` (best effort: duplicates are retried a bounded number of
    /// times, so the set may come up smaller on tiny domains).
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for BTreeSetStrategy<S, Z>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 10 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A set of `element` values with size in `size` (best effort).
    pub fn btree_set<S: Strategy, Z: SizeRange>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

/// The standard import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Declares property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in arb_pair()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&$strat, &mut __rng);)*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..6).prop_flat_map(|n| {
            let items = prop::collection::vec(0u32..100, n);
            (Just(n), items)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, f in -1.0f32..1.0, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(u8::from(b) <= 1);
        }

        #[test]
        fn flat_map_links_sizes((n, items) in arb_pair()) {
            prop_assert_eq!(items.len(), n);
        }

        #[test]
        fn shuffle_is_permutation(v in Just((0u32..20).collect::<Vec<u32>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            let expect: Vec<u32> = (0..20).collect();
            prop_assert_eq!(sorted, expect);
        }

        #[test]
        fn btree_set_within_domain(s in prop::collection::btree_set(0u32..10, 0..5usize)) {
            prop_assert!(s.len() < 5);
            prop_assert!(s.iter().all(|&x| x < 10));
        }

        #[test]
        fn early_return_ok_is_supported(x in 0usize..4) {
            if x == 0 {
                return Ok(());
            }
            prop_assert!(x > 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::rng_for_test("some_test");
        let mut b = crate::rng_for_test("some_test");
        let sa = (0usize..8).generate(&mut a);
        let sb = (0usize..8).generate(&mut b);
        assert_eq!(sa, sb);
    }
}
