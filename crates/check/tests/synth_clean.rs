//! Cleanliness guarantee: every synthetic generator must produce bundles
//! that pass the full rule set with zero error-severity diagnostics — the
//! checker and the generators are kept honest against each other.

use kgrec_check::{default_model_hyperparams, CheckBundle, CheckReport, Severity};
use kgrec_data::negative::labeled_eval_set;
use kgrec_data::split::ratio_split;
use kgrec_data::synth::{generate, ScenarioConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All generators, by name, so failures identify the scenario.
fn all_scenarios() -> Vec<ScenarioConfig> {
    vec![
        ScenarioConfig::tiny(),
        ScenarioConfig::movielens_100k_like(),
        ScenarioConfig::movielens_1m_like(),
        ScenarioConfig::book_crossing_like(),
        ScenarioConfig::lastfm_like(),
        ScenarioConfig::amazon_product_like(),
        ScenarioConfig::yelp_like(),
        ScenarioConfig::bing_news_like(),
        ScenarioConfig::weibo_like(),
    ]
}

/// Runs the full rule set over a freshly generated scenario with every
/// optional input attached (split, eval pairs, hyper-parameters), and
/// asserts zero errors.
fn assert_error_free(cfg: &ScenarioConfig, seed: u64) {
    let synth = generate(cfg, seed);
    let split = ratio_split(&synth.dataset.interactions, 0.2, seed ^ 0x5EED);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0E7A_15E7);
    let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
    let bundle = CheckBundle::new(&synth.dataset)
        .with_split(&split)
        .with_eval_pairs(&pairs)
        .with_hyperparams(default_model_hyperparams());
    let report = CheckReport::run(&bundle);
    assert_eq!(
        report.count(Severity::Error),
        0,
        "scenario {} (seed {seed}) produced errors:\n{}",
        cfg.name,
        report.render()
    );
}

#[test]
fn every_generator_is_error_free_at_reference_seeds() {
    for cfg in all_scenarios() {
        assert_error_free(&cfg, 2024);
    }
}

#[test]
fn sparsified_and_social_variants_are_error_free() {
    assert_error_free(&ScenarioConfig::tiny().with_sparsity_factor(0.3), 11);
    assert_error_free(&ScenarioConfig::tiny().with_social_links(4), 11);
}

proptest! {
    // Each case generates a full dataset; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generators_are_error_free_on_arbitrary_seeds(
        which in 0usize..9,
        seed in any::<u64>(),
    ) {
        let cfg = all_scenarios().swap_remove(which);
        let synth = generate(&cfg, seed);
        let split = ratio_split(&synth.dataset.interactions, 0.2, seed.rotate_left(17));
        let mut rng = StdRng::seed_from_u64(seed.rotate_left(31));
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        let bundle = CheckBundle::new(&synth.dataset)
            .with_split(&split)
            .with_eval_pairs(&pairs)
            .with_hyperparams(default_model_hyperparams());
        let report = CheckReport::run(&bundle);
        prop_assert_eq!(
            report.count(Severity::Error),
            0,
            "scenario {} (seed {}) produced errors:\n{}",
            cfg.name,
            seed,
            report.render()
        );
    }
}
