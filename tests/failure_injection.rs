//! Failure-injection tests: every model must either fit or fail *cleanly*
//! on degenerate datasets — an empty KG, a single user, cold items,
//! singleton histories. No panics, no NaN scores.

use kgrec_core::{Recommender, TrainContext};
use kgrec_data::interactions::{Interaction, InteractionMatrix};
use kgrec_data::synth::{generate, ScenarioConfig};
use kgrec_data::{ItemId, KgDataset, UserId};
use kgrec_graph::KgBuilder;
use kgrec_models::registry::all_models;

/// Dataset with items but a KG that has *no* triples at all.
fn empty_kg_dataset() -> KgDataset {
    let mut b = KgBuilder::new();
    let ty = b.entity_type("item");
    let ents: Vec<_> = (0..6).map(|i| b.entity(&format!("i{i}"), ty)).collect();
    let graph = b.build(true);
    let inter = InteractionMatrix::from_interactions(
        4,
        6,
        &[
            Interaction::implicit(UserId(0), ItemId(0)),
            Interaction::implicit(UserId(0), ItemId(1)),
            Interaction::implicit(UserId(1), ItemId(1)),
            Interaction::implicit(UserId(1), ItemId(2)),
            Interaction::implicit(UserId(2), ItemId(3)),
            Interaction::implicit(UserId(2), ItemId(0)),
            Interaction::implicit(UserId(3), ItemId(4)),
            Interaction::implicit(UserId(3), ItemId(5)),
        ],
    );
    KgDataset::new(inter, graph, ents)
}

#[test]
fn all_models_survive_empty_kg() {
    let ds = empty_kg_dataset();
    let ctx = TrainContext::new(&ds, &ds.interactions);
    for mut model in all_models(false) {
        let name = model.name();
        match model.fit(&ctx) {
            Ok(()) => {
                let s = model.score(UserId(0), ItemId(3));
                assert!(s.is_finite() || s == f32::NEG_INFINITY, "{name}: score {s}");
                // Recommend must not panic.
                let _ = model.recommend(UserId(0), 3, &[]);
            }
            Err(e) => {
                // A clean, typed error is acceptable.
                assert!(!e.to_string().is_empty(), "{name}: empty error message");
            }
        }
    }
}

#[test]
fn all_models_survive_single_user() {
    let synth = generate(&ScenarioConfig::tiny(), 3);
    // One user only, keeping the full KG.
    let one_user: Vec<Interaction> = synth
        .dataset
        .interactions
        .iter()
        .filter(|(u, _, _)| u.0 == 0)
        .map(|(u, i, _)| Interaction::implicit(u, i))
        .collect();
    let inter =
        InteractionMatrix::from_interactions(1, synth.dataset.interactions.num_items(), &one_user);
    let ds = KgDataset::new(
        inter.clone(),
        synth.dataset.graph.clone(),
        synth.dataset.item_entities.clone(),
    );
    let ctx = TrainContext::new(&ds, &inter);
    for mut model in all_models(false) {
        let name = model.name();
        model.fit(&ctx).unwrap_or_else(|e| panic!("{name} failed on single user: {e}"));
        let s = model.score(UserId(0), ItemId(0));
        assert!(!s.is_nan(), "{name}: NaN score");
    }
}

#[test]
fn all_models_handle_cold_items() {
    // Several items have zero interactions; scoring them must not panic
    // or produce NaN.
    let synth = generate(&ScenarioConfig::tiny(), 5);
    let filtered: Vec<Interaction> = synth
        .dataset
        .interactions
        .iter()
        .filter(|(_, i, _)| i.0 >= 10) // items 0..10 become cold
        .map(|(u, i, _)| Interaction::implicit(u, i))
        .collect();
    let inter = InteractionMatrix::from_interactions(
        synth.dataset.interactions.num_users(),
        synth.dataset.interactions.num_items(),
        &filtered,
    );
    let ds = KgDataset::new(
        inter.clone(),
        synth.dataset.graph.clone(),
        synth.dataset.item_entities.clone(),
    );
    let ctx = TrainContext::new(&ds, &inter);
    for mut model in all_models(false) {
        let name = model.name();
        model.fit(&ctx).unwrap_or_else(|e| panic!("{name} failed: {e}"));
        for cold in 0..10u32 {
            let s = model.score(UserId(1), ItemId(cold));
            assert!(!s.is_nan(), "{name}: NaN on cold item {cold}");
        }
    }
}

#[test]
fn recommend_with_everything_excluded_is_empty_not_panic() {
    let synth = generate(&ScenarioConfig::tiny(), 7);
    let ctx = TrainContext::new(&synth.dataset, &synth.dataset.interactions);
    let all_items: Vec<ItemId> =
        (0..synth.dataset.interactions.num_items() as u32).map(ItemId).collect();
    let mut model = kgrec_models::baselines::BprMf::default_config();
    model.fit(&ctx).unwrap();
    assert!(model.recommend(UserId(0), 5, &all_items).is_empty());
}

#[test]
fn dkn_rejects_textless_dataset_with_typed_error() {
    let synth = generate(&ScenarioConfig::tiny(), 9);
    let ctx = TrainContext::new(&synth.dataset, &synth.dataset.interactions);
    let mut dkn = kgrec_models::embedding::DknLite::default_config();
    let err = dkn.fit(&ctx).expect_err("must reject");
    assert!(matches!(err, kgrec_core::CoreError::InvalidDataset { .. }));
}
