#!/usr/bin/env bash
# The full local gate: formatting, lints, tests, and a strict kglint pass
# over the whole synthetic scenario family. CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace lints, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== kglint --strict (all synthetic scenarios)"
cargo run --release -p kgrec-check --bin kglint -- --strict

echo "== eval_suite fault drill (graceful degradation smoke)"
cargo run --release -p kgrec-bench --bin eval_suite -- --quick --inject-fault \
  | tail -n 3

echo "OK: all checks passed"
