//! Sharded, generation-stamped per-user top-K result cache.
//!
//! # Stamping protocol
//!
//! Correctness does not come from explicit eviction but from *stamps*:
//! every entry records the user's data generation and the server's model
//! generation at fill time, and a lookup only hits when **both** match
//! the current values. Writers therefore never touch the cache —
//! [`crate::Server::ingest`] bumps the touched users' generations and
//! [`crate::Server::reload`] bumps the model generation, which atomically
//! invalidates every affected entry wherever it is stored. The ordering
//! contract (install new data *before* bumping, with release/acquire on
//! the counters) guarantees a reader that observes a bumped generation
//! also observes the new data, so a stale result can never be stored
//! under a current stamp.
//!
//! # Layout
//!
//! Fixed capacity, direct-mapped: user `u` lives in shard
//! `u % shards`, slot `(u / shards) % slots_per_shard`. A colliding fill
//! overwrites (last writer wins) — the cache is an accelerator, never a
//! source of truth, so collisions cost recomputation, not correctness.
//! Shards are `Mutex`-guarded; with the bench's user-partitioned workers
//! a shard is only ever contended by requests for colliding users.

use kgrec_data::{ItemId, UserId};
use std::sync::Mutex;

/// Slot sentinel: no user cached here.
const EMPTY: u32 = u32::MAX;

/// One cache shard: parallel slot arrays plus a flat `slots × k` item
/// block.
#[derive(Debug)]
struct CacheShard {
    users: Vec<u32>,
    user_gens: Vec<u64>,
    model_gens: Vec<u64>,
    lens: Vec<u8>,
    items: Vec<u32>,
}

/// The sharded top-K result cache.
#[derive(Debug)]
pub struct TopKCache {
    shards: Vec<Mutex<CacheShard>>,
    slots_per_shard: usize,
    k: usize,
}

impl TopKCache {
    /// Creates a cache with room for `capacity` users total, split over
    /// `shards` shards, each entry holding up to `k` items.
    ///
    /// `capacity == 0` disables the cache: every lookup misses and every
    /// insert is a no-op.
    ///
    /// # Panics
    /// If `k` is 0 or exceeds 255 (entry lengths are stored as a byte).
    pub fn new(capacity: usize, shards: usize, k: usize) -> Self {
        assert!((1..=255).contains(&k), "TopKCache: k must be in 1..=255");
        if capacity == 0 {
            return Self { shards: Vec::new(), slots_per_shard: 0, k };
        }
        let shards = shards.clamp(1, capacity);
        let slots_per_shard = capacity.div_ceil(shards);
        let make = || {
            Mutex::new(CacheShard {
                users: vec![EMPTY; slots_per_shard],
                user_gens: vec![0; slots_per_shard],
                model_gens: vec![0; slots_per_shard],
                lens: vec![0; slots_per_shard],
                items: vec![0; slots_per_shard * k],
            })
        };
        Self { shards: (0..shards).map(|_| make()).collect(), slots_per_shard, k }
    }

    /// Total slot count (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.slots_per_shard
    }

    #[inline]
    fn locate(&self, user: UserId) -> (usize, usize) {
        let shard = user.index() % self.shards.len();
        let slot = (user.index() / self.shards.len()) % self.slots_per_shard;
        (shard, slot)
    }

    /// Looks up `user`'s entry; hits only when the entry's stamps equal
    /// (`user_gen`, `model_gen`). On a hit the ranked items are copied
    /// into `out` (cleared first) and `true` is returned.
    pub fn lookup(
        &self,
        user: UserId,
        user_gen: u64,
        model_gen: u64,
        out: &mut Vec<ItemId>,
    ) -> bool {
        if self.shards.is_empty() {
            return false;
        }
        let (s, slot) = self.locate(user);
        let shard = self.shards[s].lock().expect("cache shard poisoned");
        if shard.users[slot] != user.0
            || shard.user_gens[slot] != user_gen
            || shard.model_gens[slot] != model_gen
        {
            return false;
        }
        let len = shard.lens[slot] as usize;
        out.clear();
        for &v in &shard.items[slot * self.k..slot * self.k + len] {
            out.push(ItemId(v));
        }
        true
    }

    /// Stores `items` as `user`'s entry under the given stamps,
    /// overwriting whatever occupied the slot.
    ///
    /// # Panics
    /// If `items` is longer than the `k` the cache was built for.
    pub fn insert(&self, user: UserId, user_gen: u64, model_gen: u64, items: &[ItemId]) {
        if self.shards.is_empty() {
            return;
        }
        assert!(items.len() <= self.k, "TopKCache: entry longer than k");
        let (s, slot) = self.locate(user);
        let mut shard = self.shards[s].lock().expect("cache shard poisoned");
        shard.users[slot] = user.0;
        shard.user_gens[slot] = user_gen;
        shard.model_gens[slot] = model_gen;
        shard.lens[slot] = items.len() as u8;
        let base = slot * self.k;
        for (i, v) in items.iter().enumerate() {
            shard.items[base + i] = v.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<ItemId> {
        xs.iter().map(|&v| ItemId(v)).collect()
    }

    #[test]
    fn round_trip_and_stamp_mismatch() {
        let c = TopKCache::new(8, 2, 3);
        let mut out = Vec::new();
        assert!(!c.lookup(UserId(5), 0, 0, &mut out));
        c.insert(UserId(5), 0, 0, &ids(&[9, 2]));
        assert!(c.lookup(UserId(5), 0, 0, &mut out));
        assert_eq!(out, ids(&[9, 2]));
        // Any stamp divergence is a miss.
        assert!(!c.lookup(UserId(5), 1, 0, &mut out));
        assert!(!c.lookup(UserId(5), 0, 1, &mut out));
    }

    #[test]
    fn colliding_users_overwrite_without_cross_talk() {
        // capacity 2, 1 shard, slots_per_shard 2: users 0 and 2 collide.
        let c = TopKCache::new(2, 1, 2);
        c.insert(UserId(0), 0, 0, &ids(&[1]));
        c.insert(UserId(2), 0, 0, &ids(&[3]));
        let mut out = Vec::new();
        assert!(!c.lookup(UserId(0), 0, 0, &mut out), "evicted by collision");
        assert!(c.lookup(UserId(2), 0, 0, &mut out));
        assert_eq!(out, ids(&[3]));
    }

    #[test]
    fn zero_capacity_disables() {
        let c = TopKCache::new(0, 4, 3);
        c.insert(UserId(1), 0, 0, &ids(&[1]));
        let mut out = Vec::new();
        assert!(!c.lookup(UserId(1), 0, 0, &mut out));
        assert_eq!(c.capacity(), 0);
    }
}
