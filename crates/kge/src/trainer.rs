//! The shared negative-sampling training loop.
//!
//! All five KGE models train the same way: iterate over the graph's
//! triples, corrupt the head or tail uniformly (Bernoulli 0.5, the
//! "unif" strategy of the papers), and hand the (positive, negative) pair
//! to the model. Corruptions that happen to be true facts are re-sampled
//! (the "filtered" convention), bounded by a retry cap so pathological
//! relations cannot loop forever.
//!
//! Models that implement the recorded-gradient pair
//! ([`KgeModel::grad_pair`] / [`KgeModel::apply_grads`]) train through the
//! **deterministic batched path**: each shuffled epoch is cut into
//! fixed-size chunks, every chunk's gradients are computed against the
//! chunk-start parameters on [`kgrec_linalg::par`] workers (one
//! [`GradBatch`] per fixed sub-batch), and the recorded ops are applied in
//! sub-batch index order. Sub-batch boundaries depend only on the data —
//! never on the worker count — so parameters, losses, and every
//! downstream metric are bit-identical at any thread count.

use crate::grad::GradBatch;
use crate::model::KgeModel;
use kgrec_graph::{EntityId, KnowledgeGraph, Triple};
use kgrec_linalg::par;
use kgrec_linalg::stability::{DivergencePolicy, LossMonitor, LossVerdict};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over all triples.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// RNG seed (corruption sampling and triple shuffling).
    pub seed: u64,
    /// Worker threads for the batched gradient path. `None` (the default)
    /// resolves through [`par::resolve_threads`] — the `KGREC_THREADS`
    /// environment variable, then the machine's available parallelism.
    /// The trained parameters are identical for every value.
    pub threads: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 30, learning_rate: 0.05, seed: 7, threads: None }
    }
}

/// Draws a corruption of `triple` that is not a known fact, replacing the
/// head or the tail with probability ½ each.
///
/// In the dense pathological case (32 filtered draws all hit known facts)
/// the filter is dropped but the corruption is still guaranteed to differ
/// from `triple`: the replacement tail is drawn from the non-zero offsets
/// of the original, so a negative can never alias its positive. The one
/// irreducible degenerate case is a single-entity graph, where no
/// distinct corruption exists and the original is returned.
pub fn corrupt<R: Rng + ?Sized>(graph: &KnowledgeGraph, triple: Triple, rng: &mut R) -> Triple {
    let n = graph.num_entities() as u32;
    for _ in 0..32 {
        let cand = if rng.gen_bool(0.5) {
            Triple::new(EntityId(rng.gen_range(0..n)), triple.rel, triple.tail)
        } else {
            Triple::new(triple.head, triple.rel, EntityId(rng.gen_range(0..n)))
        };
        if cand != triple && !graph.contains(cand.head, cand.rel, cand.tail) {
            return cand;
        }
    }
    // Dense pathological case: accept an unfiltered corruption, excluding
    // the original tail by sampling an offset in [1, n).
    if n < 2 {
        return triple;
    }
    let tail = EntityId((triple.tail.0 + rng.gen_range(1..n)) % n);
    Triple::new(triple.head, triple.rel, tail)
}

/// Sequential-path batch size: pairs handed to `train_batch` at a time.
const BATCH: usize = 64;
/// Batched-path chunk: pairs whose gradients share one frozen parameter
/// snapshot. Larger chunks amortize the fork/join of the worker pass.
const GRAD_CHUNK: usize = 256;
/// Batched-path sub-batch: pairs recorded into one [`GradBatch`]. Fixed —
/// never derived from the worker count — so the op application order is
/// identical at any thread count.
const GRAD_SUB: usize = 64;

/// Per-epoch training statistics handed to [`train_with`] observers.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean per-pair loss of the epoch.
    pub mean_loss: f32,
}

/// Observer decision after each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainControl {
    /// Keep training.
    Continue,
    /// Stop before the next epoch (early stop / divergence abort).
    Stop,
}

/// Trains `model` on every triple of `graph` for up to `config.epochs`
/// epochs, invoking `on_epoch` after each epoch with the model and the
/// epoch's statistics. Returning [`TrainControl::Stop`] ends training
/// early. Returns the mean per-pair loss curve of the epochs that ran.
///
/// The observer receives `&mut M` so supervision layers can snapshot or
/// roll back parameters between epochs (see [`train_guarded`]).
///
/// # Panics
/// Panics if the model is sized for fewer entities than the graph.
pub fn train_with<M, F>(
    model: &mut M,
    graph: &KnowledgeGraph,
    config: &TrainConfig,
    on_epoch: F,
) -> Vec<f32>
where
    M: KgeModel,
    F: FnMut(&mut M, &EpochStats) -> TrainControl,
{
    train_with_from(model, graph, config, 0, on_epoch)
}

/// [`train_with`] starting at `start_epoch` instead of 0: the warm-start
/// entry point of checkpoint resume (see [`crate::checkpoint`]).
///
/// The RNG draws of epochs `0..start_epoch` are replayed without training
/// — shuffles and corruption draws depend only on the data, never on the
/// parameters — so a run resumed from an epoch-`k` checkpoint consumes
/// exactly the RNG stream an uninterrupted run would have at epoch `k`,
/// and finishes with bit-identical parameters. `EpochStats::epoch` and the
/// loss curve cover the epochs that actually run (`start_epoch..epochs`).
///
/// # Panics
/// Panics if the model is sized for fewer entities than the graph.
pub fn train_with_from<M, F>(
    model: &mut M,
    graph: &KnowledgeGraph,
    config: &TrainConfig,
    start_epoch: usize,
    mut on_epoch: F,
) -> Vec<f32>
where
    M: KgeModel,
    F: FnMut(&mut M, &EpochStats) -> TrainControl,
{
    assert!(
        model.num_entities() >= graph.num_entities(),
        "train: model sized for fewer entities than the graph"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..graph.num_triples()).collect();
    // Burn the RNG stream of already-completed epochs. Corruption draws
    // happen in shuffled-triple order in the real loop regardless of chunk
    // size, so this replays the exact per-epoch draw sequence.
    for _ in 0..start_epoch.min(config.epochs) {
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &idx in &order {
            let _ = corrupt(graph, graph.triple_at(idx), &mut rng);
        }
    }
    let mut curve = Vec::with_capacity(config.epochs.saturating_sub(start_epoch));
    // Reusable batch buffers: corruption draws are front-loaded per chunk
    // so the model sees a contiguous slice of pairs instead of an
    // alternating sample/update cadence. The RNG stream is identical to
    // the per-pair loop because training never touches the RNG, and the
    // loss accumulation order is identical because losses are reported in
    // pair order. Chunk size does not affect the RNG stream either — only
    // the draw *order* matters, and that is always triple order.
    let batched = model.supports_grad_batches();
    let threads = par::resolve_threads(config.threads);
    let mut pairs: Vec<(Triple, Triple)> =
        Vec::with_capacity(if batched { GRAD_CHUNK } else { BATCH });
    let mut losses: Vec<f32> = Vec::with_capacity(BATCH);
    // Free-list of gradient arenas, reused across chunks and epochs so the
    // steady state allocates nothing (the batched-path analogue of the
    // models' `Scratch`).
    let pool: Mutex<Vec<GradBatch>> = Mutex::new(Vec::new());
    for epoch in start_epoch..config.epochs {
        // Fresh shuffle per epoch.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut total = 0.0f64;
        if batched {
            for chunk in order.chunks(GRAD_CHUNK) {
                pairs.clear();
                for &idx in chunk {
                    let pos = graph.triple_at(idx);
                    pairs.push((pos, corrupt(graph, pos, &mut rng)));
                }
                // Sub-batch boundaries are fixed by GRAD_SUB, independent
                // of the worker count; par_map returns in input order.
                let subs: Vec<&[(Triple, Triple)]> = pairs.chunks(GRAD_SUB).collect();
                let frozen: &M = model;
                let batches = par::par_map(&subs, threads, |_, sub| {
                    let mut gb = pool
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .pop()
                        .unwrap_or_default();
                    gb.clear();
                    for &(pos, neg) in *sub {
                        let loss = frozen.grad_pair(pos, neg, &mut gb);
                        gb.push_loss(loss);
                    }
                    gb
                });
                for gb in batches {
                    model.apply_grads(&gb, config.learning_rate);
                    for &loss in gb.losses() {
                        total += f64::from(loss);
                    }
                    // kglint::allow(SA003, free-list pool; grads already applied in input order)
                    pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(gb);
                }
            }
        } else {
            for chunk in order.chunks(BATCH) {
                pairs.clear();
                for &idx in chunk {
                    let pos = graph.triple_at(idx);
                    pairs.push((pos, corrupt(graph, pos, &mut rng)));
                }
                losses.clear();
                model.train_batch(&pairs, config.learning_rate, &mut losses);
                debug_assert_eq!(losses.len(), pairs.len(), "train_batch must report every pair");
                for &loss in &losses {
                    total += f64::from(loss);
                }
            }
        }
        model.post_epoch();
        let denom = order.len().max(1) as f64;
        let mean_loss = (total / denom) as f32;
        curve.push(mean_loss);
        if on_epoch(model, &EpochStats { epoch, mean_loss }) == TrainControl::Stop {
            break;
        }
    }
    curve
}

/// Trains `model` on every triple of `graph` for `config.epochs` epochs.
/// Returns the mean per-pair loss of each epoch (a monitoring curve).
pub fn train<M: KgeModel>(model: &mut M, graph: &KnowledgeGraph, config: &TrainConfig) -> Vec<f32> {
    train_with(model, graph, config, |_, _| TrainControl::Continue)
}

/// What [`train_guarded`] did.
#[derive(Debug, Clone)]
pub struct GuardedReport {
    /// Mean per-pair loss of every epoch that ran (includes the epoch
    /// that tripped the monitor, when one did).
    pub curve: Vec<f32>,
    /// Epoch at which the monitor aborted training, if it did.
    pub aborted_at: Option<usize>,
    /// Whether the model was rolled back to the last-good snapshot.
    pub rolled_back: bool,
    /// Human-readable abort reason when `aborted_at` is set.
    pub reason: Option<String>,
}

impl GuardedReport {
    /// Whether training ran to completion without tripping the monitor.
    pub fn completed(&self) -> bool {
        self.aborted_at.is_none()
    }

    /// Whether the final parameters are usable: either training completed,
    /// or it aborted but was rolled back to a healthy snapshot.
    pub fn usable(&self) -> bool {
        self.completed() || self.rolled_back
    }
}

/// Trains under a [`LossMonitor`]: each epoch's mean loss is checked for
/// NaN/∞ and divergence, parameters are snapshotted at every
/// loss-improving epoch, and on abort the model is rolled back to the
/// last-good snapshot (when one exists — a first-epoch explosion leaves
/// nothing to roll back to, and `usable()` reports it).
pub fn train_guarded<M: KgeModel + Clone>(
    model: &mut M,
    graph: &KnowledgeGraph,
    config: &TrainConfig,
    policy: DivergencePolicy,
) -> GuardedReport {
    let mut monitor = LossMonitor::new(policy);
    let mut snapshot: Option<M> = None;
    let mut abort: Option<(usize, LossVerdict, f32)> = None;
    let curve = train_with(model, graph, config, |m, stats| {
        match monitor.observe(stats.mean_loss) {
            LossVerdict::Healthy => {
                // `best_loss` equals this epoch's loss exactly when the
                // epoch improved on (or tied) every loss before it. The
                // snapshot is written into a preallocated buffer
                // (`clone_from` reuses the tables' allocations), so only
                // the first accepted epoch pays for allocation.
                if monitor.best_loss() == Some(stats.mean_loss) {
                    match &mut snapshot {
                        Some(s) => s.clone_from(m),
                        None => snapshot = Some(m.clone()),
                    }
                }
                TrainControl::Continue
            }
            verdict => {
                abort = Some((stats.epoch, verdict, stats.mean_loss));
                TrainControl::Stop
            }
        }
    });
    let mut rolled_back = false;
    let (aborted_at, reason) = match abort {
        None => (None, None),
        Some((epoch, verdict, loss)) => {
            if let Some(s) = snapshot {
                *model = s;
                rolled_back = true;
            }
            let why = match verdict {
                LossVerdict::NonFinite => format!("non-finite epoch loss {loss}"),
                LossVerdict::Diverging => match monitor.best_loss() {
                    Some(best) => format!("loss {loss} diverged from best {best}"),
                    None => format!("loss {loss} above the divergence ceiling"),
                },
                LossVerdict::Healthy => unreachable!("healthy verdicts never abort"),
            };
            (Some(epoch), Some(why))
        }
    };
    GuardedReport { curve, aborted_at, rolled_back, reason }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transe::TransE;
    use kgrec_graph::KgBuilder;

    fn toy_graph() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let ty = b.entity_type("t");
        let es: Vec<_> = (0..8).map(|i| b.entity(&format!("e{i}"), ty)).collect();
        let r = b.relation("r");
        // Two clusters linked internally: facts are within-cluster edges.
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    b.triple(es[i], r, es[j]);
                }
            }
        }
        for i in 4..8 {
            for j in 4..8 {
                if i != j {
                    b.triple(es[i], r, es[j]);
                }
            }
        }
        b.build(false)
    }

    #[test]
    fn corrupt_avoids_known_facts() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let pos = g.triple_at(0);
        for _ in 0..100 {
            let neg = corrupt(&g, pos, &mut rng);
            assert_ne!(neg, pos);
            // With 8 entities and within-cluster facts only, filtering
            // nearly always succeeds; tolerate the rare fallback.
        }
    }

    #[test]
    fn loss_curve_decreases() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        let curve = train(
            &mut m,
            &g,
            &TrainConfig { epochs: 25, learning_rate: 0.05, seed: 3, threads: None },
        );
        assert_eq!(curve.len(), 25);
        let head: f32 = curve[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = curve[20..].iter().sum::<f32>() / 5.0;
        assert!(tail < head, "loss should fall: head={head} tail={tail}");
    }

    #[test]
    fn trained_model_ranks_facts_above_nonfacts() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 16, 1.0);
        train(&mut m, &g, &TrainConfig { epochs: 60, learning_rate: 0.05, seed: 5, threads: None });
        // Mean score of facts vs. cross-cluster non-facts.
        let fact_mean: f32 = g.iter_triples().map(|t| m.score(t.head, t.rel, t.tail)).sum::<f32>()
            / g.num_triples() as f32;
        let mut non_mean = 0.0f32;
        let mut count = 0;
        for i in 0..4u32 {
            for j in 4..8u32 {
                non_mean += m.score(EntityId(i), kgrec_graph::RelationId(0), EntityId(j));
                count += 1;
            }
        }
        non_mean /= count as f32;
        assert!(fact_mean > non_mean, "facts {fact_mean} vs non-facts {non_mean}");
    }

    #[test]
    #[should_panic(expected = "model sized for fewer entities")]
    fn size_mismatch_rejected() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = TransE::new(&mut rng, 2, 1, 4, 1.0);
        train(&mut m, &g, &TrainConfig::default());
    }

    /// A graph where *every* (head, rel, tail) combination is a fact, so
    /// filtered corruption always fails and the dense fallback runs.
    fn complete_graph(n: usize) -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let ty = b.entity_type("t");
        let es: Vec<_> = (0..n).map(|i| b.entity(&format!("e{i}"), ty)).collect();
        let r = b.relation("r");
        for &h in &es {
            for &t in &es {
                b.triple(h, r, t);
            }
        }
        b.build(false)
    }

    #[test]
    fn dense_fallback_never_returns_the_original_triple() {
        // Regression: the old fallback re-sampled the tail uniformly and
        // could alias the positive, training the model to push a fact
        // away from itself.
        let g = complete_graph(3);
        let mut rng = StdRng::seed_from_u64(11);
        for pos in g.iter_triples() {
            for _ in 0..200 {
                let neg = corrupt(&g, pos, &mut rng);
                assert_ne!(neg, pos, "fallback corruption aliased the positive {pos:?}");
            }
        }
    }

    #[test]
    fn single_entity_graph_degenerates_to_identity() {
        let g = complete_graph(1);
        let mut rng = StdRng::seed_from_u64(12);
        let pos = g.triple_at(0);
        // No distinct corruption exists; the degenerate original comes
        // back instead of an out-of-range entity id.
        assert_eq!(corrupt(&g, pos, &mut rng), pos);
    }

    #[test]
    fn observer_can_stop_early() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(13);
        let mut m = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        let cfg = TrainConfig { epochs: 30, learning_rate: 0.05, seed: 14, threads: None };
        let curve = train_with(&mut m, &g, &cfg, |_, stats| {
            if stats.epoch >= 4 {
                TrainControl::Stop
            } else {
                TrainControl::Continue
            }
        });
        assert_eq!(curve.len(), 5, "stopped after the 5th epoch");
    }

    #[test]
    fn guarded_healthy_run_completes_without_rollback() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(15);
        let mut m = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        let cfg = TrainConfig { epochs: 20, learning_rate: 0.05, seed: 16, threads: None };
        let report = train_guarded(&mut m, &g, &cfg, DivergencePolicy::default());
        assert!(report.completed());
        assert!(report.usable());
        assert!(!report.rolled_back);
        assert_eq!(report.curve.len(), 20);
    }

    /// Scripted-loss mock: returns `script[epoch]` from every
    /// `train_pair` and mutates a state marker each epoch, so rollback is
    /// observable.
    #[derive(Clone)]
    struct Scripted {
        script: Vec<f32>,
        pairs_per_epoch: usize,
        pairs_seen: usize,
        state: Vec<f32>,
    }

    impl KgeModel for Scripted {
        fn dim(&self) -> usize {
            1
        }
        fn num_entities(&self) -> usize {
            1024
        }
        fn num_relations(&self) -> usize {
            8
        }
        fn score(&self, _h: EntityId, _r: kgrec_graph::RelationId, _t: EntityId) -> f32 {
            0.0
        }
        fn entity_embedding(&self, _e: EntityId) -> &[f32] {
            &self.state
        }
        fn relation_embedding(&self, _r: kgrec_graph::RelationId) -> &[f32] {
            &self.state
        }
        fn train_pair(&mut self, _pos: Triple, _neg: Triple, _lr: f32) -> f32 {
            let epoch = self.pairs_seen / self.pairs_per_epoch;
            self.pairs_seen += 1;
            self.state[0] = epoch as f32;
            self.script[epoch.min(self.script.len() - 1)]
        }
        fn name(&self) -> &'static str {
            "Scripted"
        }
    }

    fn scripted(g: &KnowledgeGraph, script: &[f32]) -> Scripted {
        Scripted {
            script: script.to_vec(),
            pairs_per_epoch: g.num_triples(),
            pairs_seen: 0,
            state: vec![-1.0],
        }
    }

    #[test]
    fn guarded_rolls_back_to_last_good_epoch_on_divergence() {
        let g = toy_graph();
        // Improves through epoch 2, then explodes. patience=2 aborts at
        // epoch 4 (two consecutive epochs above 4× best=0.2).
        let script = [1.0, 0.5, 0.2, 50.0, 60.0, 70.0];
        let mut m = scripted(&g, &script);
        let cfg = TrainConfig { epochs: script.len(), learning_rate: 0.1, seed: 17, threads: None };
        let policy = DivergencePolicy { factor: 4.0, patience: 2, max_loss: 1e6 };
        let report = train_guarded(&mut m, &g, &cfg, policy);
        assert_eq!(report.aborted_at, Some(4));
        assert!(report.rolled_back);
        assert!(report.usable());
        // Rolled back to the snapshot taken after epoch 2 (the best).
        assert_eq!(m.state[0], 2.0, "state must be the epoch-2 snapshot");
        assert!(report.reason.unwrap().contains("diverged"));
    }

    #[test]
    fn guarded_aborts_on_nan_loss_immediately() {
        let g = toy_graph();
        let script = [0.8, f32::NAN, 0.1];
        let mut m = scripted(&g, &script);
        let cfg = TrainConfig { epochs: script.len(), learning_rate: 0.1, seed: 18, threads: None };
        let report = train_guarded(&mut m, &g, &cfg, DivergencePolicy::default());
        assert_eq!(report.aborted_at, Some(1));
        assert!(report.rolled_back, "epoch 0 was healthy, so a snapshot exists");
        assert_eq!(m.state[0], 0.0);
        assert!(report.reason.unwrap().contains("non-finite"));
    }

    #[test]
    fn guarded_first_epoch_explosion_is_unusable() {
        let g = toy_graph();
        let script = [f32::INFINITY];
        let mut m = scripted(&g, &script);
        let cfg = TrainConfig { epochs: 5, learning_rate: 0.1, seed: 19, threads: None };
        let report = train_guarded(&mut m, &g, &cfg, DivergencePolicy::default());
        assert_eq!(report.aborted_at, Some(0));
        assert!(!report.rolled_back, "no healthy snapshot exists");
        assert!(!report.usable());
    }
}
