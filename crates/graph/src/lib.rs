//! Knowledge-graph / heterogeneous-information-network substrate.
//!
//! This crate implements the structural concepts of Section 3 of the survey
//! ("A Survey on Knowledge Graph-Based Recommender Systems"):
//!
//! * **HIN / KG** — [`KnowledgeGraph`]: a directed multigraph whose nodes
//!   are typed entities and whose edges are `(head, relation, tail)`
//!   triples, stored in CSR form for cache-friendly traversal;
//! * **Meta-path / meta-graph** — [`metapath::MetaPath`] and
//!   [`metapath::MetaGraph`], relation-type sequences and their unions,
//!   with commuting-count computation;
//! * **PathSim** — [`pathsim`], the meta-path similarity of Sun et al.
//!   (Eq. 12 of the survey);
//! * **H-hop neighbors, relevant entities, ripple sets** —
//!   [`ripple`], the preference-propagation sets used by RippleNet / AKUPM
//!   (Section 3 definitions);
//! * **Path enumeration** — [`paths`], bounded DFS between entity pairs,
//!   the substrate for the RKGE / KPRN / explanation machinery;
//! * **Neighbor sampling** — [`sample`], the fixed-size receptive fields of
//!   KGCN-style models.
//!
//! Entities and relations are dense `u32` newtypes; the crate never uses a
//! hash map on a hot path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod csr;
pub mod graph;
pub mod ids;
pub mod metapath;
pub mod paths;
pub mod pathsim;
pub mod ripple;
pub mod sample;

pub use builder::KgBuilder;
pub use csr::{CsrAdjacency, CsrViolation};
pub use graph::KnowledgeGraph;
pub use ids::{id32, EntityId, EntityTypeId, RelationId, Triple};
pub use metapath::{MetaGraph, MetaPath};
