//! Bayesian Personalized Ranking matrix factorization (Rendle et al.).
//!
//! The model-based CF baseline (latent factor model, survey Section 2.2):
//! `ŷ = uᵀv + b_v`, trained with the pairwise BPR objective
//! `−log σ(ŷ_pos − ŷ_neg)` over sampled `(user, pos, neg)` triples.

use crate::common::{baseline_taxonomy, sample_observed};
use kgrec_core::{CoreError, Recommender, Taxonomy, TrainContext};
use kgrec_data::negative::sample_negative;
use kgrec_data::{ItemId, UserId};
use kgrec_linalg::{vector, EmbeddingTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// BPR-MF hyper-parameters.
#[derive(Debug, Clone)]
pub struct BprMfConfig {
    /// Latent dimension.
    pub dim: usize,
    /// Training epochs (each epoch samples `|R|` triples).
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// L2 regularization.
    pub l2: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BprMfConfig {
    fn default() -> Self {
        Self { dim: 16, epochs: 30, learning_rate: 0.05, l2: 1e-4, seed: 17 }
    }
}

/// BPR matrix factorization.
#[derive(Debug)]
pub struct BprMf {
    /// Hyper-parameters.
    pub config: BprMfConfig,
    users: EmbeddingTable,
    items: EmbeddingTable,
    item_bias: Vec<f32>,
}

impl BprMf {
    /// Creates an unfitted model.
    pub fn new(config: BprMfConfig) -> Self {
        Self {
            config,
            users: EmbeddingTable::zeros(0, 1),
            items: EmbeddingTable::zeros(0, 1),
            item_bias: Vec::new(),
        }
    }

    /// Creates a model with default hyper-parameters.
    pub fn default_config() -> Self {
        Self::new(BprMfConfig::default())
    }

    /// The learned user factors (available after `fit`).
    pub fn user_factors(&self) -> &EmbeddingTable {
        &self.users
    }

    /// The learned item factors (available after `fit`).
    pub fn item_factors(&self) -> &EmbeddingTable {
        &self.items
    }
}

impl Recommender for BprMf {
    fn name(&self) -> &'static str {
        "BPR-MF"
    }

    fn fit_epochs(&self) -> usize {
        self.config.epochs
    }

    fn taxonomy(&self) -> Taxonomy {
        baseline_taxonomy("BPR-MF")
    }

    fn prepare_retry(&mut self, attempt: u32) -> bool {
        self.config.learning_rate *= 0.5;
        self.config.seed = self.config.seed.wrapping_add(u64::from(attempt)).wrapping_mul(31);
        true
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        if self.config.dim == 0 {
            return Err(CoreError::InvalidConfig { message: "dim must be positive".into() });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let scale = 1.0 / (self.config.dim as f32).sqrt();
        self.users = EmbeddingTable::uniform(&mut rng, ctx.num_users(), self.config.dim, scale);
        self.items = EmbeddingTable::uniform(&mut rng, ctx.num_items(), self.config.dim, scale);
        self.item_bias = vec![0.0; ctx.num_items()];
        let (lr, l2) = (self.config.learning_rate, self.config.l2);
        let steps = ctx.train.num_interactions() * self.config.epochs;
        for _ in 0..steps {
            let Some((u, pos)) = sample_observed(ctx.train, &mut rng) else { break };
            let Some(neg) = sample_negative(ctx.train, u, &mut rng) else { continue };
            let uv = self.users.row(u.index()).to_vec();
            let pv = self.items.row(pos.index()).to_vec();
            let nv = self.items.row(neg.index()).to_vec();
            let x = vector::dot(&uv, &pv) + self.item_bias[pos.index()]
                - vector::dot(&uv, &nv)
                - self.item_bias[neg.index()];
            // dL/dx for L = −log σ(x): −σ(−x).
            let g = -vector::sigmoid(-x);
            // u ← u − lr (g (p − n) + l2 u), etc.
            let urow = self.users.row_mut(u.index());
            for i in 0..urow.len() {
                urow[i] -= lr * (g * (pv[i] - nv[i]) + l2 * urow[i]);
            }
            let prow = self.items.row_mut(pos.index());
            for i in 0..prow.len() {
                prow[i] -= lr * (g * uv[i] + l2 * prow[i]);
            }
            let nrow = self.items.row_mut(neg.index());
            for i in 0..nrow.len() {
                nrow[i] -= lr * (-g * uv[i] + l2 * nrow[i]);
            }
            self.item_bias[pos.index()] -= lr * (g + l2 * self.item_bias[pos.index()]);
            self.item_bias[neg.index()] -= lr * (-g + l2 * self.item_bias[neg.index()]);
        }
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.users.row_dot(user.index(), &self.items, item.index()) + self.item_bias[item.index()]
    }

    fn num_items(&self) -> usize {
        self.items.len()
    }

    fn persistable(&self) -> Option<&dyn kgrec_store::Persistable> {
        Some(self)
    }

    fn persistable_mut(&mut self) -> Option<&mut dyn kgrec_store::Persistable> {
        Some(self)
    }
}

impl kgrec_store::Persistable for BprMf {
    fn snapshot_id(&self) -> &'static str {
        "baseline.bprmf"
    }

    fn config_hash(&self) -> u64 {
        let dim = format!("dim={}", self.config.dim);
        let epochs = format!("epochs={}", self.config.epochs);
        let lr = format!("lr={:08x}", self.config.learning_rate.to_bits());
        let l2 = format!("l2={:08x}", self.config.l2.to_bits());
        let seed = format!("seed={}", self.config.seed);
        kgrec_store::config_hash(&[&dim, &epochs, &lr, &l2, &seed])
    }

    fn snapshot_seed(&self) -> u64 {
        self.config.seed
    }

    fn write_state(
        &self,
        writer: &mut kgrec_store::SnapshotWriter,
    ) -> Result<(), kgrec_store::StoreError> {
        writer.add("users", crate::persist::table_section(&self.users))?;
        writer.add("items", crate::persist::table_section(&self.items))?;
        writer.add("bias", crate::persist::vec_section(&self.item_bias))
    }

    fn read_state(
        &mut self,
        reader: &kgrec_store::SnapshotReader,
    ) -> Result<(), kgrec_store::StoreError> {
        // Gather everything before committing anything.
        let (urows, udim, udata) = crate::persist::read_table(reader, "users", &self.users)?;
        let (irows, idim, idata) = crate::persist::read_table(reader, "items", &self.items)?;
        let bias = crate::persist::read_vec(reader, "bias", &self.item_bias)?;
        for (name, dim) in [("users", udim), ("items", idim)] {
            if dim != self.config.dim {
                return Err(kgrec_store::StoreError::ShapeMismatch {
                    section: name.to_string(),
                    detail: format!("stored dim {dim}, configured dim {}", self.config.dim),
                });
            }
        }
        if bias.len() != irows {
            return Err(kgrec_store::StoreError::ShapeMismatch {
                section: "bias".to_string(),
                detail: format!("{} biases for {irows} items", bias.len()),
            });
        }
        self.users = crate::persist::table_from(urows, udim, &udata);
        self.items = crate::persist::table_from(irows, idim, &idata);
        self.item_bias = bias;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::protocol::evaluate_ctr;
    use kgrec_data::negative::labeled_eval_set;
    use kgrec_data::split::ratio_split;
    use kgrec_data::synth::{generate, ScenarioConfig};

    #[test]
    fn learns_planted_preferences_above_chance() {
        let synth = generate(&ScenarioConfig::tiny(), 42);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = BprMf::new(BprMfConfig { epochs: 40, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        let rep = evaluate_ctr(&m, &pairs);
        assert!(rep.auc > 0.6, "AUC {}", rep.auc);
    }

    #[test]
    fn deterministic_given_seed() {
        let synth = generate(&ScenarioConfig::tiny(), 7);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 2);
        let ctx = TrainContext::new(&synth.dataset, &split.train);
        let mut a = BprMf::default_config();
        let mut b = BprMf::default_config();
        a.fit(&ctx).unwrap();
        b.fit(&ctx).unwrap();
        assert_eq!(a.score(UserId(0), ItemId(0)), b.score(UserId(0), ItemId(0)));
    }

    #[test]
    fn zero_dim_rejected() {
        let synth = generate(&ScenarioConfig::tiny(), 7);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 2);
        let mut m = BprMf::new(BprMfConfig { dim: 0, ..Default::default() });
        assert!(m.fit(&TrainContext::new(&synth.dataset, &split.train)).is_err());
    }
}
