//! Criterion microbenches: one training step of the propagation-based
//! (unified) models — the per-interaction cost the survey's §6 notes is
//! the scalability bottleneck of GNN-style recommenders.

use criterion::{criterion_group, criterion_main, Criterion};
use kgrec_bench::standard_split;
use kgrec_core::{Recommender, TrainContext};
use kgrec_data::synth::{generate, ScenarioConfig};
use kgrec_models::unified::{
    AkupmLite, AkupmLiteConfig, Kgcn, KgcnConfig, RippleNet, RippleNetConfig,
};

fn bench_propagation(c: &mut Criterion) {
    let synth = generate(&ScenarioConfig::tiny(), 3);
    let split = standard_split(&synth, 7);
    let ctx = TrainContext::new(&synth.dataset, &split.train);

    c.bench_function("fit_epoch_ripplenet", |b| {
        b.iter(|| {
            let mut m = RippleNet::new(RippleNetConfig { epochs: 1, ..Default::default() });
            m.fit(&ctx).unwrap();
        });
    });
    c.bench_function("fit_epoch_kgcn", |b| {
        b.iter(|| {
            let mut m = Kgcn::new(KgcnConfig { epochs: 1, ..Default::default() });
            m.fit(&ctx).unwrap();
        });
    });
    c.bench_function("fit_epoch_akupm", |b| {
        b.iter(|| {
            let mut m =
                AkupmLite::new(AkupmLiteConfig { epochs: 1, kge_epochs: 1, ..Default::default() });
            m.fit(&ctx).unwrap();
        });
    });
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
