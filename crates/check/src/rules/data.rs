//! Dataset- and split-hygiene rules (`DS0xx`).

use crate::bundle::CheckBundle;
use crate::diagnostic::{Diagnostic, Severity, Subject};
use crate::rules::Rule;
use kgrec_data::{ItemId, UserId};

/// `DS001`: no empty rows in the interaction matrix.
///
/// A user with zero interactions can never be trained or evaluated
/// (warning); an item nobody interacted with is common in real catalogs
/// and merely reported (info).
pub struct EmptyRows;

impl Rule for EmptyRows {
    fn code(&self) -> &'static str {
        "DS001"
    }

    fn summary(&self) -> &'static str {
        "every user and item row of the interaction matrix is non-empty"
    }

    fn check(&self, bundle: &CheckBundle<'_>) -> Vec<Diagnostic> {
        let m = &bundle.dataset.interactions;
        let mut out = Vec::new();
        for u in 0..m.num_users() {
            if m.user_degree(UserId(u as u32)) == 0 {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Warning,
                    Subject::User(u as u32),
                    "no interactions; the user cannot be trained or evaluated".to_owned(),
                ));
            }
        }
        let empty_items =
            (0..m.num_items()).filter(|&i| m.item_degree(ItemId(i as u32)) == 0).count();
        if empty_items > 0 {
            out.push(Diagnostic::new(
                self.code(),
                Severity::Info,
                Subject::Dataset,
                format!(
                    "{empty_items} of {} items have no interactions (cold items)",
                    m.num_items()
                ),
            ));
        }
        out
    }
}

/// `DS002`: the test set leaks nothing into train.
///
/// A `(user, item)` pair present in both halves inflates every metric —
/// the model is literally shown the answer.
pub struct SplitLeakage;

impl Rule for SplitLeakage {
    fn code(&self) -> &'static str {
        "DS002"
    }

    fn summary(&self) -> &'static str {
        "no (user, item) pair appears in both train and test"
    }

    fn check(&self, bundle: &CheckBundle<'_>) -> Vec<Diagnostic> {
        let Some(split) = bundle.split else {
            return Vec::new();
        };
        // Guard: dimension mismatches are DS003's finding; comparing rows
        // across mismatched universes would index out of bounds.
        if split.train.num_users() != split.test.num_users()
            || split.train.num_items() != split.test.num_items()
        {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (u, i, _) in split.test.iter() {
            if split.train.contains(u, i) {
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    Subject::User(u.0),
                    format!("test interaction (user {}, item {}) also present in train", u.0, i.0),
                ));
            }
        }
        out
    }
}

/// `DS003`: all matrices and eval pairs agree on the id spaces.
///
/// Checks the split halves against the dataset's `(m, n)` and every eval
/// pair against the same bounds. Mismatches turn into silent truncation
/// or out-of-bounds panics deep inside training loops.
pub struct IdSpaceMismatch;

impl Rule for IdSpaceMismatch {
    fn code(&self) -> &'static str {
        "DS003"
    }

    fn summary(&self) -> &'static str {
        "split matrices and eval pairs share the dataset's user/item id spaces"
    }

    fn check(&self, bundle: &CheckBundle<'_>) -> Vec<Diagnostic> {
        let m = &bundle.dataset.interactions;
        let (nu, ni) = (m.num_users(), m.num_items());
        let mut out = Vec::new();
        if let Some(split) = bundle.split {
            for (label, half) in [("train", &split.train), ("test", &split.test)] {
                if half.num_users() != nu || half.num_items() != ni {
                    out.push(Diagnostic::new(
                        self.code(),
                        Severity::Error,
                        Subject::Split,
                        format!(
                            "{label} matrix is {}x{} but the dataset is {nu}x{ni}",
                            half.num_users(),
                            half.num_items()
                        ),
                    ));
                }
            }
        }
        if let Some(pairs) = bundle.eval_pairs {
            for (k, p) in pairs.iter().enumerate() {
                if p.user.index() >= nu || p.item.index() >= ni {
                    out.push(Diagnostic::new(
                        self.code(),
                        Severity::Error,
                        Subject::EvalSet,
                        format!(
                            "pair #{k} (user {}, item {}) outside the {nu}x{ni} id space",
                            p.user.0, p.item.0
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// `DS004`: negative eval pairs are genuinely negative.
///
/// A pair labeled negative that the user actually interacted with (in
/// train or test) poisons CTR metrics in the pessimistic direction and
/// usually indicates a broken sampler.
pub struct NegativeCollisions;

impl Rule for NegativeCollisions {
    fn code(&self) -> &'static str {
        "DS004"
    }

    fn summary(&self) -> &'static str {
        "eval pairs labeled negative collide with no observed positive"
    }

    fn check(&self, bundle: &CheckBundle<'_>) -> Vec<Diagnostic> {
        let Some(pairs) = bundle.eval_pairs else {
            return Vec::new();
        };
        let m = &bundle.dataset.interactions;
        let (nu, ni) = (m.num_users(), m.num_items());
        let mut out = Vec::new();
        for (k, p) in pairs.iter().enumerate() {
            if p.positive || p.user.index() >= nu || p.item.index() >= ni {
                continue; // out-of-range pairs are DS003's finding
            }
            let in_train = bundle.train().contains(p.user, p.item);
            let in_test = bundle.split.is_some_and(|s| s.test.contains(p.user, p.item));
            if in_train || in_test {
                let wh = if in_train { "train" } else { "test" };
                out.push(Diagnostic::new(
                    self.code(),
                    Severity::Error,
                    Subject::EvalSet,
                    format!(
                        "pair #{k} (user {}, item {}) labeled negative but observed in {wh}",
                        p.user.0, p.item.0
                    ),
                ));
            }
        }
        out
    }
}
