//! The crash drill: end-to-end proof that checkpoint recovery survives
//! every storage fault.
//!
//! For each [`kgrec_store::StorageFault`], the drill trains a model with
//! per-epoch checkpointing, corrupts the checkpoint directory the way a
//! crashing process or failing disk would, then "restarts the process"
//! (fresh model, different init seed) and resumes. The drill passes only
//! if every recovery is graceful — resume from the last good generation,
//! or fall back to fresh training — with no panic and final parameters
//! bit-identical to an uninterrupted run.
//!
//! Usage:
//! `cargo run --release -p kgrec-bench --bin crash_drill -- [--dir DIR]`
//!
//! * `--dir DIR` — root directory for the drill's checkpoint stores
//!   (default: `target/crash_drill`). The surviving `MANIFEST` of the
//!   last drill is copied to `DIR/MANIFEST` so CI can upload it as an
//!   artifact.
//!
//! Exits non-zero when any fault's recovery fails — CI runs this as a
//! release gate.

use kgrec_bench::storage_drill::run_storage_drill;
use kgrec_store::{CheckpointStore, StorageFault, MANIFEST_FILE};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let root: PathBuf = {
        let mut dir = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--dir" {
                dir = it.next().map(PathBuf::from);
            } else if let Some(v) = a.strip_prefix("--dir=") {
                dir = Some(PathBuf::from(v));
            }
        }
        dir.unwrap_or_else(|| PathBuf::from("target/crash_drill"))
    };

    println!("crash drill: checkpoint recovery under every storage fault");
    println!("checkpoint root: {}", root.display());
    println!();

    let mut failures = 0usize;
    let mut last_store_dir = None;
    for fault in StorageFault::all() {
        let dir = root.join(fault.label());
        let outcome = run_storage_drill(fault, &dir);
        println!("{}", outcome.describe());
        if !outcome.passed() {
            failures += 1;
        }
        last_store_dir = Some(dir);
    }

    // Surface the surviving manifest of the last drill as the CI artifact:
    // it records which generations recovery could still trust.
    if let Some(dir) = last_store_dir {
        if let Ok(store) = CheckpointStore::open(&dir) {
            match store.manifest() {
                Ok(entries) => {
                    println!("\nsurviving manifest ({}):", dir.join(MANIFEST_FILE).display());
                    for e in &entries {
                        println!(
                            "  gen {} bytes={} crc={:08x} note={}",
                            e.number, e.bytes, e.crc, e.note
                        );
                    }
                    if let Ok(text) = std::fs::read_to_string(store.manifest_path()) {
                        let out = root.join(MANIFEST_FILE);
                        if std::fs::write(&out, text).is_ok() {
                            println!("manifest artifact -> {}", out.display());
                        }
                    }
                }
                Err(e) => println!("\nsurviving manifest unreadable: {e}"),
            }
        }
    }

    if failures > 0 {
        eprintln!("\ncrash drill FAILED: {failures} fault(s) did not recover gracefully");
        std::process::exit(1);
    }
    println!("\ncrash drill passed: every storage fault recovered gracefully");
}
