//! Harness utilities shared by the table/figure binaries and the
//! evaluation suite.
//!
//! The binaries in `src/bin/` regenerate the survey's tables and figure:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — commonly used knowledge graphs |
//! | `table3` | Table 3 — the method taxonomy (full literature + implemented subset) |
//! | `table4` | Table 4 — datasets per scenario |
//! | `figure1` | Figure 1 — the explainable movie-recommendation example |
//! | `eval_suite` | the survey's qualitative claims, measured |
//! | `ablation` | design-choice ablations (KGCN aggregators, RippleNet hops) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use kgrec_check::rules::RegistryConsistency;
use kgrec_check::{default_model_hyperparams, CheckBundle, CheckReport};
use kgrec_core::protocol::{evaluate_ctr, evaluate_topk};
use kgrec_core::{Recommender, TrainContext};
use kgrec_data::negative::labeled_eval_set;
use kgrec_data::split::{ratio_split, Split};
use kgrec_data::synth::{generate, ScenarioConfig, SyntheticDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One row of an evaluation table.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Model name.
    pub model: &'static str,
    /// Usage-type label (`Emb.` / `Path` / `Uni.` / `baseline`).
    pub family: String,
    /// CTR AUC.
    pub auc: f64,
    /// CTR accuracy.
    pub accuracy: f64,
    /// Recall@10 (full ranking).
    pub recall_at_10: f64,
    /// NDCG@10.
    pub ndcg_at_10: f64,
    /// HitRate@10.
    pub hit_at_10: f64,
    /// Wall-clock training seconds.
    pub fit_seconds: f64,
}

/// Trains `model` on the split and evaluates it under both protocols.
///
/// Returns `None` when the model cannot fit this dataset (e.g. DKN
/// without token lists) — the caller skips the row.
pub fn evaluate_model(
    model: &mut dyn Recommender,
    synth: &SyntheticDataset,
    split: &Split,
    seed: u64,
) -> Option<EvalRow> {
    let ctx = TrainContext::new(&synth.dataset, &split.train);
    let start = Instant::now();
    if model.fit(&ctx).is_err() {
        return None;
    }
    let fit_seconds = start.elapsed().as_secs_f64();
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
    let ctr = evaluate_ctr(model, &pairs);
    let topk = evaluate_topk(model, &split.train, &split.test, &[10]);
    let family = if model.taxonomy().venue == "baseline" {
        "baseline".to_owned()
    } else {
        model.taxonomy().usage.label().to_owned()
    };
    Some(EvalRow {
        model: model.name(),
        family,
        auc: ctr.auc,
        accuracy: ctr.accuracy,
        recall_at_10: topk.cutoffs[0].recall,
        ndcg_at_10: topk.cutoffs[0].ndcg,
        hit_at_10: topk.cutoffs[0].hit_rate,
        fit_seconds,
    })
}

/// Standard split used across the harness: 20% per-user holdout.
pub fn standard_split(synth: &SyntheticDataset, seed: u64) -> Split {
    ratio_split(&synth.dataset.interactions, 0.2, seed)
}

/// Runs the full `kglint` rule set over a scenario bundle in strict mode
/// (warnings fail) before any training happens.
///
/// The harness binaries call this on every scenario; a corrupted bundle
/// aborts the run instead of producing subtly wrong tables.
///
/// # Panics
/// Panics with the rendered report when the check fails.
pub fn preflight_check(synth: &SyntheticDataset, split: &Split) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
    let bundle = CheckBundle::new(&synth.dataset)
        .with_split(split)
        .with_eval_pairs(&pairs)
        .with_hyperparams(default_model_hyperparams());
    let report = CheckReport::run(&bundle);
    if report.fails(true) {
        panic!(
            "preflight kglint failed (strict) for scenario {}:\n{}",
            synth.config.name,
            report.render()
        );
    }
}

/// Runs the registry/taxonomy consistency rule (`MD001`) in strict mode.
///
/// Called by the metadata binaries (`table3`) that render registry
/// contents without touching a dataset.
///
/// # Panics
/// Panics with the rendered report when the registry is inconsistent.
pub fn preflight_registry() {
    // MD001 ignores the bundle, but the runner needs one; tiny generates
    // in microseconds.
    let synth = generate(&ScenarioConfig::tiny(), 0);
    let bundle = CheckBundle::new(&synth.dataset);
    let report = CheckReport::run_rules(&bundle, &[Box::new(RegistryConsistency)]);
    if report.fails(true) {
        panic!("registry consistency check failed:\n{}", report.render());
    }
}

/// Prints an evaluation table in a fixed-width layout.
pub fn print_eval_table(title: &str, rows: &[EvalRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<12} {:<9} {:>7} {:>7} {:>8} {:>8} {:>7} {:>8}",
        "model", "family", "AUC", "ACC", "R@10", "NDCG@10", "HR@10", "fit(s)"
    );
    for r in rows {
        println!(
            "{:<12} {:<9} {:>7.4} {:>7.4} {:>8.4} {:>8.4} {:>7.4} {:>8.2}",
            r.model,
            r.family,
            r.auc,
            r.accuracy,
            r.recall_at_10,
            r.ndcg_at_10,
            r.hit_at_10,
            r.fit_seconds
        );
    }
}

/// Renders a plain-text table with a header and aligned columns (used by
/// the table1/table3/table4 binaries).
pub fn print_text_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<&str>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.to_vec());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_data::synth::{generate, ScenarioConfig};
    use kgrec_models::baselines::MostPop;

    #[test]
    fn evaluate_model_produces_sane_row() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        let mut model = MostPop::new();
        let row = evaluate_model(&mut model, &synth, &split, 3).unwrap();
        assert_eq!(row.model, "MostPop");
        assert!(row.auc > 0.0 && row.auc <= 1.0);
        assert!(row.recall_at_10 >= 0.0 && row.recall_at_10 <= 1.0);
    }

    #[test]
    fn text_table_does_not_panic_on_ragged_rows() {
        print_text_table(&["a", "b"], &[vec!["x".into(), "yyy".into()]]);
    }
}
