//! Design-choice ablations called out in DESIGN.md:
//!
//! * the four KGCN aggregators (survey Eqs. 30–33) — expected to sit in a
//!   narrow band, with bi-interaction generally strongest;
//! * RippleNet hop depth (1 vs 2 vs 3) — the preference-propagation
//!   radius;
//! * KGCN-LS's label-smoothness weight;
//! * the five KGE backends inside one recommendation formulation (the
//!   survey's §6 "Knowledge Graph Embedding Method" direction);
//! * user side information: the same model with and without homophilous
//!   social links folded into the user–item graph (§6).
//!
//! Usage:
//! `cargo run --release -p kgrec-bench --bin ablation [--quick]
//! [--threads N] [--no-timing]`
//!
//! Ablation variants are independent models over one shared split, so
//! they shard across the worker pool; within each variant the top-K
//! protocol additionally shards users when `--threads` exceeds the
//! variant count. Results are bit-identical for every thread count.

use kgrec_bench::{
    evaluate_model, par, preflight_check, print_eval_table_with, standard_split, threads_from_args,
    EvalRow,
};
use kgrec_core::Recommender;
use kgrec_data::split::Split;
use kgrec_data::synth::{generate, ScenarioConfig, SyntheticDataset};
use kgrec_models::embedding::{KgeBackend, KgeRecommender};
use kgrec_models::registry::kgcn_aggregator_ablation;
use kgrec_models::unified::{Kgcn, KgcnConfig, RippleNet, RippleNetConfig};
use std::sync::Mutex;

/// Evaluates the ablation variants on the pool, relabels each row with
/// its variant label, and keeps the variant order.
fn run_variants(
    variants: Vec<(Box<dyn Recommender>, String)>,
    synth: &SyntheticDataset,
    split: &Split,
    threads: usize,
) -> Vec<EvalRow> {
    let labels: Vec<String> = variants.iter().map(|(_, l)| l.clone()).collect();
    let slots: Vec<Mutex<Box<dyn Recommender>>> =
        variants.into_iter().map(|(m, _)| Mutex::new(m)).collect();
    let rows = par::par_map(&slots, threads, |_, slot| {
        let mut model = slot.lock().expect("variant slot poisoned");
        // Inner protocols stay serial here; the pool is already busy
        // with one worker per variant.
        evaluate_model(model.as_mut(), synth, split, 11, 1)
    });
    rows.into_iter()
        .zip(labels)
        .filter_map(|(row, label)| {
            row.map(|mut r| {
                r.family = label;
                r
            })
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let show_timing = !args.iter().any(|a| a == "--no-timing");
    let threads = par::resolve_threads(threads_from_args(&args));
    let cfg = if quick { ScenarioConfig::tiny() } else { ScenarioConfig::movielens_100k_like() };
    let synth = generate(&cfg, 2024);
    let split = standard_split(&synth, 7);
    preflight_check(&synth, &split);
    eprintln!("ablation: {threads} worker thread(s)");

    // KGCN aggregators.
    let variants: Vec<(Box<dyn Recommender>, String)> = kgcn_aggregator_ablation()
        .into_iter()
        .zip(["sum", "concat", "neighbor", "bi-interaction"])
        .map(|(m, l)| (m, l.to_owned()))
        .collect();
    let rows = run_variants(variants, &synth, &split, threads);
    print_eval_table_with("KGCN aggregator ablation (Eqs. 30-33)", &rows, show_timing);

    // RippleNet hops.
    let variants: Vec<(Box<dyn Recommender>, String)> = [1usize, 2, 3]
        .into_iter()
        .map(|hops| {
            let m = RippleNet::new(RippleNetConfig { hops, ..Default::default() });
            (Box::new(m) as Box<dyn Recommender>, format!("H={hops}"))
        })
        .collect();
    let rows = run_variants(variants, &synth, &split, threads);
    print_eval_table_with("RippleNet hop-depth ablation", &rows, show_timing);

    // Label-smoothness weight.
    let variants: Vec<(Box<dyn Recommender>, String)> = [0.0f32, 0.1, 0.5, 1.0]
        .into_iter()
        .map(|ls| {
            let m = Kgcn::new(KgcnConfig { ls_weight: ls, ..Default::default() });
            (Box::new(m) as Box<dyn Recommender>, format!("ls={ls}"))
        })
        .collect();
    let rows = run_variants(variants, &synth, &split, threads);
    print_eval_table_with("KGCN-LS label-smoothness weight", &rows, show_timing);

    // KGE backends inside the CFKG formulation (survey §6).
    let variants: Vec<(Box<dyn Recommender>, String)> = KgeBackend::all()
        .into_iter()
        .map(|backend| {
            let m = KgeRecommender::with_backend(backend);
            (Box::new(m) as Box<dyn Recommender>, backend.label().to_owned())
        })
        .collect();
    let rows = run_variants(variants, &synth, &split, threads);
    print_eval_table_with("KGE backend comparison (CFKG formulation)", &rows, show_timing);

    // User side information (survey §6): same model, graph with and
    // without homophilous social links. Scenarios differ per variant, so
    // this stays a serial loop with per-user parallelism inside.
    let sparse_cfg = cfg.with_sparsity_factor(0.3);
    let mut rows = Vec::new();
    for (label, scenario) in
        [("no-social", sparse_cfg.clone()), ("social", sparse_cfg.with_social_links(4))]
    {
        let synth_s = generate(&scenario, 2024);
        let split_s = standard_split(&synth_s, 7);
        preflight_check(&synth_s, &split_s);
        let mut m = KgeRecommender::with_backend(KgeBackend::TransE);
        if let Some(mut row) = evaluate_model(&mut m, &synth_s, &split_s, 11, threads) {
            row.family = label.to_owned();
            rows.push(row);
        }
    }
    print_eval_table_with("user side information (sparse regime)", &rows, show_timing);
}
