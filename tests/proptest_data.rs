//! Property-based tests for the data layer: interaction matrices, splits,
//! negative sampling, and the synthetic generator's contracts.

use kgrec_data::interactions::{Interaction, InteractionMatrix};
use kgrec_data::negative::sample_negative;
use kgrec_data::split::{leave_one_out, ratio_split};
use kgrec_data::synth::{generate, ScenarioConfig};
use kgrec_data::{ItemId, UserId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_interactions() -> impl Strategy<Value = (usize, usize, Vec<(u8, u8)>)> {
    (2usize..10, 2usize..12).prop_flat_map(|(m, n)| {
        let pairs = prop::collection::vec((0..m as u8, 0..n as u8), 0..60);
        (Just(m), Just(n), pairs)
    })
}

fn matrix(m: usize, n: usize, pairs: &[(u8, u8)]) -> InteractionMatrix {
    let inter: Vec<Interaction> = pairs
        .iter()
        .map(|&(u, i)| Interaction::implicit(UserId(u32::from(u)), ItemId(u32::from(i))))
        .collect();
    InteractionMatrix::from_interactions(m, n, &inter)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn matrix_round_trips_both_directions((m, n, pairs) in arb_interactions()) {
        let mat = matrix(m, n, &pairs);
        // User-major and item-major views agree.
        for u in 0..m {
            for &i in mat.items_of(UserId(u as u32)) {
                prop_assert!(mat.users_of(i).contains(&UserId(u as u32)));
            }
        }
        for i in 0..n {
            for &u in mat.users_of(ItemId(i as u32)) {
                prop_assert!(mat.items_of(u).contains(&ItemId(i as u32)));
            }
        }
        // Degrees sum to interactions, both ways.
        let by_user: usize = (0..m).map(|u| mat.user_degree(UserId(u as u32))).sum();
        let by_item: usize = (0..n).map(|i| mat.item_degree(ItemId(i as u32))).sum();
        prop_assert_eq!(by_user, mat.num_interactions());
        prop_assert_eq!(by_item, mat.num_interactions());
    }

    #[test]
    fn ratio_split_is_partition((m, n, pairs) in arb_interactions(), frac in 0.1f64..0.9, seed in 0u64..100) {
        let mat = matrix(m, n, &pairs);
        let split = ratio_split(&mat, frac, seed);
        prop_assert_eq!(
            split.train.num_interactions() + split.test.num_interactions(),
            mat.num_interactions()
        );
        for (u, i, _) in split.test.iter() {
            prop_assert!(mat.contains(u, i));
            prop_assert!(!split.train.contains(u, i));
        }
        // Every user with history keeps at least one train interaction.
        for u in 0..m {
            let user = UserId(u as u32);
            if mat.user_degree(user) > 0 {
                prop_assert!(split.train.user_degree(user) >= 1);
            }
        }
    }

    #[test]
    fn leave_one_out_structure((m, n, pairs) in arb_interactions(), seed in 0u64..100) {
        let mat = matrix(m, n, &pairs);
        let split = leave_one_out(&mat, seed);
        for u in 0..m {
            let user = UserId(u as u32);
            let deg = mat.user_degree(user);
            if deg >= 2 {
                prop_assert_eq!(split.test.user_degree(user), 1);
                prop_assert_eq!(split.train.user_degree(user), deg - 1);
            } else {
                prop_assert_eq!(split.test.user_degree(user), 0);
            }
        }
    }

    #[test]
    fn negative_samples_never_observed((m, n, pairs) in arb_interactions(), seed in 0u64..100) {
        let mat = matrix(m, n, &pairs);
        let mut rng = StdRng::seed_from_u64(seed);
        for u in 0..m {
            let user = UserId(u as u32);
            match sample_negative(&mat, user, &mut rng) {
                Some(item) => prop_assert!(!mat.contains(user, item)),
                None => prop_assert_eq!(mat.user_degree(user), n),
            }
        }
    }

    #[test]
    fn generator_contracts_hold(seed in 0u64..40) {
        let cfg = ScenarioConfig::tiny();
        let synth = generate(&cfg, seed);
        let data = &synth.dataset;
        // Every user has at least one interaction.
        for u in 0..cfg.num_users {
            prop_assert!(data.interactions.user_degree(UserId(u as u32)) >= 1);
        }
        // Alignment is a bijection onto "item" entities.
        let mut seen = std::collections::BTreeSet::new();
        for e in &data.item_entities {
            prop_assert!(e.index() < data.graph.num_entities());
            prop_assert!(seen.insert(e.index()), "duplicate alignment");
        }
        // Planted ground truth is structurally valid.
        prop_assert_eq!(synth.item_topics.len(), cfg.num_items);
        for w in &synth.user_topic_weights {
            let s: f32 = w.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }
}
