//! The static retrieval index: KG adjacency plus alignment maps.
//!
//! Built once per served dataset; everything in here is immutable after
//! construction, so the request path reads it lock-free. The two derived
//! structures — the dense entity→item reverse map and the
//! attribute→items reverse adjacency — exist so stage-1 retrieval never
//! scans: `item_of_entity` is O(1) (the `KgDataset::item_of` it replaces
//! is a linear scan, fine for explanation rendering but not for a hot
//! loop), and `items_with` is a slice lookup.

use kgrec_data::ItemId;
use kgrec_graph::{EntityId, KnowledgeGraph};

/// Sentinel in the entity→item map for entities that are not items.
const NOT_AN_ITEM: u32 = u32::MAX;

/// Immutable retrieval-side index over the item knowledge graph.
#[derive(Debug)]
pub struct ServeIndex {
    graph: KnowledgeGraph,
    /// `item_entities[j]` is the graph entity of item `v_j`.
    item_entities: Vec<EntityId>,
    /// Dense reverse alignment: entity index → item id + 1 semantics via
    /// [`NOT_AN_ITEM`] sentinel.
    ent_to_item: Vec<u32>,
    /// Reverse adjacency offsets: for entity `e`,
    /// `rev_items[rev_offsets[e]..rev_offsets[e+1]]` are the items with
    /// an out-edge to `e`, ascending by item id.
    rev_offsets: Vec<u32>,
    /// Concatenated reverse-adjacency item lists.
    rev_items: Vec<u32>,
}

impl ServeIndex {
    /// Builds the index from the item KG and the item→entity alignment.
    ///
    /// # Panics
    /// If an entry of `item_entities` is out of the graph's entity range.
    pub fn build(graph: KnowledgeGraph, item_entities: Vec<EntityId>) -> Self {
        let n_ent = graph.num_entities();
        let mut ent_to_item = vec![NOT_AN_ITEM; n_ent];
        for (j, e) in item_entities.iter().enumerate() {
            assert!(e.index() < n_ent, "item entity {e:?} out of range");
            ent_to_item[e.index()] = j as u32;
        }
        // Count, prefix-sum, fill: reverse adjacency restricted to
        // *attribute* tails (item→item edges are followed forward via the
        // CSR itself, indexing them here would double-expand).
        let mut counts = vec![0u32; n_ent + 1];
        for &e in &item_entities {
            for &t in graph.tail_slice(e) {
                if ent_to_item[t.index()] == NOT_AN_ITEM {
                    counts[t.index() + 1] += 1;
                }
            }
        }
        for i in 0..n_ent {
            counts[i + 1] += counts[i];
        }
        let rev_offsets = counts;
        let mut cursor = rev_offsets.clone();
        let mut rev_items = vec![0u32; rev_offsets[n_ent] as usize];
        // Items visited in ascending id order, so each per-entity list is
        // ascending by item id — prefix truncation in stage 1 is
        // deterministic.
        for (j, &e) in item_entities.iter().enumerate() {
            for &t in graph.tail_slice(e) {
                if ent_to_item[t.index()] == NOT_AN_ITEM {
                    rev_items[cursor[t.index()] as usize] = j as u32;
                    cursor[t.index()] += 1;
                }
            }
        }
        Self { graph, item_entities, ent_to_item, rev_offsets, rev_items }
    }

    /// The item knowledge graph (CSR adjacency inside).
    #[inline]
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// Number of items the index covers.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.item_entities.len()
    }

    /// Graph entity of item `v`.
    #[inline]
    pub fn entity_of(&self, v: ItemId) -> EntityId {
        self.item_entities[v.index()]
    }

    /// O(1) reverse alignment: the item aligned with entity `e`, if any.
    #[inline]
    pub fn item_of_entity(&self, e: EntityId) -> Option<ItemId> {
        let v = self.ent_to_item[e.index()];
        if v == NOT_AN_ITEM {
            None
        } else {
            Some(ItemId(v))
        }
    }

    /// Items with an out-edge to attribute entity `e` (ascending item
    /// id). Empty for item entities — their edges are walked forward.
    #[inline]
    pub fn items_with(&self, e: EntityId) -> &[u32] {
        let lo = self.rev_offsets[e.index()] as usize;
        let hi = self.rev_offsets[e.index() + 1] as usize;
        &self.rev_items[lo..hi]
    }

    /// Bytes of the derived maps (excludes the graph itself).
    pub fn memory_bytes(&self) -> usize {
        self.item_entities.len() * std::mem::size_of::<EntityId>()
            + self.ent_to_item.len() * 4
            + self.rev_offsets.len() * 4
            + self.rev_items.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_data::synth::{generate, ScenarioConfig};

    fn tiny_index() -> ServeIndex {
        let synth = generate(&ScenarioConfig::tiny(), 7);
        ServeIndex::build(synth.dataset.graph, synth.dataset.item_entities)
    }

    #[test]
    fn reverse_alignment_is_exact() {
        let idx = tiny_index();
        for j in 0..idx.num_items() {
            let v = ItemId(j as u32);
            assert_eq!(idx.item_of_entity(idx.entity_of(v)), Some(v));
        }
    }

    #[test]
    fn attribute_lists_cover_forward_edges() {
        let idx = tiny_index();
        for j in 0..idx.num_items() {
            let v = ItemId(j as u32);
            let e = idx.entity_of(v);
            for &t in idx.graph().tail_slice(e) {
                if idx.item_of_entity(t).is_none() {
                    assert!(
                        idx.items_with(t).contains(&(j as u32)),
                        "item {j} missing from reverse list of {t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn attribute_lists_are_ascending() {
        let idx = tiny_index();
        for e in 0..idx.graph().num_entities() {
            let items = idx.items_with(EntityId(e as u32));
            assert!(items.windows(2).all(|w| w[0] < w[1]), "entity {e} list not ascending");
        }
    }
}
