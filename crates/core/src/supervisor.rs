//! The training supervisor: fault-isolated `fit` with retry, backoff and
//! graceful degradation.
//!
//! The evaluation suite trains ~18 models on every scenario; one panicking
//! `fit` must not abort the whole run, and one diverged learning rate must
//! not silently train to garbage. [`supervise_fit`] wraps any
//! [`Recommender::fit`] with four layers of protection:
//!
//! 1. **panic isolation** — the fit runs under `catch_unwind`; an escaped
//!    panic becomes a typed [`CoreError::Panicked`] instead of a process
//!    abort;
//! 2. **output validation** — after a successful fit, a deterministic grid
//!    of scores is probed; NaN or +∞ anywhere becomes
//!    [`CoreError::NonFinite`] (by workspace convention `-∞` is legal: it
//!    means "never recommend");
//! 3. **bounded retry with backoff** — retryable failures (panic,
//!    divergence, non-finite output) trigger up to
//!    [`SupervisorConfig::max_retries`] retries; before each the model's
//!    [`Recommender::prepare_retry`] hook halves its learning rate and
//!    perturbs its seed. Models without retry knobs are not re-run — an
//!    unchanged deterministic `fit` would replay the same failure;
//! 4. **wall-clock budget** — an optional time budget; exceeding it after
//!    a success degrades the outcome, exceeding it with no success fails
//!    it.
//!
//! The outcome is the state machine of `DESIGN.md` §"Failure handling":
//! `ok → retried(backoff) → degraded → failed`, reported as a
//! [`FitOutcome`] the harness renders as a per-model row instead of dying.

use crate::error::CoreError;
use crate::recommender::{Recommender, TrainContext};
use kgrec_data::{InteractionMatrix, ItemId, KgDataset, UserId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Supervisor policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Maximum retries after the first attempt (total fits ≤ 1 + retries).
    pub max_retries: u32,
    /// Optional wall-clock budget across all attempts.
    pub wall_clock_budget: Option<Duration>,
    /// Users probed in the post-fit score validation grid.
    pub probe_users: usize,
    /// Items probed per user in the post-fit score validation grid.
    pub probe_items: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self { max_retries: 2, wall_clock_budget: None, probe_users: 8, probe_items: 16 }
    }
}

impl SupervisorConfig {
    /// Sets the wall-clock budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.wall_clock_budget = Some(budget);
        self
    }

    /// Sets the retry cap.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }
}

/// Terminal state of a supervised fit (the DESIGN.md state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitStatus {
    /// First attempt succeeded within budget.
    Ok,
    /// Succeeded after at least one backoff retry.
    Retried,
    /// The model is usable but with a caveat (budget overrun).
    Degraded,
    /// No usable model: every attempt failed, or the failure was
    /// permanent (invalid dataset/config).
    Failed,
}

impl FitStatus {
    /// Short lower-case label for outcome tables.
    pub fn label(self) -> &'static str {
        match self {
            FitStatus::Ok => "ok",
            FitStatus::Retried => "retried",
            FitStatus::Degraded => "degraded",
            FitStatus::Failed => "failed",
        }
    }
}

/// What a supervised fit produced.
#[derive(Debug, Clone)]
pub struct FitOutcome {
    /// Terminal status.
    pub status: FitStatus,
    /// Number of fit attempts actually executed (≥ 1).
    pub attempts: u32,
    /// Total wall-clock time across attempts.
    pub elapsed: Duration,
    /// The failure or degradation reason, when not [`FitStatus::Ok`].
    pub reason: Option<String>,
    /// How far past the wall-clock budget the fit went — or would have
    /// gone: when a retry is skipped because the remaining budget is
    /// smaller than the previous attempt's duration, this is the
    /// *predicted* overshoot of that never-launched attempt. `None` when
    /// no budget was set or it was respected.
    pub overshoot: Option<Duration>,
}

impl FitOutcome {
    /// Whether the model behind this outcome may be scored (everything
    /// but [`FitStatus::Failed`]).
    pub fn is_usable(&self) -> bool {
        self.status != FitStatus::Failed
    }
}

/// Stringifies a panic payload (the `&str` / `String` cases cover every
/// `panic!`/`assert!` in the workspace). Public so harnesses that add
/// their own `catch_unwind` layers (e.g. around evaluation) report panics
/// the same way the supervisor does.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Probes a deterministic `users × items` grid of scores under panic
/// isolation; NaN or +∞ is a [`CoreError::NonFinite`], a panic while
/// scoring is a [`CoreError::Panicked`]. `-∞` passes: the workspace
/// convention for "never recommend this item".
///
/// Public because the supervisor's validation semantics apply beyond
/// `fit`: the serving layer runs the same grid through its own scorer
/// before hot-swapping a reloaded model, so a checkpoint that loads
/// cleanly but scores garbage is rejected with the same vocabulary.
///
/// # Errors
/// [`CoreError::NonFinite`] on the first NaN/+∞ score,
/// [`CoreError::Panicked`] if `score` panics.
pub fn probe_grid(
    users: usize,
    items: usize,
    mut score: impl FnMut(usize, usize) -> f32,
) -> Result<(), CoreError> {
    let probed = catch_unwind(AssertUnwindSafe(|| {
        for u in 0..users {
            for i in 0..items {
                let s = score(u, i);
                if s.is_nan() || s == f32::INFINITY {
                    return Err(CoreError::NonFinite {
                        context: format!("score(user {u}, item {i}) = {s}"),
                    });
                }
            }
        }
        Ok(())
    }));
    match probed {
        Ok(r) => r,
        Err(payload) => Err(CoreError::Panicked {
            message: format!("while scoring: {}", panic_message(payload.as_ref())),
        }),
    }
}

/// [`probe_grid`] specialized to a recommender over a training matrix —
/// the post-`fit` health check.
fn probe_scores(
    model: &dyn Recommender,
    train: &InteractionMatrix,
    config: &SupervisorConfig,
) -> Result<(), CoreError> {
    let users = train.num_users().min(config.probe_users);
    let items = train.num_items().min(model.num_items()).min(config.probe_items);
    probe_grid(users, items, |u, i| model.score(UserId(u as u32), ItemId(i as u32)))
}

/// Trains `model` under supervision; see the module docs for the policy.
///
/// The [`TrainContext`] is constructed *inside* the panic isolation, so
/// corrupted bundles that trip its debug assertions surface as
/// [`CoreError::Panicked`] rather than killing the caller.
///
/// Retries assume `fit` rebuilds model state from scratch (every model in
/// the workspace does): after a mid-fit panic the half-written state is
/// discarded by the next attempt.
pub fn supervise_fit(
    model: &mut dyn Recommender,
    dataset: &KgDataset,
    train: &InteractionMatrix,
    config: &SupervisorConfig,
) -> FitOutcome {
    let start = Instant::now();
    let mut attempts = 0u32;
    let mut last_err: CoreError;
    let mut overshoot: Option<Duration> = None;
    loop {
        attempts += 1;
        let attempt_start = Instant::now();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let ctx = TrainContext::new(dataset, train);
            model.fit(&ctx)
        }));
        let result = match caught {
            Ok(r) => r,
            Err(payload) => Err(CoreError::Panicked { message: panic_message(payload.as_ref()) }),
        };
        // A fit that "succeeded" but emits non-finite scores failed too.
        let failure = match result {
            Ok(()) => probe_scores(model, train, config).err(),
            Err(e) => Some(e),
        };
        let attempt_duration = attempt_start.elapsed();
        let elapsed = start.elapsed();
        let over_budget = config.wall_clock_budget.is_some_and(|b| elapsed > b);
        match failure {
            None => {
                let (status, reason) = if over_budget {
                    let b = config.wall_clock_budget.unwrap_or_default();
                    overshoot = Some(elapsed.saturating_sub(b));
                    (
                        FitStatus::Degraded,
                        Some(
                            CoreError::BudgetExceeded {
                                elapsed_secs: elapsed.as_secs_f64(),
                                budget_secs: b.as_secs_f64(),
                            }
                            .to_string(),
                        ),
                    )
                } else if attempts == 1 {
                    (FitStatus::Ok, None)
                } else {
                    (FitStatus::Retried, Some(format!("succeeded on attempt {attempts}")))
                };
                return FitOutcome { status, attempts, elapsed, reason, overshoot };
            }
            Some(e) => {
                let retryable = e.is_retryable();
                last_err = e;
                if !retryable || attempts > config.max_retries {
                    break;
                }
                if over_budget {
                    let b = config.wall_clock_budget.unwrap_or_default();
                    overshoot = Some(elapsed.saturating_sub(b));
                    last_err = CoreError::BudgetExceeded {
                        elapsed_secs: elapsed.as_secs_f64(),
                        budget_secs: b.as_secs_f64(),
                    };
                    break;
                }
                // Budget precision: a retry is pointless when the time it
                // would plausibly take (the previous attempt's duration —
                // retries run the same fit with a halved learning rate)
                // no longer fits in the remaining budget. Skip launching
                // it and report the predicted overshoot instead of
                // discovering the blown budget after the fact.
                if let Some(b) = config.wall_clock_budget {
                    let remaining = b.saturating_sub(elapsed);
                    if remaining < attempt_duration {
                        let predicted = (elapsed + attempt_duration).saturating_sub(b);
                        overshoot = Some(predicted);
                        last_err = CoreError::BudgetExceeded {
                            elapsed_secs: (elapsed + attempt_duration).as_secs_f64(),
                            budget_secs: b.as_secs_f64(),
                        };
                        break;
                    }
                }
                // Backoff hook: models without retry knobs replay the same
                // deterministic failure, so don't bother re-running them.
                if !model.prepare_retry(attempts) {
                    break;
                }
            }
        }
    }
    FitOutcome {
        status: FitStatus::Failed,
        attempts,
        elapsed: start.elapsed(),
        reason: Some(last_err.to_string()),
        overshoot,
    }
}

/// [`supervise_fit`] with crash-safe persistence layered on top.
///
/// When `store` is `Some` and the model exposes a persistence handle
/// ([`Recommender::persistable_mut`]), the supervisor first attempts a
/// **warm start**: restore the newest usable checkpoint generation and
/// validate it with the same deterministic score probe a fresh fit gets.
/// A verified restore skips training entirely — the outcome is
/// [`FitStatus::Ok`] with `attempts == 0` and a reason naming the
/// restored generation. Any restore failure (no usable generation,
/// corrupt snapshot, mismatched model/config, non-finite scores) falls
/// back to a normal supervised fit; storage faults degrade to retraining,
/// never to a panic or a garbage model.
///
/// After a usable fit, the model is saved back to the store best-effort:
/// a save failure is appended to the outcome's reason but does not change
/// its status — persistence is a convenience layered on training, not a
/// gate on it.
pub fn supervise_fit_checkpointed(
    model: &mut dyn Recommender,
    dataset: &KgDataset,
    train: &InteractionMatrix,
    config: &SupervisorConfig,
    store: Option<&kgrec_store::CheckpointStore>,
) -> FitOutcome {
    let start = Instant::now();
    if let Some(store) = store {
        let restored = match model.persistable_mut() {
            Some(p) => store.load_into(p).ok(),
            None => None,
        };
        if let Some(recovery) = restored {
            if probe_scores(model, train, config).is_ok() {
                let mut reason =
                    format!("warm start: restored checkpoint generation {}", recovery.generation);
                if !recovery.skipped.is_empty() {
                    reason.push_str(&format!(
                        " (skipped {} unusable generation(s))",
                        recovery.skipped.len()
                    ));
                }
                return FitOutcome {
                    status: FitStatus::Ok,
                    attempts: 0,
                    elapsed: start.elapsed(),
                    reason: Some(reason),
                    overshoot: None,
                };
            }
            // Restored state probes NaN/+∞: fall through to retraining —
            // `fit` rebuilds from scratch, discarding the bad restore.
        }
    }
    let mut outcome = supervise_fit(model, dataset, train, config);
    if outcome.is_usable() {
        if let (Some(store), Some(p)) = (store, model.persistable()) {
            let note = format!("supervised fit: {}", outcome.status.label());
            if let Err(e) = store.save(p, &note) {
                let warning = format!("checkpoint save failed: {e}");
                outcome.reason = Some(match outcome.reason.take() {
                    Some(r) => format!("{r}; {warning}"),
                    None => warning,
                });
            }
        }
    }
    outcome.elapsed = start.elapsed();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::{Taxonomy, UsageType};
    use kgrec_data::Interaction;
    use kgrec_graph::KgBuilder;

    fn toy_dataset() -> KgDataset {
        let mut b = KgBuilder::new();
        let ty = b.entity_type("item");
        let ents: Vec<_> = (0..4).map(|i| b.entity(&format!("i{i}"), ty)).collect();
        let attr_ty = b.entity_type("attr");
        let a = b.entity("a0", attr_ty);
        let r = b.relation("attr");
        for &e in &ents {
            b.triple(e, r, a);
        }
        let graph = b.build(true);
        let inter = InteractionMatrix::from_interactions(
            3,
            4,
            &[
                Interaction::implicit(UserId(0), ItemId(0)),
                Interaction::implicit(UserId(1), ItemId(1)),
                Interaction::implicit(UserId(2), ItemId(2)),
            ],
        );
        KgDataset::new(inter, graph, ents)
    }

    /// Configurable failure double: panics / errors / NaNs for the first
    /// `failures` fits, then succeeds. `retryable` controls whether
    /// `prepare_retry` reports knobs.
    struct Flaky {
        failures: u32,
        fits: u32,
        mode: Mode,
        retryable: bool,
    }

    enum Mode {
        Panic,
        NanScores,
        ConfigError,
    }

    impl Flaky {
        fn new(failures: u32, mode: Mode, retryable: bool) -> Self {
            Self { failures, fits: 0, mode, retryable }
        }
    }

    impl Recommender for Flaky {
        fn name(&self) -> &'static str {
            "Flaky"
        }
        fn taxonomy(&self) -> Taxonomy {
            Taxonomy {
                method: "Flaky",
                venue: "test",
                year: 2026,
                usage: UsageType::EmbeddingBased,
                techniques: &[],
                reference: 0,
            }
        }
        fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
            self.fits += 1;
            if self.fits <= self.failures {
                match self.mode {
                    Mode::Panic => panic!("injected panic on fit {}", self.fits),
                    Mode::NanScores => {} // fit "succeeds", scores are NaN
                    Mode::ConfigError => {
                        return Err(CoreError::InvalidConfig { message: "bad lr".into() })
                    }
                }
            }
            Ok(())
        }
        fn prepare_retry(&mut self, _attempt: u32) -> bool {
            self.retryable
        }
        fn score(&self, _user: UserId, _item: ItemId) -> f32 {
            if self.fits <= self.failures {
                f32::NAN
            } else {
                1.0
            }
        }
        fn num_items(&self) -> usize {
            4
        }
    }

    fn run(model: &mut dyn Recommender, config: &SupervisorConfig) -> FitOutcome {
        let ds = toy_dataset();
        let train = ds.interactions.clone();
        supervise_fit(model, &ds, &train, config)
    }

    #[test]
    fn clean_fit_is_ok() {
        let mut m = Flaky::new(0, Mode::Panic, true);
        let o = run(&mut m, &SupervisorConfig::default());
        assert_eq!(o.status, FitStatus::Ok);
        assert_eq!(o.attempts, 1);
        assert!(o.reason.is_none());
        assert!(o.is_usable());
    }

    #[test]
    fn panic_then_success_is_retried() {
        let mut m = Flaky::new(1, Mode::Panic, true);
        let o = run(&mut m, &SupervisorConfig::default());
        assert_eq!(o.status, FitStatus::Retried);
        assert_eq!(o.attempts, 2);
        assert!(o.reason.unwrap().contains("attempt 2"));
    }

    #[test]
    fn persistent_panic_fails_after_retry_budget() {
        let mut m = Flaky::new(u32::MAX, Mode::Panic, true);
        let o = run(&mut m, &SupervisorConfig::default().with_max_retries(2));
        assert_eq!(o.status, FitStatus::Failed);
        assert_eq!(o.attempts, 3); // 1 + 2 retries
        assert!(!o.is_usable());
        assert!(o.reason.unwrap().contains("injected panic"));
    }

    #[test]
    fn no_retry_knobs_means_single_attempt() {
        let mut m = Flaky::new(u32::MAX, Mode::Panic, false);
        let o = run(&mut m, &SupervisorConfig::default());
        assert_eq!(o.status, FitStatus::Failed);
        assert_eq!(o.attempts, 1);
    }

    #[test]
    fn nan_scores_are_caught_by_the_probe() {
        let mut m = Flaky::new(1, Mode::NanScores, true);
        let o = run(&mut m, &SupervisorConfig::default());
        // First fit "succeeds" but probes NaN → retried → clean.
        assert_eq!(o.status, FitStatus::Retried);
        assert_eq!(o.attempts, 2);
    }

    #[test]
    fn config_errors_are_permanent() {
        let mut m = Flaky::new(u32::MAX, Mode::ConfigError, true);
        let o = run(&mut m, &SupervisorConfig::default());
        assert_eq!(o.status, FitStatus::Failed);
        assert_eq!(o.attempts, 1, "InvalidConfig must not be retried");
        assert!(o.reason.unwrap().contains("bad lr"));
    }

    #[test]
    fn budget_overrun_after_success_degrades() {
        struct Slow;
        impl Recommender for Slow {
            fn name(&self) -> &'static str {
                "Slow"
            }
            fn taxonomy(&self) -> Taxonomy {
                Taxonomy {
                    method: "Slow",
                    venue: "test",
                    year: 2026,
                    usage: UsageType::EmbeddingBased,
                    techniques: &[],
                    reference: 0,
                }
            }
            fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
                std::thread::sleep(Duration::from_millis(20));
                Ok(())
            }
            fn score(&self, _u: UserId, _i: ItemId) -> f32 {
                0.0
            }
            fn num_items(&self) -> usize {
                4
            }
        }
        let mut m = Slow;
        let cfg = SupervisorConfig::default().with_budget(Duration::from_millis(1));
        let o = run(&mut m, &cfg);
        assert_eq!(o.status, FitStatus::Degraded);
        assert!(o.is_usable());
        assert!(o.reason.unwrap().contains("budget exceeded"));
    }

    #[test]
    fn budget_exhaustion_without_success_fails() {
        struct SlowPanic;
        impl Recommender for SlowPanic {
            fn name(&self) -> &'static str {
                "SlowPanic"
            }
            fn taxonomy(&self) -> Taxonomy {
                Taxonomy {
                    method: "SlowPanic",
                    venue: "test",
                    year: 2026,
                    usage: UsageType::EmbeddingBased,
                    techniques: &[],
                    reference: 0,
                }
            }
            fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
                std::thread::sleep(Duration::from_millis(20));
                panic!("slow and broken");
            }
            fn prepare_retry(&mut self, _attempt: u32) -> bool {
                true
            }
            fn score(&self, _u: UserId, _i: ItemId) -> f32 {
                0.0
            }
            fn num_items(&self) -> usize {
                4
            }
        }
        let mut m = SlowPanic;
        let cfg =
            SupervisorConfig::default().with_budget(Duration::from_millis(1)).with_max_retries(10);
        let o = run(&mut m, &cfg);
        assert_eq!(o.status, FitStatus::Failed);
        assert_eq!(o.attempts, 1, "budget must cut the retry loop short");
        assert!(o.reason.unwrap().contains("budget exceeded"));
    }

    #[test]
    fn neg_infinity_scores_are_legal() {
        struct NeverRecommend;
        impl Recommender for NeverRecommend {
            fn name(&self) -> &'static str {
                "NeverRecommend"
            }
            fn taxonomy(&self) -> Taxonomy {
                Taxonomy {
                    method: "NeverRecommend",
                    venue: "test",
                    year: 2026,
                    usage: UsageType::EmbeddingBased,
                    techniques: &[],
                    reference: 0,
                }
            }
            fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
                Ok(())
            }
            fn score(&self, _u: UserId, _i: ItemId) -> f32 {
                f32::NEG_INFINITY
            }
            fn num_items(&self) -> usize {
                4
            }
        }
        let mut m = NeverRecommend;
        let o = run(&mut m, &SupervisorConfig::default());
        assert_eq!(o.status, FitStatus::Ok);
    }

    #[test]
    fn status_labels_match_state_machine() {
        assert_eq!(FitStatus::Ok.label(), "ok");
        assert_eq!(FitStatus::Retried.label(), "retried");
        assert_eq!(FitStatus::Degraded.label(), "degraded");
        assert_eq!(FitStatus::Failed.label(), "failed");
    }

    #[test]
    fn futile_retry_is_skipped_with_predicted_overshoot() {
        // Each attempt takes ~20 ms; the 30 ms budget admits the first
        // attempt but cannot fit a second. The supervisor must not launch
        // the doomed retry: one attempt, a predicted overshoot, and a
        // budget-exceeded reason. (Under extreme timing noise the first
        // attempt itself blows the budget, which lands in the plain
        // over-budget branch — same assertions hold.)
        struct SlowPanic;
        impl Recommender for SlowPanic {
            fn name(&self) -> &'static str {
                "SlowPanic"
            }
            fn taxonomy(&self) -> Taxonomy {
                Taxonomy {
                    method: "SlowPanic",
                    venue: "test",
                    year: 2026,
                    usage: UsageType::EmbeddingBased,
                    techniques: &[],
                    reference: 0,
                }
            }
            fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
                std::thread::sleep(Duration::from_millis(20));
                panic!("slow and broken");
            }
            fn prepare_retry(&mut self, _attempt: u32) -> bool {
                true
            }
            fn score(&self, _u: UserId, _i: ItemId) -> f32 {
                0.0
            }
            fn num_items(&self) -> usize {
                4
            }
        }
        let mut m = SlowPanic;
        let cfg =
            SupervisorConfig::default().with_budget(Duration::from_millis(30)).with_max_retries(10);
        let o = run(&mut m, &cfg);
        assert_eq!(o.status, FitStatus::Failed);
        assert_eq!(o.attempts, 1, "the futile retry must not be launched");
        assert!(o.overshoot.is_some(), "skipping a retry must report the predicted overshoot");
        assert!(o.reason.unwrap().contains("budget exceeded"));
    }

    /// A checkpointable double: `fit` fills deterministic weights, scores
    /// read them, and the `Persistable` impl round-trips them bit-exactly.
    struct Ckpt {
        weights: Vec<f32>,
        fits: u32,
    }

    impl Ckpt {
        fn fresh() -> Self {
            Self { weights: vec![0.0; 4], fits: 0 }
        }
    }

    impl kgrec_store::Persistable for Ckpt {
        fn snapshot_id(&self) -> &'static str {
            "test.ckpt"
        }
        fn write_state(
            &self,
            writer: &mut kgrec_store::SnapshotWriter,
        ) -> Result<(), kgrec_store::StoreError> {
            let mut s = kgrec_store::Section::new();
            s.put_u64(self.weights.len() as u64);
            s.put_f32s(&self.weights);
            writer.add("weights", s)
        }
        fn read_state(
            &mut self,
            reader: &kgrec_store::SnapshotReader,
        ) -> Result<(), kgrec_store::StoreError> {
            let mut c = reader.section("weights")?;
            let n = c.take_u64()? as usize;
            if n != self.weights.len() {
                return Err(kgrec_store::StoreError::ShapeMismatch {
                    section: "weights".to_string(),
                    detail: format!("stored {n}, live {}", self.weights.len()),
                });
            }
            self.weights.copy_from_slice(&c.take_f32s(n)?);
            Ok(())
        }
    }

    impl Recommender for Ckpt {
        fn name(&self) -> &'static str {
            "Ckpt"
        }
        fn taxonomy(&self) -> Taxonomy {
            Taxonomy {
                method: "Ckpt",
                venue: "test",
                year: 2026,
                usage: UsageType::EmbeddingBased,
                techniques: &[],
                reference: 0,
            }
        }
        fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
            self.fits += 1;
            for (i, w) in self.weights.iter_mut().enumerate() {
                *w = 10.0 + i as f32;
            }
            Ok(())
        }
        fn score(&self, _user: UserId, item: ItemId) -> f32 {
            self.weights[item.index() % self.weights.len()]
        }
        fn num_items(&self) -> usize {
            4
        }
        fn persistable(&self) -> Option<&dyn kgrec_store::Persistable> {
            Some(self)
        }
        fn persistable_mut(&mut self) -> Option<&mut dyn kgrec_store::Persistable> {
            Some(self)
        }
    }

    fn ckpt_scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kgrec_core_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn run_checkpointed(
        model: &mut dyn Recommender,
        store: Option<&kgrec_store::CheckpointStore>,
    ) -> FitOutcome {
        let ds = toy_dataset();
        let train = ds.interactions.clone();
        supervise_fit_checkpointed(model, &ds, &train, &SupervisorConfig::default(), store)
    }

    #[test]
    fn checkpointed_cold_start_trains_then_saves() {
        let dir = ckpt_scratch("cold");
        let store = kgrec_store::CheckpointStore::open(&dir).expect("open");
        let mut m = Ckpt::fresh();
        let o = run_checkpointed(&mut m, Some(&store));
        assert_eq!(o.status, FitStatus::Ok);
        assert_eq!(o.attempts, 1);
        assert_eq!(m.fits, 1);
        assert_eq!(store.generations(), vec![1]);
        assert_eq!(store.last_good(), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_warm_start_skips_training() {
        let dir = ckpt_scratch("warm");
        let store = kgrec_store::CheckpointStore::open(&dir).expect("open");
        let mut trained = Ckpt::fresh();
        run_checkpointed(&mut trained, Some(&store));

        let mut restored = Ckpt::fresh();
        let o = run_checkpointed(&mut restored, Some(&store));
        assert_eq!(o.status, FitStatus::Ok);
        assert_eq!(o.attempts, 0, "a warm start must not run fit");
        assert_eq!(restored.fits, 0);
        assert!(o.reason.expect("reason").contains("warm start"));
        for (a, b) in trained.weights.iter().zip(&restored.weights) {
            assert_eq!(a.to_bits(), b.to_bits(), "restore must be bit-exact");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_without_store_is_plain_supervision() {
        let mut m = Ckpt::fresh();
        let o = run_checkpointed(&mut m, None);
        assert_eq!(o.status, FitStatus::Ok);
        assert_eq!(o.attempts, 1);
        assert!(o.reason.is_none());
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_retraining() {
        let dir = ckpt_scratch("corrupt");
        let store = kgrec_store::CheckpointStore::open(&dir).expect("open");
        let mut trained = Ckpt::fresh();
        run_checkpointed(&mut trained, Some(&store));
        // Flip a payload bit in the only generation: the warm start must
        // reject it and fall back to retraining, then save a fresh one.
        let path = store.snapshot_path(1);
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        std::fs::write(&path, &bytes).expect("rewrite");

        let mut m = Ckpt::fresh();
        let o = run_checkpointed(&mut m, Some(&store));
        assert_eq!(o.status, FitStatus::Ok);
        assert_eq!(o.attempts, 1, "corrupt store must fall back to training");
        assert_eq!(m.fits, 1);
        assert_eq!(store.generations(), vec![1, 2], "retrained model must be saved back");
        assert_eq!(store.last_good(), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
