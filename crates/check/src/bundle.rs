//! The unit of analysis: everything kglint inspects in one pass.

use kgrec_data::negative::LabeledPair;
use kgrec_data::split::Split;
use kgrec_data::{InteractionMatrix, KgDataset, ShardPlan};
use kgrec_models::unified::{KgatConfig, KgcnConfig, RippleNetConfig};

/// A named float buffer attached for non-finite auditing (MD004): learned
/// embeddings, score vectors, loss curves — anything that must stay
/// finite.
#[derive(Debug, Clone, Copy)]
pub struct FloatAudit<'a> {
    /// Label shown in diagnostics (e.g. `"ripplenet.entity_embeddings"`).
    pub label: &'a str,
    /// The values to audit.
    pub values: &'a [f32],
}

/// One model hyper-parameter, flattened to `f64` for range checking.
#[derive(Debug, Clone)]
pub struct HyperParam {
    /// Owning model name.
    pub model: String,
    /// Parameter name (`dim`, `hops`, `learning_rate`, …).
    pub name: String,
    /// The configured value.
    pub value: f64,
}

impl HyperParam {
    /// Convenience constructor.
    pub fn new(model: &str, name: &str, value: f64) -> Self {
        Self { model: model.to_owned(), name: name.to_owned(), value }
    }
}

/// The hyper-parameters of the registry's default propagation models
/// (the ones with hop/dim budgets worth checking before training).
pub fn default_model_hyperparams() -> Vec<HyperParam> {
    let r = RippleNetConfig::default();
    let k = KgcnConfig::default();
    let g = KgatConfig::default();
    vec![
        HyperParam::new("RippleNet", "dim", r.dim as f64),
        HyperParam::new("RippleNet", "hops", r.hops as f64),
        HyperParam::new("RippleNet", "memories_per_hop", r.memories_per_hop as f64),
        HyperParam::new("RippleNet", "epochs", r.epochs as f64),
        HyperParam::new("RippleNet", "learning_rate", f64::from(r.learning_rate)),
        HyperParam::new("RippleNet", "l2", f64::from(r.l2)),
        HyperParam::new("KGCN", "dim", k.dim as f64),
        HyperParam::new("KGCN", "hops", k.hops as f64),
        HyperParam::new("KGCN", "neighbors", k.neighbors as f64),
        HyperParam::new("KGCN", "epochs", k.epochs as f64),
        HyperParam::new("KGCN", "learning_rate", f64::from(k.learning_rate)),
        HyperParam::new("KGCN", "l2", f64::from(k.l2)),
        // KGAT's decorated second rate is exactly what MD005's name
        // matching exists for.
        HyperParam::new("KGAT", "learning_rate", f64::from(g.learning_rate)),
        HyperParam::new("KGAT", "kg_learning_rate", f64::from(g.kg_learning_rate)),
    ]
}

/// Everything one `kglint` pass looks at: a dataset bundle plus whatever
/// optional context the caller has on hand (split, eval pairs, model
/// configuration, float buffers).
///
/// Only the dataset is mandatory; every rule degrades gracefully when its
/// optional inputs are absent.
#[derive(Debug, Clone)]
pub struct CheckBundle<'a> {
    /// The dataset bundle under analysis.
    pub dataset: &'a KgDataset,
    /// Optional train/test split (enables the DS-layer rules).
    pub split: Option<&'a Split>,
    /// Optional CTR evaluation pairs (enables DS004).
    pub eval_pairs: Option<&'a [LabeledPair]>,
    /// Model hyper-parameters to range-check (MD003).
    pub hyperparams: Vec<HyperParam>,
    /// Explicit meta-path schemas as relation-name sequences (MD002).
    pub metapath_schemas: Vec<Vec<String>>,
    /// Float buffers to audit for non-finite values (MD004).
    pub float_audits: Vec<FloatAudit<'a>>,
    /// Optional shard plan over the training matrix (enables the MD007
    /// shard-boundary checks; the store scans run regardless).
    pub shard_plan: Option<&'a ShardPlan>,
    /// Hop budget for the KG005 reachability analysis.
    pub max_hops: usize,
}

impl<'a> CheckBundle<'a> {
    /// A bundle with just the dataset; hop budget defaults to 3 (the
    /// deepest propagation any registry model uses).
    pub fn new(dataset: &'a KgDataset) -> Self {
        Self {
            dataset,
            split: None,
            eval_pairs: None,
            hyperparams: Vec::new(),
            metapath_schemas: Vec::new(),
            float_audits: Vec::new(),
            shard_plan: None,
            max_hops: 3,
        }
    }

    /// Attaches a train/test split.
    pub fn with_split(mut self, split: &'a Split) -> Self {
        self.split = Some(split);
        self
    }

    /// Attaches CTR evaluation pairs.
    pub fn with_eval_pairs(mut self, pairs: &'a [LabeledPair]) -> Self {
        self.eval_pairs = Some(pairs);
        self
    }

    /// Attaches model hyper-parameters (appends).
    pub fn with_hyperparams(mut self, params: Vec<HyperParam>) -> Self {
        self.hyperparams.extend(params);
        self
    }

    /// Attaches one explicit meta-path schema as relation names.
    pub fn with_metapath_schema(mut self, names: &[&str]) -> Self {
        self.metapath_schemas.push(names.iter().map(|s| (*s).to_owned()).collect());
        self
    }

    /// Attaches a float buffer for non-finite auditing.
    pub fn with_float_audit(mut self, label: &'a str, values: &'a [f32]) -> Self {
        self.float_audits.push(FloatAudit { label, values });
        self
    }

    /// Attaches a shard plan for the MD007 boundary checks. The plan is
    /// validated against [`Self::train`] — the matrix it partitions.
    pub fn with_shard_plan(mut self, plan: &'a ShardPlan) -> Self {
        self.shard_plan = Some(plan);
        self
    }

    /// Overrides the reachability hop budget.
    pub fn with_max_hops(mut self, max_hops: usize) -> Self {
        self.max_hops = max_hops;
        self
    }

    /// The training matrix rules should treat as ground truth: the
    /// split's train half when present, else all interactions.
    pub fn train(&self) -> &'a InteractionMatrix {
        match self.split {
            Some(s) => &s.train,
            None => &self.dataset.interactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_data::synth::{generate, ScenarioConfig};

    #[test]
    fn default_hyperparams_cover_both_propagation_models() {
        let hp = default_model_hyperparams();
        assert!(hp.iter().any(|p| p.model == "RippleNet" && p.name == "hops"));
        assert!(hp.iter().any(|p| p.model == "KGCN" && p.name == "neighbors"));
        assert!(hp.iter().all(|p| p.value.is_finite()));
    }

    #[test]
    fn train_falls_back_to_all_interactions() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let b = CheckBundle::new(&synth.dataset);
        assert_eq!(b.train().num_interactions(), synth.dataset.interactions.num_interactions());
    }
}
