//! Regenerates Table 4 of the survey: datasets per application scenario.

use kgrec_bench::print_text_table;
use kgrec_data::registry::table4;

fn main() {
    println!("TABLE 4 — Datasets for different application scenarios\n");
    let rows: Vec<Vec<String>> = table4()
        .into_iter()
        .map(|e| {
            vec![
                e.scenario.name().to_owned(),
                e.name.to_owned(),
                e.papers.iter().map(|p| format!("[{p}]")).collect::<Vec<_>>().join(", "),
                e.generator.map(|g| format!("ScenarioConfig::{g}()")).unwrap_or_default(),
            ]
        })
        .collect();
    print_text_table(&["Scenario", "Dataset", "Papers", "Offline generator"], &rows);
    println!(
        "\nDatasets with an offline generator are simulated by kgrec-data's \
         planted-topic synthesizer (DESIGN.md §2)."
    );
}
