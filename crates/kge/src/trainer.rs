//! The shared negative-sampling training loop.
//!
//! All five KGE models train the same way: iterate over the graph's
//! triples, corrupt the head or tail uniformly (Bernoulli 0.5, the
//! "unif" strategy of the papers), and hand the (positive, negative) pair
//! to the model. Corruptions that happen to be true facts are re-sampled
//! (the "filtered" convention), bounded by a retry cap so pathological
//! relations cannot loop forever.

use crate::model::KgeModel;
use kgrec_graph::{EntityId, KnowledgeGraph, Triple};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over all triples.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// RNG seed (corruption sampling and triple shuffling).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 30, learning_rate: 0.05, seed: 7 }
    }
}

/// Draws a corruption of `triple` that is not a known fact, replacing the
/// head or the tail with probability ½ each.
pub fn corrupt<R: Rng + ?Sized>(graph: &KnowledgeGraph, triple: Triple, rng: &mut R) -> Triple {
    let n = graph.num_entities() as u32;
    for _ in 0..32 {
        let cand = if rng.gen_bool(0.5) {
            Triple::new(EntityId(rng.gen_range(0..n)), triple.rel, triple.tail)
        } else {
            Triple::new(triple.head, triple.rel, EntityId(rng.gen_range(0..n)))
        };
        if cand != triple && !graph.contains(cand.head, cand.rel, cand.tail) {
            return cand;
        }
    }
    // Dense pathological case: accept an unfiltered corruption.
    Triple::new(triple.head, triple.rel, EntityId(rng.gen_range(0..n)))
}

/// Trains `model` on every triple of `graph` for `config.epochs` epochs.
/// Returns the mean per-pair loss of each epoch (a monitoring curve).
pub fn train<M: KgeModel>(model: &mut M, graph: &KnowledgeGraph, config: &TrainConfig) -> Vec<f32> {
    assert!(
        model.num_entities() >= graph.num_entities(),
        "train: model sized for fewer entities than the graph"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..graph.num_triples()).collect();
    let mut curve = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        // Fresh shuffle per epoch.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut total = 0.0f64;
        for &idx in &order {
            let pos = graph.triples()[idx];
            let neg = corrupt(graph, pos, &mut rng);
            total += f64::from(model.train_pair(pos, neg, config.learning_rate));
        }
        model.post_epoch();
        let denom = order.len().max(1) as f64;
        curve.push((total / denom) as f32);
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transe::TransE;
    use kgrec_graph::KgBuilder;

    fn toy_graph() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let ty = b.entity_type("t");
        let es: Vec<_> = (0..8).map(|i| b.entity(&format!("e{i}"), ty)).collect();
        let r = b.relation("r");
        // Two clusters linked internally: facts are within-cluster edges.
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    b.triple(es[i], r, es[j]);
                }
            }
        }
        for i in 4..8 {
            for j in 4..8 {
                if i != j {
                    b.triple(es[i], r, es[j]);
                }
            }
        }
        b.build(false)
    }

    #[test]
    fn corrupt_avoids_known_facts() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let pos = g.triples()[0];
        for _ in 0..100 {
            let neg = corrupt(&g, pos, &mut rng);
            assert_ne!(neg, pos);
            // With 8 entities and within-cluster facts only, filtering
            // nearly always succeeds; tolerate the rare fallback.
        }
    }

    #[test]
    fn loss_curve_decreases() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        let curve = train(&mut m, &g, &TrainConfig { epochs: 25, learning_rate: 0.05, seed: 3 });
        assert_eq!(curve.len(), 25);
        let head: f32 = curve[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = curve[20..].iter().sum::<f32>() / 5.0;
        assert!(tail < head, "loss should fall: head={head} tail={tail}");
    }

    #[test]
    fn trained_model_ranks_facts_above_nonfacts() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 16, 1.0);
        train(&mut m, &g, &TrainConfig { epochs: 60, learning_rate: 0.05, seed: 5 });
        // Mean score of facts vs. cross-cluster non-facts.
        let fact_mean: f32 =
            g.triples().iter().map(|t| m.score(t.head, t.rel, t.tail)).sum::<f32>()
                / g.num_triples() as f32;
        let mut non_mean = 0.0f32;
        let mut count = 0;
        for i in 0..4u32 {
            for j in 4..8u32 {
                non_mean += m.score(EntityId(i), kgrec_graph::RelationId(0), EntityId(j));
                count += 1;
            }
        }
        non_mean /= count as f32;
        assert!(fact_mean > non_mean, "facts {fact_mean} vs non-facts {non_mean}");
    }

    #[test]
    #[should_panic(expected = "model sized for fewer entities")]
    fn size_mismatch_rejected() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = TransE::new(&mut rng, 2, 1, 4, 1.0);
        train(&mut m, &g, &TrainConfig::default());
    }
}
