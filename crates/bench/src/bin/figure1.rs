//! Regenerates Figure 1 of the survey: the illustrative movie KG where
//! "Avatar" and "Blood Diamond" are recommended to Bob, with the
//! reasoning paths the figure draws.
//!
//! The KG is built exactly as the figure describes: users, movies,
//! actors, directors and genres as entities; interaction, genre, acting,
//! directing and friendship as relations. A path-based explainer then
//! recovers the figure's reasons ("Avatar is the same genre as
//! Interstellar, which Bob watched", "Blood Diamond stars Leonardo
//! DiCaprio, who also starred in Inception, which Bob watched").

use kgrec_core::explain::Explainer;
use kgrec_core::{Recommender, TrainContext};
use kgrec_data::interactions::{Interaction, InteractionMatrix};
use kgrec_data::{ItemId, KgDataset, UserId};
use kgrec_graph::KgBuilder;
use kgrec_models::embedding::Cfkg;

fn main() {
    // --- Build the Figure 1 knowledge graph ---
    let mut b = KgBuilder::new();
    let t_movie = b.entity_type("movie");
    let t_person = b.entity_type("person");
    let t_genre = b.entity_type("genre");

    let interstellar = b.entity("Interstellar", t_movie);
    let inception = b.entity("Inception", t_movie);
    let avatar = b.entity("Avatar", t_movie);
    let blood_diamond = b.entity("Blood Diamond", t_movie);
    let revenant = b.entity("The Revenant", t_movie);

    let nolan = b.entity("Christopher Nolan", t_person);
    let cameron = b.entity("James Cameron", t_person);
    let dicaprio = b.entity("Leonardo DiCaprio", t_person);
    let scifi = b.entity("Sci-Fi", t_genre);
    let adventure = b.entity("Adventure", t_genre);

    let r_genre = b.relation("genre");
    let r_directed = b.relation("directed_by");
    let r_starring = b.relation("starring");

    b.triple(interstellar, r_genre, scifi);
    b.triple(inception, r_genre, scifi);
    b.triple(avatar, r_genre, scifi);
    b.triple(blood_diamond, r_genre, adventure);
    b.triple(revenant, r_genre, adventure);
    b.triple(interstellar, r_directed, nolan);
    b.triple(inception, r_directed, nolan);
    b.triple(avatar, r_directed, cameron);
    b.triple(inception, r_starring, dicaprio);
    b.triple(blood_diamond, r_starring, dicaprio);
    b.triple(revenant, r_starring, dicaprio);
    let graph = b.build(true);

    // Items in id order; Bob watched Interstellar, Inception, The Revenant.
    let items = vec![interstellar, inception, avatar, blood_diamond, revenant];
    let interactions = InteractionMatrix::from_interactions(
        1,
        items.len(),
        &[
            Interaction::implicit(UserId(0), ItemId(0)),
            Interaction::implicit(UserId(0), ItemId(1)),
            Interaction::implicit(UserId(0), ItemId(4)),
        ],
    );
    let dataset = KgDataset::new(interactions.clone(), graph, items.clone());

    // --- Recommend with a KG-based model ---
    let mut model = Cfkg::default_config();
    model.fit(&TrainContext::new(&dataset, &interactions)).expect("figure-1 dataset always fits");
    let bob = UserId(0);
    let recs = model.recommend(bob, 2, interactions.items_of(bob));
    println!("FIGURE 1 — KG-based recommendation for Bob\n");
    println!("Bob watched: Interstellar, Inception, The Revenant\n");
    println!("Top-2 recommendations (CFKG over the user-item graph):");
    let uig = dataset.user_item_graph(&interactions);
    let explainer = Explainer::new(&uig);
    for (item, score) in &recs {
        println!("\n  {} (score {:.3})", uig.graph.entity_name(dataset.entity_of(*item)), score);
        for (i, ex) in explainer.explain(bob, *item).iter().take(3).enumerate() {
            println!("    reason {}: {}", i + 1, ex.text);
        }
    }
    // The figure's claim: both Avatar and Blood Diamond are reachable and
    // explainable for Bob.
    let names: Vec<&str> =
        recs.iter().map(|(i, _)| uig.graph.entity_name(dataset.entity_of(*i))).collect();
    println!("\nRecommended set: {names:?} (Figure 1 recommends Avatar and Blood Diamond)");
}
