//! The training supervisor: fault-isolated `fit` with retry, backoff and
//! graceful degradation.
//!
//! The evaluation suite trains ~18 models on every scenario; one panicking
//! `fit` must not abort the whole run, and one diverged learning rate must
//! not silently train to garbage. [`supervise_fit`] wraps any
//! [`Recommender::fit`] with four layers of protection:
//!
//! 1. **panic isolation** — the fit runs under `catch_unwind`; an escaped
//!    panic becomes a typed [`CoreError::Panicked`] instead of a process
//!    abort;
//! 2. **output validation** — after a successful fit, a deterministic grid
//!    of scores is probed; NaN or +∞ anywhere becomes
//!    [`CoreError::NonFinite`] (by workspace convention `-∞` is legal: it
//!    means "never recommend");
//! 3. **bounded retry with backoff** — retryable failures (panic,
//!    divergence, non-finite output) trigger up to
//!    [`SupervisorConfig::max_retries`] retries; before each the model's
//!    [`Recommender::prepare_retry`] hook halves its learning rate and
//!    perturbs its seed. Models without retry knobs are not re-run — an
//!    unchanged deterministic `fit` would replay the same failure;
//! 4. **wall-clock budget** — an optional time budget; exceeding it after
//!    a success degrades the outcome, exceeding it with no success fails
//!    it.
//!
//! The outcome is the state machine of `DESIGN.md` §"Failure handling":
//! `ok → retried(backoff) → degraded → failed`, reported as a
//! [`FitOutcome`] the harness renders as a per-model row instead of dying.

use crate::error::CoreError;
use crate::recommender::{Recommender, TrainContext};
use kgrec_data::{InteractionMatrix, ItemId, KgDataset, UserId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Supervisor policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Maximum retries after the first attempt (total fits ≤ 1 + retries).
    pub max_retries: u32,
    /// Optional wall-clock budget across all attempts.
    pub wall_clock_budget: Option<Duration>,
    /// Users probed in the post-fit score validation grid.
    pub probe_users: usize,
    /// Items probed per user in the post-fit score validation grid.
    pub probe_items: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self { max_retries: 2, wall_clock_budget: None, probe_users: 8, probe_items: 16 }
    }
}

impl SupervisorConfig {
    /// Sets the wall-clock budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.wall_clock_budget = Some(budget);
        self
    }

    /// Sets the retry cap.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }
}

/// Terminal state of a supervised fit (the DESIGN.md state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitStatus {
    /// First attempt succeeded within budget.
    Ok,
    /// Succeeded after at least one backoff retry.
    Retried,
    /// The model is usable but with a caveat (budget overrun).
    Degraded,
    /// No usable model: every attempt failed, or the failure was
    /// permanent (invalid dataset/config).
    Failed,
}

impl FitStatus {
    /// Short lower-case label for outcome tables.
    pub fn label(self) -> &'static str {
        match self {
            FitStatus::Ok => "ok",
            FitStatus::Retried => "retried",
            FitStatus::Degraded => "degraded",
            FitStatus::Failed => "failed",
        }
    }
}

/// What a supervised fit produced.
#[derive(Debug, Clone)]
pub struct FitOutcome {
    /// Terminal status.
    pub status: FitStatus,
    /// Number of fit attempts actually executed (≥ 1).
    pub attempts: u32,
    /// Total wall-clock time across attempts.
    pub elapsed: Duration,
    /// The failure or degradation reason, when not [`FitStatus::Ok`].
    pub reason: Option<String>,
}

impl FitOutcome {
    /// Whether the model behind this outcome may be scored (everything
    /// but [`FitStatus::Failed`]).
    pub fn is_usable(&self) -> bool {
        self.status != FitStatus::Failed
    }
}

/// Stringifies a panic payload (the `&str` / `String` cases cover every
/// `panic!`/`assert!` in the workspace). Public so harnesses that add
/// their own `catch_unwind` layers (e.g. around evaluation) report panics
/// the same way the supervisor does.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Probes a deterministic grid of scores; NaN or +∞ is a
/// [`CoreError::NonFinite`], a panic while scoring is a
/// [`CoreError::Panicked`]. `-∞` passes: the workspace convention for
/// "never recommend this item".
fn probe_scores(
    model: &dyn Recommender,
    train: &InteractionMatrix,
    config: &SupervisorConfig,
) -> Result<(), CoreError> {
    let users = train.num_users().min(config.probe_users);
    let items = train.num_items().min(model.num_items()).min(config.probe_items);
    let probed = catch_unwind(AssertUnwindSafe(|| {
        for u in 0..users {
            for i in 0..items {
                let s = model.score(UserId(u as u32), ItemId(i as u32));
                if s.is_nan() || s == f32::INFINITY {
                    return Err(CoreError::NonFinite {
                        context: format!("score(user {u}, item {i}) = {s}"),
                    });
                }
            }
        }
        Ok(())
    }));
    match probed {
        Ok(r) => r,
        Err(payload) => Err(CoreError::Panicked {
            message: format!("while scoring: {}", panic_message(payload.as_ref())),
        }),
    }
}

/// Trains `model` under supervision; see the module docs for the policy.
///
/// The [`TrainContext`] is constructed *inside* the panic isolation, so
/// corrupted bundles that trip its debug assertions surface as
/// [`CoreError::Panicked`] rather than killing the caller.
///
/// Retries assume `fit` rebuilds model state from scratch (every model in
/// the workspace does): after a mid-fit panic the half-written state is
/// discarded by the next attempt.
pub fn supervise_fit(
    model: &mut dyn Recommender,
    dataset: &KgDataset,
    train: &InteractionMatrix,
    config: &SupervisorConfig,
) -> FitOutcome {
    let start = Instant::now();
    let mut attempts = 0u32;
    let mut last_err: CoreError;
    loop {
        attempts += 1;
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let ctx = TrainContext::new(dataset, train);
            model.fit(&ctx)
        }));
        let result = match caught {
            Ok(r) => r,
            Err(payload) => Err(CoreError::Panicked { message: panic_message(payload.as_ref()) }),
        };
        // A fit that "succeeded" but emits non-finite scores failed too.
        let failure = match result {
            Ok(()) => probe_scores(model, train, config).err(),
            Err(e) => Some(e),
        };
        let elapsed = start.elapsed();
        let over_budget = config.wall_clock_budget.is_some_and(|b| elapsed > b);
        match failure {
            None => {
                let (status, reason) = if over_budget {
                    let b = config.wall_clock_budget.unwrap_or_default();
                    (
                        FitStatus::Degraded,
                        Some(
                            CoreError::BudgetExceeded {
                                elapsed_secs: elapsed.as_secs_f64(),
                                budget_secs: b.as_secs_f64(),
                            }
                            .to_string(),
                        ),
                    )
                } else if attempts == 1 {
                    (FitStatus::Ok, None)
                } else {
                    (FitStatus::Retried, Some(format!("succeeded on attempt {attempts}")))
                };
                return FitOutcome { status, attempts, elapsed, reason };
            }
            Some(e) => {
                let retryable = e.is_retryable();
                last_err = e;
                if !retryable || attempts > config.max_retries {
                    break;
                }
                if over_budget {
                    let b = config.wall_clock_budget.unwrap_or_default();
                    last_err = CoreError::BudgetExceeded {
                        elapsed_secs: elapsed.as_secs_f64(),
                        budget_secs: b.as_secs_f64(),
                    };
                    break;
                }
                // Backoff hook: models without retry knobs replay the same
                // deterministic failure, so don't bother re-running them.
                if !model.prepare_retry(attempts) {
                    break;
                }
            }
        }
    }
    FitOutcome {
        status: FitStatus::Failed,
        attempts,
        elapsed: start.elapsed(),
        reason: Some(last_err.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::{Taxonomy, UsageType};
    use kgrec_data::Interaction;
    use kgrec_graph::KgBuilder;

    fn toy_dataset() -> KgDataset {
        let mut b = KgBuilder::new();
        let ty = b.entity_type("item");
        let ents: Vec<_> = (0..4).map(|i| b.entity(&format!("i{i}"), ty)).collect();
        let attr_ty = b.entity_type("attr");
        let a = b.entity("a0", attr_ty);
        let r = b.relation("attr");
        for &e in &ents {
            b.triple(e, r, a);
        }
        let graph = b.build(true);
        let inter = InteractionMatrix::from_interactions(
            3,
            4,
            &[
                Interaction::implicit(UserId(0), ItemId(0)),
                Interaction::implicit(UserId(1), ItemId(1)),
                Interaction::implicit(UserId(2), ItemId(2)),
            ],
        );
        KgDataset::new(inter, graph, ents)
    }

    /// Configurable failure double: panics / errors / NaNs for the first
    /// `failures` fits, then succeeds. `retryable` controls whether
    /// `prepare_retry` reports knobs.
    struct Flaky {
        failures: u32,
        fits: u32,
        mode: Mode,
        retryable: bool,
    }

    enum Mode {
        Panic,
        NanScores,
        ConfigError,
    }

    impl Flaky {
        fn new(failures: u32, mode: Mode, retryable: bool) -> Self {
            Self { failures, fits: 0, mode, retryable }
        }
    }

    impl Recommender for Flaky {
        fn name(&self) -> &'static str {
            "Flaky"
        }
        fn taxonomy(&self) -> Taxonomy {
            Taxonomy {
                method: "Flaky",
                venue: "test",
                year: 2026,
                usage: UsageType::EmbeddingBased,
                techniques: &[],
                reference: 0,
            }
        }
        fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
            self.fits += 1;
            if self.fits <= self.failures {
                match self.mode {
                    Mode::Panic => panic!("injected panic on fit {}", self.fits),
                    Mode::NanScores => {} // fit "succeeds", scores are NaN
                    Mode::ConfigError => {
                        return Err(CoreError::InvalidConfig { message: "bad lr".into() })
                    }
                }
            }
            Ok(())
        }
        fn prepare_retry(&mut self, _attempt: u32) -> bool {
            self.retryable
        }
        fn score(&self, _user: UserId, _item: ItemId) -> f32 {
            if self.fits <= self.failures {
                f32::NAN
            } else {
                1.0
            }
        }
        fn num_items(&self) -> usize {
            4
        }
    }

    fn run(model: &mut dyn Recommender, config: &SupervisorConfig) -> FitOutcome {
        let ds = toy_dataset();
        let train = ds.interactions.clone();
        supervise_fit(model, &ds, &train, config)
    }

    #[test]
    fn clean_fit_is_ok() {
        let mut m = Flaky::new(0, Mode::Panic, true);
        let o = run(&mut m, &SupervisorConfig::default());
        assert_eq!(o.status, FitStatus::Ok);
        assert_eq!(o.attempts, 1);
        assert!(o.reason.is_none());
        assert!(o.is_usable());
    }

    #[test]
    fn panic_then_success_is_retried() {
        let mut m = Flaky::new(1, Mode::Panic, true);
        let o = run(&mut m, &SupervisorConfig::default());
        assert_eq!(o.status, FitStatus::Retried);
        assert_eq!(o.attempts, 2);
        assert!(o.reason.unwrap().contains("attempt 2"));
    }

    #[test]
    fn persistent_panic_fails_after_retry_budget() {
        let mut m = Flaky::new(u32::MAX, Mode::Panic, true);
        let o = run(&mut m, &SupervisorConfig::default().with_max_retries(2));
        assert_eq!(o.status, FitStatus::Failed);
        assert_eq!(o.attempts, 3); // 1 + 2 retries
        assert!(!o.is_usable());
        assert!(o.reason.unwrap().contains("injected panic"));
    }

    #[test]
    fn no_retry_knobs_means_single_attempt() {
        let mut m = Flaky::new(u32::MAX, Mode::Panic, false);
        let o = run(&mut m, &SupervisorConfig::default());
        assert_eq!(o.status, FitStatus::Failed);
        assert_eq!(o.attempts, 1);
    }

    #[test]
    fn nan_scores_are_caught_by_the_probe() {
        let mut m = Flaky::new(1, Mode::NanScores, true);
        let o = run(&mut m, &SupervisorConfig::default());
        // First fit "succeeds" but probes NaN → retried → clean.
        assert_eq!(o.status, FitStatus::Retried);
        assert_eq!(o.attempts, 2);
    }

    #[test]
    fn config_errors_are_permanent() {
        let mut m = Flaky::new(u32::MAX, Mode::ConfigError, true);
        let o = run(&mut m, &SupervisorConfig::default());
        assert_eq!(o.status, FitStatus::Failed);
        assert_eq!(o.attempts, 1, "InvalidConfig must not be retried");
        assert!(o.reason.unwrap().contains("bad lr"));
    }

    #[test]
    fn budget_overrun_after_success_degrades() {
        struct Slow;
        impl Recommender for Slow {
            fn name(&self) -> &'static str {
                "Slow"
            }
            fn taxonomy(&self) -> Taxonomy {
                Taxonomy {
                    method: "Slow",
                    venue: "test",
                    year: 2026,
                    usage: UsageType::EmbeddingBased,
                    techniques: &[],
                    reference: 0,
                }
            }
            fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
                std::thread::sleep(Duration::from_millis(20));
                Ok(())
            }
            fn score(&self, _u: UserId, _i: ItemId) -> f32 {
                0.0
            }
            fn num_items(&self) -> usize {
                4
            }
        }
        let mut m = Slow;
        let cfg = SupervisorConfig::default().with_budget(Duration::from_millis(1));
        let o = run(&mut m, &cfg);
        assert_eq!(o.status, FitStatus::Degraded);
        assert!(o.is_usable());
        assert!(o.reason.unwrap().contains("budget exceeded"));
    }

    #[test]
    fn budget_exhaustion_without_success_fails() {
        struct SlowPanic;
        impl Recommender for SlowPanic {
            fn name(&self) -> &'static str {
                "SlowPanic"
            }
            fn taxonomy(&self) -> Taxonomy {
                Taxonomy {
                    method: "SlowPanic",
                    venue: "test",
                    year: 2026,
                    usage: UsageType::EmbeddingBased,
                    techniques: &[],
                    reference: 0,
                }
            }
            fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
                std::thread::sleep(Duration::from_millis(20));
                panic!("slow and broken");
            }
            fn prepare_retry(&mut self, _attempt: u32) -> bool {
                true
            }
            fn score(&self, _u: UserId, _i: ItemId) -> f32 {
                0.0
            }
            fn num_items(&self) -> usize {
                4
            }
        }
        let mut m = SlowPanic;
        let cfg =
            SupervisorConfig::default().with_budget(Duration::from_millis(1)).with_max_retries(10);
        let o = run(&mut m, &cfg);
        assert_eq!(o.status, FitStatus::Failed);
        assert_eq!(o.attempts, 1, "budget must cut the retry loop short");
        assert!(o.reason.unwrap().contains("budget exceeded"));
    }

    #[test]
    fn neg_infinity_scores_are_legal() {
        struct NeverRecommend;
        impl Recommender for NeverRecommend {
            fn name(&self) -> &'static str {
                "NeverRecommend"
            }
            fn taxonomy(&self) -> Taxonomy {
                Taxonomy {
                    method: "NeverRecommend",
                    venue: "test",
                    year: 2026,
                    usage: UsageType::EmbeddingBased,
                    techniques: &[],
                    reference: 0,
                }
            }
            fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
                Ok(())
            }
            fn score(&self, _u: UserId, _i: ItemId) -> f32 {
                f32::NEG_INFINITY
            }
            fn num_items(&self) -> usize {
                4
            }
        }
        let mut m = NeverRecommend;
        let o = run(&mut m, &SupervisorConfig::default());
        assert_eq!(o.status, FitStatus::Ok);
    }

    #[test]
    fn status_labels_match_state_machine() {
        assert_eq!(FitStatus::Ok.label(), "ok");
        assert_eq!(FitStatus::Retried.label(), "retried");
        assert_eq!(FitStatus::Degraded.label(), "degraded");
        assert_eq!(FitStatus::Failed.label(), "failed");
    }
}
