//! MKR (Wang et al. 2019): multi-task feature learning with
//! cross&compress units.
//!
//! Two modules — a recommendation tower and a KGE tower — share
//! information through a cross&compress unit on each (item, aligned
//! entity) pair: with cross matrix `C = v·eᵀ`,
//!
//! ```text
//! v' = C·w_vv + Cᵀ·w_ev + b_v = (eᵀw_vv)·v + (vᵀw_ev)·e + b_v
//! e' = C·w_ve + Cᵀ·w_ee + b_e = (eᵀw_ve)·v + (vᵀw_ee)·e + b_e
//! ```
//!
//! The recommendation loss is BCE on `σ(uᵀv')`; the KGE loss is BCE on
//! `σ((e′_h + r)ᵀ t)` (a translation-scoring simplification of the
//! paper's tail-prediction MLP — the taxonomy-relevant property, shared
//! latent features regularizing both tasks through the unit, is intact).

use crate::common::{sample_observed, taxonomy_of};
use kgrec_core::{CoreError, Recommender, Taxonomy, TrainContext};
use kgrec_data::negative::sample_negative;
use kgrec_data::{ItemId, UserId};
use kgrec_kge::trainer::corrupt;
use kgrec_linalg::{vector, EmbeddingTable};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// MKR hyper-parameters.
#[derive(Debug, Clone)]
pub struct MkrConfig {
    /// Latent dimension.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularization.
    pub l2: f32,
    /// Train the KGE tower every this many epochs (the paper's `t`).
    pub kge_interval: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MkrConfig {
    fn default() -> Self {
        Self { dim: 16, epochs: 30, learning_rate: 0.05, l2: 1e-5, kge_interval: 3, seed: 31 }
    }
}

/// The cross&compress unit parameters.
#[derive(Debug, Clone)]
struct CrossUnit {
    w_vv: Vec<f32>,
    w_ev: Vec<f32>,
    w_ve: Vec<f32>,
    w_ee: Vec<f32>,
    b_v: Vec<f32>,
    b_e: Vec<f32>,
}

impl CrossUnit {
    fn new<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Self {
        let mut mk = |scale: f32| {
            let mut v = vec![0.0f32; dim];
            kgrec_linalg::init::uniform(rng, &mut v, -scale, scale);
            v
        };
        let s = 1.0 / (dim as f32).sqrt();
        Self {
            w_vv: mk(s),
            w_ev: mk(s),
            w_ve: mk(s),
            w_ee: mk(s),
            b_v: vec![0.0; dim],
            b_e: vec![0.0; dim],
        }
    }

    /// Forward: returns `(v', e', a, b, c, d)` with the four scalars.
    fn forward(&self, v: &[f32], e: &[f32]) -> (Vec<f32>, Vec<f32>, f32, f32, f32, f32) {
        let a = vector::dot(e, &self.w_vv);
        let b = vector::dot(v, &self.w_ev);
        let c = vector::dot(e, &self.w_ve);
        let d = vector::dot(v, &self.w_ee);
        let vp: Vec<f32> = (0..v.len()).map(|i| a * v[i] + b * e[i] + self.b_v[i]).collect();
        let ep: Vec<f32> = (0..v.len()).map(|i| c * v[i] + d * e[i] + self.b_e[i]).collect();
        (vp, ep, a, b, c, d)
    }
}

/// The MKR model.
#[derive(Debug)]
pub struct Mkr {
    /// Hyper-parameters.
    pub config: MkrConfig,
    users: EmbeddingTable,
    items: EmbeddingTable,
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    cross: Option<CrossUnit>,
    alignment: Vec<kgrec_graph::EntityId>,
    /// Reverse alignment: entity index → item id (if the entity is an item).
    item_of_entity: Vec<Option<ItemId>>,
}

impl Mkr {
    /// Creates an unfitted model.
    pub fn new(config: MkrConfig) -> Self {
        Self {
            config,
            users: EmbeddingTable::zeros(0, 1),
            items: EmbeddingTable::zeros(0, 1),
            entities: EmbeddingTable::zeros(0, 1),
            relations: EmbeddingTable::zeros(0, 1),
            cross: None,
            alignment: Vec::new(),
            item_of_entity: Vec::new(),
        }
    }

    /// Creates a model with default hyper-parameters.
    pub fn default_config() -> Self {
        Self::new(MkrConfig::default())
    }

    /// The crossed item vector `v'` for scoring.
    fn crossed_item(&self, item: ItemId) -> Vec<f32> {
        let cross = self.cross.as_ref().expect("Mkr: fit before score");
        let v = self.items.row(item.index());
        let e = self.entities.row(self.alignment[item.index()].index());
        cross.forward(v, e).0
    }

    /// One recommendation-tower SGD step on `(u, item, label)`.
    fn rec_step(&mut self, u: UserId, item: ItemId, label: f32, lr: f32) {
        let l2 = self.config.l2;
        let ei = self.alignment[item.index()].index();
        let uv = self.users.row(u.index()).to_vec();
        let v = self.items.row(item.index()).to_vec();
        let e = self.entities.row(ei).to_vec();
        let cross = self.cross.as_mut().expect("fit initializes cross");
        let (vp, _, a, b, _, _) = cross.forward(&v, &e);
        let z = vector::dot(&uv, &vp);
        let dz = vector::sigmoid(z) - label;
        // dL/du = dz·v'; dL/dv' = dz·u.
        let dvp: Vec<f32> = uv.iter().map(|x| dz * x).collect();
        let dvp_v = vector::dot(&dvp, &v);
        let dvp_e = vector::dot(&dvp, &e);
        // Through the unit: dL/dv = a·dv' + (e·dv')·w_ev ; dL/de = b·dv' + (v·dv')·w_vv.
        let dv: Vec<f32> = (0..v.len()).map(|i| a * dvp[i] + dvp_e * cross.w_ev[i]).collect();
        let de: Vec<f32> = (0..v.len()).map(|i| b * dvp[i] + dvp_v * cross.w_vv[i]).collect();
        // Parameter grads.
        for i in 0..v.len() {
            cross.w_vv[i] -= lr * (dvp_v * e[i] + l2 * cross.w_vv[i]);
            cross.w_ev[i] -= lr * (dvp_e * v[i] + l2 * cross.w_ev[i]);
            cross.b_v[i] -= lr * dvp[i];
        }
        let urow = self.users.row_mut(u.index());
        for i in 0..urow.len() {
            urow[i] -= lr * (dz * vp[i] + l2 * urow[i]);
        }
        let vrow = self.items.row_mut(item.index());
        for i in 0..vrow.len() {
            vrow[i] -= lr * (dv[i] + l2 * vrow[i]);
        }
        let erow = self.entities.row_mut(ei);
        for i in 0..erow.len() {
            erow[i] -= lr * (de[i] + l2 * erow[i]);
        }
    }

    /// One KGE-tower SGD step on a labeled triple.
    fn kge_step(&mut self, triple: kgrec_graph::Triple, label: f32, lr: f32) {
        let l2 = self.config.l2;
        let hi = triple.head.index();
        let ri = triple.rel.index();
        let ti = triple.tail.index();
        let e_h = self.entities.row(hi).to_vec();
        let rv = self.relations.row(ri).to_vec();
        let tv = self.entities.row(ti).to_vec();
        // Crossed head when the head entity is an aligned item.
        let item = self.item_of_entity[hi];
        let (hp, back) = match item {
            Some(it) => {
                let v = self.items.row(it.index()).to_vec();
                let cross = self.cross.as_ref().expect("fit initializes cross");
                let (_, ep, _, _, c, d) = cross.forward(&v, &e_h);
                (ep, Some((it, v, c, d)))
            }
            None => (e_h.clone(), None),
        };
        let s: f32 = (0..hp.len()).map(|i| (hp[i] + rv[i]) * tv[i]).sum();
        let dz = vector::sigmoid(s) - label;
        let dhp: Vec<f32> = tv.iter().map(|x| dz * x).collect();
        let dr: Vec<f32> = dhp.clone();
        let dt: Vec<f32> = (0..hp.len()).map(|i| dz * (hp[i] + rv[i])).collect();
        match back {
            Some((it, v, c, d)) => {
                let dhp_v = vector::dot(&dhp, &v);
                let dhp_e = vector::dot(&dhp, &e_h);
                let cross = self.cross.as_mut().expect("fit initializes cross");
                let dv: Vec<f32> =
                    (0..v.len()).map(|i| c * dhp[i] + dhp_e * cross.w_ee[i]).collect();
                let de: Vec<f32> =
                    (0..v.len()).map(|i| d * dhp[i] + dhp_v * cross.w_ve[i]).collect();
                for i in 0..v.len() {
                    cross.w_ve[i] -= lr * (dhp_v * e_h[i] + l2 * cross.w_ve[i]);
                    cross.w_ee[i] -= lr * (dhp_e * v[i] + l2 * cross.w_ee[i]);
                    cross.b_e[i] -= lr * dhp[i];
                }
                let vrow = self.items.row_mut(it.index());
                for i in 0..vrow.len() {
                    vrow[i] -= lr * (dv[i] + l2 * vrow[i]);
                }
                let erow = self.entities.row_mut(hi);
                for i in 0..erow.len() {
                    erow[i] -= lr * (de[i] + l2 * erow[i]);
                }
            }
            None => {
                let erow = self.entities.row_mut(hi);
                for i in 0..erow.len() {
                    erow[i] -= lr * (dhp[i] + l2 * erow[i]);
                }
            }
        }
        let rrow = self.relations.row_mut(ri);
        for i in 0..rrow.len() {
            rrow[i] -= lr * (dr[i] + l2 * rrow[i]);
        }
        let trow = self.entities.row_mut(ti);
        for i in 0..trow.len() {
            trow[i] -= lr * (dt[i] + l2 * trow[i]);
        }
    }
}

impl Recommender for Mkr {
    fn name(&self) -> &'static str {
        "MKR"
    }

    fn taxonomy(&self) -> Taxonomy {
        taxonomy_of("MKR")
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let dim = self.config.dim;
        let scale = 1.0 / (dim as f32).sqrt();
        let graph = &ctx.dataset.graph;
        self.users = EmbeddingTable::uniform(&mut rng, ctx.num_users(), dim, scale);
        self.items = EmbeddingTable::uniform(&mut rng, ctx.num_items(), dim, scale);
        self.entities = EmbeddingTable::uniform(&mut rng, graph.num_entities(), dim, scale);
        self.relations =
            EmbeddingTable::uniform(&mut rng, graph.num_relations().max(1), dim, scale);
        self.cross = Some(CrossUnit::new(&mut rng, dim));
        self.alignment = ctx.dataset.item_entities.clone();
        self.item_of_entity = vec![None; graph.num_entities()];
        for (j, e) in self.alignment.iter().enumerate() {
            self.item_of_entity[e.index()] = Some(ItemId(j as u32));
        }
        let lr = self.config.learning_rate;
        let num_triples = graph.num_triples();
        for epoch in 0..self.config.epochs {
            // Recommendation tower: one pass of |R| positive + negative.
            for _ in 0..ctx.train.num_interactions() {
                let Some((u, pos)) = sample_observed(ctx.train, &mut rng) else { break };
                self.rec_step(u, pos, 1.0, lr);
                if let Some(neg) = sample_negative(ctx.train, u, &mut rng) {
                    self.rec_step(u, neg, 0.0, lr);
                }
            }
            // KGE tower every `kge_interval` epochs.
            if num_triples > 0 && epoch % self.config.kge_interval.max(1) == 0 {
                for _ in 0..num_triples {
                    let pos = graph.triple_at(rng.gen_range(0..num_triples));
                    self.kge_step(pos, 1.0, lr);
                    let neg = corrupt(graph, pos, &mut rng);
                    self.kge_step(neg, 0.0, lr);
                }
            }
        }
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        vector::dot(self.users.row(user.index()), &self.crossed_item(item))
    }

    fn num_items(&self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::protocol::evaluate_ctr;
    use kgrec_data::negative::labeled_eval_set;
    use kgrec_data::split::ratio_split;
    use kgrec_data::synth::{generate, ScenarioConfig};
    use kgrec_linalg::gradcheck;

    #[test]
    fn cross_unit_gradients_match_finite_difference() {
        // Verify dL/dv for L = Σᵢ v'ᵢ through the unit.
        let mut rng = StdRng::seed_from_u64(1);
        let cross = CrossUnit::new(&mut rng, 4);
        let v = vec![0.3f32, -0.2, 0.5, 0.1];
        let e = vec![-0.4f32, 0.2, 0.6, -0.1];
        let (_, _, a, _, _, _) = cross.forward(&v, &e);
        // dL/dv' = 1 vector; dL/dv = a·1 + (e·1)·w_ev.
        let ones = vec![1.0f32; 4];
        let dvp_e = vector::dot(&ones, &e);
        let analytic: Vec<f32> = (0..4).map(|i| a + dvp_e * cross.w_ev[i]).collect();
        let mut params = v.clone();
        gradcheck::assert_gradient(&mut params, &analytic, 1e-3, 1e-2, |p| {
            cross.forward(p, &e).0.iter().sum()
        });
    }

    #[test]
    fn crossed_entity_gradients_match_finite_difference() {
        // dL/de for L = Σᵢ e'ᵢ: e' = c·v + (vᵀw_ee)·e + b_e,
        // ∂e'/∂e = d·I + v·w_veᵀ.
        let mut rng = StdRng::seed_from_u64(2);
        let cross = CrossUnit::new(&mut rng, 4);
        let v = vec![0.3f32, -0.2, 0.5, 0.1];
        let e = vec![-0.4f32, 0.2, 0.6, -0.1];
        let (_, _, _, _, _, d) = cross.forward(&v, &e);
        let ones = vec![1.0f32; 4];
        let dep_v = vector::dot(&ones, &v);
        let analytic: Vec<f32> = (0..4).map(|i| d + dep_v * cross.w_ve[i]).collect();
        let mut params = e.clone();
        gradcheck::assert_gradient(&mut params, &analytic, 1e-3, 1e-2, |p| {
            cross.forward(&v, p).1.iter().sum()
        });
    }

    #[test]
    fn beats_chance_on_planted_data() {
        let synth = generate(&ScenarioConfig::tiny(), 42);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = Mkr::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        let rep = evaluate_ctr(&m, &pairs);
        assert!(rep.auc > 0.6, "AUC {}", rep.auc);
    }

    #[test]
    fn deterministic_given_seed() {
        let synth = generate(&ScenarioConfig::tiny(), 9);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let ctx = TrainContext::new(&synth.dataset, &split.train);
        let mut a = Mkr::new(MkrConfig { epochs: 2, ..Default::default() });
        let mut b = Mkr::new(MkrConfig { epochs: 2, ..Default::default() });
        a.fit(&ctx).unwrap();
        b.fit(&ctx).unwrap();
        assert_eq!(a.score(UserId(1), ItemId(1)), b.score(UserId(1), ItemId(1)));
    }
}
