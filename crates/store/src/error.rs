//! Error taxonomy for the persistence layer.
//!
//! Every way a stored artifact can be unusable gets its own variant so the
//! recovery machinery (and the recovery-matrix tests) can assert *which*
//! defense rejected a corrupted file. All variants are recoverable in the
//! same way — skip the artifact and fall back — but the distinction matters
//! for diagnostics and for proving each fault is caught by the intended
//! check rather than by accident.

use std::fmt;

/// Everything that can go wrong saving or loading a snapshot / checkpoint.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure, wrapped with the operation that failed.
    Io {
        /// What the store was doing when the OS call failed.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file does not start with the snapshot magic `KGRS`.
    BadMagic {
        /// The four bytes actually found at offset 0.
        found: [u8; 4],
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// The file ended before a structurally required field.
    Truncated {
        /// Which structure was being decoded when bytes ran out.
        detail: String,
    },
    /// A section's payload does not match its stored CRC32.
    ChecksumMismatch {
        /// Section name.
        section: String,
        /// CRC stored in the section table.
        stored: u32,
        /// CRC computed over the payload actually on disk.
        computed: u32,
    },
    /// A section the reader requires is absent from the section table.
    MissingSection {
        /// Name of the absent section.
        name: String,
    },
    /// A section decoded, but its shape disagrees with the live model.
    ShapeMismatch {
        /// Section name.
        section: String,
        /// Human-readable expected-vs-found description.
        detail: String,
    },
    /// The snapshot belongs to a different model or configuration.
    ModelMismatch {
        /// Human-readable expected-vs-found description.
        detail: String,
    },
    /// The checkpoint directory's bookkeeping is malformed.
    Manifest {
        /// What was malformed.
        detail: String,
    },
    /// Every candidate generation was tried and rejected.
    NoUsableGeneration {
        /// How many generations were examined before giving up.
        tried: usize,
    },
}

impl StoreError {
    /// Convenience constructor wrapping an I/O error with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Self::Io { context: context.into(), source }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { context, source } => write!(f, "io error ({context}): {source}"),
            Self::BadMagic { found } => {
                write!(f, "bad magic {found:02x?}: not a kgrec snapshot")
            }
            Self::UnsupportedVersion { found, supported } => {
                write!(f, "snapshot format v{found} is newer than supported v{supported}")
            }
            Self::Truncated { detail } => write!(f, "truncated snapshot: {detail}"),
            Self::ChecksumMismatch { section, stored, computed } => write!(
                f,
                "checksum mismatch in section `{section}`: stored {stored:08x}, computed {computed:08x}"
            ),
            Self::MissingSection { name } => write!(f, "missing section `{name}`"),
            Self::ShapeMismatch { section, detail } => {
                write!(f, "shape mismatch in section `{section}`: {detail}")
            }
            Self::ModelMismatch { detail } => write!(f, "model mismatch: {detail}"),
            Self::Manifest { detail } => write!(f, "manifest error: {detail}"),
            Self::NoUsableGeneration { tried } => {
                write!(f, "no usable checkpoint generation ({tried} tried)")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
