//! Path-based methods (survey Section 4.2): connectivity patterns in the
//! user–item graph drive recommendation.

mod fmg;
mod herec;
mod hete_cf;
mod hete_mf;
mod heterec;
mod mcrec;
mod pgpr;
mod proppr;
mod rkge;
mod semrec;
pub mod util;

pub use fmg::{FmgLite, FmgLiteConfig};
pub use herec::{HeRec, HeRecConfig};
pub use hete_cf::{HeteCf, HeteCfConfig};
pub use hete_mf::{HeteMf, HeteMfConfig};
pub use heterec::{HeteRec, HeteRecConfig, HeteRecP};
pub use mcrec::{McRecLite, McRecLiteConfig};
pub use pgpr::{PgprLite, PgprLiteConfig};
pub use proppr::{ProPpr, ProPprConfig};
pub use rkge::{Rkge, RkgeConfig};
pub use semrec::{SemRec, SemRecConfig};
