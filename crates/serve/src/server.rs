//! The long-running serving state: live data, live model, cache, and the
//! mutation protocols (ingest, hot reload) that keep them coherent.

use crate::cache::TopKCache;
use crate::index::ServeIndex;
use crate::pipeline::{candidates_for, rank_candidates, serve_score};
use crate::scratch::ServeScratch;
use kgrec_core::supervisor::probe_grid;
use kgrec_core::FitStatus;
use kgrec_data::{Interaction, InteractionMatrix, KgDataset, UserId};
use kgrec_kge::KgeModel;
use kgrec_store::{CheckpointStore, Persistable};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A model that can be served: scorable as a KGE backend and restorable
/// from a [`CheckpointStore`] snapshot.
///
/// The explicit accessor methods stand in for trait upcasting so a
/// `Box<dyn ServedModel>` can be handed to both the scoring pipeline
/// (`&dyn KgeModel`) and the store (`&mut dyn Persistable`).
pub trait ServedModel: Send + Sync {
    /// The model as a scoring backend.
    fn as_kge(&self) -> &dyn KgeModel;
    /// The model as a snapshot target.
    fn as_persistable(&self) -> &dyn Persistable;
    /// Mutable snapshot target, for restore-into loading.
    fn as_persistable_mut(&mut self) -> &mut dyn Persistable;
}

impl<T: KgeModel + Persistable + Send + Sync> ServedModel for T {
    fn as_kge(&self) -> &dyn KgeModel {
        self
    }
    fn as_persistable(&self) -> &dyn Persistable {
        self
    }
    fn as_persistable_mut(&mut self) -> &mut dyn Persistable {
        self
    }
}

/// Serving configuration: result size, retrieval caps, cache shape, and
/// reload-probe grid.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Results returned per request.
    pub k: usize,
    /// History window used for expansion and profile building.
    pub max_history: usize,
    /// Items taken per shared-attribute entity in stage 1.
    pub max_attr_items: usize,
    /// Co-visiting users examined per history item.
    pub max_covisit_users: usize,
    /// Items taken per co-visiting user.
    pub max_covisit_items: usize,
    /// Stage-1 candidate budget (stage-2 work is bounded by this).
    pub max_candidates: usize,
    /// Total cached users (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Users in the reload validation probe grid.
    pub probe_users: usize,
    /// Items in the reload validation probe grid.
    pub probe_items: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            k: 10,
            max_history: 16,
            max_attr_items: 32,
            max_covisit_users: 8,
            max_covisit_items: 16,
            max_candidates: 256,
            cache_capacity: 4096,
            cache_shards: 16,
            probe_users: 8,
            probe_items: 16,
        }
    }
}

/// What a [`Server::reload`] attempt did, in the training supervisor's
/// vocabulary: `Ok` — newest generation loaded, probed finite, swapped
/// in; `Retried` — same, but the store fell back past unusable
/// generations first; `Degraded` — the candidate was rejected (load
/// error, non-finite probe score, or a panic while probing) and the
/// previous model kept serving.
#[derive(Debug)]
pub struct ReloadOutcome {
    /// Supervisor-style status label for reports.
    pub status: FitStatus,
    /// Checkpoint generation now serving (`None` when rejected).
    pub generation: Option<u64>,
    /// Generations the store skipped as unusable before succeeding.
    pub skipped: usize,
    /// Human-readable rejection/fallback detail.
    pub reason: Option<String>,
}

/// Live interaction-side state, swapped wholesale by [`Server::ingest`].
#[derive(Debug)]
struct LiveData {
    interactions: Arc<InteractionMatrix>,
    /// Item ids, most popular first (count desc, id asc) — the stage-1
    /// fill order.
    pop_order: Arc<Vec<u32>>,
}

/// The served model plus the checkpoint generation it came from.
struct ModelState {
    model: Box<dyn ServedModel>,
    generation: u64,
}

/// The online serving engine. See the crate docs for the architecture.
///
/// All methods take `&self`: requests run concurrently from many worker
/// threads; [`Server::ingest`] and [`Server::reload`] are internally
/// serialized and publish their changes with a swap-then-bump protocol
/// (install the new state, then release-bump the generation counters),
/// so readers that observe a bumped counter are guaranteed to observe
/// the new state too.
pub struct Server {
    index: ServeIndex,
    live: RwLock<LiveData>,
    model: RwLock<Arc<ModelState>>,
    cache: TopKCache,
    /// Per-user data generation; bumped by `ingest` for touched users.
    user_gens: Vec<AtomicU64>,
    /// Global model generation; bumped by every successful `reload`.
    model_gen: AtomicU64,
    /// Serializes ingests (append is read-copy-update, not commutative).
    ingest_lock: Mutex<()>,
    config: ServeConfig,
}

impl Server {
    /// Builds a server from a dataset and an initial model.
    ///
    /// # Panics
    /// If `config.k` is 0 or exceeds 255, or if the model's entity space
    /// is smaller than the dataset's graph.
    pub fn new(dataset: KgDataset, model: Box<dyn ServedModel>, config: ServeConfig) -> Self {
        let KgDataset { interactions, graph, item_entities, .. } = dataset;
        assert!(
            model.as_kge().num_entities() >= graph.num_entities(),
            "model covers {} entities, graph has {}",
            model.as_kge().num_entities(),
            graph.num_entities()
        );
        let num_users = interactions.num_users();
        let pop_order = popularity_order(&interactions);
        let index = ServeIndex::build(graph, item_entities);
        let cache = TopKCache::new(config.cache_capacity, config.cache_shards, config.k);
        let mut user_gens = Vec::with_capacity(num_users);
        user_gens.resize_with(num_users, || AtomicU64::new(0));
        Self {
            index,
            live: RwLock::new(LiveData {
                interactions: Arc::new(interactions),
                pop_order: Arc::new(pop_order),
            }),
            model: RwLock::new(Arc::new(ModelState { model, generation: 0 })),
            cache,
            user_gens,
            model_gen: AtomicU64::new(0),
            ingest_lock: Mutex::new(()),
            config,
        }
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The static retrieval index.
    pub fn index(&self) -> &ServeIndex {
        &self.index
    }

    /// Users the server was sized for.
    pub fn num_users(&self) -> usize {
        self.user_gens.len()
    }

    /// A scratch arena sized for this server's current model and caps.
    pub fn make_scratch(&self) -> ServeScratch {
        let dim = self.model.read().expect("model lock poisoned").model.as_kge().dim();
        ServeScratch::new(self.index.num_items(), dim, self.config.max_candidates, self.config.k)
    }

    /// A snapshot of the live interaction matrix (tests and benches).
    pub fn interactions(&self) -> Arc<InteractionMatrix> {
        Arc::clone(&self.live.read().expect("live lock poisoned").interactions)
    }

    /// Checkpoint generation of the model currently serving.
    pub fn model_generation(&self) -> u64 {
        self.model.read().expect("model lock poisoned").generation
    }

    /// Answers one request: the ranked top-K lands in `scratch`
    /// ([`ServeScratch::top_k`]). Returns `true` on a cache hit.
    ///
    /// Request path (SA008): allocation-free after scratch warm-up.
    pub fn serve(&self, user: UserId, scratch: &mut ServeScratch) -> bool {
        let user_gen = self.user_gens[user.index()].load(Ordering::Acquire);
        let model_gen = self.model_gen.load(Ordering::Acquire);
        if self.cache.lookup(user, user_gen, model_gen, &mut scratch.out) {
            return true;
        }
        self.compute_fresh(user, scratch);
        self.cache.insert(user, user_gen, model_gen, &scratch.out);
        false
    }

    /// Runs the full two-stage pipeline, bypassing the cache entirely
    /// (no lookup, no fill). The uncached baseline for benches and the
    /// reference for staleness tests.
    pub fn compute_fresh(&self, user: UserId, scratch: &mut ServeScratch) {
        let (interactions, pop_order) = {
            let live = self.live.read().expect("live lock poisoned");
            (Arc::clone(&live.interactions), Arc::clone(&live.pop_order))
        };
        let state = Arc::clone(&self.model.read().expect("model lock poisoned"));
        candidates_for(&self.index, &interactions, &pop_order, user, &self.config, scratch);
        rank_candidates(
            &self.index,
            state.model.as_kge(),
            &interactions,
            user,
            &self.config,
            scratch,
        );
    }

    /// Appends an interaction batch to the live matrix and invalidates
    /// the touched users' cache entries.
    ///
    /// Publication order is the staleness-safety invariant: the new
    /// matrix (and its popularity order) is installed *first*, then each
    /// touched user's generation is release-bumped — a reader that
    /// observes the bumped generation therefore observes the appended
    /// data, so it can never cache a stale result under a current stamp.
    ///
    /// # Panics
    /// If the batch references users or items outside the matrix's id
    /// space (the columnar store's `append` contract).
    pub fn ingest(&self, batch: &[Interaction]) {
        if batch.is_empty() {
            return;
        }
        let _serialize = self.ingest_lock.lock().expect("ingest lock poisoned");
        let current = Arc::clone(&self.live.read().expect("live lock poisoned").interactions);
        let appended = current.append(batch);
        let pop_order = Arc::new(popularity_order(&appended));
        {
            let mut live = self.live.write().expect("live lock poisoned");
            live.interactions = Arc::new(appended);
            live.pop_order = pop_order;
        }
        for interaction in batch {
            self.user_gens[interaction.user.index()].fetch_add(1, Ordering::Release);
        }
    }

    /// Hot-reloads the served model from `store` without stopping
    /// serving.
    ///
    /// `fresh` must be a factory-fresh model of the expected shape (the
    /// restore-into contract); the store's recovery chain picks the
    /// newest usable generation. Before the swap the candidate is
    /// validated through the *serving* scorer on a deterministic
    /// `probe_users × probe_items` grid under panic isolation — the same
    /// degraded/failed semantics the training supervisor applies after
    /// `fit`. Any rejection leaves the previous model serving and the
    /// cache untouched; a successful swap release-bumps the model
    /// generation, invalidating every cached entry at once.
    pub fn reload(
        &self,
        store: &CheckpointStore,
        mut fresh: Box<dyn ServedModel>,
    ) -> ReloadOutcome {
        let recovery = match store.load_into(fresh.as_persistable_mut()) {
            Ok(r) => r,
            Err(e) => {
                return ReloadOutcome {
                    status: FitStatus::Degraded,
                    generation: None,
                    skipped: 0,
                    reason: Some(format!("reload rejected: {e}")),
                }
            }
        };
        let interactions = self.interactions();
        let mut profile = vec![0.0f32; fresh.as_kge().dim()];
        let users = self.num_users().min(self.config.probe_users);
        let items = self.index.num_items().min(self.config.probe_items);
        let probed = probe_grid(users, items, |u, i| {
            serve_score(
                &self.index,
                fresh.as_kge(),
                &interactions,
                UserId(u as u32),
                kgrec_data::ItemId(i as u32),
                &mut profile,
                self.config.max_history,
            )
        });
        if let Err(e) = probed {
            return ReloadOutcome {
                status: FitStatus::Degraded,
                generation: None,
                skipped: recovery.skipped.len(),
                reason: Some(format!(
                    "generation {} rejected by serve probe: {e}",
                    recovery.generation
                )),
            };
        }
        {
            let mut state = self.model.write().expect("model lock poisoned");
            *state = Arc::new(ModelState { model: fresh, generation: recovery.generation });
        }
        self.model_gen.fetch_add(1, Ordering::Release);
        let skipped = recovery.skipped.len();
        ReloadOutcome {
            status: if skipped == 0 { FitStatus::Ok } else { FitStatus::Retried },
            generation: Some(recovery.generation),
            skipped,
            reason: (skipped > 0)
                .then(|| format!("fell back past {skipped} unusable generation(s)")),
        }
    }
}

/// Items ordered most popular first (interaction count descending, item
/// id ascending on ties).
fn popularity_order(interactions: &InteractionMatrix) -> Vec<u32> {
    let counts = interactions.item_popularity();
    let mut order: Vec<u32> = (0..counts.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| counts[b as usize].cmp(&counts[a as usize]).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_data::synth::{generate, ScenarioConfig};
    use kgrec_data::ItemId;
    use kgrec_kge::TransE;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fresh_model(dataset: &KgDataset, seed: u64) -> Box<dyn ServedModel> {
        let mut rng = StdRng::seed_from_u64(seed);
        Box::new(TransE::new(
            &mut rng,
            dataset.graph.num_entities(),
            dataset.graph.num_relations(),
            8,
            1.0,
        ))
    }

    fn tiny_server(seed: u64, config: ServeConfig) -> Server {
        let synth = generate(&ScenarioConfig::tiny(), seed);
        let model = fresh_model(&synth.dataset, seed.wrapping_add(1));
        Server::new(synth.dataset, model, config)
    }

    #[test]
    fn serve_matches_fresh_compute_and_second_hit() {
        let server = tiny_server(3, ServeConfig::default());
        let mut a = server.make_scratch();
        let mut b = server.make_scratch();
        for u in 0..server.num_users() as u32 {
            let hit = server.serve(UserId(u), &mut a);
            assert!(!hit, "first request for u{u} must miss");
            server.compute_fresh(UserId(u), &mut b);
            assert_eq!(a.top_k(), b.top_k(), "u{u}");
            assert!(server.serve(UserId(u), &mut b), "second request for u{u} must hit");
            assert_eq!(a.top_k(), b.top_k(), "cached result diverges for u{u}");
        }
    }

    #[test]
    fn results_never_contain_history_and_respect_k() {
        let server = tiny_server(5, ServeConfig::default());
        let mut s = server.make_scratch();
        let interactions = server.interactions();
        for u in 0..server.num_users() as u32 {
            server.serve(UserId(u), &mut s);
            assert!(s.top_k().len() <= server.config().k);
            assert!(!s.top_k().is_empty(), "u{u} got an empty slate");
            for &v in s.top_k() {
                assert!(!interactions.contains(UserId(u), v), "u{u} served seen item {v}");
            }
        }
    }

    #[test]
    fn ingest_invalidates_only_touched_users() {
        let server = tiny_server(7, ServeConfig::default());
        let mut s = server.make_scratch();
        let touched = UserId(0);
        let untouched = UserId(1);
        server.serve(touched, &mut s);
        server.serve(untouched, &mut s);
        // Give user 0 a new interaction on an item they haven't seen.
        let interactions = server.interactions();
        let item = (0..interactions.num_items() as u32)
            .map(ItemId)
            .find(|&v| !interactions.contains(touched, v))
            .expect("tiny user 0 has an unseen item");
        server.ingest(&[Interaction::implicit(touched, item)]);
        assert!(!server.serve(touched, &mut s), "touched user must recompute");
        for &v in s.top_k() {
            assert_ne!(v, item, "freshly interacted item served back");
        }
        assert!(server.serve(untouched, &mut s), "untouched user must still hit");
    }

    #[test]
    fn reload_good_generation_swaps_and_invalidates() {
        let synth = generate(&ScenarioConfig::tiny(), 11);
        let dir =
            std::env::temp_dir().join(format!("kgrec_serve_reload_ok_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("open store");
        // Generation 1: a model with different weights than the initial.
        let mut rng = StdRng::seed_from_u64(99);
        let better = TransE::new(
            &mut rng,
            synth.dataset.graph.num_entities(),
            synth.dataset.graph.num_relations(),
            8,
            1.0,
        );
        let generation = store.save(&better, "retrained").expect("save");
        let model = fresh_model(&synth.dataset, 12);
        let graph_shape = (synth.dataset.graph.num_entities(), synth.dataset.graph.num_relations());
        let server = Server::new(synth.dataset, model, ServeConfig::default());
        let mut s = server.make_scratch();
        server.serve(UserId(0), &mut s);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = server
            .reload(&store, Box::new(TransE::new(&mut rng, graph_shape.0, graph_shape.1, 8, 1.0)));
        assert!(matches!(outcome.status, FitStatus::Ok), "{outcome:?}");
        assert_eq!(outcome.generation, Some(generation));
        assert_eq!(server.model_generation(), generation);
        assert!(!server.serve(UserId(0), &mut s), "reload must invalidate the cache");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reload_nan_generation_is_rejected_and_serving_survives() {
        let synth = generate(&ScenarioConfig::tiny(), 13);
        let dir =
            std::env::temp_dir().join(format!("kgrec_serve_reload_nan_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("open store");
        let (ne, nr) = (synth.dataset.graph.num_entities(), synth.dataset.graph.num_relations());
        // A snapshot that loads cleanly but scores NaN.
        let mut rng = StdRng::seed_from_u64(2);
        let mut poisoned = TransE::new(&mut rng, ne, nr, 8, 1.0);
        let nan_row = [f32::NAN; 8];
        for e in 0..ne {
            poisoned.entity_row_add(kgrec_graph::EntityId(e as u32), &nan_row);
        }
        store.save(&poisoned, "poisoned").expect("save");
        let server =
            Server::new(synth.dataset, fresh_model_shape(ne, nr, 14), ServeConfig::default());
        let mut s = server.make_scratch();
        server.serve(UserId(0), &mut s);
        let before = s.top_k().to_vec();
        let outcome = server.reload(&store, fresh_model_shape(ne, nr, 15));
        assert!(matches!(outcome.status, FitStatus::Degraded), "{outcome:?}");
        assert!(outcome.reason.as_deref().is_some_and(|r| r.contains("probe")));
        assert_eq!(server.model_generation(), 0, "old model must keep serving");
        assert!(server.serve(UserId(0), &mut s), "cache must survive a rejected reload");
        assert_eq!(s.top_k(), &before[..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn fresh_model_shape(ne: usize, nr: usize, seed: u64) -> Box<dyn ServedModel> {
        let mut rng = StdRng::seed_from_u64(seed);
        Box::new(TransE::new(&mut rng, ne, nr, 8, 1.0))
    }

    #[test]
    fn popularity_order_is_count_desc_id_asc() {
        let synth = generate(&ScenarioConfig::tiny(), 17);
        let interactions = synth.dataset.interactions;
        let counts = interactions.item_popularity();
        let order = popularity_order(&interactions);
        assert_eq!(order.len(), counts.len());
        for w in order.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            assert!(
                counts[a] > counts[b] || (counts[a] == counts[b] && a < b),
                "order violated at {a},{b}"
            );
        }
    }
}
