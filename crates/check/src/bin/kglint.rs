//! `kglint` — run the static checks over synthetic scenario bundles.
//!
//! ```text
//! kglint [--scenario NAME]... [--seed N] [--strict] [--max-hops H] [--no-split]
//! kglint --src [ROOT] [--strict]
//! ```
//!
//! With no `--scenario` the full synthetic family is checked. `--src`
//! switches to the source-scanning rules instead (`MD006`: allocating
//! vector ops inside epoch loops), walking `crates/models/src` and
//! `crates/kge/src` under `ROOT` (default `.`). Exit code 0 when clean,
//! 1 when the report fails (errors, or warnings under `--strict`; every
//! `--src` finding fails under `--strict`), 2 on usage errors.

use kgrec_check::{default_model_hyperparams, CheckBundle, CheckReport};
use kgrec_data::negative::labeled_eval_set;
use kgrec_data::split::ratio_split;
use kgrec_data::synth::{generate, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn scenario_by_name(name: &str) -> Option<ScenarioConfig> {
    match name {
        "tiny" => Some(ScenarioConfig::tiny()),
        "movielens-100k" => Some(ScenarioConfig::movielens_100k_like()),
        "movielens-1m" => Some(ScenarioConfig::movielens_1m_like()),
        "book-crossing" => Some(ScenarioConfig::book_crossing_like()),
        "lastfm" => Some(ScenarioConfig::lastfm_like()),
        "amazon" => Some(ScenarioConfig::amazon_product_like()),
        "yelp" => Some(ScenarioConfig::yelp_like()),
        "bing-news" => Some(ScenarioConfig::bing_news_like()),
        "weibo" => Some(ScenarioConfig::weibo_like()),
        _ => None,
    }
}

const ALL_SCENARIOS: &[&str] = &[
    "tiny",
    "movielens-100k",
    "movielens-1m",
    "book-crossing",
    "lastfm",
    "amazon",
    "yelp",
    "bing-news",
    "weibo",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: kglint [--scenario NAME]... [--seed N] [--strict] [--max-hops H] [--no-split]\n\
         \x20      kglint --src [ROOT] [--strict]\n\
         scenarios: {}",
        ALL_SCENARIOS.join(", ")
    );
    ExitCode::from(2)
}

/// Runs the source-scanning rules over the hot-path crates under `root`.
fn run_src_scan(root: &str, strict: bool) -> ExitCode {
    let mut diags = Vec::new();
    for rel in ["crates/models/src", "crates/kge/src"] {
        let dir = std::path::Path::new(root).join(rel);
        match kgrec_check::srclint::scan_dir(&dir) {
            Ok(found) => diags.extend(found),
            Err(e) => {
                eprintln!("kglint: cannot scan {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }
    for d in &diags {
        println!("{d}");
    }
    if !diags.is_empty() && strict {
        eprintln!("kglint: FAILED ({} source finding(s) in strict mode)", diags.len());
        return ExitCode::FAILURE;
    }
    println!("kglint: source scan {} finding(s)", diags.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut scenarios: Vec<String> = Vec::new();
    let mut seed = 2024u64;
    let mut strict = false;
    let mut max_hops = 3usize;
    let mut with_split = true;
    let mut src_root: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => match args.next() {
                Some(name) => scenarios.push(name),
                None => return usage(),
            },
            "--src" => {
                // Optional ROOT operand; flags keep their meaning.
                src_root = Some(match args.next() {
                    Some(next) if !next.starts_with("--") => next,
                    Some(flag) if flag == "--strict" => {
                        strict = true;
                        ".".to_owned()
                    }
                    Some(_) => return usage(),
                    None => ".".to_owned(),
                });
            }
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--max-hops" => match args.next().and_then(|s| s.parse().ok()) {
                Some(h) => max_hops = h,
                None => return usage(),
            },
            "--strict" => strict = true,
            "--no-split" => with_split = false,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    if let Some(root) = src_root {
        return run_src_scan(&root, strict);
    }
    if scenarios.is_empty() {
        scenarios = ALL_SCENARIOS.iter().map(|s| (*s).to_string()).collect();
    }

    let mut failed = false;
    for name in &scenarios {
        let Some(cfg) = scenario_by_name(name) else {
            eprintln!("kglint: unknown scenario '{name}'");
            return usage();
        };
        let synth = generate(&cfg, seed);
        let split;
        let pairs;
        let mut bundle = CheckBundle::new(&synth.dataset)
            .with_hyperparams(default_model_hyperparams())
            .with_max_hops(max_hops);
        if with_split {
            split = ratio_split(&synth.dataset.interactions, 0.2, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
            bundle = bundle.with_split(&split).with_eval_pairs(&pairs);
        }
        let report = CheckReport::run(&bundle);
        println!(
            "== {name}: {} users, {} items, {} interactions, {} entities, {} triples ==",
            synth.dataset.interactions.num_users(),
            synth.dataset.interactions.num_items(),
            synth.dataset.interactions.num_interactions(),
            synth.dataset.graph.num_entities(),
            synth.dataset.graph.num_triples()
        );
        print!("{}", report.render());
        if report.fails(strict) {
            failed = true;
        }
    }
    if failed {
        eprintln!(
            "kglint: FAILED ({})",
            if strict { "errors or warnings in strict mode" } else { "errors" }
        );
        return ExitCode::FAILURE;
    }
    println!("kglint: all {} scenario(s) clean", scenarios.len());
    ExitCode::SUCCESS
}
