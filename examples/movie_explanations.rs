//! Explainable movie recommendation — the Figure 1 scenario of the
//! survey, on a generated MovieLens-like dataset: train a KG-aware
//! model, recommend, and print the reasoning paths connecting each user
//! to each recommended movie.
//!
//! ```bash
//! cargo run --release -p kgrec-bench --example movie_explanations
//! ```

use kgrec_core::explain::Explainer;
use kgrec_core::{Recommender, TrainContext};
use kgrec_data::split::ratio_split;
use kgrec_data::synth::{generate, ScenarioConfig};
use kgrec_data::UserId;
use kgrec_models::embedding::Cfkg;

fn main() {
    let synth = generate(&ScenarioConfig::tiny(), 11);
    let data = &synth.dataset;
    let split = ratio_split(&data.interactions, 0.2, 3);
    let mut model = Cfkg::default_config();
    model.fit(&TrainContext::new(data, &split.train)).expect("fit");

    // The explainer runs on the same user–item graph the model trained on.
    let uig = model.user_item_graph().expect("fitted");
    let explainer = Explainer::new(uig);

    for u in 0..3u32 {
        let user = UserId(u);
        println!("\n=== {user} (history: {} items) ===", split.train.user_degree(user));
        for (item, score) in model.recommend(user, 2, split.train.items_of(user)) {
            println!("recommend {item} (score {score:.3})");
            let explanations = explainer.explain(user, item);
            if explanations.is_empty() {
                println!("  (no reasoning path within 3 hops)");
            }
            for ex in explanations.iter().take(2) {
                println!("  because: {}", ex.text);
            }
        }
    }
}
