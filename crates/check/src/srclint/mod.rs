//! `detlint` — token-stream static analysis for `kglint --src`.
//!
//! The repo's core bet is that metrics, parameters, and losses are
//! bit-identical at any thread count. Proptests sample that property;
//! this module *proves the conventions behind it hold at the source
//! level*, before anything runs: no hash-ordered iteration feeding
//! accumulators, no wall-clock or OS entropy in trainer logic, no
//! completion-order reductions, no truncating id casts, no panics in
//! supervised fit paths, no allocating vector ops in epoch loops.
//!
//! Pipeline: [`lexer`] turns a file into a token stream (comments —
//! including the `/* */` blocks the old line scanner missed — strings,
//! raw strings, lifetimes, float vs integer literals all handled);
//! [`context`] annotates every token with brace-scope facts (test code,
//! epoch-loop bodies, enclosing `fn`); [`rules`] holds the registry of
//! path-scoped checks (`SA0xx` + the ported `MD006`). The engine here
//! runs the applicable rules over each file, applies inline
//! suppressions, and reports unused or malformed suppressions as
//! `SA000`.
//!
//! # Suppressions
//!
//! A finding is suppressed by a line comment on the same line or the
//! line directly above it:
//!
//! ```text
//! /* not this - block comments are ignored */
//! ...
//! /// kglint::allow(SA003, reason why order cannot matter)   <- doc text, inert
//! ...
//! let x = w.lock().unwrap_or_else(PoisonError::into_inner);
//! ```
//!
//! The live form is a plain `//` comment: `kglint::allow(CODE, reason)`
//! with one or more codes and a mandatory reason. A suppression that
//! matches no finding — the rule stopped firing, the code moved — is
//! itself a finding (`SA000`), so stale allows cannot accumulate.

pub mod context;
pub mod lexer;
pub mod rules;

pub use rules::{src_rules, SourceFile, SrcRule};

use crate::diagnostic::{Diagnostic, Severity, Subject};
use std::path::Path;

/// Code under which the engine reports unused/malformed suppressions.
pub const SUPPRESSION_CODE: &str = "SA000";

/// The result of a source scan.
#[derive(Debug, Default)]
pub struct SrcScanReport {
    /// Findings that survived suppression, ordered by (file, line, code).
    pub findings: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of findings removed by `kglint::allow` suppressions.
    pub suppressed: usize,
}

impl SrcScanReport {
    /// Whether the scan fails the run: errors always do; in strict mode
    /// warnings do too (same semantics as bundle reports).
    pub fn fails(&self, strict: bool) -> bool {
        let errors = self.findings.iter().filter(|d| d.severity == Severity::Error).count();
        errors > 0 || (strict && !self.findings.is_empty())
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings.iter().filter(|d| d.severity == severity).count()
    }
}

/// Scans one file's source text with the default registry; `path` both
/// labels diagnostics and selects which rules apply (path-prefix
/// scoping), so fixtures pass workspace-relative paths like
/// `crates/models/src/foo.rs`.
pub fn scan_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let mut report = SrcScanReport::default();
    scan_into(path, src, &src_rules(), &mut report);
    report.findings
}

/// Scans one file and reports suppression statistics too.
pub fn scan_source_report(path: &str, src: &str) -> SrcScanReport {
    let mut report = SrcScanReport::default();
    scan_into(path, src, &src_rules(), &mut report);
    report
}

fn scan_into(path: &str, src: &str, rules: &[Box<dyn SrcRule>], report: &mut SrcScanReport) {
    let lexed = lexer::lex(src);
    let cx = context::build(&lexed.tokens);
    let file = SourceFile { path: path.to_owned(), tokens: lexed.tokens, cx };
    let mut findings: Vec<Diagnostic> = Vec::new();
    for rule in rules {
        if rule.applies_to(path) {
            findings.extend(rule.check(&file));
        }
    }

    // Apply suppressions: an allow on line L covers findings of its
    // codes on line L (trailing comment) and line L+1 (preceding-line
    // comment, the usual form under rustfmt).
    let known: Vec<&'static str> = rules.iter().map(|r| r.code()).collect();
    let mut used = vec![false; lexed.allows.len()];
    findings.retain(|d| {
        let line = match &d.subject {
            Subject::Source { line, .. } => *line,
            _ => return true,
        };
        for (ai, allow) in lexed.allows.iter().enumerate() {
            if allow.error.is_none()
                && (allow.line == line || allow.line + 1 == line)
                && allow.codes.iter().any(|c| c == d.code)
            {
                used[ai] = true;
                report.suppressed += 1;
                return false;
            }
        }
        true
    });

    // Unused, malformed, or unknown-code suppressions are findings.
    for (ai, allow) in lexed.allows.iter().enumerate() {
        let mk = |msg: String| {
            Diagnostic::new(
                SUPPRESSION_CODE,
                Severity::Warning,
                Subject::Source { file: path.to_owned(), line: allow.line },
                msg,
            )
        };
        if let Some(err) = &allow.error {
            findings.push(mk(format!("malformed kglint::allow — {err}")));
            continue;
        }
        if let Some(unknown) = allow.codes.iter().find(|c| !known.contains(&c.as_str())) {
            findings.push(mk(format!(
                "kglint::allow names unknown rule code `{unknown}` — known source rules: {}",
                known.join(", ")
            )));
            continue;
        }
        if !used[ai] {
            findings.push(mk(format!(
                "unused kglint::allow({}) — the rule no longer fires here; delete the comment",
                allow.codes.join(", ")
            )));
        }
    }

    findings.sort_by(|a, b| {
        let key = |d: &Diagnostic| match &d.subject {
            Subject::Source { line, .. } => (*line, d.code),
            _ => (0, d.code),
        };
        key(a).cmp(&key(b))
    });
    report.findings.extend(findings);
    report.files_scanned += 1;
}

/// Scans every crate's `src/` tree under `root/crates`, labelling
/// diagnostics with paths relative to `root`. File order (and therefore
/// finding order) is sorted, so output is stable across platforms.
pub fn scan_workspace(root: &Path) -> std::io::Result<SrcScanReport> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let crate_dir = entry?.path();
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let rules = src_rules();
    let mut report = SrcScanReport::default();
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel = rel.to_string_lossy().replace('\\', "/");
        scan_into(&rel, &text, &rules, &mut report);
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_consumes_finding_and_is_not_reported() {
        let src = "fn f() {\n// kglint::allow(SA005, fixture exercises the suppression path)\nlet x = n as u32;\n}\n";
        let diags = scan_source("crates/data/src/fixture.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
        let report = scan_source_report("crates/data/src/fixture.rs", src);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn unused_suppression_is_flagged() {
        let src = "// kglint::allow(SA005, nothing here any more)\nfn f() {}\n";
        let diags = scan_source("crates/data/src/fixture.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "SA000");
        assert!(diags[0].message.contains("unused"));
    }

    #[test]
    fn out_of_scope_files_are_clean() {
        // `as u32` is only an SA005 matter inside the id-space crates.
        let src = "fn f(n: usize) -> u32 { n as u32 }\n";
        assert!(scan_source("crates/check/src/fixture.rs", src).is_empty());
        assert_eq!(scan_source("crates/data/src/fixture.rs", src).len(), 1);
    }

    #[test]
    fn findings_are_ordered_by_line_then_code() {
        let src = "fn fit() {\nlet a = x.unwrap();\nuse std::collections::HashMap;\n}\n";
        let diags = scan_source("crates/models/src/fixture.rs", src);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["SA006", "SA001"], "{diags:?}");
    }
}
