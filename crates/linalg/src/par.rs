//! Deterministic worker pool for data-parallel evaluation.
//!
//! A dependency-free `std::thread` pool built for one job: sharding
//! independent work items (users to rank, models to train, triples to
//! score) across cores **without changing any numeric result**. Two
//! properties make that hold:
//!
//! 1. **index-addressed results** — every item's output lands in a slot
//!    keyed by its input index, regardless of which worker computed it or
//!    when it finished;
//! 2. **fixed-order reduction** — callers fold the returned `Vec` in
//!    input order, so floating-point accumulation happens in exactly the
//!    serial order. Metrics are therefore bit-identical for any thread
//!    count, including 1 (which runs inline without spawning).
//!
//! Scheduling is dynamic (workers pull the next unclaimed index from an
//! atomic counter), so heterogeneous item costs — a KGAT fit next to a
//! MostPop fit — balance without affecting determinism.
//!
//! Thread-count policy, in priority order: an explicit request (the
//! binaries' `--threads N` flag), the [`THREADS_ENV`] environment
//! variable, then [`std::thread::available_parallelism`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted by [`resolve_threads`] when no explicit
/// thread count is given: `KGREC_THREADS=4`.
pub const THREADS_ENV: &str = "KGREC_THREADS";

/// Resolves the worker count: `explicit` (clamped to ≥ 1) wins, then a
/// positive [`THREADS_ENV`] value, then the machine's available
/// parallelism (1 when even that is unknowable).
///
/// An unparseable or zero [`THREADS_ENV`] is reported on stderr and
/// ignored rather than killing the run.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => eprintln!("ignoring invalid {THREADS_ENV}={raw:?} (want a positive integer)"),
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on up to `threads` workers, returning results in
/// input order.
///
/// Determinism contract: for a pure `f`, the returned `Vec` is identical
/// for every thread count. With `threads <= 1` (or fewer than two items)
/// the map runs inline on the caller's thread — the serial path *is* the
/// parallel path with one worker, not separate code.
///
/// # Panics
/// A panic inside `f` propagates to the caller once all workers have
/// drained (the remaining items still complete). Use [`par_map_catch`]
/// when one poisoned item must not sink the batch.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited before filling its slot")
        })
        .collect()
}

/// Like [`par_map`], but isolates panics per item: a panicking `f(i, _)`
/// yields `Err(message)` in slot `i` while every other item completes
/// normally. The pool itself never deadlocks or dies — workers keep
/// pulling indices after a caught panic.
///
/// The serial (`threads <= 1`) path catches identically, so outcome
/// vectors are thread-count-independent for deterministic `f`.
pub fn par_map_catch<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items, threads, |i, item| {
        catch_unwind(AssertUnwindSafe(|| f(i, item)))
            .map_err(|payload| panic_text(payload.as_ref()))
    })
}

/// Stringifies a panic payload (`&str` / `String` cover every panic in
/// the workspace).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 4, 7, 64] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i as u64, x, "index must track the item");
                x * 3 + 1
            });
            let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn float_reduction_is_bit_identical_across_thread_counts() {
        // Sums folded in returned order must match the serial fold exactly
        // — the property the evaluation protocols rely on.
        let items: Vec<f64> = (0..1000).map(|i| 1.0 / (f64::from(i) + 1.0)).collect();
        let serial: f64 = par_map(&items, 1, |_, &x| x.sin() * x).iter().sum();
        for threads in [2, 3, 4, 7] {
            let par: f64 = par_map(&items, threads, |_, &x| x.sin() * x).iter().sum();
            assert_eq!(serial.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = par_map(&Vec::<i32>::new(), 8, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn catch_poisons_only_the_panicking_item() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u32> = (0..40).collect();
        for threads in [1, 4] {
            let out = par_map_catch(&items, threads, |_, &x| {
                assert!(x != 17, "poisoned shard {x}");
                x + 1
            });
            for (i, r) in out.iter().enumerate() {
                if i == 17 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("poisoned shard 17"), "msg={msg}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 + 1);
                }
            }
        }
        std::panic::set_hook(hook);
    }

    #[test]
    fn explicit_thread_count_wins_and_is_clamped() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "0 clamps to 1");
    }

    #[test]
    fn default_thread_count_is_positive() {
        // Whatever the environment says, the answer must be usable.
        assert!(resolve_threads(None) >= 1);
    }
}
