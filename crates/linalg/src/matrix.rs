//! Row-major dense matrices.
//!
//! [`Matrix`] is the parameter container for projection matrices (TransR's
//! `M_r`, RippleNet's relation matrices `R_i`, dense-layer weights). The
//! kernels here are exactly the ones the hand-written backward passes need:
//! `A·x`, `Aᵀ·x`, rank-1 updates (`A += α·x·yᵀ`) and outer products.

use crate::vector;

/// Cache-block edge for the `matmul` k-dimension: one block of B rows
/// (64 × cols floats) stays resident while a stripe of C is updated.
const K_BLOCK: usize = 64;

/// Tile edge for the blocked `transpose`: a 32 × 32 f32 tile is 4 KiB,
/// small enough that both the read and write tiles fit in L1.
const T_BLOCK: usize = 32;

/// A dense row-major `rows × cols` matrix of `f32`.
#[derive(Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Self { rows: self.rows, cols: self.cols, data: self.data.clone() }
    }

    /// Reuses the existing allocation when shapes allow — this is what
    /// makes snapshot-on-improvement in `kgrec_kge` allocation-free after
    /// the first epoch.
    fn clone_from(&mut self, source: &Self) {
        self.rows = source.rows;
        self.cols = source.cols;
        self.data.clone_from(&source.data);
    }
}

impl Matrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec: size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Matrix–vector product `y = A·x` (`x.len() == cols`).
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y = A·x` written into a caller-owned buffer (`y.len() == rows`).
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec: output dimension mismatch");
        for r in 0..self.rows {
            y[r] = vector::dot(self.row(r), x);
        }
    }

    /// Transposed matrix–vector product `y = Aᵀ·x` (`x.len() == rows`).
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.cols];
        self.matvec_t_into(x, &mut y);
        y
    }

    /// `y = Aᵀ·x` written into a caller-owned buffer (`y.len() == cols`).
    ///
    /// The buffer is overwritten (zeroed first), not accumulated into.
    pub fn matvec_t_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "matvec_t: dimension mismatch");
        assert_eq!(y.len(), self.cols, "matvec_t: output dimension mismatch");
        y.fill(0.0);
        for r in 0..self.rows {
            vector::axpy(x[r], self.row(r), y);
        }
    }

    /// Rank-1 update `A += α · x · yᵀ` (`x.len() == rows`, `y.len() == cols`).
    ///
    /// This is the gradient accumulation kernel for any bilinear form
    /// `xᵀ A y`: `∂/∂A (xᵀ A y) = x yᵀ`.
    pub fn rank1_update(&mut self, alpha: f32, x: &[f32], y: &[f32]) {
        assert_eq!(x.len(), self.rows, "rank1_update: row mismatch");
        assert_eq!(y.len(), self.cols, "rank1_update: col mismatch");
        for r in 0..self.rows {
            let s = alpha * x[r];
            vector::axpy(s, y, self.row_mut(r));
        }
    }

    /// Dense matrix product `A·B`.
    ///
    /// Cache-blocked over the inner dimension: a `K_BLOCK`-row stripe of B
    /// stays hot while every row of C it contributes to is updated. Each
    /// output element still accumulates its `k` terms in ascending order
    /// (blocks ascend, `k` ascends within a block), so the result is
    /// bit-identical to the naive triple loop. The inner loop is
    /// branch-free: real embeddings are almost never exactly zero, so a
    /// sparsity test costs a misprediction per element and saves nothing.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let mut kb = 0;
        while kb < self.cols {
            let kend = (kb + K_BLOCK).min(self.cols);
            for r in 0..self.rows {
                let arow = self.row(r);
                let orow = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for k in kb..kend {
                    vector::axpy(arow[k], other.row(k), orow);
                }
            }
            kb = kend;
        }
        out
    }

    /// Returns the transpose `Aᵀ`.
    ///
    /// Walks the source in `T_BLOCK × T_BLOCK` tiles so writes to the
    /// column-major destination stay within an L1-resident tile instead of
    /// striding the whole output every element.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(T_BLOCK) {
            let rend = (rb + T_BLOCK).min(self.rows);
            for cb in (0..self.cols).step_by(T_BLOCK) {
                let cend = (cb + T_BLOCK).min(self.cols);
                for r in rb..rend {
                    for c in cb..cend {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// `A += α · B`, element-wise.
    pub fn add_scaled(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "add_scaled: row mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled: col mismatch");
        vector::axpy(alpha, &other.data, &mut self.data);
    }

    /// Sets every element to zero (for gradient buffers reused across steps).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        vector::norm(&self.data)
    }
}

/// Outer product `x · yᵀ` as a fresh matrix.
pub fn outer(x: &[f32], y: &[f32]) -> Matrix {
    let mut m = Matrix::zeros(x.len(), y.len());
    m.rank1_update(1.0, x, y);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let i = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn matvec_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose_matvec() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = vec![2.0, -1.0];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn rank1_update_matches_outer() {
        let mut a = Matrix::zeros(2, 3);
        a.rank1_update(2.0, &[1.0, -1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(a.data(), &[2.0, 4.0, 6.0, -2.0, -4.0, -6.0]);
        let o = outer(&[1.0, -1.0], &[1.0, 2.0, 3.0]);
        let mut scaled = o.clone();
        scaled.fill_zero();
        scaled.add_scaled(2.0, &o);
        assert_eq!(a, scaled);
    }

    #[test]
    fn matmul_associates_with_matvec() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = vec![5.0, 7.0];
        let ab = a.matmul(&b);
        let lhs = ab.matvec(&x);
        let rhs = a.matvec(&b.matvec(&x));
        for (l, r) in lhs.iter().zip(rhs.iter()) {
            assert!((l - r).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_involutive() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_vec_size_checked() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    /// Deterministic non-round filler so blocked kernels cross tile edges.
    fn filled(rows: usize, cols: usize, salt: f32) -> Matrix {
        let data = (0..rows * cols).map(|i| (i as f32).mul_add(0.17, salt) % 3.1 - 1.4).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matmul_matches_naive_including_zeros() {
        // Sizes straddle K_BLOCK; planted zeros exercise the removed branch.
        let mut a = filled(7, 70, 0.3);
        a.set(0, 0, 0.0);
        a.set(3, 65, 0.0);
        let b = filled(70, 5, -0.9);
        let got = a.matmul(&b);
        let mut naive = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for k in 0..a.cols() {
                for c in 0..b.cols() {
                    let cell = naive.get(r, c) + a.get(r, k) * b.get(k, c);
                    naive.set(r, c, cell);
                }
            }
        }
        for (g, n) in got.data().iter().zip(naive.data().iter()) {
            assert_eq!(g.to_bits(), n.to_bits());
        }
    }

    #[test]
    fn blocked_transpose_matches_elementwise() {
        let a = filled(37, 41, 1.1);
        let t = a.transpose();
        assert_eq!(t.rows(), 41);
        assert_eq!(t.cols(), 37);
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                assert_eq!(t.get(c, r).to_bits(), a.get(r, c).to_bits());
            }
        }
    }

    #[test]
    fn into_variants_match_allocating() {
        let a = filled(6, 9, 0.5);
        let x: Vec<f32> = (0..9).map(|i| i as f32 * 0.3 - 1.0).collect();
        let xr: Vec<f32> = (0..6).map(|i| 0.7 - i as f32 * 0.2).collect();
        let mut y = vec![7.0f32; 6];
        a.matvec_into(&x, &mut y);
        assert_eq!(y, a.matvec(&x));
        let mut yt = vec![7.0f32; 9];
        a.matvec_t_into(&xr, &mut yt);
        assert_eq!(yt, a.matvec_t(&xr));
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let a = filled(4, 5, 0.2);
        let mut b = Matrix::zeros(4, 5);
        let ptr_before = b.data().as_ptr();
        b.clone_from(&a);
        assert_eq!(a, b);
        assert_eq!(ptr_before, b.data().as_ptr(), "same-size clone_from must not reallocate");
    }
}
