//! Online serving: answering "top-K for user `u`, now" at low latency.
//!
//! Everything else in the workspace is batch evaluation; this crate turns
//! the offline framework into a live recommender, the deployment mode the
//! survey's application-scenario taxonomy (Guo et al., ICDE 2023, §6)
//! presumes. The pipeline is the classic two-stage split used by
//! production recommenders:
//!
//! 1. **Candidate generation** ([`candidates_for`]) — cheap retrieval
//!    from structure only: the CSR adjacency of the item knowledge graph
//!    (one hop to item–item neighbours, two hops through shared
//!    attributes) plus the columnar item-major transpose of the
//!    interaction store (co-visitation), topped up from a popularity
//!    order. Produces a bounded, deduplicated candidate set without
//!    touching the embedding model.
//! 2. **Exact ranking** ([`rank_candidates`]) — scores only the
//!    candidates with the fused SIMD kernels from `kgrec_linalg`
//!    (`axpy`/`dot` over KGE entity embeddings) and selects the top K
//!    with the same select-based partial sort the batch evaluator uses.
//!
//! Both stages write into a caller-owned [`ServeScratch`] arena and are
//! allocation-free after warm-up; `kglint --src` rule SA008 pins that
//! property at the token level for the request-path functions.
//!
//! Around the pipeline, [`Server`] adds the two pieces a long-running
//! process needs:
//!
//! * a sharded, generation-stamped per-user top-K **cache** whose entries
//!   are invalidated by [`Server::ingest`] (new interactions) and by
//!   model reloads — see [`cache::TopKCache`] for the stamping protocol;
//! * **hot model reload** from a [`kgrec_store::CheckpointStore`] under
//!   the training supervisor's degraded/failed semantics: a reload that
//!   fails to load, scores non-finite values, or panics is rejected and
//!   the previous model keeps serving ([`Server::reload`]).

pub mod cache;
pub mod index;
pub mod pipeline;
pub mod scratch;
pub mod server;

pub use cache::TopKCache;
pub use index::ServeIndex;
pub use pipeline::{candidates_for, rank_candidates, serve_score};
pub use scratch::ServeScratch;
pub use server::{ReloadOutcome, ServeConfig, ServedModel, Server};
