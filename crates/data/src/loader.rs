//! Tab-separated loaders for real interaction and triple dumps.
//!
//! The synthetic generators cover the offline reproduction; these loaders
//! make the library usable with the real corpora of Table 4 when a user
//! has them on disk:
//!
//! * interactions: `user \t item [\t rating]` with string ids, densified;
//! * triples: `head \t relation \t tail` with string names.

use crate::dataset::KgDataset;
use crate::ids::{ItemId, UserId};
use crate::interactions::{Interaction, InteractionMatrix};
use kgrec_graph::{id32, EntityId, KgBuilder};
use std::collections::HashMap;
use std::fmt;

/// Errors produced by the loaders.
#[derive(Debug)]
pub enum LoadError {
    /// A line did not have the expected number of fields.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A rating field failed to parse as a float.
    BadRating {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
            LoadError::BadRating { line, field } => {
                write!(f, "line {line}: cannot parse rating {field:?}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Parsed interaction data with the string→dense id maps retained.
#[derive(Debug, Clone)]
pub struct LoadedInteractions {
    /// The densified matrix.
    pub matrix: InteractionMatrix,
    /// Original user keys in id order.
    pub user_keys: Vec<String>,
    /// Original item keys in id order.
    pub item_keys: Vec<String>,
}

/// Parses `user \t item [\t rating]` lines. Blank lines and lines starting
/// with `#` are skipped. Ids are assigned densely in first-seen order.
pub fn parse_interactions(text: &str) -> Result<LoadedInteractions, LoadError> {
    let mut user_index: HashMap<String, UserId> = HashMap::new();
    let mut item_index: HashMap<String, ItemId> = HashMap::new();
    let mut user_keys = Vec::new();
    let mut item_keys = Vec::new();
    let mut interactions = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 2 || fields.len() > 3 {
            return Err(LoadError::Malformed {
                line: lineno + 1,
                message: format!("expected 2 or 3 tab-separated fields, got {}", fields.len()),
            });
        }
        let user = *user_index.entry(fields[0].to_owned()).or_insert_with(|| {
            user_keys.push(fields[0].to_owned());
            UserId(id32(user_keys.len() - 1))
        });
        let item = *item_index.entry(fields[1].to_owned()).or_insert_with(|| {
            item_keys.push(fields[1].to_owned());
            ItemId(id32(item_keys.len() - 1))
        });
        let rating = if fields.len() == 3 {
            Some(fields[2].parse::<f32>().map_err(|_| LoadError::BadRating {
                line: lineno + 1,
                field: fields[2].to_owned(),
            })?)
        } else {
            None
        };
        interactions.push(Interaction { user, item, rating, timestamp: None });
    }
    let matrix =
        InteractionMatrix::from_interactions(user_keys.len(), item_keys.len(), &interactions);
    Ok(LoadedInteractions { matrix, user_keys, item_keys })
}

/// Parses `head \t relation \t tail` triple lines into a [`KgDataset`],
/// aligning items by name: an item key of the interaction data that
/// appears as an entity name in the triples is linked to that entity;
/// items never mentioned in the KG get a fresh isolated entity (the
/// cold-KG case every model must tolerate).
pub fn parse_dataset(
    interactions: &LoadedInteractions,
    triples_text: &str,
) -> Result<KgDataset, LoadError> {
    let mut b = KgBuilder::new();
    let ty = b.entity_type("entity");
    for (lineno, line) in triples_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 3 {
            return Err(LoadError::Malformed {
                line: lineno + 1,
                message: format!("expected 3 tab-separated fields, got {}", fields.len()),
            });
        }
        let h = b.entity(fields[0], ty);
        let r = b.relation(fields[1]);
        let t = b.entity(fields[2], ty);
        b.triple(h, r, t);
    }
    // Ensure every item has an entity.
    let item_entities: Vec<EntityId> =
        interactions.item_keys.iter().map(|k| b.entity(k, ty)).collect();
    let graph = b.build(true);
    Ok(KgDataset::new(interactions.matrix.clone(), graph, item_entities))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_implicit_and_rated() {
        let li = parse_interactions("alice\tdune\nbob\tdune\t4.5\n\n# comment\n").unwrap();
        assert_eq!(li.matrix.num_users(), 2);
        assert_eq!(li.matrix.num_items(), 1);
        assert_eq!(li.matrix.num_interactions(), 2);
        assert_eq!(li.user_keys, vec!["alice", "bob"]);
        let r = li.matrix.ratings_of(UserId(1));
        assert_eq!(r[0], 4.5);
    }

    #[test]
    fn malformed_line_reported_with_number() {
        let err = parse_interactions("a\tb\nbroken line without tab\n").unwrap_err();
        match err {
            LoadError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_rating_reported() {
        let err = parse_interactions("a\tb\tnot_a_number\n").unwrap_err();
        assert!(matches!(err, LoadError::BadRating { line: 1, .. }));
    }

    #[test]
    fn dataset_aligns_items_by_name() {
        let li = parse_interactions("alice\tdune\nalice\tsolaris\n").unwrap();
        let ds = parse_dataset(&li, "dune\tauthor\therbert\nsolaris\tauthor\tlem\n").unwrap();
        assert_eq!(ds.item_entities.len(), 2);
        let e = ds.entity_of(ItemId(0));
        assert_eq!(ds.graph.entity_name(e), "dune");
        // dune has an author edge (plus inverse).
        assert!(ds.graph.degree(e) >= 1);
    }

    #[test]
    fn items_missing_from_kg_get_isolated_entities() {
        let li = parse_interactions("alice\tdune\nalice\tobscure\n").unwrap();
        let ds = parse_dataset(&li, "dune\tauthor\therbert\n").unwrap();
        let e = ds.entity_of(ItemId(1));
        assert_eq!(ds.graph.entity_name(e), "obscure");
        assert_eq!(ds.graph.degree(e), 0);
    }

    #[test]
    fn triple_parse_error_propagates() {
        let li = parse_interactions("a\tb\n").unwrap();
        let err = parse_dataset(&li, "only\ttwo\n").unwrap_err();
        assert!(matches!(err, LoadError::Malformed { line: 1, .. }));
    }
}
