//! The shared recommender interface (survey Eq. 1: `ŷ = f(u, v)`).

use crate::error::CoreError;
use crate::taxonomy::Taxonomy;
use kgrec_data::{InteractionMatrix, ItemId, KgDataset, UserId};
use kgrec_linalg::vector;

/// Everything a model may use during training: the dataset bundle (item
/// KG, alignment, optional token lists) and the *training* interaction
/// matrix. Test interactions are never visible here.
#[derive(Debug, Clone, Copy)]
pub struct TrainContext<'a> {
    /// Dataset bundle (graph + alignment + side data).
    pub dataset: &'a KgDataset,
    /// Training interactions only.
    pub train: &'a InteractionMatrix,
}

impl<'a> TrainContext<'a> {
    /// Convenience constructor.
    ///
    /// In debug builds this validates the bundle's cross-references — the
    /// cheap subset of the `kgrec-check` (`kglint`) rule set that can run
    /// on every construction: the train matrix must share the dataset's
    /// id spaces (DS003) and the item↔entity alignment must be complete
    /// and in range (KG003). Release builds skip the checks.
    pub fn new(dataset: &'a KgDataset, train: &'a InteractionMatrix) -> Self {
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                train.num_users(),
                dataset.interactions.num_users(),
                "TrainContext: train matrix user space differs from the dataset's (DS003)"
            );
            debug_assert_eq!(
                train.num_items(),
                dataset.interactions.num_items(),
                "TrainContext: train matrix item space differs from the dataset's (DS003)"
            );
            debug_assert_eq!(
                dataset.item_entities.len(),
                train.num_items(),
                "TrainContext: item-entity alignment does not cover every item (KG003)"
            );
            let n_entities = dataset.graph.num_entities();
            debug_assert!(
                dataset.item_entities.iter().all(|e| e.index() < n_entities),
                "TrainContext: aligned entity out of range for the graph (KG003)"
            );
        }
        Self { dataset, train }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.train.num_users()
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.train.num_items()
    }
}

/// A trainable, scorable recommender.
///
/// The contract mirrors the survey's formulation: `fit` learns the
/// representations, `score` is the preference function
/// `f: u_i × v_j → ŷ_{i,j}` (higher = preferred), and `recommend` sorts
/// unseen items by it.
///
/// `Send + Sync` is part of the contract: the evaluation harness shards
/// models across worker threads and ranks users against a shared `&self`.
/// Every model is a plain data struct, so the bounds are free; a model
/// needing interior mutability must bring its own synchronization.
pub trait Recommender: Send + Sync {
    /// Model name (matches the Table 3 method name where applicable).
    fn name(&self) -> &'static str;

    /// The model's Table 3 classification.
    fn taxonomy(&self) -> Taxonomy;

    /// Trains the model. Must be called before `score`.
    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError>;

    /// Adjusts hyper-parameters ahead of a supervised retry of `fit`
    /// (attempt `attempt`, 1-based): the convention is to halve the
    /// learning rate and perturb the RNG seed so the retry explores a
    /// different trajectory instead of replaying the failure
    /// deterministically.
    ///
    /// Returns `false` (the default) when the model has no retry knobs;
    /// the supervisor then stops retrying, because re-running an
    /// unchanged deterministic `fit` reproduces the same failure.
    fn prepare_retry(&mut self, _attempt: u32) -> bool {
        false
    }

    /// Number of training passes one `fit` makes over the interaction
    /// data, for throughput reporting (`fit_rows_per_sec` in
    /// `BENCH_eval.json` is `fit_epochs × train rows / fit wall-clock`).
    ///
    /// Defaults to 1, which is exact for the single-pass models
    /// (MostPop, ItemKnn); epoch-trained models override with their
    /// configured epoch count. Purely observational — never read by
    /// training itself.
    fn fit_epochs(&self) -> usize {
        1
    }

    /// Predicted preference `ŷ_{i,j}` (monotone; not necessarily in
    /// `[0, 1]`).
    fn score(&self, user: UserId, item: ItemId) -> f32;

    /// Number of items the fitted model can score (`n`).
    fn num_items(&self) -> usize;

    /// The model's persistence handle, when it supports versioned
    /// save/load (see `kgrec_store::Persistable`). The supervisor's
    /// checkpointed path uses this for warm starts and post-fit saves;
    /// the default `None` opts a model out of checkpointing entirely.
    fn persistable(&self) -> Option<&dyn kgrec_store::Persistable> {
        None
    }

    /// Mutable counterpart of [`Self::persistable`] (checkpoint restore).
    fn persistable_mut(&mut self) -> Option<&mut dyn kgrec_store::Persistable> {
        None
    }

    /// Points the model at a checkpoint directory for *epoch-level*
    /// checkpointing inside `fit` (resume-from-last-good mid-training).
    /// Returns `false` (the default) when the model does not checkpoint
    /// during fit; such models can still be covered by the supervisor's
    /// whole-model warm start through [`Self::persistable`].
    fn set_checkpoint_dir(&mut self, _dir: &std::path::Path) -> bool {
        false
    }

    /// Top-`k` recommendations for `user`, excluding `exclude` (typically
    /// the user's training items). Deterministic: ties break toward the
    /// smaller item id.
    fn recommend(&self, user: UserId, k: usize, exclude: &[ItemId]) -> Vec<(ItemId, f32)> {
        let n = self.num_items();
        let mut scores = vec![f32::NEG_INFINITY; n];
        for (j, s) in scores.iter_mut().enumerate() {
            *s = self.score(user, ItemId(j as u32));
        }
        for e in exclude {
            if e.index() < n {
                scores[e.index()] = f32::NEG_INFINITY;
            }
        }
        vector::top_k_indices(&scores, k)
            .into_iter()
            .filter(|&j| scores[j] > f32::NEG_INFINITY)
            .map(|j| (ItemId(j as u32), scores[j]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::UsageType;

    /// A trivial model: prefers small item ids for even users, large for
    /// odd — enough to exercise the default `recommend`.
    struct Toy {
        n: usize,
    }

    impl Recommender for Toy {
        fn name(&self) -> &'static str {
            "Toy"
        }

        fn taxonomy(&self) -> Taxonomy {
            Taxonomy {
                method: "Toy",
                venue: "none",
                year: 2026,
                usage: UsageType::EmbeddingBased,
                techniques: &[],
                reference: 0,
            }
        }

        fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
            Ok(())
        }

        fn score(&self, user: UserId, item: ItemId) -> f32 {
            if user.0.is_multiple_of(2) {
                -(item.0 as f32)
            } else {
                item.0 as f32
            }
        }

        fn num_items(&self) -> usize {
            self.n
        }
    }

    #[test]
    fn recommend_orders_by_score() {
        let m = Toy { n: 5 };
        let recs = m.recommend(UserId(0), 3, &[]);
        let ids: Vec<u32> = recs.iter().map(|(i, _)| i.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let recs = m.recommend(UserId(1), 3, &[]);
        let ids: Vec<u32> = recs.iter().map(|(i, _)| i.0).collect();
        assert_eq!(ids, vec![4, 3, 2]);
    }

    #[test]
    fn recommend_excludes_history() {
        let m = Toy { n: 5 };
        let recs = m.recommend(UserId(0), 3, &[ItemId(0), ItemId(1)]);
        let ids: Vec<u32> = recs.iter().map(|(i, _)| i.0).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn recommend_truncates_when_everything_excluded() {
        let m = Toy { n: 2 };
        let recs = m.recommend(UserId(0), 5, &[ItemId(0), ItemId(1)]);
        assert!(recs.is_empty());
    }
}
