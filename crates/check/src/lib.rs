//! `kgrec-check` — static analysis over `(KG dataset, split, model
//! config)` bundles, before any training happens.
//!
//! Every experiment in this workspace consumes the same three inputs: a
//! [`kgrec_data::KgDataset`] (interactions + item KG + alignment), a
//! train/test [`kgrec_data::split::Split`], and model configuration. Each
//! has invariants that, when violated, do not crash — they silently
//! corrupt results: leaked test interactions inflate AUC, dangling
//! entity ids scramble embeddings, duplicate alignments merge item
//! neighborhoods, a NaN in one embedding row poisons every ranking
//! containing the item.
//!
//! This crate makes those invariants checkable:
//!
//! * [`Diagnostic`] — one finding: stable code, [`Severity`], message,
//!   [`Subject`];
//! * [`Rule`] — one named check; [`rules::default_rules`] is the standard
//!   set of fourteen across three layers (KG integrity `KG0xx`,
//!   dataset/split hygiene `DS0xx`, model/metadata consistency `MD0xx` —
//!   see [`rules`] for the full table);
//! * [`srclint`] — *detlint*, the token-stream source analysis behind
//!   `kglint --src`: a hand-rolled lexer, brace-scope context tracking,
//!   and a registry of determinism/hot-path rules (`SA0xx` plus the
//!   ported `MD006`) with inline `kglint::allow` suppressions;
//! * [`json`] — the shared `--json` rendering both rule families emit;
//! * [`CheckBundle`] — what a pass looks at (only the dataset is
//!   mandatory);
//! * [`CheckReport`] — the aggregated result, with a strict mode in
//!   which warnings also fail.
//!
//! The `kglint` binary runs the rule set over the synthetic scenario
//! family from the command line; the `kgrec-bench` harness binaries run
//! it in strict mode before every evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bundle;
pub mod diagnostic;
pub mod json;
pub mod report;
pub mod rules;
pub mod srclint;

pub use bundle::{default_model_hyperparams, CheckBundle, FloatAudit, HyperParam};
pub use diagnostic::{Diagnostic, Severity, Subject};
pub use report::CheckReport;
pub use rules::{default_rules, Rule};
pub use srclint::{scan_workspace, SrcScanReport};
