//! Finite-difference gradient checking.
//!
//! Every model in `kgrec-models` ships hand-derived gradients; these
//! helpers are how their test suites prove the derivations. Central
//! difference with a relative-error criterion is used, which is robust to
//! the wide magnitude range of embedding gradients.

/// Result of checking one coordinate.
#[derive(Debug, Clone, Copy)]
pub struct CoordCheck {
    /// Flat index of the coordinate checked.
    pub index: usize,
    /// Analytic gradient supplied by the caller.
    pub analytic: f32,
    /// Central finite-difference estimate.
    pub numeric: f32,
    /// `|analytic − numeric| / max(1, |analytic|, |numeric|)`.
    pub rel_error: f32,
}

/// Checks an analytic gradient against central finite differences.
///
/// `f` evaluates the scalar loss at the current parameters; `params` is the
/// flat parameter vector (restored to its original values afterwards);
/// `analytic` is the caller's gradient of the same length. Returns the
/// per-coordinate report for any coordinate whose relative error exceeds
/// `tol` — an empty vector means the gradient checks out.
pub fn check_gradient<F>(
    params: &mut [f32],
    analytic: &[f32],
    eps: f32,
    tol: f32,
    mut f: F,
) -> Vec<CoordCheck>
where
    F: FnMut(&[f32]) -> f32,
{
    assert_eq!(params.len(), analytic.len(), "check_gradient: length mismatch");
    let mut failures = Vec::new();
    for i in 0..params.len() {
        let orig = params[i];
        params[i] = orig + eps;
        let fp = f(params);
        params[i] = orig - eps;
        let fm = f(params);
        params[i] = orig;
        let numeric = (fp - fm) / (2.0 * eps);
        let denom = 1.0f32.max(analytic[i].abs()).max(numeric.abs());
        let rel_error = (analytic[i] - numeric).abs() / denom;
        if rel_error > tol {
            failures.push(CoordCheck { index: i, analytic: analytic[i], numeric, rel_error });
        }
    }
    failures
}

/// Asserts that the analytic gradient passes [`check_gradient`]; panics with
/// a readable report otherwise. Intended for test code.
pub fn assert_gradient<F>(params: &mut [f32], analytic: &[f32], eps: f32, tol: f32, f: F)
where
    F: FnMut(&[f32]) -> f32,
{
    let failures = check_gradient(params, analytic, eps, tol, f);
    if !failures.is_empty() {
        let mut msg = format!("gradient check failed on {} coordinate(s):\n", failures.len());
        for c in failures.iter().take(8) {
            msg.push_str(&format!(
                "  [{}] analytic={:.6} numeric={:.6} rel_err={:.4}\n",
                c.index, c.analytic, c.numeric, c.rel_error
            ));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_correct_gradient() {
        // f(x) = x0² + 3 x1, grad = [2 x0, 3].
        let mut params = vec![1.5f32, -2.0];
        let analytic = vec![3.0f32, 3.0];
        let fails =
            check_gradient(&mut params, &analytic, 1e-3, 1e-2, |p| p[0] * p[0] + 3.0 * p[1]);
        assert!(fails.is_empty(), "{fails:?}");
        // Parameters restored.
        assert_eq!(params, vec![1.5, -2.0]);
    }

    #[test]
    fn rejects_wrong_gradient() {
        let mut params = vec![1.0f32];
        let analytic = vec![10.0f32]; // true gradient is 2.
        let fails = check_gradient(&mut params, &analytic, 1e-3, 1e-2, |p| p[0] * p[0]);
        assert_eq!(fails.len(), 1);
        assert!((fails[0].numeric - 2.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "gradient check failed")]
    fn assert_panics_on_bad_gradient() {
        let mut params = vec![1.0f32];
        assert_gradient(&mut params, &[0.0], 1e-3, 1e-2, |p| p[0] * p[0]);
    }
}
