//! Regenerates Table 1 of the survey: commonly used knowledge graphs.

use kgrec_bench::print_text_table;
use kgrec_core::kg_registry::{table1, used_in_recommenders};

fn main() {
    println!("TABLE 1 — A collection of commonly used knowledge graphs");
    let rows: Vec<Vec<String>> = table1()
        .into_iter()
        .map(|e| {
            let scale = match (e.entities, e.facts) {
                (0, 0) => String::from("-"),
                (0, f) => format!("~{} facts", human(f)),
                (ent, 0) => format!("~{} entities", human(ent)),
                (ent, f) => format!("~{} entities / {} facts", human(ent), human(f)),
            };
            vec![
                e.name.to_owned(),
                e.domain.label(),
                e.sources.join(", "),
                if e.year == 0 { "-".into() } else { e.year.to_string() },
                scale,
            ]
        })
        .collect();
    print_text_table(
        &["KG Name", "Domain Type", "Main Knowledge Source", "Since", "Scale (as quoted in §2.1)"],
        &rows,
    );
    println!(
        "\nKGs used by the surveyed recommender systems: {}",
        used_in_recommenders().join(", ")
    );
}

fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{}B", n / 1_000_000_000)
    } else if n >= 1_000_000 {
        format!("{}M", n / 1_000_000)
    } else {
        n.to_string()
    }
}
