//! Deterministic storage-fault injection.
//!
//! The disk-level counterpart of `kgrec_data::faults`: each fault is a
//! reproducible corruption of a checkpoint directory, aimed at a specific
//! defense in the load path. The recovery-matrix tests (and the
//! `eval_suite` / `crash_drill` storage drills) inject every fault and
//! assert the loader degrades gracefully — previous good generation, then
//! fresh training — and never panics or loads garbage.
//!
//! | fault                 | corrupts                         | expected defense          |
//! |-----------------------|----------------------------------|---------------------------|
//! | `truncation`          | snapshot cut to half length      | structural decode / CRC   |
//! | `bit-flip`            | one payload bit flipped          | per-section CRC32         |
//! | `torn-write`          | tail overwritten + stray `.tmp`  | per-section CRC32         |
//! | `missing-manifest`    | `MANIFEST` deleted               | manifest is only a hint   |
//! | `stale-format-version`| header version field bumped      | version gate              |
//! | `checksum-mismatch`   | stored CRC field (payload intact)| CRC comparison            |
//! | `dangling-last-good`  | pointer to nonexistent generation| pointer is only a hint    |

use crate::atomic::{temp_path, write_atomic};
use crate::checkpoint::CheckpointStore;
use crate::error::StoreError;
use crate::snapshot::corrupt_first_stored_crc;
use std::fmt;
use std::fs;

/// One reproducible way a checkpoint directory can be damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The newest snapshot is truncated to half its length (power loss
    /// mid-write on a filesystem without atomic rename, media error).
    Truncation,
    /// A single bit in the newest snapshot's payload flips (bit rot).
    BitFlip,
    /// A torn write: the tail of the newest snapshot is overwritten with
    /// garbage at unchanged length, and a half-written `.tmp` sibling is
    /// left behind as the crashed writer would have.
    TornWrite,
    /// The `MANIFEST` ledger is deleted.
    MissingManifest,
    /// The newest snapshot claims a future format version.
    StaleFormatVersion,
    /// The stored CRC of the newest snapshot's first section is damaged
    /// while the payload stays intact.
    ChecksumMismatch,
    /// `LAST_GOOD` points at a generation that does not exist.
    DanglingLastGood,
}

impl StorageFault {
    /// Every storage fault, in a stable order (drives the recovery matrix).
    #[must_use]
    pub fn all() -> [StorageFault; 7] {
        [
            Self::Truncation,
            Self::BitFlip,
            Self::TornWrite,
            Self::MissingManifest,
            Self::StaleFormatVersion,
            Self::ChecksumMismatch,
            Self::DanglingLastGood,
        ]
    }

    /// Stable kebab-case label (CLI flag value, test matrix key).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Truncation => "truncation",
            Self::BitFlip => "bit-flip",
            Self::TornWrite => "torn-write",
            Self::MissingManifest => "missing-manifest",
            Self::StaleFormatVersion => "stale-format-version",
            Self::ChecksumMismatch => "checksum-mismatch",
            Self::DanglingLastGood => "dangling-last-good",
        }
    }

    /// Parses a label produced by [`Self::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        Self::all().into_iter().find(|f| f.label() == label)
    }
}

impl fmt::Display for StorageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Injects `fault` into the checkpoint directory behind `store`.
///
/// Deterministic: the same store contents and fault always produce the same
/// corruption. Faults that target a snapshot corrupt the *newest*
/// generation — the one recovery would otherwise pick first.
///
/// # Errors
/// [`StoreError`] if the directory holds nothing to corrupt (no
/// generations) or the corruption itself cannot be written.
pub fn inject_storage(store: &CheckpointStore, fault: StorageFault) -> Result<(), StoreError> {
    match fault {
        StorageFault::MissingManifest => {
            fs::remove_file(store.manifest_path())
                .map_err(|e| StoreError::io("remove MANIFEST", e))?;
            return Ok(());
        }
        StorageFault::DanglingLastGood => {
            return write_atomic(&store.last_good_path(), b"999999\n");
        }
        _ => {}
    }

    let newest = *store.generations().last().ok_or(StoreError::NoUsableGeneration { tried: 0 })?;
    let path = store.snapshot_path(newest);
    let mut bytes =
        fs::read(&path).map_err(|e| StoreError::io(format!("read {}", path.display()), e))?;

    match fault {
        StorageFault::Truncation => {
            bytes.truncate(bytes.len() / 2);
        }
        StorageFault::BitFlip => {
            let at = bytes.len() * 3 / 4;
            bytes[at] ^= 0x10;
        }
        StorageFault::TornWrite => {
            let tail = bytes.len() * 3 / 4;
            for b in &mut bytes[tail..] {
                *b = 0xAA;
            }
            // The crashed writer also leaves a half-written temp sibling.
            let half = bytes.len() / 2;
            // kglint::allow(SA007, deliberately simulating the non-atomic litter a crashed writer leaves behind)
            fs::write(temp_path(&path), &bytes[..half])
                .map_err(|e| StoreError::io("write torn .tmp", e))?;
        }
        StorageFault::StaleFormatVersion => {
            if bytes.len() < 8 {
                return Err(StoreError::Truncated {
                    detail: "snapshot too short to version-bump".to_string(),
                });
            }
            bytes[4..8].copy_from_slice(&9999u32.to_le_bytes());
        }
        StorageFault::ChecksumMismatch => {
            corrupt_first_stored_crc(&mut bytes)?;
        }
        StorageFault::MissingManifest | StorageFault::DanglingLastGood => unreachable!(),
    }

    // Deliberately NOT the atomic writer: fault injection simulates exactly
    // the partial on-disk states the atomic protocol exists to prevent.
    // kglint::allow(SA007, fault injector must place corrupted bytes directly, bypassing the atomic writer on purpose)
    fs::write(&path, &bytes)
        .map_err(|e| StoreError::io(format!("write corrupted {}", path.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for fault in StorageFault::all() {
            assert_eq!(StorageFault::from_label(fault.label()), Some(fault));
        }
        assert_eq!(StorageFault::from_label("nope"), None);
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<_> = StorageFault::all().iter().map(|f| f.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
