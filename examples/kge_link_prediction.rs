//! Knowledge-graph-embedding comparison: all five KGE algorithms of
//! survey §4.1 (TransE/H/R/D, DistMult) trained on the same synthetic
//! item KG and evaluated on filtered link prediction.
//!
//! ```bash
//! cargo run --release -p kgrec-bench --example kge_link_prediction
//! ```

use kgrec_bench::par;
use kgrec_data::synth::{generate, ScenarioConfig};
use kgrec_kge::eval::link_prediction_par;
use kgrec_kge::{train, DistMult, KgeModel, TrainConfig, TransD, TransE, TransH, TransR};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let synth = generate(&ScenarioConfig::tiny(), 3);
    let graph = &synth.dataset.graph;
    println!(
        "KG: {} entities, {} relations, {} triples\n",
        graph.num_entities(),
        graph.num_relations(),
        graph.num_triples()
    );
    // Hold out every 10th triple for evaluation (trained on the full
    // graph here for simplicity; the filter removes known facts).
    let test: Vec<_> = graph.iter_triples().step_by(10).collect();
    let cfg = TrainConfig { epochs: 30, learning_rate: 0.05, seed: 4, threads: None };
    let dim = 24;
    let mut rng = StdRng::seed_from_u64(9);
    let n = graph.num_entities();
    let r = graph.num_relations();
    // Filtered ranking shards test triples across the worker pool;
    // reports are bit-identical at any thread count.
    let threads = par::resolve_threads(None);

    let mut models: Vec<Box<dyn KgeModel>> = vec![
        Box::new(TransE::new(&mut rng, n, r, dim, 1.0)),
        Box::new(TransH::new(&mut rng, n, r, dim, 1.0)),
        Box::new(TransR::new(&mut rng, n, r, dim, dim, 1.0)),
        Box::new(TransD::new(&mut rng, n, r, dim, 1.0)),
        Box::new(DistMult::new(&mut rng, n, r, dim)),
    ];
    println!("{:<10} {:>8} {:>8} {:>8} {:>8}", "model", "MR", "MRR", "H@3", "H@10");
    for m in models.iter_mut() {
        // TransR trains at a quarter rate (see KgeRecommender docs).
        let cfg = if m.name() == "TransR" {
            TrainConfig { learning_rate: cfg.learning_rate / 4.0, ..cfg.clone() }
        } else {
            cfg.clone()
        };
        train_boxed(m.as_mut(), graph, &cfg);
        let rep = link_prediction_par(m.as_ref(), graph, &test, threads).expect("nonempty test");
        println!(
            "{:<10} {:>8.1} {:>8.4} {:>8.4} {:>8.4}",
            m.name(),
            rep.mean_rank,
            rep.mrr,
            rep.hits_at_3,
            rep.hits_at_10
        );
    }
}

fn train_boxed(m: &mut dyn KgeModel, graph: &kgrec_graph::KnowledgeGraph, cfg: &TrainConfig) {
    // `train` is generic; re-dispatch through a small shim.
    struct Shim<'a>(&'a mut dyn KgeModel);
    impl KgeModel for Shim<'_> {
        fn dim(&self) -> usize {
            self.0.dim()
        }
        fn num_entities(&self) -> usize {
            self.0.num_entities()
        }
        fn num_relations(&self) -> usize {
            self.0.num_relations()
        }
        fn score(
            &self,
            h: kgrec_graph::EntityId,
            r: kgrec_graph::RelationId,
            t: kgrec_graph::EntityId,
        ) -> f32 {
            self.0.score(h, r, t)
        }
        fn entity_embedding(&self, e: kgrec_graph::EntityId) -> &[f32] {
            self.0.entity_embedding(e)
        }
        fn relation_embedding(&self, r: kgrec_graph::RelationId) -> &[f32] {
            self.0.relation_embedding(r)
        }
        fn train_pair(
            &mut self,
            pos: kgrec_graph::Triple,
            neg: kgrec_graph::Triple,
            lr: f32,
        ) -> f32 {
            self.0.train_pair(pos, neg, lr)
        }
        fn post_epoch(&mut self) {
            self.0.post_epoch();
        }
        fn name(&self) -> &'static str {
            self.0.name()
        }
    }
    let mut shim = Shim(m);
    train(&mut shim, graph, cfg);
}
