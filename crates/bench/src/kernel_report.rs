//! Kernel microbenchmark recording: per-kernel nanoseconds-per-op,
//! serialized to `BENCH_kernels.json`.
//!
//! `kernel_bench` is the writer. Where `BENCH_eval.json` tracks the
//! suite-level perf trajectory, this file tracks the numeric hot-path
//! kernels underneath it (dot, the `*_into` vector ops, blocked matmul,
//! select-based top-K, fused KGE scores) so a kernel regression is
//! visible before it smears into end-to-end wall time. Same hand-rolled
//! flat JSON as `bench_report` — the workspace is dependency-free.
//!
//! Timings are wall-clock and machine-dependent; the `checksum` field is
//! deterministic per kernel and exists to keep the optimizer from
//! deleting the measured work (and doubles as a cheap cross-run sanity
//! value).

use crate::bench_report::{json_f64, json_str};
use std::io::Write;
use std::path::Path;

/// Default output path, relative to the invocation directory.
pub const KERNEL_BENCH_PATH: &str = "BENCH_kernels.json";

/// One measured kernel.
#[derive(Debug, Clone)]
pub struct KernelEntry {
    /// Kernel name, e.g. `dot/256`.
    pub name: String,
    /// Problem size (vector length or matrix elements).
    pub n: usize,
    /// Repetitions timed.
    pub reps: usize,
    /// Total wall-clock seconds for all repetitions.
    pub total_secs: f64,
    /// Nanoseconds per repetition.
    pub ns_per_op: f64,
    /// Deterministic result checksum (keeps the work observable).
    pub checksum: f64,
}

impl KernelEntry {
    /// Builds an entry from a raw measurement.
    pub fn new(name: &str, n: usize, reps: usize, total_secs: f64, checksum: f64) -> Self {
        let ns_per_op = if reps > 0 { total_secs * 1e9 / reps as f64 } else { 0.0 };
        Self { name: name.to_owned(), n, reps, total_secs, ns_per_op, checksum }
    }
}

/// The kernel benchmark report.
#[derive(Debug, Clone, Default)]
pub struct KernelReport {
    /// Whether the run used the reduced `--quick` sizes.
    pub quick: bool,
    /// Measured kernels, in execution order.
    pub entries: Vec<KernelEntry>,
}

impl KernelReport {
    /// Creates an empty report.
    pub fn new(quick: bool) -> Self {
        Self { quick, entries: Vec::new() }
    }

    /// Appends one measurement.
    pub fn push(&mut self, entry: KernelEntry) {
        self.entries.push(entry);
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"generator\": \"kernel_bench\",\n");
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"kernel_count\": {},\n", self.entries.len()));
        s.push_str("  \"kernels\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kernel\": {}, \"n\": {}, \"reps\": {}, \"total_secs\": {}, \
                 \"ns_per_op\": {}, \"checksum\": {}}}{}\n",
                json_str(&e.name),
                e.n,
                e.reps,
                json_f64(e.total_secs),
                json_f64(e.ns_per_op),
                json_f64(e.checksum),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON document to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// Compares this (fresh) report against a committed baseline and
    /// returns every kernel that regressed past the gate: fresh ns/op
    /// above `baseline × max_ratio + slack_ns`. The multiplicative
    /// threshold catches real slowdowns; the small absolute slack keeps
    /// sub-nanosecond kernels from tripping the gate on timer jitter.
    ///
    /// Kernels present only on one side are ignored — a renamed or new
    /// kernel is a baseline-refresh event, not a regression.
    pub fn regressions_against(
        &self,
        baseline: &[(String, f64)],
        max_ratio: f64,
        slack_ns: f64,
    ) -> Vec<KernelRegression> {
        self.entries
            .iter()
            .filter_map(|e| {
                let base = baseline.iter().find(|(name, _)| *name == e.name)?.1;
                (e.ns_per_op > base * max_ratio + slack_ns).then(|| KernelRegression {
                    name: e.name.clone(),
                    baseline_ns: base,
                    fresh_ns: e.ns_per_op,
                })
            })
            .collect()
    }
}

/// One kernel whose fresh timing exceeded the regression gate.
#[derive(Debug, Clone)]
pub struct KernelRegression {
    /// Kernel name.
    pub name: String,
    /// Baseline nanoseconds per op.
    pub baseline_ns: f64,
    /// Fresh (regressed) nanoseconds per op.
    pub fresh_ns: f64,
}

impl KernelRegression {
    /// Fresh-over-baseline slowdown factor.
    pub fn ratio(&self) -> f64 {
        if self.baseline_ns > 0.0 {
            self.fresh_ns / self.baseline_ns
        } else {
            f64::INFINITY
        }
    }
}

/// Extracts `(kernel name, ns_per_op)` pairs from a report previously
/// written by [`KernelReport::to_json`].
///
/// This reads the writer's own one-kernel-per-line layout — it is a
/// baseline loader, not a general JSON parser (the workspace is
/// dependency-free by constraint). Lines that don't look like kernel
/// entries, and entries whose `ns_per_op` was serialized as `null`, are
/// skipped.
pub fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("{\"kernel\": \"") else { continue };
        let Some(end) = rest.find('"') else { continue };
        let name = &rest[..end];
        let Some(val) = rest[end..].split("\"ns_per_op\": ").nth(1) else { continue };
        let val = val.split([',', '}']).next().unwrap_or("").trim();
        if let Ok(ns) = val.parse::<f64>() {
            out.push((name.to_owned(), ns));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_per_op_is_total_over_reps() {
        let e = KernelEntry::new("dot/256", 256, 1000, 0.002, 1.5);
        assert!((e.ns_per_op - 2000.0).abs() < 1e-6);
        let z = KernelEntry::new("noop", 0, 0, 0.0, 0.0);
        assert_eq!(z.ns_per_op, 0.0);
    }

    #[test]
    fn json_is_structurally_sound() {
        let mut r = KernelReport::new(true);
        r.push(KernelEntry::new("dot/256", 256, 10, 0.001, 3.25));
        r.push(KernelEntry::new("mat\"mul", 4096, 5, f64::NAN, 0.0));
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"kernel_count\": 2"));
        assert!(json.contains("mat\\\"mul"), "quotes must be escaped: {json}");
        assert!(json.contains("\"total_secs\": null"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn baseline_round_trips_through_the_writer() {
        let mut r = KernelReport::new(true);
        r.push(KernelEntry::new("dot/64", 64, 1000, 0.001, 1.0));
        r.push(KernelEntry::new("matmul/24x48x24", 27648, 20, 0.004, 2.0));
        let base = parse_baseline(&r.to_json());
        assert_eq!(base.len(), 2);
        assert_eq!(base[0].0, "dot/64");
        assert!((base[0].1 - r.entries[0].ns_per_op).abs() < 1e-3);
        assert_eq!(base[1].0, "matmul/24x48x24");
    }

    #[test]
    fn baseline_parser_skips_nulls_and_noise() {
        let doc = "{\n  \"quick\": true,\n  \"kernels\": [\n    \
                   {\"kernel\": \"a\", \"n\": 1, \"reps\": 0, \"total_secs\": null, \
                   \"ns_per_op\": null, \"checksum\": 0.0},\n    \
                   {\"kernel\": \"b\", \"n\": 1, \"reps\": 1, \"total_secs\": 0.1, \
                   \"ns_per_op\": 5.25, \"checksum\": 0.0}\n  ]\n}\n";
        let base = parse_baseline(doc);
        assert_eq!(base, vec![("b".to_owned(), 5.25)]);
    }

    #[test]
    fn gate_flags_only_true_regressions() {
        let base = vec![("dot/64".to_owned(), 100.0), ("axpy/64".to_owned(), 0.4)];
        let mut fresh = KernelReport::new(true);
        // 1.30x the baseline: past the 20% gate.
        fresh.push(KernelEntry::new("dot/64", 64, 1000, 130.0e-9 * 1000.0, 0.0));
        // 2x a sub-nanosecond kernel: absorbed by the absolute slack.
        fresh.push(KernelEntry::new("axpy/64", 64, 1000, 0.8e-9 * 1000.0, 0.0));
        // Unknown kernel: ignored, not a regression.
        fresh.push(KernelEntry::new("new_kernel/8", 8, 1000, 1.0, 0.0));
        let regs = fresh.regressions_against(&base, 1.2, 0.5);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].name, "dot/64");
        assert!((regs[0].ratio() - 1.3).abs() < 1e-9);
        // A 10% slowdown stays green.
        let mut ok = KernelReport::new(true);
        ok.push(KernelEntry::new("dot/64", 64, 1000, 110.0e-9 * 1000.0, 0.0));
        assert!(ok.regressions_against(&base, 1.2, 0.5).is_empty());
    }

    #[test]
    fn write_to_round_trips() {
        let dir = std::env::temp_dir().join("kgrec_kernel_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(KERNEL_BENCH_PATH);
        let mut r = KernelReport::new(false);
        r.push(KernelEntry::new("axpy/128", 128, 100, 0.01, 2.0));
        r.write_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, r.to_json());
        std::fs::remove_file(&path).ok();
    }
}
