//! The user feedback matrix `R` (survey Section 3).
//!
//! `R_{ij} = 1` when an implicit interaction between user `u_i` and item
//! `v_j` was observed. [`InteractionMatrix`] stores the observed entries in
//! compressed sparse row form twice — user-major and item-major — because
//! the models scan both directions (user histories for preference
//! propagation, item audiences for ItemKNN and diffusion).

use crate::ids::{ItemId, UserId};
use kgrec_graph::id32;

/// One observed user–item interaction, optionally carrying an explicit
/// rating (e.g. the 1–5 stars of MovieLens) and a timestamp for the
/// sequential models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interaction {
    /// The interacting user.
    pub user: UserId,
    /// The interacted item.
    pub item: ItemId,
    /// Explicit rating when the dataset has one.
    pub rating: Option<f32>,
    /// Event time when the dataset has one (arbitrary monotone units).
    pub timestamp: Option<u64>,
}

impl Interaction {
    /// An implicit interaction with no rating or timestamp.
    pub fn implicit(user: UserId, item: ItemId) -> Self {
        Self { user, item, rating: None, timestamp: None }
    }

    /// An explicit interaction with a rating.
    pub fn rated(user: UserId, item: ItemId, rating: f32) -> Self {
        Self { user, item, rating: Some(rating), timestamp: None }
    }
}

/// The binary feedback matrix `R ∈ {0,1}^{m×n}` with optional ratings.
#[derive(Debug, Clone)]
pub struct InteractionMatrix {
    num_users: usize,
    num_items: usize,
    // User-major CSR.
    u_offsets: Vec<usize>,
    u_items: Vec<ItemId>,
    u_ratings: Vec<f32>, // NaN when implicit
    // Item-major CSR.
    i_offsets: Vec<usize>,
    i_users: Vec<UserId>,
}

impl InteractionMatrix {
    /// Builds the matrix from interactions. Duplicate `(user, item)` pairs
    /// are collapsed (last rating wins after sorting, which is
    /// deterministic for a fixed input order because the sort is stable).
    ///
    /// # Panics
    /// Panics if any interaction references a user or item out of range.
    pub fn from_interactions(
        num_users: usize,
        num_items: usize,
        interactions: &[Interaction],
    ) -> Self {
        for it in interactions {
            assert!(it.user.index() < num_users, "interaction user out of range");
            assert!(it.item.index() < num_items, "interaction item out of range");
        }
        let mut sorted: Vec<&Interaction> = interactions.iter().collect();
        sorted.sort_by_key(|it| (it.user.0, it.item.0));
        sorted.dedup_by_key(|it| (it.user.0, it.item.0));

        let mut u_offsets = vec![0usize; num_users + 1];
        for it in &sorted {
            u_offsets[it.user.index() + 1] += 1;
        }
        for i in 0..num_users {
            u_offsets[i + 1] += u_offsets[i];
        }
        let u_items: Vec<ItemId> = sorted.iter().map(|it| it.item).collect();
        let u_ratings: Vec<f32> = sorted.iter().map(|it| it.rating.unwrap_or(f32::NAN)).collect();

        let mut by_item: Vec<(ItemId, UserId)> =
            sorted.iter().map(|it| (it.item, it.user)).collect();
        by_item.sort_by_key(|&(i, u)| (i.0, u.0));
        let mut i_offsets = vec![0usize; num_items + 1];
        for &(i, _) in &by_item {
            i_offsets[i.index() + 1] += 1;
        }
        for i in 0..num_items {
            i_offsets[i + 1] += i_offsets[i];
        }
        let i_users: Vec<UserId> = by_item.iter().map(|&(_, u)| u).collect();

        Self { num_users, num_items, u_offsets, u_items, u_ratings, i_offsets, i_users }
    }

    /// Number of users `m`.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items `n`.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of observed interactions `|R|`.
    pub fn num_interactions(&self) -> usize {
        self.u_items.len()
    }

    /// Density `|R| / (m·n)`.
    pub fn density(&self) -> f64 {
        if self.num_users == 0 || self.num_items == 0 {
            0.0
        } else {
            self.num_interactions() as f64 / (self.num_users * self.num_items) as f64
        }
    }

    /// Items interacted by `user`, sorted by item id.
    pub fn items_of(&self, user: UserId) -> &[ItemId] {
        &self.u_items[self.u_offsets[user.index()]..self.u_offsets[user.index() + 1]]
    }

    /// Ratings aligned with [`Self::items_of`] (`NaN` for implicit entries).
    pub fn ratings_of(&self, user: UserId) -> &[f32] {
        &self.u_ratings[self.u_offsets[user.index()]..self.u_offsets[user.index() + 1]]
    }

    /// Users who interacted with `item`, sorted by user id.
    pub fn users_of(&self, item: ItemId) -> &[UserId] {
        &self.i_users[self.i_offsets[item.index()]..self.i_offsets[item.index() + 1]]
    }

    /// Whether `R_{user,item} = 1`.
    pub fn contains(&self, user: UserId, item: ItemId) -> bool {
        self.items_of(user).binary_search(&item).is_ok()
    }

    /// Out-degree of a user (history length).
    pub fn user_degree(&self, user: UserId) -> usize {
        self.u_offsets[user.index() + 1] - self.u_offsets[user.index()]
    }

    /// Popularity of an item (audience size).
    pub fn item_degree(&self, item: ItemId) -> usize {
        self.i_offsets[item.index() + 1] - self.i_offsets[item.index()]
    }

    /// Iterates over all `(user, item, rating)` triples, user-major.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, ItemId, f32)> + '_ {
        (0..self.num_users).flat_map(move |u| {
            let user = UserId(id32(u));
            self.items_of(user)
                .iter()
                .zip(self.ratings_of(user).iter())
                .map(move |(&i, &r)| (user, i, r))
        })
    }

    /// Item popularity vector, length `n`.
    pub fn item_popularity(&self) -> Vec<usize> {
        (0..self.num_items).map(|i| self.item_degree(ItemId(id32(i)))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> InteractionMatrix {
        InteractionMatrix::from_interactions(
            3,
            4,
            &[
                Interaction::implicit(UserId(0), ItemId(1)),
                Interaction::rated(UserId(0), ItemId(3), 5.0),
                Interaction::implicit(UserId(2), ItemId(1)),
                Interaction::implicit(UserId(2), ItemId(0)),
            ],
        )
    }

    #[test]
    fn shapes_and_counts() {
        let m = toy();
        assert_eq!(m.num_users(), 3);
        assert_eq!(m.num_items(), 4);
        assert_eq!(m.num_interactions(), 4);
        assert!((m.density() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn user_major_access() {
        let m = toy();
        assert_eq!(m.items_of(UserId(0)), &[ItemId(1), ItemId(3)]);
        assert_eq!(m.items_of(UserId(1)), &[] as &[ItemId]);
        assert_eq!(m.items_of(UserId(2)), &[ItemId(0), ItemId(1)]);
        assert_eq!(m.user_degree(UserId(2)), 2);
    }

    #[test]
    fn item_major_access() {
        let m = toy();
        assert_eq!(m.users_of(ItemId(1)), &[UserId(0), UserId(2)]);
        assert_eq!(m.users_of(ItemId(2)), &[] as &[UserId]);
        assert_eq!(m.item_degree(ItemId(1)), 2);
    }

    #[test]
    fn ratings_aligned_with_items() {
        let m = toy();
        let r = m.ratings_of(UserId(0));
        assert!(r[0].is_nan());
        assert_eq!(r[1], 5.0);
    }

    #[test]
    fn contains_binary_search() {
        let m = toy();
        assert!(m.contains(UserId(0), ItemId(3)));
        assert!(!m.contains(UserId(1), ItemId(0)));
    }

    #[test]
    fn duplicates_collapsed() {
        let m = InteractionMatrix::from_interactions(
            1,
            2,
            &[
                Interaction::implicit(UserId(0), ItemId(1)),
                Interaction::implicit(UserId(0), ItemId(1)),
            ],
        );
        assert_eq!(m.num_interactions(), 1);
    }

    #[test]
    fn iter_covers_everything() {
        let m = toy();
        assert_eq!(m.iter().count(), 4);
        assert!(m.iter().any(|(u, i, r)| u == UserId(0) && i == ItemId(3) && r == 5.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        InteractionMatrix::from_interactions(1, 1, &[Interaction::implicit(UserId(1), ItemId(0))]);
    }

    #[test]
    fn popularity_vector() {
        let m = toy();
        assert_eq!(m.item_popularity(), vec![1, 2, 0, 1]);
    }
}
