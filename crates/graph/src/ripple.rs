//! Relevant entities and ripple sets (survey Section 3).
//!
//! Given seed entities (a user's interacted items, or an entity itself),
//! the *k-hop relevant entities* are `E^k = { t | (h,r,t) ∈ G, h ∈ E^{k−1} }`
//! and the *k-th ripple set* is `S^k = { (h,r,t) ∈ G | h ∈ E^{k−1} }`.
//! RippleNet propagates user preference along these sets; AKUPM and the
//! item-side propagation models use the entity variant.

use crate::graph::KnowledgeGraph;
use crate::ids::{EntityId, Triple};
use rand::Rng;

/// The multi-hop ripple sets of one seed set: `sets[k]` is `S^{k+1}` in the
/// paper's 1-based notation.
#[derive(Debug, Clone)]
pub struct RippleSets {
    sets: Vec<Vec<Triple>>,
}

impl RippleSets {
    /// Ripple set of hop `k` (0-based; `hop(0)` is the paper's `S¹`).
    pub fn hop(&self, k: usize) -> &[Triple] {
        &self.sets[k]
    }

    /// Number of hops materialized.
    pub fn num_hops(&self) -> usize {
        self.sets.len()
    }

    /// Whether every hop is empty (seeds had no outgoing facts).
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Iterates over all triples across hops.
    pub fn all_triples(&self) -> impl Iterator<Item = &Triple> {
        self.sets.iter().flatten()
    }
}

/// Computes the k-hop relevant entity sets `E^0 … E^H` for `seeds`.
///
/// `result[0]` is the seed set itself (`E⁰`); `result[k]` the k-hop set.
/// Sets are deduplicated and sorted; an entity can appear at several hops
/// (the definition does not exclude revisits, and RippleNet relies on that).
pub fn relevant_entities(
    graph: &KnowledgeGraph,
    seeds: &[EntityId],
    hops: usize,
) -> Vec<Vec<EntityId>> {
    let mut out = Vec::with_capacity(hops + 1);
    let mut cur: Vec<EntityId> = seeds.to_vec();
    cur.sort();
    cur.dedup();
    out.push(cur.clone());
    for _ in 0..hops {
        let mut next: Vec<EntityId> = Vec::new();
        for &e in &cur {
            for (_, t) in graph.neighbors(e) {
                next.push(t);
            }
        }
        next.sort();
        next.dedup();
        out.push(next.clone());
        cur = next;
    }
    out
}

/// Builds `hops` ripple sets from `seeds`, each capped at `max_per_hop`
/// triples.
///
/// When a hop has more candidate triples than the cap, a uniform sample
/// *without* replacement is drawn; when it has fewer (but more than zero),
/// RippleNet's fixed-size-memory formulation samples *with* replacement —
/// both behaviours are provided through `fixed_size`:
///
/// * `fixed_size = false`: each hop holds `min(candidates, max_per_hop)`
///   distinct triples;
/// * `fixed_size = true`: each non-empty hop holds exactly `max_per_hop`
///   triples, repeating as necessary (the paper's memory layout).
pub fn ripple_sets<R: Rng + ?Sized>(
    graph: &KnowledgeGraph,
    seeds: &[EntityId],
    hops: usize,
    max_per_hop: usize,
    fixed_size: bool,
    rng: &mut R,
) -> RippleSets {
    assert!(max_per_hop > 0, "ripple_sets: max_per_hop must be positive");
    let mut sets = Vec::with_capacity(hops);
    let mut frontier: Vec<EntityId> = seeds.to_vec();
    frontier.sort();
    frontier.dedup();
    for _ in 0..hops {
        let mut candidates: Vec<Triple> = Vec::new();
        for &e in &frontier {
            for (r, t) in graph.neighbors(e) {
                candidates.push(Triple::new(e, r, t));
            }
        }
        let chosen: Vec<Triple> = if candidates.is_empty() {
            Vec::new()
        } else if fixed_size {
            (0..max_per_hop).map(|_| candidates[rng.gen_range(0..candidates.len())]).collect()
        } else if candidates.len() <= max_per_hop {
            candidates.clone()
        } else {
            // Partial Fisher–Yates for a uniform sample without replacement.
            let mut idx: Vec<usize> = (0..candidates.len()).collect();
            for i in 0..max_per_hop {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..max_per_hop].iter().map(|&i| candidates[i]).collect()
        };
        // Next frontier: tails of the *chosen* triples (matching the
        // sampled-memory propagation of RippleNet).
        let mut next: Vec<EntityId> = chosen.iter().map(|t| t.tail).collect();
        next.sort();
        next.dedup();
        sets.push(chosen);
        frontier = next;
        if frontier.is_empty() {
            // Remaining hops are empty.
            while sets.len() < hops {
                sets.push(Vec::new());
            }
            break;
        }
    }
    while sets.len() < hops {
        sets.push(Vec::new());
    }
    RippleSets { sets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KgBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Chain a -> b -> c plus a -> d.
    fn toy() -> (KnowledgeGraph, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let ty = b.entity_type("t");
        let ea = b.entity("a", ty);
        let eb = b.entity("b", ty);
        let ec = b.entity("c", ty);
        let ed = b.entity("d", ty);
        let r = b.relation("r");
        b.triple(ea, r, eb);
        b.triple(ea, r, ed);
        b.triple(eb, r, ec);
        (b.build(false), vec![ea, eb, ec, ed])
    }

    #[test]
    fn relevant_entities_hop_structure() {
        let (g, ids) = toy();
        let sets = relevant_entities(&g, &[ids[0]], 2);
        assert_eq!(sets[0], vec![ids[0]]);
        assert_eq!(sets[1], vec![ids[1], ids[3]]);
        assert_eq!(sets[2], vec![ids[2]]);
    }

    #[test]
    fn relevant_entities_dedups_seeds() {
        let (g, ids) = toy();
        let sets = relevant_entities(&g, &[ids[0], ids[0]], 1);
        assert_eq!(sets[0], vec![ids[0]]);
    }

    #[test]
    fn ripple_sets_heads_come_from_previous_hop() {
        let (g, ids) = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let rs = ripple_sets(&g, &[ids[0]], 2, 10, false, &mut rng);
        assert_eq!(rs.num_hops(), 2);
        for t in rs.hop(0) {
            assert_eq!(t.head, ids[0]);
        }
        for t in rs.hop(1) {
            assert!(rs.hop(0).iter().any(|p| p.tail == t.head));
        }
    }

    #[test]
    fn ripple_sets_capped_without_replacement() {
        let (g, ids) = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let rs = ripple_sets(&g, &[ids[0]], 1, 1, false, &mut rng);
        assert_eq!(rs.hop(0).len(), 1);
    }

    #[test]
    fn ripple_sets_fixed_size_repeats() {
        let (g, ids) = toy();
        let mut rng = StdRng::seed_from_u64(3);
        // b has exactly one out-edge; fixed sizing must repeat it 4 times.
        let rs = ripple_sets(&g, &[ids[1]], 1, 4, true, &mut rng);
        assert_eq!(rs.hop(0).len(), 4);
        assert!(rs.hop(0).iter().all(|t| t.head == ids[1]));
    }

    #[test]
    fn dead_end_produces_empty_tail_hops() {
        let (g, ids) = toy();
        let mut rng = StdRng::seed_from_u64(4);
        let rs = ripple_sets(&g, &[ids[2]], 3, 4, false, &mut rng);
        assert!(rs.is_empty());
        assert_eq!(rs.num_hops(), 3);
    }

    #[test]
    fn all_triples_spans_hops() {
        let (g, ids) = toy();
        let mut rng = StdRng::seed_from_u64(5);
        let rs = ripple_sets(&g, &[ids[0]], 2, 10, false, &mut rng);
        assert_eq!(rs.all_triples().count(), rs.hop(0).len() + rs.hop(1).len());
    }
}
