//! Ranking and classification metrics used across the surveyed papers.
//!
//! Two evaluation styles appear in the literature: **CTR prediction**
//! (pointwise scores against binary labels — AUC, accuracy) and **top-K
//! recommendation** (ranked lists against held-out positives — Precision,
//! Recall, NDCG, HitRate, MRR). All functions here are pure and operate on
//! already-scored data so they are trivially testable.

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formulation.
///
/// Ties receive half credit. Returns `None` when either class is empty
/// (AUC is undefined then).
///
/// ```
/// use kgrec_core::metrics::auc;
/// let perfect = [(0.9, true), (0.1, false)];
/// assert_eq!(auc(&perfect), Some(1.0));
/// assert_eq!(auc(&[(0.5, true)]), None); // one class only
/// ```
pub fn auc(scores_labels: &[(f32, bool)]) -> Option<f64> {
    let pos = scores_labels.iter().filter(|(_, l)| *l).count();
    let neg = scores_labels.len() - pos;
    if pos == 0 || neg == 0 {
        return None;
    }
    // Rank-based: sum of ranks of positives. `total_cmp` keeps the sort a
    // strict weak ordering even when a model emits NaN scores (they rank
    // above +inf), so the result stays deterministic instead of depending
    // on where the NaNs happened to sit in the input. Non-finite scores
    // are a model bug — `kglint`'s MD004 rule flags them upstream.
    let mut sorted: Vec<(f32, bool)> = scores_labels.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Average ranks over tie groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1].0 == sorted[i].0 {
            j += 1;
        }
        // ranks i+1 ..= j+1 share the average rank.
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for item in &sorted[i..=j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let pos_f = pos as f64;
    let neg_f = neg as f64;
    Some((rank_sum_pos - pos_f * (pos_f + 1.0) / 2.0) / (pos_f * neg_f))
}

/// Classification accuracy at threshold 0.5 on sigmoid-like scores.
pub fn accuracy(scores_labels: &[(f32, bool)], threshold: f32) -> Option<f64> {
    if scores_labels.is_empty() {
        return None;
    }
    let correct = scores_labels.iter().filter(|(s, l)| (*s >= threshold) == *l).count();
    Some(correct as f64 / scores_labels.len() as f64)
}

/// Membership test for the relevance set.
///
/// All top-K metrics take `relevant` as a **sorted** slice (ascending item
/// id) so each lookup is a binary search instead of a linear scan — the
/// evaluation protocol feeds `InteractionMatrix::items_of`, whose CSR rows
/// are sorted by construction. Sortedness is asserted in debug builds.
#[inline]
fn is_relevant(relevant: &[u32], item: u32) -> bool {
    relevant.binary_search(&item).is_ok()
}

#[inline]
fn debug_assert_sorted(relevant: &[u32]) {
    debug_assert!(
        relevant.windows(2).all(|w| w[0] <= w[1]),
        "top-K metrics require `relevant` sorted ascending"
    );
}

/// Precision@K: fraction of the top-K ranked items that are relevant.
///
/// `ranked` is the recommendation list (best first); `relevant` is the
/// held-out positive set, **sorted ascending**. `K = min(k, ranked.len())`
/// denominates — by convention an empty list gives 0.
pub fn precision_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if ranked.is_empty() || k == 0 {
        return 0.0;
    }
    debug_assert_sorted(relevant);
    let k = k.min(ranked.len());
    let hits = ranked[..k].iter().filter(|i| is_relevant(relevant, **i)).count();
    hits as f64 / k as f64
}

/// Recall@K: fraction of the relevant items found in the top K.
/// `relevant` must be sorted ascending. Returns 0 when it is empty.
pub fn recall_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if relevant.is_empty() || ranked.is_empty() || k == 0 {
        return 0.0;
    }
    debug_assert_sorted(relevant);
    let k = k.min(ranked.len());
    let hits = ranked[..k].iter().filter(|i| is_relevant(relevant, **i)).count();
    hits as f64 / relevant.len() as f64
}

/// NDCG@K with binary relevance: `DCG = Σ 1/log₂(rank+1)` over hits,
/// normalized by the ideal DCG. `relevant` must be sorted ascending.
pub fn ndcg_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if relevant.is_empty() || ranked.is_empty() || k == 0 {
        return 0.0;
    }
    debug_assert_sorted(relevant);
    let k = k.min(ranked.len());
    let mut dcg = 0.0f64;
    for (rank, item) in ranked[..k].iter().enumerate() {
        if is_relevant(relevant, *item) {
            dcg += 1.0 / ((rank + 2) as f64).log2();
        }
    }
    let ideal_hits = relevant.len().min(k);
    let idcg: f64 = (0..ideal_hits).map(|r| 1.0 / ((r + 2) as f64).log2()).sum();
    if idcg > 0.0 {
        dcg / idcg
    } else {
        0.0
    }
}

/// HitRate@K: 1 when any relevant item appears in the top K, else 0.
/// `relevant` must be sorted ascending.
pub fn hit_rate_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
    if relevant.is_empty() || ranked.is_empty() || k == 0 {
        return 0.0;
    }
    debug_assert_sorted(relevant);
    let k = k.min(ranked.len());
    if ranked[..k].iter().any(|i| is_relevant(relevant, *i)) {
        1.0
    } else {
        0.0
    }
}

/// Mean reciprocal rank of the *first* relevant item (0 if none appears).
/// `relevant` must be sorted ascending.
pub fn mrr(ranked: &[u32], relevant: &[u32]) -> f64 {
    debug_assert_sorted(relevant);
    for (rank, item) in ranked.iter().enumerate() {
        if is_relevant(relevant, *item) {
            return 1.0 / (rank + 1) as f64;
        }
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let perfect = [(0.9f32, true), (0.8, true), (0.2, false), (0.1, false)];
        assert_eq!(auc(&perfect), Some(1.0));
        let inverted = [(0.1f32, true), (0.2, true), (0.8, false), (0.9, false)];
        assert_eq!(auc(&inverted), Some(0.0));
    }

    #[test]
    fn auc_random_is_half() {
        // All-tied scores: AUC must be exactly 0.5 under tie handling.
        let tied = [(0.5f32, true), (0.5, false), (0.5, true), (0.5, false)];
        let a = auc(&tied).unwrap();
        assert!((a - 0.5).abs() < 1e-12, "a={a}");
    }

    #[test]
    fn auc_undefined_for_single_class() {
        assert_eq!(auc(&[(0.5, true)]), None);
        assert_eq!(auc(&[(0.5, false), (0.2, false)]), None);
        assert_eq!(auc(&[]), None);
    }

    #[test]
    fn auc_is_deterministic_under_nan_scores() {
        // A NaN score is a model bug (kglint MD004 flags it), but the
        // metric itself must not become order-dependent. `total_cmp`
        // ranks NaN above every finite score, so a NaN-scored negative
        // outranks all positives and drags AUC down deterministically.
        let a = [(f32::NAN, false), (0.9, true), (0.1, false)];
        let b = [(0.9f32, true), (0.1, false), (f32::NAN, false)];
        assert_eq!(auc(&a), auc(&b));
        assert_eq!(auc(&a), Some(0.5));
        // NaN-scored positive ranks top: perfect separation.
        let c = [(0.2f32, false), (f32::NAN, true)];
        assert_eq!(auc(&c), Some(1.0));
        // Infinities order as usual.
        let d = [(f32::NEG_INFINITY, false), (f32::INFINITY, true)];
        assert_eq!(auc(&d), Some(1.0));
    }

    #[test]
    fn topk_membership_uses_binary_search_on_sorted_relevant() {
        // A relevance set larger than any test elsewhere, to exercise the
        // binary-search path on both present and absent probes.
        let relevant: Vec<u32> = (0..200).map(|i| i * 3).collect(); // 0,3,6,...
        let ranked = [3u32, 4, 599, 597, 1];
        assert_eq!(precision_at_k(&ranked, &relevant, 5), 2.0 / 5.0);
        assert_eq!(hit_rate_at_k(&ranked, &relevant, 1), 1.0);
        assert_eq!(mrr(&ranked, &relevant), 1.0);
        assert_eq!(mrr(&[4u32, 5, 597], &relevant), 1.0 / 3.0);
    }

    #[test]
    fn accuracy_threshold() {
        let data = [(0.9f32, true), (0.4, false), (0.6, false)];
        assert_eq!(accuracy(&data, 0.5), Some(2.0 / 3.0));
        assert_eq!(accuracy(&[], 0.5), None);
    }

    #[test]
    fn precision_recall_known_values() {
        let ranked = [1u32, 2, 3, 4, 5];
        let relevant = [2u32, 5, 9];
        assert_eq!(precision_at_k(&ranked, &relevant, 3), 1.0 / 3.0);
        assert_eq!(recall_at_k(&ranked, &relevant, 3), 1.0 / 3.0);
        assert_eq!(recall_at_k(&ranked, &relevant, 5), 2.0 / 3.0);
    }

    #[test]
    fn ndcg_position_sensitivity() {
        let relevant = [7u32];
        let first = ndcg_at_k(&[7, 1, 2], &relevant, 3);
        let last = ndcg_at_k(&[1, 2, 7], &relevant, 3);
        assert_eq!(first, 1.0);
        assert!(last < first && last > 0.0);
    }

    #[test]
    fn ndcg_perfect_list_is_one() {
        let relevant = [1u32, 2, 3];
        assert!((ndcg_at_k(&[1, 2, 3, 4], &relevant, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_binary() {
        assert_eq!(hit_rate_at_k(&[1, 2, 3], &[3], 3), 1.0);
        assert_eq!(hit_rate_at_k(&[1, 2, 3], &[3], 2), 0.0);
        assert_eq!(hit_rate_at_k(&[1, 2, 3], &[], 3), 0.0);
    }

    #[test]
    fn mrr_first_hit() {
        assert_eq!(mrr(&[5, 9, 3], &[3, 9]), 0.5);
        assert_eq!(mrr(&[5, 9, 3], &[8]), 0.0);
        assert_eq!(mrr(&[8], &[8]), 1.0);
    }

    #[test]
    fn empty_inputs_are_zero_not_panic() {
        assert_eq!(precision_at_k(&[], &[1], 5), 0.0);
        assert_eq!(recall_at_k(&[1], &[], 5), 0.0);
        assert_eq!(ndcg_at_k(&[], &[], 5), 0.0);
        assert_eq!(mrr(&[], &[1]), 0.0);
    }

    #[test]
    fn k_larger_than_list_clamps() {
        let ranked = [1u32, 2];
        let relevant = [2u32];
        assert_eq!(precision_at_k(&ranked, &relevant, 10), 0.5);
        assert_eq!(recall_at_k(&ranked, &relevant, 10), 1.0);
    }
}
