//! Seeded weight initializers.
//!
//! Everything stochastic in `kgrec` takes an explicit [`rand::Rng`]; these
//! helpers implement the initialization schemes the surveyed papers use:
//! uniform ranges (TransE's `U[-6/√d, 6/√d]`), Xavier/Glorot for dense
//! layers, and Gaussians for matrix-factorization latent factors.

use rand::Rng;

/// Fills `buf` with samples from `U[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, buf: &mut [f32], lo: f32, hi: f32) {
    for v in buf.iter_mut() {
        *v = rng.gen_range(lo..hi);
    }
}

/// Fills `buf` with the TransE initialization `U[-6/√d, 6/√d)`.
pub fn transe_uniform<R: Rng + ?Sized>(rng: &mut R, buf: &mut [f32], dim: usize) {
    let b = 6.0 / (dim as f32).sqrt();
    uniform(rng, buf, -b, b);
}

/// Fills `buf` with Xavier/Glorot uniform samples for a layer with the
/// given fan-in and fan-out: `U[-√(6/(in+out)), √(6/(in+out)))`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    buf: &mut [f32],
    fan_in: usize,
    fan_out: usize,
) {
    let b = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, buf, -b, b);
}

/// Fills `buf` with `N(mean, std²)` samples via the Box–Muller transform.
///
/// Implemented locally to keep the dependency set to the approved list
/// (`rand` core only, no `rand_distr`).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, buf: &mut [f32], mean: f32, std: f32) {
    let mut i = 0;
    while i < buf.len() {
        // Box–Muller: two uniforms -> two independent standard normals.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        buf[i] = mean + std * r * theta.cos();
        i += 1;
        if i < buf.len() {
            buf[i] = mean + std * r * theta.sin();
            i += 1;
        }
    }
}

/// Samples one standard normal value.
pub fn gaussian_one<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let mut buf = [0.0f32];
    gaussian(rng, &mut buf, 0.0, 1.0);
    buf[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = vec![0.0f32; 1000];
        uniform(&mut rng, &mut buf, -0.5, 0.5);
        assert!(buf.iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn transe_uniform_bound_scales_with_dim() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = vec![0.0f32; 1000];
        transe_uniform(&mut rng, &mut buf, 36);
        assert!(buf.iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn gaussian_moments_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut buf = vec![0.0f32; 20_000];
        gaussian(&mut rng, &mut buf, 2.0, 3.0);
        let mean = buf.iter().sum::<f32>() / buf.len() as f32;
        let var = buf.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / (buf.len() - 1) as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
        assert!((var - 9.0).abs() < 0.5, "var={var}");
    }

    #[test]
    fn gaussian_odd_length_filled() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![0.0f32; 7];
        gaussian(&mut rng, &mut buf, 10.0, 0.001);
        assert!(buf.iter().all(|&v| (v - 10.0).abs() < 1.0));
    }

    #[test]
    fn seeded_init_reproducible() {
        let mut a = vec![0.0f32; 16];
        let mut b = vec![0.0f32; 16];
        xavier_uniform(&mut StdRng::seed_from_u64(9), &mut a, 8, 8);
        xavier_uniform(&mut StdRng::seed_from_u64(9), &mut b, 8, 8);
        assert_eq!(a, b);
    }
}
