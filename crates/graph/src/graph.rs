//! CSR-backed knowledge graph storage.
//!
//! The graph is immutable once built (see [`crate::KgBuilder`]); all
//! surveyed algorithms treat the KG as a fixed input. Out-edges are stored
//! in compressed sparse row form sorted by `(relation, tail)`, which makes
//! per-entity neighbor scans contiguous and relation-restricted scans a
//! binary-search-plus-slice.

use crate::ids::{id32, EntityId, EntityTypeId, RelationId, Triple};

/// An immutable heterogeneous knowledge graph.
///
/// In the survey's terms this is a HIN `G = (V, E)` with entity-type map
/// `φ` and relation-type map `ψ` (Section 3); a KG is an instance of it.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    entity_names: Vec<String>,
    entity_types: Vec<EntityTypeId>,
    type_names: Vec<String>,
    relation_names: Vec<String>,
    /// Number of relations that are not auto-generated inverses.
    base_relations: usize,
    /// CSR offsets into `edges`, length `num_entities + 1`.
    offsets: Vec<usize>,
    /// Out-edges `(relation, tail)` sorted per head by `(relation, tail)`.
    edges: Vec<(RelationId, EntityId)>,
    /// All triples in sorted order (head-major) for iteration / KGE training.
    triples: Vec<Triple>,
}

impl KnowledgeGraph {
    /// Assembles a graph from finalized parts. Used by [`crate::KgBuilder`];
    /// library users should go through the builder.
    pub fn from_parts(
        entity_names: Vec<String>,
        entity_types: Vec<EntityTypeId>,
        type_names: Vec<String>,
        relation_names: Vec<String>,
        base_relations: usize,
        mut triples: Vec<Triple>,
    ) -> Self {
        assert_eq!(entity_names.len(), entity_types.len(), "entity name/type length mismatch");
        let n = entity_names.len();
        triples.sort_by_key(|t| (t.head.0, t.rel.0, t.tail.0));
        let mut offsets = vec![0usize; n + 1];
        for t in &triples {
            offsets[t.head.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let edges = triples.iter().map(|t| (t.rel, t.tail)).collect();
        Self {
            entity_names,
            entity_types,
            type_names,
            relation_names,
            base_relations,
            offsets,
            edges,
            triples,
        }
    }

    /// Number of entities `|V|`.
    pub fn num_entities(&self) -> usize {
        self.entity_names.len()
    }

    /// Number of relation types `|R|` (including materialized inverses).
    pub fn num_relations(&self) -> usize {
        self.relation_names.len()
    }

    /// Number of relation types excluding auto-generated inverses.
    pub fn num_base_relations(&self) -> usize {
        self.base_relations
    }

    /// Number of entity types `|A|`.
    pub fn num_entity_types(&self) -> usize {
        self.type_names.len()
    }

    /// Number of stored triples (facts).
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// Name of entity `e`.
    pub fn entity_name(&self, e: EntityId) -> &str {
        &self.entity_names[e.index()]
    }

    /// Type of entity `e` (the map `φ`).
    pub fn entity_type(&self, e: EntityId) -> EntityTypeId {
        self.entity_types[e.index()]
    }

    /// Name of entity type `t`.
    pub fn type_name(&self, t: EntityTypeId) -> &str {
        &self.type_names[t.index()]
    }

    /// Name of relation `r`.
    pub fn relation_name(&self, r: RelationId) -> &str {
        &self.relation_names[r.index()]
    }

    /// Looks up a relation id by name (linear scan; graphs have few types).
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relation_names.iter().position(|n| n == name).map(|i| RelationId(id32(i)))
    }

    /// Looks up an entity type id by name.
    pub fn entity_type_by_name(&self, name: &str) -> Option<EntityTypeId> {
        self.type_names.iter().position(|n| n == name).map(|i| EntityTypeId(id32(i)))
    }

    /// Looks up an entity id by name (linear scan; intended for examples
    /// and tests, not hot paths).
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.entity_names.iter().position(|n| n == name).map(|i| EntityId(id32(i)))
    }

    /// All entities of a given type, in id order.
    pub fn entities_of_type(&self, ty: EntityTypeId) -> Vec<EntityId> {
        (0..id32(self.num_entities()))
            .map(EntityId)
            .filter(|&e| self.entity_type(e) == ty)
            .collect()
    }

    /// Out-degree of entity `e`.
    pub fn degree(&self, e: EntityId) -> usize {
        self.offsets[e.index() + 1] - self.offsets[e.index()]
    }

    /// Iterator over the out-edges `(relation, tail)` of `e`, sorted by
    /// `(relation, tail)`.
    pub fn neighbors(&self, e: EntityId) -> impl Iterator<Item = (RelationId, EntityId)> + '_ {
        self.edge_slice(e).iter().copied()
    }

    /// The out-edge slice of `e` (sorted by `(relation, tail)`).
    #[inline]
    pub fn edge_slice(&self, e: EntityId) -> &[(RelationId, EntityId)] {
        &self.edges[self.offsets[e.index()]..self.offsets[e.index() + 1]]
    }

    /// Out-neighbors of `e` via a specific relation, as a contiguous slice.
    pub fn neighbors_by_relation(&self, e: EntityId, r: RelationId) -> &[(RelationId, EntityId)] {
        let edges = self.edge_slice(e);
        let lo = edges.partition_point(|&(er, _)| er < r);
        let hi = edges.partition_point(|&(er, _)| er <= r);
        &edges[lo..hi]
    }

    /// Whether the fact `⟨h, r, t⟩` is in the graph.
    pub fn contains(&self, head: EntityId, rel: RelationId, tail: EntityId) -> bool {
        self.edge_slice(head).binary_search(&(rel, tail)).is_ok()
    }

    /// All triples, head-major sorted.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Mean out-degree (a sanity statistic used by the generators).
    pub fn mean_degree(&self) -> f64 {
        if self.num_entities() == 0 {
            0.0
        } else {
            self.num_triples() as f64 / self.num_entities() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KgBuilder;

    fn toy() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let tm = b.entity_type("movie");
        let tg = b.entity_type("genre");
        let m1 = b.entity("m1", tm);
        let m2 = b.entity("m2", tm);
        let g1 = b.entity("g1", tg);
        let r_genre = b.relation("has_genre");
        let r_seq = b.relation("sequel_of");
        b.triple(m1, r_genre, g1);
        b.triple(m2, r_genre, g1);
        b.triple(m2, r_seq, m1);
        b.build(false)
    }

    #[test]
    fn counts() {
        let g = toy();
        assert_eq!(g.num_entities(), 3);
        assert_eq!(g.num_relations(), 2);
        assert_eq!(g.num_entity_types(), 2);
        assert_eq!(g.num_triples(), 3);
        assert!((g.mean_degree() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn neighbors_sorted_and_complete() {
        let g = toy();
        let m2 = g.entity_by_name("m2").unwrap();
        let nbrs: Vec<_> = g.neighbors(m2).collect();
        assert_eq!(nbrs.len(), 2);
        assert!(nbrs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn neighbors_by_relation_slices() {
        let g = toy();
        let m2 = g.entity_by_name("m2").unwrap();
        let r_genre = g.relation_by_name("has_genre").unwrap();
        let r_seq = g.relation_by_name("sequel_of").unwrap();
        assert_eq!(g.neighbors_by_relation(m2, r_genre).len(), 1);
        assert_eq!(g.neighbors_by_relation(m2, r_seq).len(), 1);
        let m1 = g.entity_by_name("m1").unwrap();
        assert_eq!(g.neighbors_by_relation(m1, r_seq).len(), 0);
    }

    #[test]
    fn contains_checks_facts() {
        let g = toy();
        let m1 = g.entity_by_name("m1").unwrap();
        let g1 = g.entity_by_name("g1").unwrap();
        let r = g.relation_by_name("has_genre").unwrap();
        assert!(g.contains(m1, r, g1));
        assert!(!g.contains(g1, r, m1));
    }

    #[test]
    fn entities_of_type_filters() {
        let g = toy();
        let tm = g.entity_type_by_name("movie").unwrap();
        assert_eq!(g.entities_of_type(tm).len(), 2);
    }

    #[test]
    fn empty_graph_ok() {
        let g = KgBuilder::new().build(false);
        assert_eq!(g.num_entities(), 0);
        assert_eq!(g.num_triples(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }
}
