//! The [`Persistable`] trait and whole-snapshot save/load entry points.
//!
//! A model implements [`Persistable`] by describing its identity (snapshot
//! id + config hash) and by writing/reading named sections. Loading is
//! *restore-into*: the caller constructs a model of the expected shape (as
//! every `fit` already does) and the snapshot's state is copied into it —
//! which keeps the trait object-safe and lets implementations validate the
//! stored shape against the live model before committing anything.

use crate::error::StoreError;
use crate::snapshot::{SnapshotMeta, SnapshotReader, SnapshotWriter};
use std::path::Path;

/// A model whose trained state can be saved to and restored from a
/// versioned snapshot.
///
/// # Contract
/// * `read_state` must validate stored shapes against the live model and
///   return [`StoreError::ShapeMismatch`] instead of resizing, truncating,
///   or panicking. Gather-then-commit: read every section into temporaries
///   first so a rejected snapshot leaves the model untouched.
/// * `write_state` followed by `read_state` must be bit-exact: every `f32`
///   round-trips through its raw bits, so a restored model scores
///   identically to the one that was saved.
pub trait Persistable {
    /// Stable identifier stamped into snapshot headers, e.g. `"kge.transe"`.
    ///
    /// Loading rejects snapshots whose id differs ([`StoreError::ModelMismatch`]).
    fn snapshot_id(&self) -> &'static str;

    /// Fingerprint of the model configuration (see [`crate::config_hash`]).
    ///
    /// Must be computable on a freshly constructed (unfitted) model so a
    /// warm start can compare it before loading. Defaults to 0 for models
    /// whose shape validation in `read_state` is the only compatibility
    /// constraint.
    fn config_hash(&self) -> u64 {
        0
    }

    /// Seed recorded in snapshot headers for provenance. Defaults to 0 for
    /// models that do not track one.
    fn snapshot_seed(&self) -> u64 {
        0
    }

    /// Writes the model's state as named sections.
    ///
    /// # Errors
    /// [`StoreError`] if a section cannot be encoded (duplicate names).
    fn write_state(&self, writer: &mut SnapshotWriter) -> Result<(), StoreError>;

    /// Restores the model's state from a verified snapshot.
    ///
    /// # Errors
    /// [`StoreError`] if a section is missing, truncated, or its shape
    /// disagrees with the live model.
    fn read_state(&mut self, reader: &SnapshotReader) -> Result<(), StoreError>;
}

/// Serializes `model` into snapshot bytes (header + sections).
///
/// # Errors
/// Propagates any encoding error from the model's `write_state`.
pub fn snapshot_bytes(model: &dyn Persistable) -> Result<Vec<u8>, StoreError> {
    let meta = SnapshotMeta {
        model_id: model.snapshot_id().to_string(),
        seed: model.snapshot_seed(),
        config_hash: model.config_hash(),
    };
    let mut writer = SnapshotWriter::new(meta);
    model.write_state(&mut writer)?;
    Ok(writer.to_bytes())
}

/// Saves `model` atomically to `path`.
///
/// # Errors
/// Encoding errors from `write_state` or I/O errors from the atomic writer.
pub fn save_snapshot(path: &Path, model: &dyn Persistable) -> Result<(), StoreError> {
    let bytes = snapshot_bytes(model)?;
    crate::atomic::write_atomic(path, &bytes)
}

/// Loads a snapshot from `path` into `model`, verifying identity first.
///
/// Returns the snapshot's metadata header on success.
///
/// # Errors
/// Any integrity error from decoding, [`StoreError::ModelMismatch`] when
/// the snapshot belongs to a different model id or config, or a
/// shape/section error from the model's `read_state`.
pub fn load_snapshot(path: &Path, model: &mut dyn Persistable) -> Result<SnapshotMeta, StoreError> {
    let reader = SnapshotReader::open(path)?;
    read_verified(&reader, model)?;
    Ok(reader.meta().clone())
}

/// Identity-checks `reader` against `model`, then restores state.
///
/// # Errors
/// [`StoreError::ModelMismatch`] on id/config divergence, else whatever
/// `read_state` reports.
pub fn read_verified(
    reader: &SnapshotReader,
    model: &mut dyn Persistable,
) -> Result<(), StoreError> {
    let meta = reader.meta();
    if meta.model_id != model.snapshot_id() {
        return Err(StoreError::ModelMismatch {
            detail: format!(
                "snapshot is `{}`, live model is `{}`",
                meta.model_id,
                model.snapshot_id()
            ),
        });
    }
    if meta.config_hash != model.config_hash() {
        return Err(StoreError::ModelMismatch {
            detail: format!(
                "config hash {:016x} does not match live model {:016x}",
                meta.config_hash,
                model.config_hash()
            ),
        });
    }
    model.read_state(reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Section;

    /// Minimal Persistable double: a named vector with shape validation.
    struct Probe {
        id: &'static str,
        cfg: u64,
        values: Vec<f32>,
    }

    impl Persistable for Probe {
        fn snapshot_id(&self) -> &'static str {
            self.id
        }
        fn config_hash(&self) -> u64 {
            self.cfg
        }
        fn write_state(&self, writer: &mut SnapshotWriter) -> Result<(), StoreError> {
            let mut s = Section::new();
            s.put_u64(self.values.len() as u64);
            s.put_f32s(&self.values);
            writer.add("values", s)
        }
        fn read_state(&mut self, reader: &SnapshotReader) -> Result<(), StoreError> {
            let mut c = reader.section("values")?;
            let n = c.take_u64()? as usize;
            if n != self.values.len() {
                return Err(StoreError::ShapeMismatch {
                    section: "values".to_string(),
                    detail: format!("stored {n}, live {}", self.values.len()),
                });
            }
            let vs = c.take_f32s(n)?;
            self.values.copy_from_slice(&vs);
            Ok(())
        }
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kgrec_store_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let dir = scratch("roundtrip");
        let path = dir.join("probe.snap");
        let saved = Probe { id: "probe", cfg: 7, values: vec![1.5, -0.25, 3.75] };
        save_snapshot(&path, &saved).expect("save");
        let mut loaded = Probe { id: "probe", cfg: 7, values: vec![0.0; 3] };
        let meta = load_snapshot(&path, &mut loaded).expect("load");
        assert_eq!(meta.model_id, "probe");
        assert_eq!(meta.config_hash, 7);
        for (a, b) in saved.values.iter().zip(&loaded.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_model_id_rejected() {
        let dir = scratch("wrongid");
        let path = dir.join("probe.snap");
        save_snapshot(&path, &Probe { id: "probe", cfg: 7, values: vec![1.0] }).expect("save");
        let mut other = Probe { id: "other", cfg: 7, values: vec![0.0] };
        assert!(matches!(load_snapshot(&path, &mut other), Err(StoreError::ModelMismatch { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_config_hash_rejected() {
        let dir = scratch("wrongcfg");
        let path = dir.join("probe.snap");
        save_snapshot(&path, &Probe { id: "probe", cfg: 7, values: vec![1.0] }).expect("save");
        let mut other = Probe { id: "probe", cfg: 8, values: vec![0.0] };
        assert!(matches!(load_snapshot(&path, &mut other), Err(StoreError::ModelMismatch { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let dir = scratch("shape");
        let path = dir.join("probe.snap");
        save_snapshot(&path, &Probe { id: "probe", cfg: 7, values: vec![1.0, 2.0] }).expect("save");
        let mut smaller = Probe { id: "probe", cfg: 7, values: vec![0.0] };
        assert!(matches!(
            load_snapshot(&path, &mut smaller),
            Err(StoreError::ShapeMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
