//! Harness utilities shared by the table/figure binaries and the
//! evaluation suite.
//!
//! The binaries in `src/bin/` regenerate the survey's tables and figure:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — commonly used knowledge graphs |
//! | `table3` | Table 3 — the method taxonomy (full literature + implemented subset) |
//! | `table4` | Table 4 — datasets per scenario |
//! | `figure1` | Figure 1 — the explainable movie-recommendation example |
//! | `eval_suite` | the survey's qualitative claims, measured |
//! | `ablation` | design-choice ablations (KGCN aggregators, RippleNet hops) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod doubles;

use kgrec_check::rules::RegistryConsistency;
use kgrec_check::{default_model_hyperparams, CheckBundle, CheckReport};
use kgrec_core::protocol::{evaluate_ctr, evaluate_topk};
use kgrec_core::{
    panic_message, supervise_fit, FitOutcome, FitStatus, Recommender, SupervisorConfig,
    TrainContext,
};
use kgrec_data::negative::labeled_eval_set;
use kgrec_data::split::{ratio_split, Split};
use kgrec_data::synth::{generate, ScenarioConfig, SyntheticDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// One row of an evaluation table.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Model name.
    pub model: &'static str,
    /// Usage-type label (`Emb.` / `Path` / `Uni.` / `baseline`).
    pub family: String,
    /// CTR AUC.
    pub auc: f64,
    /// CTR accuracy.
    pub accuracy: f64,
    /// Recall@10 (full ranking).
    pub recall_at_10: f64,
    /// NDCG@10.
    pub ndcg_at_10: f64,
    /// HitRate@10.
    pub hit_at_10: f64,
    /// Wall-clock training seconds.
    pub fit_seconds: f64,
}

/// Family column value: `"baseline"` for the KG-free baselines, the
/// Table 3 usage label otherwise.
fn family_of(model: &dyn Recommender) -> String {
    if model.taxonomy().venue == "baseline" {
        "baseline".to_owned()
    } else {
        model.taxonomy().usage.label().to_owned()
    }
}

/// What a supervised evaluation produced for one model: the training
/// outcome always, the metric row only when the model ended usable.
#[derive(Debug)]
pub struct ModelReport {
    /// Model name.
    pub model: &'static str,
    /// Usage-type label (`Emb.` / `Path` / `Uni.` / `baseline`).
    pub family: String,
    /// The supervisor's verdict on training.
    pub outcome: FitOutcome,
    /// Metrics, when [`FitOutcome::is_usable`] held and evaluation
    /// itself survived.
    pub row: Option<EvalRow>,
}

/// Trains `model` under [`supervise_fit`] and, when the outcome is
/// usable, evaluates it under both protocols.
///
/// Unlike [`evaluate_model`] this never panics and never silently drops
/// a model: panics, divergence, non-finite scores and budget overruns
/// all come back as a [`ModelReport`] whose outcome says what happened.
/// Evaluation runs under its own `catch_unwind` — a model that trains
/// but panics while ranking is downgraded to
/// [`FitStatus::Failed`] with an `evaluation panicked` reason.
pub fn evaluate_model_supervised(
    model: &mut dyn Recommender,
    synth: &SyntheticDataset,
    split: &Split,
    seed: u64,
    config: &SupervisorConfig,
) -> ModelReport {
    let name = model.name();
    let family = family_of(model);
    let mut outcome = supervise_fit(model, &synth.dataset, &split.train, config);
    let row = if outcome.is_usable() {
        let fit_seconds = outcome.elapsed.as_secs_f64();
        let fam = family.clone();
        let evaluated = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
            let ctr = evaluate_ctr(&*model, &pairs);
            let topk = evaluate_topk(&*model, &split.train, &split.test, &[10]);
            EvalRow {
                model: name,
                family: fam,
                auc: ctr.auc,
                accuracy: ctr.accuracy,
                recall_at_10: topk.cutoffs[0].recall,
                ndcg_at_10: topk.cutoffs[0].ndcg,
                hit_at_10: topk.cutoffs[0].hit_rate,
                fit_seconds,
            }
        }));
        match evaluated {
            Ok(row) => Some(row),
            Err(payload) => {
                outcome.status = FitStatus::Failed;
                outcome.reason =
                    Some(format!("evaluation panicked: {}", panic_message(payload.as_ref())));
                None
            }
        }
    } else {
        None
    };
    ModelReport { model: name, family, outcome, row }
}

/// Outcome counts across a set of reports, in state-machine order:
/// `[ok, retried, degraded, failed]`.
pub fn outcome_counts(reports: &[ModelReport]) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for r in reports {
        let i = match r.outcome.status {
            FitStatus::Ok => 0,
            FitStatus::Retried => 1,
            FitStatus::Degraded => 2,
            FitStatus::Failed => 3,
        };
        counts[i] += 1;
    }
    counts
}

/// Prints the per-model training-outcome table for one scenario: status,
/// attempts, wall-clock, and the failure/degradation reason (`-` for
/// clean first-attempt fits).
pub fn print_outcome_summary(title: &str, reports: &[ModelReport]) {
    println!("\n== {title}: training outcomes ==");
    println!(
        "{:<12} {:<9} {:<9} {:>8} {:>8}  reason",
        "model", "family", "status", "attempts", "fit(s)"
    );
    for r in reports {
        println!(
            "{:<12} {:<9} {:<9} {:>8} {:>8.2}  {}",
            r.model,
            r.family,
            r.outcome.status.label(),
            r.outcome.attempts,
            r.outcome.elapsed.as_secs_f64(),
            r.outcome.reason.as_deref().unwrap_or("-")
        );
    }
    let [ok, retried, degraded, failed] = outcome_counts(reports);
    println!("   {ok} ok | {retried} retried | {degraded} degraded | {failed} failed");
}

/// Trains `model` on the split and evaluates it under both protocols.
///
/// Returns `None` when the model cannot fit this dataset (e.g. DKN
/// without token lists) — the caller skips the row. Unsupervised: a
/// panicking `fit` propagates. The suite binaries use
/// [`evaluate_model_supervised`] instead; this stays for callers that
/// want failures to be loud (ablations over known-good configs).
pub fn evaluate_model(
    model: &mut dyn Recommender,
    synth: &SyntheticDataset,
    split: &Split,
    seed: u64,
) -> Option<EvalRow> {
    let ctx = TrainContext::new(&synth.dataset, &split.train);
    let start = Instant::now();
    if model.fit(&ctx).is_err() {
        return None;
    }
    let fit_seconds = start.elapsed().as_secs_f64();
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
    let ctr = evaluate_ctr(model, &pairs);
    let topk = evaluate_topk(model, &split.train, &split.test, &[10]);
    let family = family_of(model);
    Some(EvalRow {
        model: model.name(),
        family,
        auc: ctr.auc,
        accuracy: ctr.accuracy,
        recall_at_10: topk.cutoffs[0].recall,
        ndcg_at_10: topk.cutoffs[0].ndcg,
        hit_at_10: topk.cutoffs[0].hit_rate,
        fit_seconds,
    })
}

/// Standard split used across the harness: 20% per-user holdout.
pub fn standard_split(synth: &SyntheticDataset, seed: u64) -> Split {
    ratio_split(&synth.dataset.interactions, 0.2, seed)
}

/// Runs the full `kglint` rule set over a scenario bundle in strict mode
/// (warnings fail) before any training happens.
///
/// The harness binaries call this on every scenario; a corrupted bundle
/// aborts the run instead of producing subtly wrong tables.
///
/// # Panics
/// Panics with the rendered report when the check fails.
pub fn preflight_check(synth: &SyntheticDataset, split: &Split) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
    let bundle = CheckBundle::new(&synth.dataset)
        .with_split(split)
        .with_eval_pairs(&pairs)
        .with_hyperparams(default_model_hyperparams());
    let report = CheckReport::run(&bundle);
    if report.fails(true) {
        panic!(
            "preflight kglint failed (strict) for scenario {}:\n{}",
            synth.config.name,
            report.render()
        );
    }
}

/// Non-fatal variant of [`preflight_check`] for fault-injection runs:
/// runs the same strict `kglint` pass but *reports* instead of
/// panicking, so a deliberately corrupted bundle can continue into the
/// supervised evaluation. Returns `true` when strict mode would have
/// failed — i.e. when the injected corruption was detected.
pub fn preflight_report(synth: &SyntheticDataset, split: &Split) -> bool {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
    let bundle = CheckBundle::new(&synth.dataset)
        .with_split(split)
        .with_eval_pairs(&pairs)
        .with_hyperparams(default_model_hyperparams());
    let report = CheckReport::run(&bundle);
    let dirty = report.fails(true);
    if dirty {
        println!(
            "kglint flagged scenario {} (continuing under supervision):\n{}",
            synth.config.name,
            report.render()
        );
    }
    dirty
}

/// Runs the registry/taxonomy consistency rule (`MD001`) in strict mode.
///
/// Called by the metadata binaries (`table3`) that render registry
/// contents without touching a dataset.
///
/// # Panics
/// Panics with the rendered report when the registry is inconsistent.
pub fn preflight_registry() {
    // MD001 ignores the bundle, but the runner needs one; tiny generates
    // in microseconds.
    let synth = generate(&ScenarioConfig::tiny(), 0);
    let bundle = CheckBundle::new(&synth.dataset);
    let report = CheckReport::run_rules(&bundle, &[Box::new(RegistryConsistency)]);
    if report.fails(true) {
        panic!("registry consistency check failed:\n{}", report.render());
    }
}

/// Prints an evaluation table in a fixed-width layout.
pub fn print_eval_table(title: &str, rows: &[EvalRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<12} {:<9} {:>7} {:>7} {:>8} {:>8} {:>7} {:>8}",
        "model", "family", "AUC", "ACC", "R@10", "NDCG@10", "HR@10", "fit(s)"
    );
    for r in rows {
        println!(
            "{:<12} {:<9} {:>7.4} {:>7.4} {:>8.4} {:>8.4} {:>7.4} {:>8.2}",
            r.model,
            r.family,
            r.auc,
            r.accuracy,
            r.recall_at_10,
            r.ndcg_at_10,
            r.hit_at_10,
            r.fit_seconds
        );
    }
}

/// Renders a plain-text table with a header and aligned columns (used by
/// the table1/table3/table4 binaries).
pub fn print_text_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<&str>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.to_vec());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_data::synth::{generate, ScenarioConfig};
    use kgrec_models::baselines::MostPop;

    #[test]
    fn evaluate_model_produces_sane_row() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        let mut model = MostPop::new();
        let row = evaluate_model(&mut model, &synth, &split, 3).unwrap();
        assert_eq!(row.model, "MostPop");
        assert!(row.auc > 0.0 && row.auc <= 1.0);
        assert!(row.recall_at_10 >= 0.0 && row.recall_at_10 <= 1.0);
    }

    #[test]
    fn text_table_does_not_panic_on_ragged_rows() {
        print_text_table(&["a", "b"], &[vec!["x".into(), "yyy".into()]]);
    }

    #[test]
    fn supervised_evaluation_of_a_healthy_model_yields_a_row() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        let mut model = MostPop::new();
        let report =
            evaluate_model_supervised(&mut model, &synth, &split, 3, &SupervisorConfig::default());
        assert_eq!(report.outcome.status, FitStatus::Ok);
        let row = report.row.expect("usable outcome must carry metrics");
        assert_eq!(row.model, "MostPop");
        assert!(row.auc > 0.0 && row.auc <= 1.0);
    }

    #[test]
    fn supervised_evaluation_isolates_a_panicking_model() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        let mut model = crate::doubles::PanicBot;
        let report =
            evaluate_model_supervised(&mut model, &synth, &split, 3, &SupervisorConfig::default());
        std::panic::set_hook(hook);
        assert_eq!(report.outcome.status, FitStatus::Failed);
        assert!(report.row.is_none());
        assert!(report.outcome.reason.unwrap().contains("panic"));
    }

    #[test]
    fn outcome_summary_counts_by_status() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut pop = MostPop::new();
        let mut bot = crate::doubles::NanBot::default();
        let reports = vec![
            evaluate_model_supervised(&mut pop, &synth, &split, 3, &SupervisorConfig::default()),
            evaluate_model_supervised(&mut bot, &synth, &split, 3, &SupervisorConfig::default()),
        ];
        std::panic::set_hook(hook);
        assert_eq!(outcome_counts(&reports), [1, 0, 0, 1]);
        // Rendering must not panic on mixed outcomes.
        print_outcome_summary("test", &reports);
    }

    #[test]
    fn preflight_report_is_quiet_on_clean_bundles_and_loud_on_faults() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        assert!(!preflight_report(&synth, &split));
        let mut corrupted = generate(&ScenarioConfig::tiny(), 1);
        kgrec_data::inject(&mut corrupted.dataset, kgrec_data::Fault::DuplicateTriples);
        let split = standard_split(&corrupted, 2);
        assert!(preflight_report(&corrupted, &split));
    }
}
