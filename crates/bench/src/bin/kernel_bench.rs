//! Microbenchmarks for the numeric hot-path kernels, written to
//! `BENCH_kernels.json`.
//!
//! Covers the kernel layer this repo's training and ranking paths run
//! on: the lane-blocked dot product, the allocation-free `*_into`
//! vector ops, blocked matmul/transpose, select-based top-K, and the
//! fused per-family KGE score kernels. `--quick` shrinks sizes and rep
//! counts for CI smoke runs; `--out PATH` overrides the output
//! location.
//!
//! Every kernel folds its result into a checksum passed through
//! `std::hint::black_box`, so the optimizer cannot delete the measured
//! work. Each kernel is timed over three rounds and the fastest round
//! is reported — the minimum is the standard noise-robust statistic for
//! microbenchmarks, since interference only ever adds time.
//!
//! `--baseline PATH` turns the run into a regression gate: fresh ns/op
//! is compared against the committed baseline (normally
//! `BENCH_kernels.baseline.json`) and the process exits non-zero when
//! any kernel lands more than 20% above it. A tripped gate re-measures
//! the whole pass up to twice, merging per-kernel minima, before
//! failing: back-to-back rounds share one scheduler-noise window, but a
//! full re-pass lands in a fresh one, so only a genuine slowdown
//! survives all three passes. Refresh the baseline after an intentional
//! kernel change with `--quick --out BENCH_kernels.baseline.json`.

use kgrec_bench::kernel_report::{parse_baseline, KernelEntry, KernelReport, KERNEL_BENCH_PATH};
use kgrec_graph::{EntityId, RelationId};
use kgrec_kge::{DistMult, KgeModel, TransE, TransH, TransR};
use kgrec_linalg::{vector, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Times `reps` runs of `f` per round, over three rounds, and keeps the
/// fastest round. `f` must return a value folding in the kernel's
/// output. Returns the finished entry.
fn time_kernel<F: FnMut() -> f32>(name: &str, n: usize, reps: usize, mut f: F) -> KernelEntry {
    // One warm-up rep so page faults and lazy init stay out of the timing.
    let mut checksum = f64::from(black_box(f()));
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        for _ in 0..reps {
            checksum += f64::from(black_box(f()));
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    KernelEntry::new(name, n, reps, best, checksum)
}

fn filled(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// One full measurement pass over every kernel.
fn measure(quick: bool) -> KernelReport {
    // Quick reps are sized so one timed round stays near a millisecond:
    // much shorter and scheduler jitter dominates ns/op, which would make
    // the --baseline regression gate flaky on loaded CI machines.
    let dim = 64;
    let reps = if quick { 20_000 } else { 200_000 };
    let mat_reps = if quick { 300 } else { 2_000 };
    let topk_reps = if quick { 1_000 } else { 20_000 };

    let mut report = KernelReport::new(quick);

    // --- Vector kernels ---
    let a = filled(dim, 1);
    let b = filled(dim, 2);
    let mut out = vec![0.0f32; dim];
    report.push(time_kernel(&format!("dot/{dim}"), dim, reps, || vector::dot(&a, &b)));
    report.push(time_kernel(&format!("add_into/{dim}"), dim, reps, || {
        vector::add_into(&a, &b, &mut out);
        out[0]
    }));
    report.push(time_kernel(&format!("sub_into/{dim}"), dim, reps, || {
        vector::sub_into(&a, &b, &mut out);
        out[0]
    }));
    report.push(time_kernel(&format!("mul_into/{dim}"), dim, reps, || {
        vector::mul_into(&a, &b, &mut out);
        out[0]
    }));
    report.push(time_kernel(&format!("scale_assign/{dim}"), dim, reps, || {
        vector::scale_assign(1.0001, &a, &mut out);
        out[0]
    }));
    report.push(time_kernel(&format!("axpy/{dim}"), dim, reps, || {
        out.fill(0.0);
        vector::axpy(0.5, &a, &mut out);
        out[0]
    }));

    // --- Matrix kernels ---
    let (rows, inner, cols) = if quick { (24, 48, 24) } else { (48, 96, 48) };
    let am = Matrix::from_vec(rows, inner, filled(rows * inner, 3));
    let bm = Matrix::from_vec(inner, cols, filled(inner * cols, 4));
    let x = filled(inner, 5);
    let mut y = vec![0.0f32; rows];
    report.push(time_kernel(
        &format!("matmul/{rows}x{inner}x{cols}"),
        rows * inner * cols,
        mat_reps,
        || am.matmul(&bm).data()[0],
    ));
    report.push(time_kernel(&format!("transpose/{rows}x{inner}"), rows * inner, mat_reps, || {
        am.transpose().data()[0]
    }));
    report.push(time_kernel(&format!("matvec_into/{rows}x{inner}"), rows * inner, reps, || {
        am.matvec_into(&x, &mut y);
        y[0]
    }));

    // --- Ranking kernel ---
    let scores = filled(if quick { 512 } else { 4096 }, 6);
    let k = 10;
    report.push(time_kernel(
        &format!("top_k/{}@{k}", scores.len()),
        scores.len(),
        topk_reps,
        || vector::top_k_indices(&scores, k)[0] as f32,
    ));

    // --- Fused KGE score kernels ---
    let mut rng = StdRng::seed_from_u64(7);
    let (ne, nr) = (100, 8);
    let kge_reps = if quick { 10_000 } else { 100_000 };
    let transe = TransE::new(&mut rng, ne, nr, dim, 1.0);
    let transh = TransH::new(&mut rng, ne, nr, dim, 1.0);
    let transr = TransR::new(&mut rng, ne, nr, dim, dim / 2, 1.0);
    let distmult = DistMult::new(&mut rng, ne, nr, dim);
    let (h, r, t) = (EntityId(3), RelationId(1), EntityId(57));
    report
        .push(time_kernel(&format!("transe_score/{dim}"), dim, kge_reps, || transe.score(h, r, t)));
    report
        .push(time_kernel(&format!("transh_score/{dim}"), dim, kge_reps, || transh.score(h, r, t)));
    report
        .push(time_kernel(&format!("transr_score/{dim}"), dim, kge_reps, || transr.score(h, r, t)));
    report.push(time_kernel(&format!("distmult_score/{dim}"), dim, kge_reps, || {
        distmult.score(h, r, t)
    }));

    report
}

/// Folds a re-measurement into `report`, keeping the faster timing per
/// kernel (passes are identical in shape, so entries align by index).
fn merge_min(report: &mut KernelReport, retry: KernelReport) {
    for (cur, fresh) in report.entries.iter_mut().zip(retry.entries) {
        assert_eq!(cur.name, fresh.name, "measurement passes must align");
        if fresh.ns_per_op < cur.ns_per_op {
            *cur = fresh;
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or(KERNEL_BENCH_PATH, String::as_str);
    let baseline_path = args.iter().position(|a| a == "--baseline").and_then(|i| args.get(i + 1));

    let mut report = measure(quick);

    // --- Regression gate ---
    let mut gate_failed = false;
    if let Some(path) = baseline_path {
        let doc = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading kernel baseline {path}: {e}"));
        let baseline = parse_baseline(&doc);
        assert!(!baseline.is_empty(), "kernel baseline {path} holds no kernels");
        let mut regressions = report.regressions_against(&baseline, 1.2, 0.5);
        for attempt in 0..2 {
            if regressions.is_empty() {
                break;
            }
            eprintln!(
                "kernel gate: {} kernel(s) over threshold on pass {}; re-measuring to rule \
                 out scheduler noise",
                regressions.len(),
                attempt + 1
            );
            merge_min(&mut report, measure(quick));
            regressions = report.regressions_against(&baseline, 1.2, 0.5);
        }
        println!("kernel gate: comparing {} kernels against {path}", baseline.len());
        for e in &report.entries {
            if let Some((_, base)) = baseline.iter().find(|(name, _)| *name == e.name) {
                println!(
                    "  {:<24} {:>12.1} ns/op  baseline {:>10.1}  ({:+.1}%)",
                    e.name,
                    e.ns_per_op,
                    base,
                    (e.ns_per_op / base - 1.0) * 100.0
                );
            }
        }
        if regressions.is_empty() {
            println!("kernel gate: OK (every kernel within 20% of baseline)");
        } else {
            for r in &regressions {
                eprintln!(
                    "kernel gate: REGRESSION {} — {:.1} ns/op vs baseline {:.1} ({:.2}x)",
                    r.name,
                    r.fresh_ns,
                    r.baseline_ns,
                    r.ratio()
                );
            }
            eprintln!(
                "kernel gate: {} kernel(s) regressed >20% across three passes; refresh with \
                 `kernel_bench --quick --out {path}` only for intentional changes",
                regressions.len()
            );
            gate_failed = true;
        }
    }

    report.write_to(std::path::Path::new(out_path)).expect("writing kernel report");
    println!("kernel_bench: {} kernels -> {out_path}", report.entries.len());
    for e in &report.entries {
        println!("  {:<24} {:>12.1} ns/op  ({} reps)", e.name, e.ns_per_op, e.reps);
    }
    if gate_failed {
        std::process::exit(1);
    }
}
