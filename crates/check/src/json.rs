//! Hand-rolled JSON rendering for `kglint --json`, shared by the
//! bundle rules and the source rules.
//!
//! The workspace is dependency-free (see `vendor/README.md`), so like
//! the bench reports this is flat, hand-assembled JSON: stable key
//! order, one finding object per line, no floats that need escaping.
//! CI diffs these documents structurally, so field order is part of
//! the contract.

use crate::diagnostic::{Diagnostic, Subject};

/// Quotes and escapes `s` as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one diagnostic as a single-line JSON object.
///
/// Source findings carry `file` and `line` fields so CI can anchor a
/// diff to a location; every finding carries the rendered `subject`.
pub fn diagnostic_json(d: &Diagnostic) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\"code\": {}, \"severity\": {}, ",
        json_str(d.code),
        json_str(d.severity.label())
    ));
    if let Subject::Source { file, line } = &d.subject {
        s.push_str(&format!("\"file\": {}, \"line\": {line}, ", json_str(file)));
    }
    s.push_str(&format!(
        "\"subject\": {}, \"message\": {}}}",
        json_str(&d.subject.to_string()),
        json_str(&d.message)
    ));
    s
}

/// Renders a finding list as a JSON array with `indent` leading spaces
/// per element.
pub fn findings_json(diags: &[Diagnostic], indent: usize) -> String {
    if diags.is_empty() {
        return "[]".to_owned();
    }
    let pad = " ".repeat(indent);
    let items: Vec<String> = diags.iter().map(|d| format!("{pad}{}", diagnostic_json(d))).collect();
    format!("[\n{}\n{}]", items.join(",\n"), " ".repeat(indent.saturating_sub(2)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;

    #[test]
    fn escapes_quotes_and_control_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn source_findings_carry_file_and_line() {
        let d = Diagnostic::new(
            "SA005",
            Severity::Warning,
            Subject::Source { file: "crates/data/src/synth.rs".into(), line: 294 },
            "truncating cast",
        );
        let j = diagnostic_json(&d);
        assert!(j.contains("\"file\": \"crates/data/src/synth.rs\""));
        assert!(j.contains("\"line\": 294"));
        assert!(j.contains("\"code\": \"SA005\""));
    }

    #[test]
    fn bundle_findings_have_subject_but_no_file() {
        let d = Diagnostic::new("KG001", Severity::Error, Subject::Triple(7), "dangling");
        let j = diagnostic_json(&d);
        assert!(j.contains("\"subject\": \"triple 7\""));
        assert!(!j.contains("\"file\""));
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        assert_eq!(findings_json(&[], 4), "[]");
    }
}
