//! The shared KGE model interface.

use crate::grad::GradBatch;
use kgrec_graph::{EntityId, RelationId, Triple};

/// A trainable knowledge-graph embedding model.
///
/// Scores are oriented so that **higher means more plausible** — the
/// translation-distance models return the negated distance. This keeps
/// ranking code uniform across model families.
///
/// `Send + Sync` is part of the contract: link-prediction evaluation
/// shards test triples across worker threads that score against a shared
/// `&self`. Every backend is a plain embedding-table struct, so the
/// bounds are free.
pub trait KgeModel: Send + Sync {
    /// Embedding dimension `d`.
    fn dim(&self) -> usize;

    /// Number of entities the model was sized for.
    fn num_entities(&self) -> usize;

    /// Number of relations the model was sized for.
    fn num_relations(&self) -> usize;

    /// Plausibility score of the triple (higher = more plausible).
    fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32;

    /// The entity latent vector `e_k`.
    fn entity_embedding(&self, e: EntityId) -> &[f32];

    /// The relation latent vector `r_k`.
    fn relation_embedding(&self, r: RelationId) -> &[f32];

    /// One SGD step on a (positive, negative) triple pair; returns the
    /// pair's loss *before* the update.
    fn train_pair(&mut self, pos: Triple, neg: Triple, lr: f32) -> f32;

    /// SGD steps over a pre-drawn batch of (positive, negative) pairs,
    /// pushing each pair's loss onto `losses` in order.
    ///
    /// The default applies `train_pair` sequentially, so the parameter
    /// trajectory and the per-pair losses are exactly those of the
    /// unbatched loop; implementations may override to amortise per-pair
    /// setup but must preserve both properties (the trainer accumulates
    /// the returned losses in pair order, and the golden evaluation
    /// transcript pins the resulting parameters bit-for-bit).
    fn train_batch(&mut self, pairs: &[(Triple, Triple)], lr: f32, losses: &mut Vec<f32>) {
        for &(pos, neg) in pairs {
            losses.push(self.train_pair(pos, neg, lr));
        }
    }

    /// Whether the model implements the recorded-gradient pair
    /// ([`Self::grad_pair`] / [`Self::apply_grads`]) and should be trained
    /// through the deterministic batched path. Defaults to `false`: such
    /// models keep the sequential per-pair trajectory.
    fn supports_grad_batches(&self) -> bool {
        false
    }

    /// Computes the gradients of one (positive, negative) pair against the
    /// *frozen* current parameters, recording every update and constraint
    /// projection as ops in `out`. Returns the pair's loss. Must not
    /// mutate any parameter — `&self` enforces it — so workers can record
    /// batches concurrently.
    ///
    /// Unlike [`Self::train_pair`], the negative triple's gradients are
    /// evaluated at the same frozen parameters as the positive's (the
    /// sequential path updates between the two); the batched trainer's
    /// trajectory is therefore a frozen-minibatch variant of SGD, not a
    /// replay of the sequential one — but it is identical at every thread
    /// count.
    fn grad_pair(&self, _pos: Triple, _neg: Triple, _out: &mut GradBatch) -> f32 {
        unimplemented!("grad_pair requires supports_grad_batches()")
    }

    /// Applies a recorded batch in op order with learning rate `lr`.
    fn apply_grads(&mut self, _batch: &GradBatch, _lr: f32) {
        unimplemented!("apply_grads requires supports_grad_batches()")
    }

    /// Applies per-epoch constraints (norm projections). Default: nothing.
    fn post_epoch(&mut self) {}

    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;
}
