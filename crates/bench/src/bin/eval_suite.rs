//! The cross-method evaluation suite: measures the survey's qualitative
//! claims on the synthetic dataset family.
//!
//! Claims checked (survey Sections 4 and 6):
//!
//! 1. KG side information improves over KG-free CF, and the gap widens
//!    under sparsity (the data-sparsity/cold-start motivation of §1);
//! 2. unified methods are at or above the best embedding-based and
//!    path-based methods (§4.3's "fully exploit information" argument);
//! 3. path-based and unified methods expose reasoning paths (checked by
//!    the figure1/explanation machinery, reported here as coverage).
//!
//! Every model trains under the supervisor, so a panicking or diverging
//! model becomes a `failed` row in the outcome table instead of killing
//! the run. Models are sharded across the deterministic worker pool —
//! metrics are bit-identical for every `--threads` value, and a worker
//! panic poisons exactly one model's row.
//!
//! Usage:
//! `cargo run --release -p kgrec-bench --bin eval_suite -- [--quick]
//! [--threads N] [--bench] [--no-timing] [--checkpoint-dir DIR]
//! [--inject-fault[=<label>]]`
//!
//! * `--threads N` — worker count (default: `KGREC_THREADS`, then
//!   `available_parallelism`);
//! * `--bench` — also run a single-threaded comparison pass and write
//!   wall-clock / throughput / per-model phase timings to
//!   `BENCH_eval.json`;
//! * `--no-timing` — print `-` in wall-clock columns so stdout is
//!   byte-identical across runs, machines and thread counts (used by the
//!   golden regression test and the CI 1-vs-4-thread diff);
//! * `--checkpoint-dir DIR` — load-or-train warm starts: every model
//!   checkpoints into `DIR/<scenario>/<model>`, and a rerun against the
//!   same directory restores checkpointed models instead of retraining
//!   them (`attempts 0`, `warm start` in the outcome table);
//! * `--inject-fault` — the graceful-degradation drill: appends the
//!   deliberately broken models of [`kgrec_bench::doubles`] to the roster
//!   and, when a label is given, either corrupts every scenario bundle
//!   with that dataset fault before splitting (e.g.
//!   `--inject-fault=nan-ratings`, see [`kgrec_data::Fault`]) or — when
//!   the label names a storage fault (e.g.
//!   `--inject-fault=torn-write`, see [`kgrec_store::StorageFault`]) —
//!   first runs the end-to-end checkpoint-recovery drill: train,
//!   checkpoint, corrupt the store that way, restart, and require the
//!   recovery to fall back to the previous good generation (or fresh
//!   training) without a panic. The suite must still finish all
//!   scenarios and report the casualties in the outcome summary.

use kgrec_bench::bench_report::{BenchReport, BENCH_PATH};
use kgrec_bench::doubles::{NanBot, PanicBot, RecoverBot};
use kgrec_bench::storage_drill::run_storage_drill;
use kgrec_bench::{
    checkpoint_dir_from_args, evaluate_roster_supervised_checkpointed, outcome_counts, par,
    preflight_check, preflight_report, print_eval_table_with, print_outcome_summary_with,
    standard_split, threads_from_args, EvalRow, ModelReport,
};
use kgrec_core::{Recommender, SupervisorConfig};
use kgrec_data::synth::{generate, ScenarioConfig};
use kgrec_data::Fault;
use kgrec_models::registry::all_models;
use kgrec_store::StorageFault;
use std::path::PathBuf;
use std::time::Instant;

/// Everything one suite pass needs to know.
struct SuiteConfig {
    scenarios: Vec<(ScenarioConfig, bool)>,
    threads: usize,
    inject: bool,
    fault: Option<Fault>,
    show_timing: bool,
    /// Per-scenario checkpoint stores live under this root when set.
    checkpoint_root: Option<PathBuf>,
    /// Quiet passes (the `--bench` serial baseline) skip stdout entirely.
    print: bool,
}

/// One pass over every scenario; returns per-scenario reports and the
/// wall-clock the whole pass took.
fn run_suite(cfg: &SuiteConfig) -> (Vec<(String, Vec<ModelReport>)>, f64) {
    // Model fits discover their worker count through `KGREC_THREADS`
    // (`par::resolve_threads(None)`), not through a plumbed argument —
    // pin it to this pass's count so `--threads 1` (and the `--bench`
    // serial comparison pass) really serializes the fit path too. Safe:
    // the pool's scoped workers are joined before this call, so no other
    // thread is reading the environment.
    std::env::set_var(par::THREADS_ENV, cfg.threads.to_string());
    let supervisor = SupervisorConfig::default();
    let started = Instant::now();
    let mut runs: Vec<(String, Vec<ModelReport>)> = Vec::new();
    for (scenario, with_text) in &cfg.scenarios {
        let mut synth = generate(scenario, 2024);
        if let Some(f) = cfg.fault {
            kgrec_data::inject(&mut synth.dataset, f);
        }
        let split = standard_split(&synth, 7);
        if cfg.inject {
            // A corrupted bundle is the point of the drill: report what
            // kglint sees and push on into the supervised evaluation.
            if cfg.print {
                preflight_report(&synth, &split);
            }
        } else {
            preflight_check(&synth, &split);
        }
        if cfg.print {
            println!(
                "\nscenario {}: {} users, {} items, {} interactions, {} KG triples",
                scenario.name,
                scenario.num_users,
                scenario.num_items,
                synth.dataset.interactions.num_interactions(),
                synth.dataset.graph.num_triples()
            );
        }
        let mut roster: Vec<Box<dyn Recommender>> = all_models(*with_text);
        if cfg.inject {
            roster.push(Box::new(PanicBot));
            roster.push(Box::new(NanBot::default()));
            roster.push(Box::new(RecoverBot::new(1)));
        }
        let scenario_root = cfg.checkpoint_root.as_ref().map(|r| r.join(&scenario.name));
        let reports = evaluate_roster_supervised_checkpointed(
            roster,
            &synth,
            &split,
            11,
            &supervisor,
            cfg.threads,
            scenario_root.as_deref(),
        );
        if cfg.print {
            // Progress lines print after the pool drains, in roster order,
            // so stdout is identical at every thread count.
            for report in &reports {
                match &report.row {
                    Some(row) => println!("  done: {} (AUC {:.4})", row.model, row.auc),
                    None => println!(
                        "  FAILED: {} ({})",
                        report.model,
                        report.outcome.reason.as_deref().unwrap_or("no reason recorded")
                    ),
                }
            }
            let rows: Vec<EvalRow> = reports.iter().filter_map(|r| r.row.clone()).collect();
            print_eval_table_with(&scenario.name, &rows, cfg.show_timing);
            print_outcome_summary_with(&scenario.name, &reports, cfg.show_timing);
        }
        runs.push((scenario.name.clone(), reports));
    }
    (runs, started.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let bench = args.iter().any(|a| a == "--bench");
    let show_timing = !args.iter().any(|a| a == "--no-timing");
    let threads = par::resolve_threads(threads_from_args(&args));
    let inject = args.iter().any(|a| a == "--inject-fault" || a.starts_with("--inject-fault="));
    let checkpoint_root = checkpoint_dir_from_args(&args);
    let mut fault: Option<Fault> = None;
    let mut storage_fault: Option<StorageFault> = None;
    if let Some(label) = args.iter().find_map(|a| a.strip_prefix("--inject-fault=")) {
        if let Some(f) = StorageFault::from_label(label) {
            storage_fault = Some(f);
        } else if let Some(f) = Fault::from_label(label) {
            fault = Some(f);
        } else {
            let mut known: Vec<&str> = Fault::all().iter().map(Fault::label).collect();
            known.extend(StorageFault::all().iter().map(|f| f.label()));
            panic!("unknown fault label {label:?}; known labels: {}", known.join(", "));
        }
    }
    if inject {
        // The drill provokes panics on purpose; keep the default hook's
        // backtrace spam out of the report.
        std::panic::set_hook(Box::new(|_| {}));
        match (fault, storage_fault) {
            (Some(f), _) => println!("fault drill: broken models + dataset fault `{f}`"),
            (None, Some(f)) => println!("fault drill: broken models + storage fault `{f}`"),
            (None, None) => println!("fault drill: broken models on an otherwise clean bundle"),
        }
    }
    if let Some(f) = storage_fault {
        // End-to-end checkpoint recovery: train → checkpoint → corrupt →
        // restart → require graceful recovery before the suite proper.
        let drill_dir = checkpoint_root
            .clone()
            .unwrap_or_else(std::env::temp_dir)
            .join("storage-drill")
            .join(f.label());
        println!("\n== Storage-fault drill ==");
        let outcome = run_storage_drill(f, &drill_dir);
        println!("{}", outcome.describe());
        assert!(
            outcome.passed(),
            "storage-fault drill `{f}` must recover gracefully without a panic"
        );
    }
    let scenarios: Vec<(ScenarioConfig, bool)> = if quick {
        vec![
            (ScenarioConfig::tiny(), false),
            (ScenarioConfig::tiny().with_sparsity_factor(0.3), false),
        ]
    } else {
        vec![
            (ScenarioConfig::movielens_100k_like(), false),
            (ScenarioConfig::movielens_100k_like().with_sparsity_factor(0.25), false),
            (ScenarioConfig::book_crossing_like(), false),
            (ScenarioConfig::lastfm_like(), false),
            (ScenarioConfig::bing_news_like(), true),
        ]
    };
    // Thread count goes to stderr: stdout must stay byte-identical
    // across `--threads` values for the equivalence checks.
    eprintln!("eval_suite: {threads} worker thread(s)");
    let cfg = SuiteConfig {
        scenarios,
        threads,
        inject,
        fault,
        show_timing,
        checkpoint_root,
        print: true,
    };
    let (runs, wall_secs) = run_suite(&cfg);

    let mut totals = [0usize; 4];
    for (_, reports) in &runs {
        let counts = outcome_counts(reports);
        for (t, c) in totals.iter_mut().zip(counts) {
            *t += c;
        }
    }
    // --- Claim checks ---
    println!("\n== Claim checks ==");
    for (name, reports) in &runs {
        let rows: Vec<EvalRow> = reports.iter().filter_map(|r| r.row.clone()).collect();
        let best = |filter: &dyn Fn(&&EvalRow) -> bool| {
            rows.iter().filter(filter).map(|r| r.auc).fold(f64::NAN, f64::max)
        };
        let best_baseline = best(&|r| r.family == "baseline");
        let best_kg = best(&|r| r.family != "baseline");
        let best_unified = best(&|r| r.family == "Uni.");
        println!(
            "{name}: best baseline AUC {best_baseline:.4} | best KG-aware {best_kg:.4} | \
             best unified {best_unified:.4} | KG-aware wins: {}",
            best_kg > best_baseline
        );
    }
    let [ok, retried, degraded, failed] = totals;
    println!(
        "\n== Suite outcome: {ok} ok | {retried} retried | {degraded} degraded | {failed} failed \
         across {} scenarios ==",
        cfg.scenarios.len()
    );
    if inject && failed == 0 {
        panic!("fault drill expected at least one failed outcome — injection is broken");
    }

    if bench {
        let mut report = BenchReport::new(&runs, threads, wall_secs);
        if threads > 1 {
            eprintln!("eval_suite --bench: running single-threaded comparison pass");
            // The serial baseline must retrain for real — warm starts from
            // the first pass's checkpoints would fake the speedup.
            let serial_cfg = SuiteConfig { threads: 1, print: false, checkpoint_root: None, ..cfg };
            let (_, serial_wall) = run_suite(&serial_cfg);
            report = report.with_serial_baseline(serial_wall);
        } else {
            report = report.with_serial_baseline(wall_secs);
        }
        report.write_to(std::path::Path::new(BENCH_PATH)).expect("writing BENCH_eval.json");
        let speedup = report.speedup().unwrap_or(1.0);
        eprintln!(
            "bench: {:.2}s wall at {threads} thread(s), {:.0} rows/s, {speedup:.2}x vs serial \
             -> {BENCH_PATH}",
            report.wall_secs, report.rows_per_sec
        );
    }
}
