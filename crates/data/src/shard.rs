//! Range sharding over the columnar data layer.
//!
//! A [`ShardPlan`] cuts the user id space into contiguous ranges on user
//! boundaries — never through the middle of a user's history — balanced
//! by row count so each shard carries a comparable amount of work. The
//! same boundary discipline applies to entities of the KG adjacency via
//! [`ShardedDataset::entity_shard`]. Shards are *views*: no rows are
//! copied, and concatenating shard iteration in shard order replays the
//! unsharded order exactly (the property the equivalence proptests pin),
//! which is why the parallel evaluation protocols can consume shards and
//! stay bit-identical to the serial path.

use crate::columnar::ColumnarInteractions;
use crate::dataset::KgDataset;
use crate::ids::{ItemId, UserId};
use crate::interactions::InteractionMatrix;
use kgrec_graph::csr::CsrAdjacency;
use kgrec_graph::{id32, EntityId, KnowledgeGraph, Triple};

/// A partition of `0..num_users` into contiguous shards on user
/// boundaries, with the matching row boundaries cached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    num_users: usize,
    /// User boundaries, length `num_shards + 1`: shard `s` covers users
    /// `user_bounds[s]..user_bounds[s + 1]`.
    user_bounds: Vec<u32>,
    /// Row boundaries aligned with `user_bounds`: shard `s` covers rows
    /// `row_bounds[s]..row_bounds[s + 1]`. Each entry must equal
    /// `u_offsets[user_bounds[s]]` — that equality IS the "no user split
    /// across shards" invariant kglint MD007 checks.
    row_bounds: Vec<u32>,
}

/// One defect found by [`ShardPlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardViolation {
    /// The boundary arrays have differing lengths or are empty.
    BoundsShape {
        /// `(user_bounds, row_bounds)` lengths.
        lengths: (usize, usize),
    },
    /// `user_bounds` does not start at 0 or end at `num_users`.
    Coverage {
        /// First boundary.
        first: u32,
        /// Last boundary.
        last: u32,
    },
    /// `user_bounds[index] > user_bounds[index + 1]`.
    NotMonotone {
        /// First index of the decreasing pair.
        index: usize,
    },
    /// Shard boundary `index` cuts through a user's history:
    /// `row_bounds[index] != u_offsets[user_bounds[index]]`.
    UserSplitAcrossShards {
        /// Offending boundary index.
        index: usize,
        /// The row boundary recorded in the plan.
        got: u32,
        /// The row the user boundary actually starts at.
        want: u32,
    },
}

impl std::fmt::Display for ShardViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardViolation::BoundsShape { lengths } => {
                write!(
                    f,
                    "boundary arrays disagree: {} user bounds, {} row bounds",
                    lengths.0, lengths.1
                )
            }
            ShardViolation::Coverage { first, last } => {
                write!(f, "plan covers users {first}..{last}, not the full id space")
            }
            ShardViolation::NotMonotone { index } => {
                write!(f, "user bounds decrease at index {index}")
            }
            ShardViolation::UserSplitAcrossShards { index, got, want } => {
                write!(
                    f,
                    "boundary {index} splits a user across shards: row bound {got}, user starts at row {want}"
                )
            }
        }
    }
}

impl ShardPlan {
    /// Cuts `cols` into at most `shards` contiguous user ranges balanced
    /// by row count. Boundaries always land on user boundaries; a shard
    /// may be empty when users are fewer than shards. Deterministic.
    pub fn balanced(cols: &ColumnarInteractions, shards: usize) -> Self {
        let user_bounds = balanced_bounds(cols.u_offsets(), shards);
        let row_bounds = user_bounds.iter().map(|&u| cols.u_offsets()[u as usize]).collect();
        Self { num_users: cols.num_users(), user_bounds, row_bounds }
    }

    /// Assembles a plan from raw boundary arrays with **no validation** —
    /// the kglint `MD007` corrupted fixtures construct broken plans here.
    pub fn from_raw_parts(num_users: usize, user_bounds: Vec<u32>, row_bounds: Vec<u32>) -> Self {
        Self { num_users, user_bounds, row_bounds }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.user_bounds.len().saturating_sub(1)
    }

    /// Number of users the plan spans.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// The user id range of shard `s`.
    pub fn user_range(&self, s: usize) -> std::ops::Range<u32> {
        self.user_bounds[s]..self.user_bounds[s + 1]
    }

    /// The row range of shard `s`.
    pub fn row_range(&self, s: usize) -> std::ops::Range<usize> {
        self.row_bounds[s] as usize..self.row_bounds[s + 1] as usize
    }

    /// Raw user boundaries (length `num_shards + 1`).
    pub fn user_bounds(&self) -> &[u32] {
        &self.user_bounds
    }

    /// Raw row boundaries (length `num_shards + 1`).
    pub fn row_bounds(&self) -> &[u32] {
        &self.row_bounds
    }

    /// Integrity scan against the store the plan partitions: boundary
    /// shape, full coverage, monotonicity, and the no-user-split
    /// invariant. Returns every defect found (empty = sound).
    pub fn validate(&self, cols: &ColumnarInteractions) -> Vec<ShardViolation> {
        let mut out = Vec::new();
        if self.user_bounds.len() != self.row_bounds.len() || self.user_bounds.len() < 2 {
            out.push(ShardViolation::BoundsShape {
                lengths: (self.user_bounds.len(), self.row_bounds.len()),
            });
            return out;
        }
        let first = self.user_bounds[0];
        let last = *self.user_bounds.last().expect("len >= 2");
        if first != 0 || last as usize != cols.num_users() {
            out.push(ShardViolation::Coverage { first, last });
        }
        for i in 0..self.user_bounds.len() - 1 {
            if self.user_bounds[i] > self.user_bounds[i + 1] {
                out.push(ShardViolation::NotMonotone { index: i });
            }
        }
        if !out.is_empty() {
            return out;
        }
        for (i, &u) in self.user_bounds.iter().enumerate() {
            let want = cols.u_offsets()[u as usize];
            if self.row_bounds[i] != want {
                out.push(ShardViolation::UserSplitAcrossShards {
                    index: i,
                    got: self.row_bounds[i],
                    want,
                });
            }
        }
        out
    }
}

/// Balanced contiguous partition of a CSR offset array: returns
/// `parts + 1` boundaries over `0..offsets.len()-1` such that each part's
/// row count approaches `total / parts`, with every boundary on an
/// owner (user/entity) boundary. Deterministic; parts may be empty when
/// owners are fewer than parts.
pub fn balanced_bounds(offsets: &[u32], parts: usize) -> Vec<u32> {
    let n = offsets.len().saturating_sub(1);
    let parts = parts.max(1);
    let total = if n == 0 { 0 } else { offsets[n] as usize };
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0u32);
    let mut owner = 0usize;
    for s in 1..parts {
        // Rows the first `s` parts should ideally cover.
        let target = total * s / parts;
        while owner < n && (offsets[owner] as usize) < target {
            owner += 1;
        }
        bounds.push(id32(owner.min(n)));
    }
    bounds.push(id32(n));
    bounds
}

/// Even contiguous partition of a keyless work list (e.g. the labeled
/// CTR pair set): ranges of `ceil(len / parts)` rows each, the last
/// possibly short, matching `slice::chunks` boundaries. Fewer than
/// `parts` ranges come back when `len` is small. Deterministic.
pub fn even_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let chunk = len.div_ceil(parts.max(1)).max(1);
    let mut out = Vec::with_capacity(len.div_ceil(chunk));
    let mut lo = 0usize;
    while lo < len {
        let hi = (lo + chunk).min(len);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// A view over one user range of a columnar store.
#[derive(Debug, Clone, Copy)]
pub struct UserShard<'a> {
    cols: &'a ColumnarInteractions,
    users: (u32, u32),
}

impl<'a> UserShard<'a> {
    /// The user ids this shard covers.
    pub fn users(&self) -> std::ops::Range<u32> {
        self.users.0..self.users.1
    }

    /// Number of rows in the shard.
    pub fn num_rows(&self) -> usize {
        let (lo, hi) = self.users;
        (self.cols.u_offsets()[hi as usize] - self.cols.u_offsets()[lo as usize]) as usize
    }

    /// Items of `user` (must lie in [`Self::users`]).
    pub fn items_of(&self, user: UserId) -> &'a [ItemId] {
        debug_assert!(self.users().contains(&user.0), "user outside shard");
        self.cols.items_of(user)
    }

    /// Iterates the shard's `(user, item, rating)` rows user-major —
    /// concatenation over all shards in shard order replays the
    /// unsharded [`InteractionMatrix::iter`] order exactly.
    pub fn iter_rows(&self) -> impl Iterator<Item = (UserId, ItemId, f32)> + 'a {
        let cols = self.cols;
        self.users().flat_map(move |u| {
            let user = UserId(u);
            cols.items_of(user)
                .iter()
                .zip(cols.ratings_of(user).iter())
                .map(move |(&i, &r)| (user, i, r))
        })
    }
}

/// A view over one entity range of a CSR adjacency.
#[derive(Debug, Clone, Copy)]
pub struct EntityShard<'a> {
    csr: &'a CsrAdjacency,
    entities: (u32, u32),
}

impl<'a> EntityShard<'a> {
    /// The entity ids this shard covers.
    pub fn entities(&self) -> std::ops::Range<u32> {
        self.entities.0..self.entities.1
    }

    /// Number of facts headed by the shard's entities.
    pub fn num_triples(&self) -> usize {
        let (lo, hi) = self.entities;
        (self.csr.offsets()[hi as usize] - self.csr.offsets()[lo as usize]) as usize
    }

    /// Iterates the shard's facts head-major — concatenation over all
    /// shards in shard order replays the unsharded
    /// `KnowledgeGraph::iter_triples` order exactly.
    pub fn iter_triples(&self) -> impl Iterator<Item = Triple> + 'a {
        let csr = self.csr;
        let (lo, hi) = self.entities;
        (csr.offsets()[lo as usize] as usize..csr.offsets()[hi as usize] as usize)
            .map(move |i| csr.triple_at(i))
    }

    /// Out-degree of `e` (must lie in [`Self::entities`]).
    pub fn degree(&self, e: EntityId) -> usize {
        debug_assert!(self.entities().contains(&e.0), "entity outside shard");
        self.csr.degree(e)
    }
}

/// The sharded view the parallel pool and the roster evaluator consume:
/// one interaction matrix and one KG behind matching range partitions.
#[derive(Debug)]
pub struct ShardedDataset<'a> {
    interactions: &'a InteractionMatrix,
    graph: &'a KnowledgeGraph,
    plan: ShardPlan,
    entity_bounds: Vec<u32>,
}

impl<'a> ShardedDataset<'a> {
    /// Shards `interactions` by user range and `graph` by entity range,
    /// both balanced by row/edge count into at most `shards` parts.
    pub fn new(
        interactions: &'a InteractionMatrix,
        graph: &'a KnowledgeGraph,
        shards: usize,
    ) -> Self {
        let plan = ShardPlan::balanced(interactions.columnar(), shards);
        let entity_bounds = balanced_bounds(graph.csr().offsets(), shards);
        Self { interactions, graph, plan, entity_bounds }
    }

    /// Convenience: shard a dataset's interaction matrix and KG together.
    pub fn of_dataset(dataset: &'a KgDataset, shards: usize) -> Self {
        Self::new(&dataset.interactions, &dataset.graph, shards)
    }

    /// Number of shards (identical for users and entities).
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// The user-range plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The interaction view of shard `s`.
    pub fn user_shard(&self, s: usize) -> UserShard<'a> {
        let r = self.plan.user_range(s);
        UserShard { cols: self.interactions.columnar(), users: (r.start, r.end) }
    }

    /// The KG view of shard `s`.
    pub fn entity_shard(&self, s: usize) -> EntityShard<'a> {
        EntityShard {
            csr: self.graph.csr(),
            entities: (self.entity_bounds[s], self.entity_bounds[s + 1]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interactions::Interaction;
    use crate::synth::{generate, ScenarioConfig};

    fn toy() -> InteractionMatrix {
        InteractionMatrix::from_interactions(
            5,
            4,
            &[
                Interaction::implicit(UserId(0), ItemId(1)),
                Interaction::rated(UserId(0), ItemId(3), 5.0),
                Interaction::implicit(UserId(2), ItemId(1)),
                Interaction::implicit(UserId(2), ItemId(0)),
                Interaction::implicit(UserId(3), ItemId(2)),
                Interaction::implicit(UserId(4), ItemId(0)),
            ],
        )
    }

    #[test]
    fn balanced_plan_covers_and_validates() {
        let m = toy();
        for shards in 1..8 {
            let plan = ShardPlan::balanced(m.columnar(), shards);
            assert_eq!(plan.num_shards(), shards.max(1));
            assert!(plan.validate(m.columnar()).is_empty(), "shards={shards}");
            let total: usize = (0..plan.num_shards()).map(|s| plan.row_range(s).len()).sum();
            assert_eq!(total, m.num_interactions());
        }
    }

    #[test]
    fn sharded_iteration_replays_unsharded_order() {
        let synth = generate(&ScenarioConfig::tiny(), 11);
        let m = &synth.dataset.interactions;
        let unsharded: Vec<_> = m.iter().collect();
        for shards in [1, 2, 3, 5, 8] {
            let sd = ShardedDataset::new(m, &synth.dataset.graph, shards);
            let replayed: Vec<_> =
                (0..sd.num_shards()).flat_map(|s| sd.user_shard(s).iter_rows()).collect();
            assert_eq!(replayed.len(), unsharded.len(), "shards={shards}");
            for (a, b) in unsharded.iter().zip(replayed.iter()) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1, b.1);
                assert!(a.2.to_bits() == b.2.to_bits());
            }
        }
    }

    #[test]
    fn entity_shards_replay_triples() {
        let synth = generate(&ScenarioConfig::tiny(), 11);
        let g = &synth.dataset.graph;
        let unsharded: Vec<_> = g.iter_triples().collect();
        for shards in [1, 2, 4, 7] {
            let sd = ShardedDataset::new(&synth.dataset.interactions, g, shards);
            let replayed: Vec<_> =
                (0..sd.num_shards()).flat_map(|s| sd.entity_shard(s).iter_triples()).collect();
            assert_eq!(replayed, unsharded, "shards={shards}");
        }
    }

    #[test]
    fn validate_flags_user_split() {
        let m = toy();
        let plan = ShardPlan::balanced(m.columnar(), 2);
        let mut bad_rows = plan.row_bounds().to_vec();
        bad_rows[1] = bad_rows[1].wrapping_add(1); // cut through a history
        let bad = ShardPlan::from_raw_parts(m.num_users(), plan.user_bounds().to_vec(), bad_rows);
        assert!(bad
            .validate(m.columnar())
            .iter()
            .any(|v| matches!(v, ShardViolation::UserSplitAcrossShards { index: 1, .. })));
    }

    #[test]
    fn validate_flags_coverage_and_monotonicity() {
        let m = toy();
        let bad = ShardPlan::from_raw_parts(5, vec![1, 5], vec![0, 6]);
        assert!(bad
            .validate(m.columnar())
            .iter()
            .any(|v| matches!(v, ShardViolation::Coverage { first: 1, .. })));
        let bad = ShardPlan::from_raw_parts(5, vec![0, 4, 2, 5], vec![0, 5, 3, 6]);
        assert!(bad
            .validate(m.columnar())
            .iter()
            .any(|v| matches!(v, ShardViolation::NotMonotone { index: 1 })));
    }

    #[test]
    fn more_shards_than_users_yields_empty_shards() {
        let m = InteractionMatrix::from_interactions(
            2,
            2,
            &[Interaction::implicit(UserId(0), ItemId(0))],
        );
        let plan = ShardPlan::balanced(m.columnar(), 6);
        assert!(plan.validate(m.columnar()).is_empty());
        let total: usize = (0..plan.num_shards()).map(|s| plan.row_range(s).len()).sum();
        assert_eq!(total, 1);
    }
}
