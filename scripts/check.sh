#!/usr/bin/env bash
# The full local gate: formatting, lints, tests, and a strict kglint pass
# over the whole synthetic scenario family. CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace lints, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== kglint --strict (all synthetic scenarios)"
cargo run --release -p kgrec-check --bin kglint -- --strict --json-out kglint_bundle.json
test -s kglint_bundle.json || { echo "FAIL: kglint_bundle.json missing"; exit 1; }

echo "== kglint --src --strict (detlint source rules, whole workspace)"
cargo run --release -p kgrec-check --bin kglint -- --src --strict --json-out kglint_src.json
test -s kglint_src.json || { echo "FAIL: kglint_src.json missing"; exit 1; }

echo "== eval_suite fault drill (graceful degradation smoke)"
cargo run --release -p kgrec-bench --bin eval_suite -- --quick --inject-fault \
  | tail -n 3

echo "== crash drill (checkpoint recovery under every storage fault)"
cargo run --release -p kgrec-bench --bin crash_drill -- --dir target/crash_drill
test -s target/crash_drill/MANIFEST || { echo "FAIL: crash-drill MANIFEST missing"; exit 1; }

echo "== serial/parallel equivalence (eval_suite --threads 1 vs 4)"
cargo build --release -p kgrec-bench --bin eval_suite
./target/release/eval_suite --quick --no-timing --threads 1 > /tmp/kgrec_t1.txt
./target/release/eval_suite --quick --no-timing --threads 4 > /tmp/kgrec_t4.txt
diff -u /tmp/kgrec_t1.txt /tmp/kgrec_t4.txt \
  || { echo "FAIL: metrics differ between 1 and 4 threads"; exit 1; }
echo "   identical at 1 and 4 threads"

echo "== benchmark baseline (BENCH_eval.json)"
./target/release/eval_suite --quick --bench --threads 4 > /dev/null
test -s BENCH_eval.json || { echo "FAIL: BENCH_eval.json missing"; exit 1; }

echo "== kernel microbenchmarks + regression gate (BENCH_kernels.json vs baseline)"
# No pipe into `head` here: closing the reader early would SIGPIPE the
# printing binary and fail the gate under `pipefail`. The gate fails on
# any kernel >20% above the committed baseline; refresh the baseline
# only for intentional kernel changes:
#   kernel_bench --quick --out BENCH_kernels.baseline.json
cargo run --release -p kgrec-bench --bin kernel_bench -- --quick \
  --baseline BENCH_kernels.baseline.json > /dev/null
test -s BENCH_kernels.json || { echo "FAIL: BENCH_kernels.json missing"; exit 1; }

echo "== scale bench (streaming generation, sharding, ingest, memory budget)"
# Every push runs the 20k-user smoke size; the full 1M-user / 10M-row
# drill runs behind KGREC_SCALE_FULL=1 (CI's nightly-style dispatch job).
# Both apply the same gates: kglint + layout validation, raw-AUC > 0.5,
# warm start from checkpoint after ingest, peak RSS within budget.
if [ "${KGREC_SCALE_FULL:-0}" = "1" ]; then
  cargo run --release -p kgrec-bench --bin scale_bench -- --full --threads 4 --out BENCH_scale.json
else
  cargo run --release -p kgrec-bench --bin scale_bench -- --threads 4 --out BENCH_scale.json
fi
test -s BENCH_scale.json || { echo "FAIL: BENCH_scale.json missing"; exit 1; }

echo "== serve bench (two-stage pipeline, cache, reload drill, p99 budget)"
# Every push replays smoke traffic (30k requests, 20k users) with a hard
# p99 latency budget baked into the binary (exit 2 on breach). The full
# 1M-user replay runs behind KGREC_SERVE_FULL=1 next to the scale drill.
# Gates: checksums identical across uncached/cached phases, hot reload
# accepts a good generation and degrades on a poisoned one, warm cache
# beats the uncached pipeline at p50.
if [ "${KGREC_SERVE_FULL:-0}" = "1" ]; then
  cargo run --release -p kgrec-bench --bin serve_bench -- --full --threads 4 --out BENCH_serve.json
else
  cargo run --release -p kgrec-bench --bin serve_bench -- --threads 4 --out BENCH_serve.json
fi
test -s BENCH_serve.json || { echo "FAIL: BENCH_serve.json missing"; exit 1; }

echo "OK: all checks passed"
