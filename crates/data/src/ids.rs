//! User and item identifier newtypes (survey Table 2: `u_i`, `v_j`).

/// Identifier of a user `u_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

/// Identifier of an item `v_j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl UserId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl std::fmt::Display for ItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_display() {
        assert_eq!(UserId(3).index(), 3);
        assert_eq!(ItemId(9).index(), 9);
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(ItemId(9).to_string(), "v9");
    }
}
