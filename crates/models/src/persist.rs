//! Shared section encoders/decoders for recommender persistence.
//!
//! Unlike the KGE crate's helpers (where a model's shape is fixed by its
//! constructor), the baselines here learn their shape from the dataset at
//! `fit` time — an unfitted [`kgrec_linalg::EmbeddingTable`] is empty. The
//! decoders therefore accept any stored shape into an *unfitted* target and
//! validate strictly against a fitted one, which is what lets the training
//! supervisor warm-start a freshly constructed model from a checkpoint.

use kgrec_linalg::EmbeddingTable;
use kgrec_store::{Section, SnapshotReader, StoreError};

/// Encodes an embedding table as `rows (u64) | dim (u64) | data (f32 LE)`.
pub(crate) fn table_section(table: &EmbeddingTable) -> Section {
    let mut s = Section::new();
    s.put_u64(table.len() as u64);
    s.put_u64(table.dim() as u64);
    s.put_f32s(table.data());
    s
}

/// Decodes a table section into `(rows, dim, data)`.
///
/// When `live` is fitted (non-empty), the stored shape must match it; an
/// unfitted target accepts whatever shape the snapshot recorded.
pub(crate) fn read_table(
    reader: &SnapshotReader,
    name: &str,
    live: &EmbeddingTable,
) -> Result<(usize, usize, Vec<f32>), StoreError> {
    let mut c = reader.section(name)?;
    let rows = c.take_u64()? as usize;
    let dim = c.take_u64()? as usize;
    if !live.is_empty() && (rows != live.len() || dim != live.dim()) {
        return Err(StoreError::ShapeMismatch {
            section: name.to_string(),
            detail: format!("stored {rows}×{dim}, live {}×{}", live.len(), live.dim()),
        });
    }
    let data = c.take_f32s(rows.saturating_mul(dim))?;
    Ok((rows, dim, data))
}

/// Builds an embedding table of the given shape from decoded data.
pub(crate) fn table_from(rows: usize, dim: usize, data: &[f32]) -> EmbeddingTable {
    let mut table = EmbeddingTable::zeros(rows, dim.max(1));
    if dim > 0 {
        table.data_mut().copy_from_slice(data);
    }
    table
}

/// Encodes a plain `f32` vector as `len (u64) | data (f32 LE)`.
pub(crate) fn vec_section(values: &[f32]) -> Section {
    let mut s = Section::new();
    s.put_u64(values.len() as u64);
    s.put_f32s(values);
    s
}

/// Decodes a vector section. Same leniency rule as [`read_table`]: an
/// empty (unfitted) `live` accepts any stored length, a fitted one must
/// match.
pub(crate) fn read_vec(
    reader: &SnapshotReader,
    name: &str,
    live: &[f32],
) -> Result<Vec<f32>, StoreError> {
    let mut c = reader.section(name)?;
    let n = c.take_u64()? as usize;
    if !live.is_empty() && n != live.len() {
        return Err(StoreError::ShapeMismatch {
            section: name.to_string(),
            detail: format!("stored {n}, live {}", live.len()),
        });
    }
    c.take_f32s(n)
}
