//! RCF-lite (Xin et al. 2019): relational collaborative filtering.
//!
//! Items are connected by typed relations (shared genre, shared director,
//! …). The user's preference for a target item combines the direct match
//! `uᵀv_i` with a *relational context*: history items connected to the
//! target, weighted by the user's relation-**type** attention
//! `α_r = softmax(uᵀ·r)`. The recommendation objective is trained jointly
//! with a DistMult loss over the item KG (survey Eq. 9's multi-task
//! pattern), sharing the item/entity embedding table.
//!
//! Simplification vs. the paper: the second (relation-*value*) attention
//! level is folded into the type level — shared-value counts scale the
//! type weight — which keeps the two-level structure's effect (users
//! weight relation semantics differently) while halving the parameter
//! surface; see `DESIGN.md` §4.

use crate::common::{sample_observed, taxonomy_of};
use kgrec_core::{CoreError, Recommender, Taxonomy, TrainContext};
use kgrec_data::negative::sample_negative;
use kgrec_data::{ItemId, UserId};
use kgrec_graph::{EntityId, RelationId};
use kgrec_kge::trainer::corrupt;
use kgrec_linalg::{vector, EmbeddingTable};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// RCF-lite hyper-parameters.
#[derive(Debug, Clone)]
pub struct RcfConfig {
    /// Latent dimension.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularization.
    pub l2: f32,
    /// Weight of the DistMult KG task.
    pub kg_weight: f32,
    /// Maximum history items considered per prediction.
    pub max_history: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RcfConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            epochs: 25,
            learning_rate: 0.05,
            l2: 1e-5,
            kg_weight: 0.5,
            max_history: 30,
            seed: 107,
        }
    }
}

/// The RCF-lite model.
#[derive(Debug)]
pub struct Rcf {
    /// Hyper-parameters.
    pub config: RcfConfig,
    users: EmbeddingTable,
    /// Shared item/entity table (items are their aligned entity rows).
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    alignment: Vec<EntityId>,
    /// Per item: sorted `(relation, value-entity)` attribute set.
    item_attrs: Vec<Vec<(RelationId, EntityId)>>,
    histories: Vec<Vec<ItemId>>,
    num_relations: usize,
}

impl Rcf {
    /// Creates an unfitted model.
    pub fn new(config: RcfConfig) -> Self {
        Self {
            config,
            users: EmbeddingTable::zeros(0, 1),
            entities: EmbeddingTable::zeros(0, 1),
            relations: EmbeddingTable::zeros(0, 1),
            alignment: Vec::new(),
            item_attrs: Vec::new(),
            histories: Vec::new(),
            num_relations: 0,
        }
    }

    /// Creates a model with default hyper-parameters.
    pub fn default_config() -> Self {
        Self::new(RcfConfig::default())
    }

    /// Typed connection strengths between two items: for each relation,
    /// the number of shared attribute values.
    fn connections(&self, a: ItemId, b: ItemId) -> Vec<(RelationId, f32)> {
        let (sa, sb) = (&self.item_attrs[a.index()], &self.item_attrs[b.index()]);
        let mut out: Vec<(RelationId, f32)> = Vec::new();
        let mut i = 0;
        let mut j = 0;
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    match out.iter_mut().find(|(r, _)| *r == sa[i].0) {
                        Some((_, c)) => *c += 1.0,
                        None => out.push((sa[i].0, 1.0)),
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Forward pass: `(z, relational parts for backward)`.
    ///
    /// `z = uᵀv_i + Σ_j w_j·(v_jᵀ v_i)` with
    /// `w_j = Σ_r α_r(u) · count_r(i,j) / |hist|`.
    fn forward(&self, user: UserId, item: ItemId) -> (f32, Vec<(ItemId, f32)>, Vec<f32>) {
        let uvec = self.users.row(user.index());
        let vi = self.entities.row(self.alignment[item.index()].index());
        // Relation-type attention α(u).
        let mut alpha: Vec<f32> =
            (0..self.num_relations).map(|r| vector::dot(uvec, self.relations.row(r))).collect();
        vector::softmax_in_place(&mut alpha);
        let hist = &self.histories[user.index()];
        let denom = hist.len().max(1) as f32;
        let mut parts: Vec<(ItemId, f32)> = Vec::new();
        let mut z = vector::dot(uvec, vi);
        for &j in hist.iter().take(self.config.max_history) {
            if j == item {
                continue;
            }
            let conn = self.connections(item, j);
            if conn.is_empty() {
                continue;
            }
            let w: f32 = conn.iter().map(|&(r, c)| alpha[r.index()] * c).sum::<f32>() / denom;
            let vj = self.entities.row(self.alignment[j.index()].index());
            z += w * vector::dot(vj, vi);
            parts.push((j, w));
        }
        (z, parts, alpha)
    }

    /// One BCE step on the recommendation task.
    fn rec_step(&mut self, user: UserId, item: ItemId, label: f32, lr: f32) {
        let (z, parts, alpha) = self.forward(user, item);
        let dz = vector::sigmoid(z) - label;
        let l2 = self.config.l2;
        let ii = self.alignment[item.index()].index();
        let uvec = self.users.row(user.index()).to_vec();
        let vi = self.entities.row(ii).to_vec();
        // dz/du direct + through attention (treated as constant within a
        // step for the history weights, matching the paper's stop-grad on
        // the normalizer; attention still learns via the dedicated term
        // below).
        let mut du: Vec<f32> = vi.iter().map(|x| dz * x).collect();
        let mut dvi: Vec<f32> = uvec.iter().map(|x| dz * x).collect();
        let denom = self.histories[user.index()].len().max(1) as f32;
        for &(j, w) in &parts {
            let ji = self.alignment[j.index()].index();
            let vj = self.entities.row(ji).to_vec();
            // z += w · vjᵀvi.
            for k in 0..vi.len() {
                dvi[k] += dz * w * vj[k];
            }
            let dvj: Vec<f32> = vi.iter().map(|x| dz * w * x).collect();
            self.entities.add_to_row(ji, -lr, &dvj);
            // Attention learning: dL/dα_r = dz · count_r · (vjᵀvi)/denom.
            let s = vector::dot(&vj, &vi);
            for (r, c) in self.connections(item, j) {
                let dalpha = dz * c * s / denom;
                // Through softmax: affects u and relation embeddings.
                let ds = dalpha * alpha[r.index()] * (1.0 - alpha[r.index()]);
                let remb = self.relations.row(r.index()).to_vec();
                vector::axpy(ds, &remb, &mut du);
                let scaled: Vec<f32> = uvec.iter().map(|x| ds * x).collect();
                self.relations.add_to_row(r.index(), -lr, &scaled);
            }
        }
        for (g, p) in du.iter_mut().zip(uvec.iter()) {
            *g += l2 * p;
        }
        self.users.add_to_row(user.index(), -lr, &du);
        self.entities.add_to_row(ii, -lr, &dvi);
    }

    /// One DistMult step on a labeled KG triple (the multi-task side).
    fn kg_step(&mut self, t: kgrec_graph::Triple, label: f32, lr: f32) {
        let w = self.config.kg_weight;
        let hv = self.entities.row(t.head.index()).to_vec();
        let rv = self.relations.row(t.rel.index()).to_vec();
        let tv = self.entities.row(t.tail.index()).to_vec();
        let s: f32 = (0..hv.len()).map(|i| hv[i] * rv[i] * tv[i]).sum();
        let dz = (vector::sigmoid(s) - label) * w;
        let gh: Vec<f32> = (0..hv.len()).map(|i| dz * rv[i] * tv[i]).collect();
        let gr: Vec<f32> = (0..hv.len()).map(|i| dz * hv[i] * tv[i]).collect();
        let gt: Vec<f32> = (0..hv.len()).map(|i| dz * hv[i] * rv[i]).collect();
        self.entities.add_to_row(t.head.index(), -lr, &gh);
        self.relations.add_to_row(t.rel.index(), -lr, &gr);
        self.entities.add_to_row(t.tail.index(), -lr, &gt);
    }
}

impl Recommender for Rcf {
    fn name(&self) -> &'static str {
        "RCF"
    }

    fn taxonomy(&self) -> Taxonomy {
        taxonomy_of("RCF")
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let dim = self.config.dim;
        let graph = &ctx.dataset.graph;
        let scale = 1.0 / (dim as f32).sqrt();
        self.users = EmbeddingTable::uniform(&mut rng, ctx.num_users(), dim, scale);
        self.entities = EmbeddingTable::uniform(&mut rng, graph.num_entities(), dim, scale);
        self.num_relations = graph.num_relations().max(1);
        self.relations = EmbeddingTable::uniform(&mut rng, self.num_relations, dim, scale);
        self.alignment = ctx.dataset.item_entities.clone();
        // Attribute sets per item (base relations only — inverses carry
        // no extra information for shared-attribute connections).
        let base = graph.num_base_relations();
        self.item_attrs = self
            .alignment
            .iter()
            .map(|&e| {
                let mut set: Vec<(RelationId, EntityId)> =
                    graph.neighbors(e).filter(|&(r, _)| r.index() < base).collect();
                set.sort();
                set
            })
            .collect();
        self.histories =
            (0..ctx.num_users()).map(|u| ctx.train.items_of(UserId(u as u32)).to_vec()).collect();
        let lr = self.config.learning_rate;
        let num_triples = graph.num_triples();
        for _ in 0..self.config.epochs {
            for _ in 0..ctx.train.num_interactions() {
                let Some((u, pos)) = sample_observed(ctx.train, &mut rng) else { break };
                self.rec_step(u, pos, 1.0, lr);
                if let Some(neg) = sample_negative(ctx.train, u, &mut rng) {
                    self.rec_step(u, neg, 0.0, lr);
                }
                // Joint KG task, one positive + one corrupted triple.
                if num_triples > 0 {
                    let pos_t = graph.triple_at(rng.gen_range(0..num_triples));
                    self.kg_step(pos_t, 1.0, lr);
                    let neg_t = corrupt(graph, pos_t, &mut rng);
                    self.kg_step(neg_t, 0.0, lr);
                }
            }
        }
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.forward(user, item).0
    }

    fn num_items(&self) -> usize {
        self.alignment.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::protocol::evaluate_ctr;
    use kgrec_data::negative::labeled_eval_set;
    use kgrec_data::split::ratio_split;
    use kgrec_data::synth::{generate, ScenarioConfig};

    #[test]
    fn beats_chance_on_planted_data() {
        let synth = generate(&ScenarioConfig::tiny(), 42);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = Rcf::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        let rep = evaluate_ctr(&m, &pairs);
        assert!(rep.auc > 0.6, "AUC {}", rep.auc);
    }

    #[test]
    fn connections_count_shared_attributes() {
        let synth = generate(&ScenarioConfig::tiny(), 3);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = Rcf::new(RcfConfig { epochs: 1, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        // Connections are symmetric and nonnegative.
        for a in 0..10u32 {
            for b in 0..10u32 {
                let ab = m.connections(ItemId(a), ItemId(b));
                let ba = m.connections(ItemId(b), ItemId(a));
                let sum_ab: f32 = ab.iter().map(|&(_, c)| c).sum();
                let sum_ba: f32 = ba.iter().map(|&(_, c)| c).sum();
                assert_eq!(sum_ab, sum_ba);
            }
        }
        // An item shares all its attributes with itself.
        let self_conn = m.connections(ItemId(0), ItemId(0));
        let total: f32 = self_conn.iter().map(|&(_, c)| c).sum();
        assert_eq!(total as usize, m.item_attrs[0].len());
    }

    #[test]
    fn attention_is_distribution() {
        let synth = generate(&ScenarioConfig::tiny(), 4);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = Rcf::new(RcfConfig { epochs: 1, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let (_, _, alpha) = m.forward(UserId(0), ItemId(0));
        let s: f32 = alpha.iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }
}
