//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Table-driven with the table built in a `const fn`, so there is no lazy
//! initialization and no runtime cost beyond the lookup itself. This is the
//! same CRC gzip/zlib/PNG use, which keeps the snapshot format inspectable
//! with standard tooling.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// CRC32 of `bytes` in one shot.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    !update(!0, bytes)
}

/// Folds `bytes` into a running (pre-inverted) CRC state.
///
/// Start from `!0`, fold in chunks, finish with a final `!`. [`crc32`] does
/// exactly this for the single-buffer case.
#[must_use]
pub fn update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        let idx = (state ^ u32::from(b)) & 0xFF;
        state = (state >> 8) ^ TABLE[idx as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        // The canonical CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut state = !0u32;
        for chunk in data.chunks(7) {
            state = update(state, chunk);
        }
        assert_eq!(!state, crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0xA5u8; 64];
        let before = crc32(&data);
        data[33] ^= 0x10;
        assert_ne!(crc32(&data), before);
    }
}
