//! Machine-readable contents of Table 4 of the survey: datasets per
//! application scenario, with the papers that evaluate on each.
//!
//! The `table4` harness binary in `kgrec-bench` renders this registry in
//! the paper's layout; the `generator` field links each dataset to the
//! synthetic scenario that stands in for it offline (see
//! [`crate::synth`]).

/// Application scenario (the left column of Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Movie recommendation.
    Movie,
    /// Book recommendation.
    Book,
    /// News recommendation.
    News,
    /// Product (e-commerce) recommendation.
    Product,
    /// Point-of-interest recommendation.
    Poi,
    /// Music recommendation.
    Music,
    /// Social platform recommendation.
    SocialPlatform,
}

impl Scenario {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Movie => "Movie",
            Scenario::Book => "Book",
            Scenario::News => "News",
            Scenario::Product => "Product",
            Scenario::Poi => "POI",
            Scenario::Music => "Music",
            Scenario::SocialPlatform => "Social Platform",
        }
    }
}

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct DatasetEntry {
    /// Scenario the dataset belongs to.
    pub scenario: Scenario,
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Citation keys of the surveyed papers evaluating on it (reference
    /// numbers of the survey bibliography).
    pub papers: &'static [u32],
    /// The synthetic scenario preset simulating this dataset offline, if
    /// one exists (name of a `ScenarioConfig` constructor).
    pub generator: Option<&'static str>,
}

/// The full Table 4 registry, in the paper's row order.
pub fn table4() -> Vec<DatasetEntry> {
    use Scenario::*;
    vec![
        DatasetEntry {
            scenario: Movie,
            name: "MovieLens-100K",
            papers: &[1, 73, 75, 76, 77, 80],
            generator: Some("movielens_100k_like"),
        },
        DatasetEntry {
            scenario: Movie,
            name: "MovieLens-1M",
            papers: &[2, 14, 44, 45, 66, 70, 81, 83, 87, 92, 93, 95, 96],
            generator: Some("movielens_1m_like"),
        },
        DatasetEntry {
            scenario: Movie,
            name: "MovieLens-20M",
            papers: &[44, 86, 88, 89, 91, 93],
            generator: Some("movielens_1m_like"),
        },
        DatasetEntry {
            scenario: Movie,
            name: "DoubanMovie",
            papers: &[69, 79, 82],
            generator: None,
        },
        DatasetEntry { scenario: Book, name: "DBbook2014", papers: &[70, 87], generator: None },
        DatasetEntry {
            scenario: Book,
            name: "Book-Crossing",
            papers: &[14, 45, 88, 89, 91, 92, 93, 95],
            generator: Some("book_crossing_like"),
        },
        DatasetEntry {
            scenario: Book,
            name: "Amazon-Book",
            papers: &[44, 90, 93],
            generator: Some("amazon_product_like"),
        },
        DatasetEntry { scenario: Book, name: "IntentBooks", papers: &[2], generator: None },
        DatasetEntry { scenario: Book, name: "DoubanBook", papers: &[82], generator: None },
        DatasetEntry {
            scenario: News,
            name: "Bing-News",
            papers: &[14, 45, 48, 88],
            generator: Some("bing_news_like"),
        },
        DatasetEntry {
            scenario: Product,
            name: "Amazon Product data",
            papers: &[3, 13, 67, 84, 85, 94],
            generator: Some("amazon_product_like"),
        },
        DatasetEntry {
            scenario: Product,
            name: "Alibaba Taobao",
            papers: &[74, 94],
            generator: None,
        },
        DatasetEntry {
            scenario: Poi,
            name: "Yelp challenge",
            papers: &[1, 3, 76, 77, 79, 80, 81, 82, 90, 96],
            generator: Some("yelp_like"),
        },
        DatasetEntry { scenario: Poi, name: "Dianping-Food", papers: &[91], generator: None },
        DatasetEntry { scenario: Poi, name: "CEM", papers: &[71], generator: None },
        DatasetEntry {
            scenario: Music,
            name: "Last.FM",
            papers: &[1, 44, 45, 87, 89, 90, 91, 96],
            generator: Some("lastfm_like"),
        },
        DatasetEntry { scenario: Music, name: "KKBox", papers: &[73, 83], generator: None },
        DatasetEntry {
            scenario: SocialPlatform,
            name: "Weibo",
            papers: &[68],
            generator: Some("weibo_like"),
        },
        DatasetEntry { scenario: SocialPlatform, name: "DBLP", papers: &[78], generator: None },
        DatasetEntry { scenario: SocialPlatform, name: "MeetUp", papers: &[78], generator: None },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_shape() {
        let t = table4();
        assert_eq!(t.len(), 20, "Table 4 has 20 dataset rows");
        // Seven scenarios, as in the paper.
        let mut scenarios: Vec<&str> = t.iter().map(|e| e.scenario.name()).collect();
        scenarios.dedup();
        let unique: std::collections::HashSet<_> = scenarios.iter().collect();
        assert_eq!(unique.len(), 7);
    }

    #[test]
    fn every_entry_has_papers() {
        for e in table4() {
            assert!(!e.papers.is_empty(), "{} has no papers", e.name);
        }
    }

    #[test]
    fn generators_reference_real_presets() {
        use crate::synth::ScenarioConfig;
        for e in table4() {
            if let Some(g) = e.generator {
                // Resolve by name; unknown names are a bug in the registry.
                let cfg = match g {
                    "movielens_100k_like" => ScenarioConfig::movielens_100k_like(),
                    "movielens_1m_like" => ScenarioConfig::movielens_1m_like(),
                    "book_crossing_like" => ScenarioConfig::book_crossing_like(),
                    "lastfm_like" => ScenarioConfig::lastfm_like(),
                    "amazon_product_like" => ScenarioConfig::amazon_product_like(),
                    "yelp_like" => ScenarioConfig::yelp_like(),
                    "bing_news_like" => ScenarioConfig::bing_news_like(),
                    "weibo_like" => ScenarioConfig::weibo_like(),
                    other => panic!("unknown generator {other}"),
                };
                assert!(cfg.num_users > 0);
            }
        }
    }

    #[test]
    fn movielens_1m_paper_list_matches_survey() {
        let t = table4();
        let ml1m = t.iter().find(|e| e.name == "MovieLens-1M").unwrap();
        assert!(ml1m.papers.contains(&14)); // RippleNet
        assert!(ml1m.papers.contains(&2)); // CKE
        assert_eq!(ml1m.papers.len(), 13);
    }
}
