//! The shared KGE model interface.

use kgrec_graph::{EntityId, RelationId, Triple};

/// A trainable knowledge-graph embedding model.
///
/// Scores are oriented so that **higher means more plausible** — the
/// translation-distance models return the negated distance. This keeps
/// ranking code uniform across model families.
///
/// `Send + Sync` is part of the contract: link-prediction evaluation
/// shards test triples across worker threads that score against a shared
/// `&self`. Every backend is a plain embedding-table struct, so the
/// bounds are free.
pub trait KgeModel: Send + Sync {
    /// Embedding dimension `d`.
    fn dim(&self) -> usize;

    /// Number of entities the model was sized for.
    fn num_entities(&self) -> usize;

    /// Number of relations the model was sized for.
    fn num_relations(&self) -> usize;

    /// Plausibility score of the triple (higher = more plausible).
    fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32;

    /// The entity latent vector `e_k`.
    fn entity_embedding(&self, e: EntityId) -> &[f32];

    /// The relation latent vector `r_k`.
    fn relation_embedding(&self, r: RelationId) -> &[f32];

    /// One SGD step on a (positive, negative) triple pair; returns the
    /// pair's loss *before* the update.
    fn train_pair(&mut self, pos: Triple, neg: Triple, lr: f32) -> f32;

    /// Applies per-epoch constraints (norm projections). Default: nothing.
    fn post_epoch(&mut self) {}

    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;
}
