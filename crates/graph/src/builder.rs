//! Incremental construction of [`crate::KnowledgeGraph`]s.
//!
//! The builder interns entity and relation names, assigns dense ids, and
//! (optionally) materializes inverse relations — the surveyed propagation
//! models (RippleNet, KGCN, KGAT) all treat the KG as bidirectional by
//! adding `r⁻¹` edges, so the builder supports that directly.

use crate::graph::KnowledgeGraph;
use crate::ids::{id32, EntityId, EntityTypeId, RelationId, Triple};
use std::collections::HashMap;

/// Builder for [`KnowledgeGraph`].
///
/// ```
/// use kgrec_graph::KgBuilder;
///
/// let mut b = KgBuilder::new();
/// let movie = b.entity_type("movie");
/// let genre = b.entity_type("genre");
/// let avatar = b.entity("Avatar", movie);
/// let scifi = b.entity("Sci-Fi", genre);
/// let has_genre = b.relation("genre");
/// b.triple(avatar, has_genre, scifi);
/// let graph = b.build(true); // materialize inverse relations
/// assert_eq!(graph.num_triples(), 2); // edge + its inverse
/// assert!(graph.contains(avatar, has_genre, scifi));
/// ```
#[derive(Debug, Default)]
pub struct KgBuilder {
    entity_names: Vec<String>,
    entity_types: Vec<EntityTypeId>,
    entity_index: HashMap<String, EntityId>,
    type_names: Vec<String>,
    type_index: HashMap<String, EntityTypeId>,
    relation_names: Vec<String>,
    relation_index: HashMap<String, RelationId>,
    triples: Vec<Triple>,
}

impl KgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an entity type by name, returning its id.
    pub fn entity_type(&mut self, name: &str) -> EntityTypeId {
        if let Some(&id) = self.type_index.get(name) {
            return id;
        }
        let id = EntityTypeId(id32(self.type_names.len()));
        self.type_names.push(name.to_owned());
        self.type_index.insert(name.to_owned(), id);
        id
    }

    /// Interns an entity by name with the given type, returning its id.
    ///
    /// Re-adding an existing name returns the original id; the type of the
    /// first insertion wins (a warning-free, deterministic rule).
    pub fn entity(&mut self, name: &str, ty: EntityTypeId) -> EntityId {
        if let Some(&id) = self.entity_index.get(name) {
            return id;
        }
        let id = EntityId(id32(self.entity_names.len()));
        self.entity_names.push(name.to_owned());
        self.entity_types.push(ty);
        self.entity_index.insert(name.to_owned(), id);
        id
    }

    /// Adds `n` anonymous entities of type `ty` and returns their ids.
    ///
    /// Used by the synthetic dataset generators where names carry no
    /// information; the ids are contiguous.
    pub fn entities_anon(&mut self, prefix: &str, n: usize, ty: EntityTypeId) -> Vec<EntityId> {
        (0..n).map(|i| self.entity(&format!("{prefix}{i}"), ty)).collect()
    }

    /// Interns a relation type by name, returning its id.
    pub fn relation(&mut self, name: &str) -> RelationId {
        if let Some(&id) = self.relation_index.get(name) {
            return id;
        }
        let id = RelationId(id32(self.relation_names.len()));
        self.relation_names.push(name.to_owned());
        self.relation_index.insert(name.to_owned(), id);
        id
    }

    /// Adds one triple. Duplicate triples are kept (multigraph semantics);
    /// deduplication, when needed, happens in `build`.
    pub fn triple(&mut self, head: EntityId, rel: RelationId, tail: EntityId) {
        assert!(head.index() < self.entity_names.len(), "triple: unknown head entity");
        assert!(tail.index() < self.entity_names.len(), "triple: unknown tail entity");
        assert!(rel.index() < self.relation_names.len(), "triple: unknown relation");
        self.triples.push(Triple::new(head, rel, tail));
    }

    /// Looks up an entity id by name.
    pub fn lookup_entity(&self, name: &str) -> Option<EntityId> {
        self.entity_index.get(name).copied()
    }

    /// Looks up a relation id by name.
    pub fn lookup_relation(&self, name: &str) -> Option<RelationId> {
        self.relation_index.get(name).copied()
    }

    /// Number of entities added so far.
    pub fn num_entities(&self) -> usize {
        self.entity_names.len()
    }

    /// Number of triples added so far.
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// Finalizes the graph. When `add_inverse` is true, every relation `r`
    /// gets a paired relation `r⁻¹` (named `"<r>_inv"`) and each triple a
    /// mirrored edge, making the graph traversable in both directions while
    /// keeping relation semantics distinguishable.
    pub fn build(mut self, add_inverse: bool) -> KnowledgeGraph {
        // Deduplicate identical triples for deterministic CSR layout.
        self.triples.sort_by_key(|t| (t.head.0, t.rel.0, t.tail.0));
        self.triples.dedup();
        let base_relations = self.relation_names.len();
        let mut triples = self.triples.clone();
        let mut relation_names = self.relation_names.clone();
        if add_inverse {
            relation_names.reserve(base_relations);
            for i in 0..base_relations {
                relation_names.push(format!("{}_inv", self.relation_names[i]));
            }
            triples.reserve(self.triples.len());
            for t in &self.triples {
                triples.push(Triple::new(
                    t.tail,
                    RelationId(id32(t.rel.0 as usize + base_relations)),
                    t.head,
                ));
            }
        }
        KnowledgeGraph::from_parts(
            self.entity_names,
            self.entity_types,
            self.type_names,
            relation_names,
            base_relations,
            triples,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut b = KgBuilder::new();
        let ty = b.entity_type("movie");
        let e1 = b.entity("Avatar", ty);
        let e2 = b.entity("Avatar", ty);
        assert_eq!(e1, e2);
        let r1 = b.relation("genre");
        let r2 = b.relation("genre");
        assert_eq!(r1, r2);
    }

    #[test]
    fn build_dedups_triples() {
        let mut b = KgBuilder::new();
        let ty = b.entity_type("t");
        let a = b.entity("a", ty);
        let c = b.entity("c", ty);
        let r = b.relation("r");
        b.triple(a, r, c);
        b.triple(a, r, c);
        let g = b.build(false);
        assert_eq!(g.num_triples(), 1);
    }

    #[test]
    fn inverse_relations_materialized() {
        let mut b = KgBuilder::new();
        let ty = b.entity_type("t");
        let a = b.entity("a", ty);
        let c = b.entity("c", ty);
        let r = b.relation("r");
        b.triple(a, r, c);
        let g = b.build(true);
        assert_eq!(g.num_relations(), 2);
        assert_eq!(g.num_triples(), 2);
        assert_eq!(g.relation_name(RelationId(1)), "r_inv");
        // Edge is traversable from c back to a.
        let nbrs: Vec<_> = g.neighbors(c).collect();
        assert_eq!(nbrs, vec![(RelationId(1), a)]);
    }

    #[test]
    #[should_panic(expected = "unknown head entity")]
    fn triple_validates_entities() {
        let mut b = KgBuilder::new();
        let r = b.relation("r");
        b.triple(EntityId(0), r, EntityId(1));
    }

    #[test]
    fn anon_entities_contiguous() {
        let mut b = KgBuilder::new();
        let ty = b.entity_type("user");
        let ids = b.entities_anon("u", 3, ty);
        assert_eq!(ids, vec![EntityId(0), EntityId(1), EntityId(2)]);
    }
}
