//! Property tests for the parallel evaluation engine: the `_par`
//! protocols and the worker pool itself must be bit-identical to their
//! serial counterparts for *every* thread count and *every* input —
//! including inputs engineered to produce score ties.

use kgrec_bench::par;
use kgrec_core::error::CoreError;
use kgrec_core::protocol::{evaluate_ctr, evaluate_ctr_par, evaluate_topk, evaluate_topk_par};
use kgrec_core::recommender::{Recommender, TrainContext};
use kgrec_core::taxonomy::{Taxonomy, UsageType};
use kgrec_data::interactions::{Interaction, InteractionMatrix};
use kgrec_data::negative::LabeledPair;
use kgrec_data::{ItemId, UserId};
use proptest::prelude::*;

/// Thread counts the equivalence claims are checked at: serial, even
/// splits, and a prime that never divides the work evenly.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// SplitMix64 finalizer — a pure function of (user, item), so the model
/// is trivially `Sync` and every worker computes identical scores.
fn mix(user: u32, item: u32) -> u64 {
    let mut z = ((u64::from(user) << 32) | u64::from(item)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A stateless scorer over hashed (user, item) pairs. `tie_levels > 1`
/// quantizes scores into that many buckets, forcing massive ties so the
/// ranking tie-break (smaller item id first) is actually exercised.
struct MixModel {
    items: usize,
    tie_levels: u32,
}

impl Recommender for MixModel {
    fn name(&self) -> &'static str {
        "MixModel"
    }
    fn taxonomy(&self) -> Taxonomy {
        Taxonomy {
            method: "MixModel",
            venue: "none",
            year: 2026,
            usage: UsageType::EmbeddingBased,
            techniques: &[],
            reference: 0,
        }
    }
    fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        Ok(())
    }
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        let h = mix(user.0, item.0);
        if self.tie_levels <= 1 {
            (h % 4096) as f32 / 4096.0
        } else {
            (h % u64::from(self.tie_levels)) as f32
        }
    }
    fn num_items(&self) -> usize {
        self.items
    }
}

fn arb_pairs() -> impl Strategy<Value = Vec<LabeledPair>> {
    prop::collection::vec((0u32..40, 0u32..80, any::<bool>()), 1..200).prop_map(|v| {
        v.into_iter()
            .map(|(u, i, positive)| LabeledPair { user: UserId(u), item: ItemId(i), positive })
            .collect()
    })
}

/// Random train/test interaction matrices over a shared (users, items)
/// shape; every third unique interaction lands in the test split.
fn arb_split() -> impl Strategy<Value = (InteractionMatrix, InteractionMatrix, usize)> {
    (2usize..16, 6usize..40)
        .prop_flat_map(|(nu, ni)| {
            let interactions = prop::collection::btree_set((0..nu as u32, 0..ni as u32), 1..120);
            (Just(nu), Just(ni), interactions)
        })
        .prop_map(|(nu, ni, set)| {
            let (mut train, mut test) = (Vec::new(), Vec::new());
            for (idx, (u, i)) in set.into_iter().enumerate() {
                let interaction = Interaction::implicit(UserId(u), ItemId(i));
                if idx % 3 == 0 {
                    test.push(interaction);
                } else {
                    train.push(interaction);
                }
            }
            (
                InteractionMatrix::from_interactions(nu, ni, &train),
                InteractionMatrix::from_interactions(nu, ni, &test),
                ni,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ctr_report_is_thread_count_invariant(pairs in arb_pairs(), ties in 1u32..5) {
        let model = MixModel { items: 80, tie_levels: ties };
        let serial = evaluate_ctr(&model, &pairs);
        for threads in THREAD_COUNTS {
            // `assert_eq!` on the report compares AUC/accuracy as exact
            // f64 bits — the contract is bit-identity, not tolerance.
            prop_assert_eq!(evaluate_ctr_par(&model, &pairs, threads), serial);
        }
    }

    #[test]
    fn topk_report_is_thread_count_invariant(
        (train, test, items) in arb_split(),
        ties in 1u32..5,
    ) {
        let model = MixModel { items, tie_levels: ties };
        let ks = [1usize, 3, 7];
        let serial = evaluate_topk(&model, &train, &test, &ks);
        for threads in THREAD_COUNTS {
            prop_assert_eq!(
                evaluate_topk_par(&model, &train, &test, &ks, threads),
                serial.clone()
            );
        }
    }

    #[test]
    fn tied_scores_break_toward_smaller_item_id(
        (train, _test, items) in arb_split(),
        ties in 2u32..4,
    ) {
        // With 2–3 score levels almost every adjacent pair ties; the
        // ranking must still be the same total order everywhere.
        let model = MixModel { items, tie_levels: ties };
        for u in 0..train.num_users() as u32 {
            let recs = model.recommend(UserId(u), items, &[]);
            for w in recs.windows(2) {
                let ((a_item, a_score), (b_item, b_score)) = (w[0], w[1]);
                prop_assert!(
                    a_score > b_score || (a_score == b_score && a_item.0 < b_item.0),
                    "user {}: ({:?}, {}) before ({:?}, {}) breaks the tie order",
                    u, a_item, a_score, b_item, b_score
                );
            }
        }
    }

    #[test]
    fn par_map_is_an_order_preserving_identity(
        items in prop::collection::vec(-1.0e6f64..1.0e6, 0..300),
        threads in 1usize..9,
    ) {
        let indexed = par::par_map(&items, threads, |i, &x| (i, x));
        let expected: Vec<(usize, f64)> = items.iter().copied().enumerate().collect();
        prop_assert_eq!(indexed, expected);
    }
}
