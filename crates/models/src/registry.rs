//! The model zoo: every implemented recommender with default
//! hyper-parameters, grouped by the survey's taxonomy.
//!
//! The `table3` harness binary and the evaluation suite enumerate models
//! through this registry, so adding a model here is all that is needed
//! for it to appear in the reproduced tables.

use crate::baselines::{BprMf, ItemKnn, MostPop};
use crate::embedding::{Cfkg, Cke, DknLite, Entity2Rec, Ktup, Mkr, Rcf, Shine};
use crate::pathbased::{
    FmgLite, HeRec, HeteCf, HeteMf, HeteRec, HeteRecP, McRecLite, PgprLite, ProPpr, Rkge, SemRec,
};
use crate::unified::{Aggregator, AkupmLite, Kgat, Kgcn, KgcnConfig, RippleNet};
use kgrec_core::Recommender;

/// The KG-free baselines.
pub fn baseline_models() -> Vec<Box<dyn Recommender>> {
    vec![Box::new(MostPop::new()), Box::new(ItemKnn::new(50)), Box::new(BprMf::default_config())]
}

/// The embedding-based methods (survey Section 4.1).
///
/// `with_text` controls whether DKN (which requires per-item token lists)
/// is included.
pub fn embedding_models(with_text: bool) -> Vec<Box<dyn Recommender>> {
    let mut v: Vec<Box<dyn Recommender>> = vec![
        Box::new(Cke::default_config()),
        Box::new(Cfkg::default_config()),
        Box::new(Mkr::default_config()),
        Box::new(Ktup::default_config()),
        Box::new(Entity2Rec::default_config()),
        Box::new(Rcf::default_config()),
        Box::new(Shine::default_config()),
    ];
    if with_text {
        v.push(Box::new(DknLite::default_config()));
    }
    v
}

/// The path-based methods (survey Section 4.2).
pub fn pathbased_models() -> Vec<Box<dyn Recommender>> {
    vec![
        Box::new(HeteMf::default_config()),
        Box::new(HeteCf::default_config()),
        Box::new(HeteRec::default_config()),
        Box::new(HeteRecP::default_config()),
        Box::new(HeRec::default_config()),
        Box::new(SemRec::default_config()),
        Box::new(ProPpr::default_config()),
        Box::new(FmgLite::default_config()),
        Box::new(Rkge::default_config()),
        Box::new(McRecLite::default_config()),
        Box::new(PgprLite::default_config()),
    ]
}

/// The unified methods (survey Section 4.3).
pub fn unified_models() -> Vec<Box<dyn Recommender>> {
    vec![
        Box::new(RippleNet::default_config()),
        Box::new(Kgcn::default_config()),
        Box::new(Kgcn::with_label_smoothness(0.5)),
        Box::new(Kgat::default_config()),
        Box::new(AkupmLite::default_config()),
    ]
}

/// One KGCN per aggregator — the ablation set of survey Eqs. 30–33.
pub fn kgcn_aggregator_ablation() -> Vec<Box<dyn Recommender>> {
    [Aggregator::Sum, Aggregator::Concat, Aggregator::Neighbor, Aggregator::BiInteraction]
        .into_iter()
        .map(|aggregator| {
            Box::new(Kgcn::new(KgcnConfig { aggregator, ..Default::default() }))
                as Box<dyn Recommender>
        })
        .collect()
}

/// Every implemented model, baselines first.
pub fn all_models(with_text: bool) -> Vec<Box<dyn Recommender>> {
    let mut v = baseline_models();
    v.extend(embedding_models(with_text));
    v.extend(pathbased_models());
    v.extend(unified_models());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::UsageType;

    #[test]
    fn every_taxonomy_family_represented() {
        let models = all_models(true);
        let mut emb = 0;
        let mut path = 0;
        let mut uni = 0;
        for m in &models {
            match m.taxonomy().usage {
                UsageType::EmbeddingBased => emb += 1,
                UsageType::PathBased => path += 1,
                UsageType::Unified => uni += 1,
            }
        }
        // Baselines carry the EmbeddingBased stub; subtract them.
        assert!(emb - 3 >= 6, "embedding-based count {emb}");
        assert_eq!(path, 11);
        assert_eq!(uni, 5);
    }

    #[test]
    fn names_are_unique() {
        let models = all_models(true);
        let mut names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate model names");
    }

    #[test]
    fn implemented_methods_appear_in_table3() {
        use kgrec_core::taxonomy::table3;
        let table: Vec<&str> = table3().iter().map(|t| t.method).collect();
        for m in all_models(true) {
            let t = m.taxonomy();
            if t.venue == "baseline" {
                continue;
            }
            assert!(table.contains(&t.method), "{} missing from Table 3", t.method);
        }
    }

    #[test]
    fn ablation_covers_all_aggregators() {
        assert_eq!(kgcn_aggregator_ablation().len(), 4);
    }
}
