//! KG-free baselines the surveyed papers compare against.

mod bprmf;
mod itemknn;
mod mostpop;

pub use bprmf::{BprMf, BprMfConfig};
pub use itemknn::ItemKnn;
pub use mostpop::MostPop;
