//! Harness utilities shared by the table/figure binaries and the
//! evaluation suite.
//!
//! The binaries in `src/bin/` regenerate the survey's tables and figure:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — commonly used knowledge graphs |
//! | `table3` | Table 3 — the method taxonomy (full literature + implemented subset) |
//! | `table4` | Table 4 — datasets per scenario |
//! | `figure1` | Figure 1 — the explainable movie-recommendation example |
//! | `eval_suite` | the survey's qualitative claims, measured |
//! | `ablation` | design-choice ablations (KGCN aggregators, RippleNet hops) |
//! | `kernel_bench` | numeric hot-path kernel timings → `BENCH_kernels.json` |
//!
//! Evaluation is parallel by default: models shard across the
//! deterministic worker pool ([`par`], re-exported from
//! `kgrec_linalg::par`), with `--threads N` / `KGREC_THREADS` selecting
//! the worker count and metrics bit-identical at any setting.
//! `eval_suite --bench` additionally records the perf trajectory to
//! `BENCH_eval.json` via [`bench_report`], and `kernel_bench` records
//! kernel-level timings to `BENCH_kernels.json` via [`kernel_report`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench_report;
pub mod doubles;
pub mod kernel_report;
pub mod storage_drill;

pub use kgrec_linalg::par;

use kgrec_check::rules::RegistryConsistency;
use kgrec_check::{default_model_hyperparams, CheckBundle, CheckReport};
use kgrec_core::protocol::{evaluate_ctr_par, evaluate_topk_par};
use kgrec_core::{
    panic_message, supervise_fit_checkpointed, FitOutcome, FitStatus, Recommender,
    SupervisorConfig, TrainContext,
};
use kgrec_data::negative::labeled_eval_set;
use kgrec_data::split::{ratio_split, Split};
use kgrec_data::synth::{generate, ScenarioConfig, SyntheticDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Parses a `--threads N` / `--threads=N` flag from a raw argument list.
///
/// Returns `None` when absent (callers fall through to
/// [`par::resolve_threads`]'s env/auto policy).
///
/// # Panics
/// Panics on a malformed or zero value — a typo'd thread count should
/// kill the run, not silently serialize it.
pub fn threads_from_args(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let raw = if a == "--threads" {
            it.next().cloned()
        } else if let Some(v) = a.strip_prefix("--threads=") {
            Some(v.to_owned())
        } else {
            continue;
        };
        let raw = raw.unwrap_or_else(|| panic!("--threads needs a value (e.g. --threads 4)"));
        match raw.parse::<usize>() {
            Ok(n) if n > 0 => return Some(n),
            _ => panic!("invalid --threads value {raw:?} (want a positive integer)"),
        }
    }
    None
}

/// Parses a `--checkpoint-dir DIR` / `--checkpoint-dir=DIR` flag from a
/// raw argument list. Returns `None` when absent (checkpointing off).
///
/// # Panics
/// Panics when the flag is present without a value.
pub fn checkpoint_dir_from_args(args: &[String]) -> Option<std::path::PathBuf> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let raw = if a == "--checkpoint-dir" {
            it.next().cloned()
        } else if let Some(v) = a.strip_prefix("--checkpoint-dir=") {
            Some(v.to_owned())
        } else {
            continue;
        };
        let raw =
            raw.unwrap_or_else(|| panic!("--checkpoint-dir needs a value (a directory path)"));
        return Some(std::path::PathBuf::from(raw));
    }
    None
}

/// One row of an evaluation table.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Model name.
    pub model: &'static str,
    /// Usage-type label (`Emb.` / `Path` / `Uni.` / `baseline`).
    pub family: String,
    /// CTR AUC.
    pub auc: f64,
    /// CTR accuracy.
    pub accuracy: f64,
    /// Recall@10 (full ranking).
    pub recall_at_10: f64,
    /// NDCG@10.
    pub ndcg_at_10: f64,
    /// HitRate@10.
    pub hit_at_10: f64,
    /// Wall-clock training seconds.
    pub fit_seconds: f64,
}

/// Family column value: `"baseline"` for the KG-free baselines, the
/// Table 3 usage label otherwise.
fn family_of(model: &dyn Recommender) -> String {
    if model.taxonomy().venue == "baseline" {
        "baseline".to_owned()
    } else {
        model.taxonomy().usage.label().to_owned()
    }
}

/// Wall-clock phase timings and row counts for one evaluated model —
/// the per-cell payload of `BENCH_eval.json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Training wall-clock (all supervised attempts).
    pub fit_secs: f64,
    /// CTR-protocol scoring wall-clock.
    pub score_secs: f64,
    /// Top-K full-ranking wall-clock.
    pub rank_secs: f64,
    /// Labeled pairs scored by the CTR protocol.
    pub pairs_scored: usize,
    /// Users ranked by the top-K protocol.
    pub users_ranked: usize,
    /// Training rows consumed by `fit`: epochs × training interactions.
    pub fit_rows: usize,
    /// Training passes over the interaction data
    /// ([`Recommender::fit_epochs`]).
    pub fit_epochs: usize,
}

impl PhaseTimings {
    /// Training rows per wall-clock second of `fit` (0 when untimed).
    pub fn fit_rows_per_sec(&self) -> f64 {
        if self.fit_secs > 0.0 {
            self.fit_rows as f64 / self.fit_secs
        } else {
            0.0
        }
    }

    /// Training epochs per wall-clock second of `fit` (0 when untimed).
    pub fn epochs_per_sec(&self) -> f64 {
        if self.fit_secs > 0.0 {
            self.fit_epochs as f64 / self.fit_secs
        } else {
            0.0
        }
    }
}

/// What a supervised evaluation produced for one model: the training
/// outcome always, the metric row only when the model ended usable.
#[derive(Debug)]
pub struct ModelReport {
    /// Model name.
    pub model: &'static str,
    /// Usage-type label (`Emb.` / `Path` / `Uni.` / `baseline`).
    pub family: String,
    /// The supervisor's verdict on training.
    pub outcome: FitOutcome,
    /// Metrics, when [`FitOutcome::is_usable`] held and evaluation
    /// itself survived.
    pub row: Option<EvalRow>,
    /// Phase timings (fit always; score/rank only when evaluation ran).
    pub timings: PhaseTimings,
}

/// Directory-safe slug of a model name (`BPR-MF` → `bpr-mf`): checkpoint
/// stores are keyed by it under the run's `--checkpoint-dir` root.
pub fn model_slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect()
}

/// Trains `model` under [`kgrec_core::supervise_fit`] and, when the
/// outcome is usable, evaluates it under both protocols on up to
/// `threads` pool workers (1 = serial; metrics are bit-identical either
/// way).
///
/// Unlike [`evaluate_model`] this never panics and never silently drops
/// a model: panics, divergence, non-finite scores and budget overruns
/// all come back as a [`ModelReport`] whose outcome says what happened.
/// Evaluation runs under its own `catch_unwind` — a model that trains
/// but panics while ranking is downgraded to
/// [`FitStatus::Failed`] with an `evaluation panicked` reason.
pub fn evaluate_model_supervised(
    model: &mut dyn Recommender,
    synth: &SyntheticDataset,
    split: &Split,
    seed: u64,
    config: &SupervisorConfig,
    threads: usize,
) -> ModelReport {
    evaluate_model_supervised_checkpointed(model, synth, split, seed, config, threads, None)
}

/// [`evaluate_model_supervised`] with crash-safe persistence: when
/// `checkpoint_root` is given, the model gets a per-model checkpoint
/// store under `<root>/<model-slug>` — a usable previous generation
/// becomes a warm start (load-or-train), a fresh fit is saved back, and
/// models that checkpoint during `fit`
/// ([`Recommender::set_checkpoint_dir`]) additionally resume epoch-level
/// from `<root>/<model-slug>/epochs`. With `None` this is exactly
/// [`evaluate_model_supervised`].
pub fn evaluate_model_supervised_checkpointed(
    model: &mut dyn Recommender,
    synth: &SyntheticDataset,
    split: &Split,
    seed: u64,
    config: &SupervisorConfig,
    threads: usize,
    checkpoint_root: Option<&std::path::Path>,
) -> ModelReport {
    let name = model.name();
    let family = family_of(model);
    let fit_epochs = model.fit_epochs();
    let fit_rows = fit_epochs * split.train.num_interactions();
    let store = checkpoint_root.and_then(|root| {
        let dir = root.join(model_slug(name));
        model.set_checkpoint_dir(&dir.join("epochs"));
        kgrec_store::CheckpointStore::open(&dir).ok()
    });
    let mut outcome =
        supervise_fit_checkpointed(model, &synth.dataset, &split.train, config, store.as_ref());
    let mut timings = PhaseTimings {
        fit_secs: outcome.elapsed.as_secs_f64(),
        fit_rows,
        fit_epochs,
        ..PhaseTimings::default()
    };
    let row = if outcome.is_usable() {
        let fit_seconds = outcome.elapsed.as_secs_f64();
        let fam = family.clone();
        let evaluated = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
            let score_started = Instant::now();
            let ctr = evaluate_ctr_par(&*model, &pairs, threads);
            let score_secs = score_started.elapsed().as_secs_f64();
            let rank_started = Instant::now();
            let topk = evaluate_topk_par(&*model, &split.train, &split.test, &[10], threads);
            let rank_secs = rank_started.elapsed().as_secs_f64();
            let row = EvalRow {
                model: name,
                family: fam,
                auc: ctr.auc,
                accuracy: ctr.accuracy,
                recall_at_10: topk.cutoffs[0].recall,
                ndcg_at_10: topk.cutoffs[0].ndcg,
                hit_at_10: topk.cutoffs[0].hit_rate,
                fit_seconds,
            };
            let timing = PhaseTimings {
                fit_secs: fit_seconds,
                score_secs,
                rank_secs,
                pairs_scored: ctr.pairs,
                users_ranked: topk.users_evaluated,
                fit_rows,
                fit_epochs,
            };
            (row, timing)
        }));
        match evaluated {
            Ok((row, timing)) => {
                timings = timing;
                Some(row)
            }
            Err(payload) => {
                outcome.status = FitStatus::Failed;
                outcome.reason =
                    Some(format!("evaluation panicked: {}", panic_message(payload.as_ref())));
                None
            }
        }
    } else {
        None
    };
    ModelReport { model: name, family, outcome, row, timings }
}

/// Evaluates a whole roster under supervision, sharding **models**
/// across the worker pool (each model's own protocols then run
/// single-threaded — the two protocol layers are not stacked, so
/// ranking is never oversubscribed). Model *fits* resolve their own
/// worker count from `KGREC_THREADS`; suite binaries pin that variable
/// to the run's `--threads` value so the fit path parallelizes — and
/// serializes — together with the rest of the run.
///
/// Reports come back in roster order regardless of which worker finished
/// first, and each model's training RNG is seeded per model exactly as
/// in the serial loop, so the metric tables are bit-identical at any
/// thread count.
///
/// Fault isolation is two-layered: [`supervise_fit`] catches model
/// panics inside the worker, and the pool's [`par::par_map_catch`]
/// catches anything that escapes (a poisoned shard). Either way exactly
/// one [`ModelReport`] row degrades — the pool never deadlocks and no
/// panic escapes to the caller.
pub fn evaluate_roster_supervised(
    roster: Vec<Box<dyn Recommender>>,
    synth: &SyntheticDataset,
    split: &Split,
    seed: u64,
    config: &SupervisorConfig,
    threads: usize,
) -> Vec<ModelReport> {
    evaluate_roster_supervised_checkpointed(roster, synth, split, seed, config, threads, None)
}

/// [`evaluate_roster_supervised`] with crash-safe persistence: each model
/// checkpoints into `<checkpoint_root>/<model-slug>` (see
/// [`evaluate_model_supervised_checkpointed`]). With `None` this is
/// exactly [`evaluate_roster_supervised`].
pub fn evaluate_roster_supervised_checkpointed(
    roster: Vec<Box<dyn Recommender>>,
    synth: &SyntheticDataset,
    split: &Split,
    seed: u64,
    config: &SupervisorConfig,
    threads: usize,
    checkpoint_root: Option<&std::path::Path>,
) -> Vec<ModelReport> {
    let meta: Vec<(&'static str, String)> =
        roster.iter().map(|m| (m.name(), family_of(m.as_ref()))).collect();
    // Mutex-per-model hands each worker exclusive `&mut` access without
    // `unsafe`; slots are claimed once, so the locks never contend.
    let slots: Vec<Mutex<Box<dyn Recommender>>> = roster.into_iter().map(Mutex::new).collect();
    let inner_threads = if threads > 1 { 1 } else { threads.max(1) };
    let results = par::par_map_catch(&slots, threads, |_, slot| {
        let mut model = slot.lock().expect("model slot poisoned");
        evaluate_model_supervised_checkpointed(
            model.as_mut(),
            synth,
            split,
            seed,
            config,
            inner_threads,
            checkpoint_root,
        )
    });
    results
        .into_iter()
        .zip(meta)
        .map(|(result, (name, family))| match result {
            Ok(report) => report,
            // A panic that escaped the supervisor's own isolation (e.g. a
            // poisoned model mutex) poisons only this row.
            Err(message) => ModelReport {
                model: name,
                family,
                outcome: FitOutcome {
                    status: FitStatus::Failed,
                    attempts: 0,
                    elapsed: Duration::ZERO,
                    reason: Some(format!("worker shard panicked: {message}")),
                    overshoot: None,
                },
                row: None,
                timings: PhaseTimings::default(),
            },
        })
        .collect()
}

/// Outcome counts across a set of reports, in state-machine order:
/// `[ok, retried, degraded, failed]`.
pub fn outcome_counts(reports: &[ModelReport]) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for r in reports {
        let i = match r.outcome.status {
            FitStatus::Ok => 0,
            FitStatus::Retried => 1,
            FitStatus::Degraded => 2,
            FitStatus::Failed => 3,
        };
        counts[i] += 1;
    }
    counts
}

/// Prints the per-model training-outcome table for one scenario: status,
/// attempts, wall-clock, and the failure/degradation reason (`-` for
/// clean first-attempt fits).
pub fn print_outcome_summary(title: &str, reports: &[ModelReport]) {
    print_outcome_summary_with(title, reports, true);
}

/// [`print_outcome_summary`] with an explicit timing switch: with
/// `show_timing = false` the wall-clock column prints `-`, making the
/// table byte-identical across machines and thread counts (the golden
/// regression test and the CI 1-vs-4-thread diff rely on this).
pub fn print_outcome_summary_with(title: &str, reports: &[ModelReport], show_timing: bool) {
    println!("\n== {title}: training outcomes ==");
    println!(
        "{:<12} {:<9} {:<9} {:>8} {:>8}  reason",
        "model", "family", "status", "attempts", "fit(s)"
    );
    for r in reports {
        let fit = if show_timing {
            format!("{:.2}", r.outcome.elapsed.as_secs_f64())
        } else {
            "-".to_owned()
        };
        println!(
            "{:<12} {:<9} {:<9} {:>8} {:>8}  {}",
            r.model,
            r.family,
            r.outcome.status.label(),
            r.outcome.attempts,
            fit,
            r.outcome.reason.as_deref().unwrap_or("-")
        );
    }
    let [ok, retried, degraded, failed] = outcome_counts(reports);
    println!("   {ok} ok | {retried} retried | {degraded} degraded | {failed} failed");
}

/// Trains `model` on the split and evaluates it under both protocols on
/// up to `threads` pool workers (1 = serial; metrics are bit-identical
/// either way).
///
/// Returns `None` when the model cannot fit this dataset (e.g. DKN
/// without token lists) — the caller skips the row. Unsupervised: a
/// panicking `fit` propagates. The suite binaries use
/// [`evaluate_model_supervised`] instead; this stays for callers that
/// want failures to be loud (ablations over known-good configs).
pub fn evaluate_model(
    model: &mut dyn Recommender,
    synth: &SyntheticDataset,
    split: &Split,
    seed: u64,
    threads: usize,
) -> Option<EvalRow> {
    let ctx = TrainContext::new(&synth.dataset, &split.train);
    let start = Instant::now();
    if model.fit(&ctx).is_err() {
        return None;
    }
    let fit_seconds = start.elapsed().as_secs_f64();
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
    let ctr = evaluate_ctr_par(model, &pairs, threads);
    let topk = evaluate_topk_par(model, &split.train, &split.test, &[10], threads);
    let family = family_of(model);
    Some(EvalRow {
        model: model.name(),
        family,
        auc: ctr.auc,
        accuracy: ctr.accuracy,
        recall_at_10: topk.cutoffs[0].recall,
        ndcg_at_10: topk.cutoffs[0].ndcg,
        hit_at_10: topk.cutoffs[0].hit_rate,
        fit_seconds,
    })
}

/// Standard split used across the harness: 20% per-user holdout.
pub fn standard_split(synth: &SyntheticDataset, seed: u64) -> Split {
    ratio_split(&synth.dataset.interactions, 0.2, seed)
}

/// Runs the full `kglint` rule set over a scenario bundle in strict mode
/// (warnings fail) before any training happens.
///
/// The harness binaries call this on every scenario; a corrupted bundle
/// aborts the run instead of producing subtly wrong tables.
///
/// # Panics
/// Panics with the rendered report when the check fails.
pub fn preflight_check(synth: &SyntheticDataset, split: &Split) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
    let bundle = CheckBundle::new(&synth.dataset)
        .with_split(split)
        .with_eval_pairs(&pairs)
        .with_hyperparams(default_model_hyperparams());
    let report = CheckReport::run(&bundle);
    if report.fails(true) {
        panic!(
            "preflight kglint failed (strict) for scenario {}:\n{}",
            synth.config.name,
            report.render()
        );
    }
}

/// Non-fatal variant of [`preflight_check`] for fault-injection runs:
/// runs the same strict `kglint` pass but *reports* instead of
/// panicking, so a deliberately corrupted bundle can continue into the
/// supervised evaluation. Returns `true` when strict mode would have
/// failed — i.e. when the injected corruption was detected.
pub fn preflight_report(synth: &SyntheticDataset, split: &Split) -> bool {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
    let bundle = CheckBundle::new(&synth.dataset)
        .with_split(split)
        .with_eval_pairs(&pairs)
        .with_hyperparams(default_model_hyperparams());
    let report = CheckReport::run(&bundle);
    let dirty = report.fails(true);
    if dirty {
        println!(
            "kglint flagged scenario {} (continuing under supervision):\n{}",
            synth.config.name,
            report.render()
        );
    }
    dirty
}

/// Runs the registry/taxonomy consistency rule (`MD001`) in strict mode.
///
/// Called by the metadata binaries (`table3`) that render registry
/// contents without touching a dataset.
///
/// # Panics
/// Panics with the rendered report when the registry is inconsistent.
pub fn preflight_registry() {
    // MD001 ignores the bundle, but the runner needs one; tiny generates
    // in microseconds.
    let synth = generate(&ScenarioConfig::tiny(), 0);
    let bundle = CheckBundle::new(&synth.dataset);
    let report = CheckReport::run_rules(&bundle, &[Box::new(RegistryConsistency)]);
    if report.fails(true) {
        panic!("registry consistency check failed:\n{}", report.render());
    }
}

/// Prints an evaluation table in a fixed-width layout.
pub fn print_eval_table(title: &str, rows: &[EvalRow]) {
    print_eval_table_with(title, rows, true);
}

/// [`print_eval_table`] with an explicit timing switch: with
/// `show_timing = false` the `fit(s)` column prints `-` so the table is
/// byte-identical across machines and thread counts.
pub fn print_eval_table_with(title: &str, rows: &[EvalRow], show_timing: bool) {
    println!("\n== {title} ==");
    println!(
        "{:<12} {:<9} {:>7} {:>7} {:>8} {:>8} {:>7} {:>8}",
        "model", "family", "AUC", "ACC", "R@10", "NDCG@10", "HR@10", "fit(s)"
    );
    for r in rows {
        let fit = if show_timing { format!("{:.2}", r.fit_seconds) } else { "-".to_owned() };
        println!(
            "{:<12} {:<9} {:>7.4} {:>7.4} {:>8.4} {:>8.4} {:>7.4} {:>8}",
            r.model, r.family, r.auc, r.accuracy, r.recall_at_10, r.ndcg_at_10, r.hit_at_10, fit
        );
    }
}

/// Column width of a cell as the terminal will pad it: Rust's `{:<w$}`
/// formatting counts `char`s, so widths must too — `len()` counts bytes
/// and breaks alignment on the first multi-byte model or dataset name
/// (grapheme clusters and double-width CJK glyphs remain approximate,
/// which matches the formatter's own behavior).
fn cell_width(cell: &str) -> usize {
    cell.chars().count()
}

/// Renders a plain-text table with a header and aligned columns (used by
/// the table1/table3/table4 binaries).
pub fn print_text_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| cell_width(h)).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell_width(cell));
            }
        }
    }
    let line = |cells: Vec<&str>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.to_vec());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_data::synth::{generate, ScenarioConfig};
    use kgrec_models::baselines::MostPop;

    #[test]
    fn evaluate_model_produces_sane_row() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        let mut model = MostPop::new();
        let row = evaluate_model(&mut model, &synth, &split, 3, 1).unwrap();
        assert_eq!(row.model, "MostPop");
        assert!(row.auc > 0.0 && row.auc <= 1.0);
        assert!(row.recall_at_10 >= 0.0 && row.recall_at_10 <= 1.0);
    }

    #[test]
    fn evaluate_model_is_thread_count_invariant() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        let serial = evaluate_model(&mut MostPop::new(), &synth, &split, 3, 1).unwrap();
        for threads in [2, 4, 7] {
            let par = evaluate_model(&mut MostPop::new(), &synth, &split, 3, threads).unwrap();
            assert_eq!(par.auc, serial.auc, "threads={threads}");
            assert_eq!(par.accuracy, serial.accuracy);
            assert_eq!(par.recall_at_10, serial.recall_at_10);
            assert_eq!(par.ndcg_at_10, serial.ndcg_at_10);
            assert_eq!(par.hit_at_10, serial.hit_at_10);
        }
    }

    #[test]
    fn text_table_does_not_panic_on_ragged_rows() {
        print_text_table(&["a", "b"], &[vec!["x".into(), "yyy".into()]]);
    }

    #[test]
    fn text_table_widths_count_chars_not_bytes() {
        // "KGAT™" is 5 chars / 7 bytes; "模型" is 2 chars / 6 bytes. Byte
        // widths would over-pad every other cell in the column.
        assert_eq!(cell_width("KGAT™"), 5);
        assert_eq!(cell_width("模型"), 2);
        assert_eq!(cell_width("ascii"), 5);
        // Rendering multi-byte rows must not panic and must align: the
        // widest first-column cell is "KGAT™" (5 chars), so the header
        // pads to 5 chars + 2 spaces before "b".
        print_text_table(
            &["model", "b"],
            &[vec!["KGAT™".into(), "x".into()], vec!["模型".into(), "y".into()]],
        );
    }

    #[test]
    fn threads_flag_parses_both_spellings() {
        let to_args = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(threads_from_args(&to_args(&["--quick", "--threads", "4"])), Some(4));
        assert_eq!(threads_from_args(&to_args(&["--threads=7"])), Some(7));
        assert_eq!(threads_from_args(&to_args(&["--quick"])), None);
    }

    #[test]
    fn supervised_evaluation_of_a_healthy_model_yields_a_row() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        let mut model = MostPop::new();
        let report = evaluate_model_supervised(
            &mut model,
            &synth,
            &split,
            3,
            &SupervisorConfig::default(),
            1,
        );
        assert_eq!(report.outcome.status, FitStatus::Ok);
        let row = report.row.expect("usable outcome must carry metrics");
        assert_eq!(row.model, "MostPop");
        assert!(row.auc > 0.0 && row.auc <= 1.0);
        assert!(report.timings.users_ranked > 0 && report.timings.users_ranked <= 40);
        assert!(report.timings.pairs_scored > 0);
    }

    #[test]
    fn supervised_evaluation_isolates_a_panicking_model() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        let mut model = crate::doubles::PanicBot;
        let report = evaluate_model_supervised(
            &mut model,
            &synth,
            &split,
            3,
            &SupervisorConfig::default(),
            1,
        );
        std::panic::set_hook(hook);
        assert_eq!(report.outcome.status, FitStatus::Failed);
        assert!(report.row.is_none());
        assert!(report.outcome.reason.unwrap().contains("panic"));
    }

    #[test]
    fn roster_evaluation_matches_the_serial_loop_bit_for_bit() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        let config = SupervisorConfig::default();
        let roster = || -> Vec<Box<dyn Recommender>> {
            vec![
                Box::new(MostPop::new()),
                Box::new(kgrec_models::baselines::ItemKnn::new(10)),
                Box::new(kgrec_models::baselines::BprMf::default_config()),
            ]
        };
        let serial = evaluate_roster_supervised(roster(), &synth, &split, 3, &config, 1);
        for threads in [2, 4] {
            let par = evaluate_roster_supervised(roster(), &synth, &split, 3, &config, threads);
            assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                assert_eq!(p.model, s.model, "roster order must be preserved");
                assert_eq!(p.outcome.status, s.outcome.status);
                let (pr, sr) = (p.row.as_ref().unwrap(), s.row.as_ref().unwrap());
                assert_eq!(pr.auc, sr.auc, "{}: AUC drifted at threads={threads}", p.model);
                assert_eq!(pr.ndcg_at_10, sr.ndcg_at_10);
                assert_eq!(pr.recall_at_10, sr.recall_at_10);
            }
        }
    }

    #[test]
    fn roster_evaluation_poisons_only_the_panicking_row() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        let roster: Vec<Box<dyn Recommender>> = vec![
            Box::new(MostPop::new()),
            Box::new(crate::doubles::PanicBot),
            Box::new(kgrec_models::baselines::ItemKnn::new(10)),
        ];
        let reports =
            evaluate_roster_supervised(roster, &synth, &split, 3, &SupervisorConfig::default(), 4);
        std::panic::set_hook(hook);
        assert_eq!(outcome_counts(&reports), [2, 0, 0, 1]);
        assert_eq!(reports[1].model, "PanicBot");
        assert_eq!(reports[1].outcome.status, FitStatus::Failed);
        assert!(reports[0].row.is_some() && reports[2].row.is_some());
    }

    #[test]
    fn outcome_summary_counts_by_status() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut pop = MostPop::new();
        let mut bot = crate::doubles::NanBot::default();
        let reports = vec![
            evaluate_model_supervised(&mut pop, &synth, &split, 3, &SupervisorConfig::default(), 1),
            evaluate_model_supervised(&mut bot, &synth, &split, 3, &SupervisorConfig::default(), 1),
        ];
        std::panic::set_hook(hook);
        assert_eq!(outcome_counts(&reports), [1, 0, 0, 1]);
        // Rendering must not panic on mixed outcomes, timing on or off.
        print_outcome_summary("test", &reports);
        print_outcome_summary_with("test", &reports, false);
    }

    #[test]
    fn preflight_report_is_quiet_on_clean_bundles_and_loud_on_faults() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = standard_split(&synth, 2);
        assert!(!preflight_report(&synth, &split));
        let mut corrupted = generate(&ScenarioConfig::tiny(), 1);
        kgrec_data::inject(&mut corrupted.dataset, kgrec_data::Fault::DuplicateTriples);
        let split = standard_split(&corrupted, 2);
        assert!(preflight_report(&corrupted, &split));
    }
}
