//! Shared machinery for the path-based models.
//!
//! * canonical user–item meta-paths (`U →interact I →r A →r⁻¹ I` per
//!   attribute relation, plus the collaborative `U-I-U-I` path);
//! * a per-user path index: one bounded DFS from the user entity
//!   collecting every simple path that ends at an item entity, grouped by
//!   item — the substrate RKGE/KPRN/MCRec-style models consume.

use kgrec_data::dataset::UserItemGraph;
use kgrec_data::{ItemId, UserId};
use kgrec_graph::paths::Path;
use kgrec_graph::{EntityId, MetaPath, RelationId};

/// The canonical meta-path set over a user–item graph: the collaborative
/// path `interact → interact⁻¹ → interact` plus, for every base attribute
/// relation `r` of the item KG, `interact → r → r⁻¹`.
///
/// These are exactly the path shapes HeteRec/Hete-MF/FMG hand-pick for
/// their datasets ("movie–actor–movie", "user–movie–user–movie", …).
pub fn canonical_metapaths(uig: &UserItemGraph) -> Vec<MetaPath> {
    let g = &uig.graph;
    let mut out = vec![MetaPath::new(vec![uig.interact, uig.interact_inv, uig.interact])];
    let base = item_kg_base_relations(uig);
    for r in base {
        let name = g.relation_name(r);
        if let Some(inv) = g.relation_by_name(&format!("{name}_inv")) {
            out.push(MetaPath::new(vec![uig.interact, r, inv]));
        }
    }
    out
}

/// The base (non-inverse, non-interact) relations of the item KG inside a
/// user–item graph.
pub fn item_kg_base_relations(uig: &UserItemGraph) -> Vec<RelationId> {
    let g = &uig.graph;
    (0..g.num_relations() as u32)
        .map(RelationId)
        .filter(|&r| {
            let name = g.relation_name(r);
            r != uig.interact && r != uig.interact_inv && !name.ends_with("_inv")
        })
        .collect()
}

/// Reverse alignment: entity index → item id, dense over the graph.
pub fn item_of_entity(uig: &UserItemGraph) -> Vec<Option<ItemId>> {
    let mut map = vec![None; uig.graph.num_entities()];
    for (j, e) in uig.item_entities.iter().enumerate() {
        map[e.index()] = Some(ItemId(j as u32));
    }
    map
}

/// All simple paths from one user to item entities, grouped by item.
#[derive(Debug, Clone)]
pub struct UserPathIndex {
    /// `by_item[j]` = the collected paths ending at item `j`.
    pub by_item: Vec<Vec<Path>>,
}

impl UserPathIndex {
    /// Total number of collected paths.
    pub fn total_paths(&self) -> usize {
        self.by_item.iter().map(Vec::len).sum()
    }

    /// Paths reaching item `j`.
    pub fn paths_to(&self, item: ItemId) -> &[Path] {
        &self.by_item[item.index()]
    }
}

/// Runs one bounded DFS from `user`'s entity, collecting up to
/// `max_per_item` simple paths per reachable item and `max_total`
/// overall. Depth is capped at `max_hops`. Deterministic (CSR order).
///
/// 1-hop `interact` paths (the user's own history items) are *included* —
/// callers that need novelty filter by item; the path-encoding models
/// use them as the training signal for positive items.
pub fn index_user_paths(
    uig: &UserItemGraph,
    user: UserId,
    max_hops: usize,
    max_per_item: usize,
    max_total: usize,
) -> UserPathIndex {
    let source = uig.user_entities[user.index()];
    let item_map = item_of_entity(uig);
    let mut by_item: Vec<Vec<Path>> = vec![Vec::new(); uig.item_entities.len()];
    let mut total = 0usize;
    let mut visited = vec![false; uig.graph.num_entities()];
    visited[source.index()] = true;
    let mut ents = vec![source];
    let mut rels: Vec<RelationId> = Vec::new();
    dfs(
        uig,
        &item_map,
        max_hops,
        max_per_item,
        max_total,
        &mut visited,
        &mut ents,
        &mut rels,
        &mut by_item,
        &mut total,
    );
    UserPathIndex { by_item }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    uig: &UserItemGraph,
    item_map: &[Option<ItemId>],
    remaining: usize,
    max_per_item: usize,
    max_total: usize,
    visited: &mut [bool],
    ents: &mut Vec<EntityId>,
    rels: &mut Vec<RelationId>,
    by_item: &mut [Vec<Path>],
    total: &mut usize,
) {
    if remaining == 0 || *total >= max_total {
        return;
    }
    let cur = *ents.last().expect("nonempty");
    for (r, t) in uig.graph.neighbors(cur) {
        if *total >= max_total {
            return;
        }
        if visited[t.index()] {
            continue;
        }
        ents.push(t);
        rels.push(r);
        if let Some(item) = item_map[t.index()] {
            let bucket = &mut by_item[item.index()];
            if bucket.len() < max_per_item {
                bucket.push(Path { entities: ents.clone(), relations: rels.clone() });
                *total += 1;
            }
        }
        visited[t.index()] = true;
        dfs(
            uig,
            item_map,
            remaining - 1,
            max_per_item,
            max_total,
            visited,
            ents,
            rels,
            by_item,
            total,
        );
        visited[t.index()] = false;
        rels.pop();
        ents.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_data::interactions::{Interaction, InteractionMatrix};
    use kgrec_data::KgDataset;
    use kgrec_graph::KgBuilder;

    /// 1 user; items i0, i1 sharing attribute a0; user interacted i0.
    fn toy() -> UserItemGraph {
        let mut b = KgBuilder::new();
        let ti = b.entity_type("item");
        let ta = b.entity_type("attr");
        let i0 = b.entity("i0", ti);
        let i1 = b.entity("i1", ti);
        let a0 = b.entity("a0", ta);
        let r = b.relation("genre");
        b.triple(i0, r, a0);
        b.triple(i1, r, a0);
        let graph = b.build(true);
        let train = InteractionMatrix::from_interactions(
            1,
            2,
            &[Interaction::implicit(UserId(0), ItemId(0))],
        );
        let ds = KgDataset::new(train.clone(), graph, vec![i0, i1]);
        ds.user_item_graph(&train)
    }

    #[test]
    fn canonical_paths_cover_collaborative_and_attributes() {
        let uig = toy();
        let mps = canonical_metapaths(&uig);
        // 1 collaborative + 1 genre path.
        assert_eq!(mps.len(), 2);
        assert_eq!(mps[0].relations()[0], uig.interact);
        assert_eq!(mps[1].len(), 3);
    }

    #[test]
    fn base_relations_exclude_inverses_and_interact() {
        let uig = toy();
        let base = item_kg_base_relations(&uig);
        assert_eq!(base.len(), 1);
        assert_eq!(uig.graph.relation_name(base[0]), "genre");
    }

    #[test]
    fn user_path_index_reaches_both_items() {
        let uig = toy();
        let idx = index_user_paths(&uig, UserId(0), 3, 4, 100);
        // i0 via 1-hop interact; i1 via interact-genre-genre_inv.
        assert!(!idx.paths_to(ItemId(0)).is_empty());
        assert!(!idx.paths_to(ItemId(1)).is_empty());
        let p = &idx.paths_to(ItemId(1))[0];
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn caps_respected() {
        let uig = toy();
        let idx = index_user_paths(&uig, UserId(0), 3, 1, 100);
        for bucket in &idx.by_item {
            assert!(bucket.len() <= 1);
        }
        let idx = index_user_paths(&uig, UserId(0), 3, 10, 1);
        assert_eq!(idx.total_paths(), 1);
    }

    #[test]
    fn item_of_entity_roundtrip() {
        let uig = toy();
        let map = item_of_entity(&uig);
        assert_eq!(map[uig.item_entities[1].index()], Some(ItemId(1)));
        assert_eq!(map[uig.user_entities[0].index()], None);
    }
}
