//! Portable multi-lane kernels over `f32` slices.
//!
//! Stable Rust offers no explicit SIMD intrinsics without `unsafe`, so
//! these kernels reach vector units the portable way: every loop is
//! written over fixed 8-lane blocks (`chunks_exact(LANES)`) with
//! straight-line per-lane bodies, the shape LLVM's autovectorizer turns
//! into packed instructions on every current x86-64 / AArch64 target.
//!
//! Two kernel classes, two determinism stories:
//!
//! * **Element-wise kernels** (`add_into`, `sub_into`, `mul_into`,
//!   `scale_assign`, `axpy`, `scale`) — each output lane depends on one
//!   input lane only, so lane-blocking cannot reorder any floating-point
//!   operation. These are unconditionally bit-identical to the scalar
//!   loops they replace.
//! * **Reductions** (`dot`) — summation order is observable in the
//!   result. The default build keeps a **single sequential accumulator**
//!   (the unroll removes bounds checks and loop overhead but adds
//!   products in exactly the scalar order, so results stay bit-identical
//!   and the workspace determinism contract holds). The `fast-math`
//!   cargo feature swaps in eight independent lane accumulators combined
//!   by a fixed reduction tree: faster on wide cores, still deterministic
//!   run-to-run, but **not** bit-identical to the scalar order — golden
//!   transcripts are only valid with the feature off.

/// Lane width of every blocked kernel. Eight `f32`s fill one AVX2
/// register (or two NEON registers), the widest unit portably available.
pub const LANES: usize = 8;

/// Largest multiple of [`LANES`] not exceeding `n`.
#[inline]
fn blocked(n: usize) -> usize {
    n & !(LANES - 1)
}

/// Inner product `x · y` with the default (bit-identical) accumulation
/// order.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[cfg(not(feature = "fast-math"))]
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot: dimension mismatch");
    let n8 = blocked(x.len());
    let (xb, xr) = x.split_at(n8);
    let (yb, yr) = y.split_at(n8);
    let mut acc = 0.0f32;
    for (a, b) in xb.chunks_exact(LANES).zip(yb.chunks_exact(LANES)) {
        // One accumulator, strictly sequential adds: identical rounding
        // to the naive scalar loop, minus its bounds checks.
        acc += a[0] * b[0];
        acc += a[1] * b[1];
        acc += a[2] * b[2];
        acc += a[3] * b[3];
        acc += a[4] * b[4];
        acc += a[5] * b[5];
        acc += a[6] * b[6];
        acc += a[7] * b[7];
    }
    for (a, b) in xr.iter().zip(yr.iter()) {
        acc += a * b;
    }
    acc
}

/// Inner product `x · y` with relaxed (lane-parallel) accumulation.
///
/// Eight independent accumulators, one per lane, combined by a fixed
/// pairwise tree after the blocked loop. Deterministic for a given input,
/// but the rounding order differs from the scalar loop — gated behind the
/// `fast-math` feature because golden transcripts pin the default order.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[cfg(feature = "fast-math")]
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot: dimension mismatch");
    let n8 = blocked(x.len());
    let (xb, xr) = x.split_at(n8);
    let (yb, yr) = y.split_at(n8);
    let mut lanes = [0.0f32; LANES];
    for (a, b) in xb.chunks_exact(LANES).zip(yb.chunks_exact(LANES)) {
        for j in 0..LANES {
            lanes[j] += a[j] * b[j];
        }
    }
    let mut acc = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    for (a, b) in xr.iter().zip(yr.iter()) {
        acc += a * b;
    }
    acc
}

/// `y += alpha * x`, lane-blocked. Bit-identical to the scalar loop.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: dimension mismatch");
    let n8 = blocked(x.len());
    let (xb, xr) = x.split_at(n8);
    let (yb, yr) = y.split_at_mut(n8);
    for (a, b) in yb.chunks_exact_mut(LANES).zip(xb.chunks_exact(LANES)) {
        for j in 0..LANES {
            a[j] += alpha * b[j];
        }
    }
    for (a, b) in yr.iter_mut().zip(xr.iter()) {
        *a += alpha * b;
    }
}

/// `x *= alpha`, lane-blocked. Bit-identical to the scalar loop.
#[inline]
pub fn scale(x: &mut [f32], alpha: f32) {
    let n8 = blocked(x.len());
    let (xb, xr) = x.split_at_mut(n8);
    for a in xb.chunks_exact_mut(LANES) {
        for j in 0..LANES {
            a[j] *= alpha;
        }
    }
    for a in xr.iter_mut() {
        *a *= alpha;
    }
}

/// `out = x + y`, lane-blocked. Bit-identical to the scalar loop.
///
/// # Panics
/// Panics if slice lengths disagree.
#[inline]
pub fn add_into(x: &[f32], y: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "add_into: dimension mismatch");
    assert_eq!(x.len(), out.len(), "add_into: output dimension mismatch");
    let n8 = blocked(x.len());
    let (ob, or) = out.split_at_mut(n8);
    for (i, o) in ob.chunks_exact_mut(LANES).enumerate() {
        let base = i * LANES;
        for j in 0..LANES {
            o[j] = x[base + j] + y[base + j];
        }
    }
    for (j, o) in or.iter_mut().enumerate() {
        *o = x[n8 + j] + y[n8 + j];
    }
}

/// `out = x - y`, lane-blocked. Bit-identical to the scalar loop.
///
/// # Panics
/// Panics if slice lengths disagree.
#[inline]
pub fn sub_into(x: &[f32], y: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "sub_into: dimension mismatch");
    assert_eq!(x.len(), out.len(), "sub_into: output dimension mismatch");
    let n8 = blocked(x.len());
    let (ob, or) = out.split_at_mut(n8);
    for (i, o) in ob.chunks_exact_mut(LANES).enumerate() {
        let base = i * LANES;
        for j in 0..LANES {
            o[j] = x[base + j] - y[base + j];
        }
    }
    for (j, o) in or.iter_mut().enumerate() {
        *o = x[n8 + j] - y[n8 + j];
    }
}

/// `out = x ⊙ y`, lane-blocked. Bit-identical to the scalar loop.
///
/// # Panics
/// Panics if slice lengths disagree.
#[inline]
pub fn mul_into(x: &[f32], y: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "mul_into: dimension mismatch");
    assert_eq!(x.len(), out.len(), "mul_into: output dimension mismatch");
    let n8 = blocked(x.len());
    let (ob, or) = out.split_at_mut(n8);
    for (i, o) in ob.chunks_exact_mut(LANES).enumerate() {
        let base = i * LANES;
        for j in 0..LANES {
            o[j] = x[base + j] * y[base + j];
        }
    }
    for (j, o) in or.iter_mut().enumerate() {
        *o = x[n8 + j] * y[n8 + j];
    }
}

/// `out = alpha · x`, lane-blocked. Bit-identical to the scalar loop.
///
/// # Panics
/// Panics if slice lengths disagree.
#[inline]
pub fn scale_assign(alpha: f32, x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "scale_assign: dimension mismatch");
    let n8 = blocked(x.len());
    let (ob, or) = out.split_at_mut(n8);
    for (i, o) in ob.chunks_exact_mut(LANES).enumerate() {
        let base = i * LANES;
        for j in 0..LANES {
            o[j] = alpha * x[base + j];
        }
    }
    for (j, o) in or.iter_mut().enumerate() {
        *o = alpha * x[n8 + j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn awkward(n: usize, seed: f32) -> Vec<f32> {
        (0..n).map(|i| seed + i as f32 * 0.37 - (i % 5) as f32 * 1.21).collect()
    }

    #[test]
    fn dot_matches_sequential_scalar_reference() {
        // Lengths straddling the 8-lane boundary.
        for n in 0..35usize {
            let x = awkward(n, 0.13);
            let y = awkward(n, -2.4);
            let mut reference = 0.0f32;
            for (a, b) in x.iter().zip(y.iter()) {
                reference += a * b;
            }
            if cfg!(feature = "fast-math") {
                assert!((dot(&x, &y) - reference).abs() <= reference.abs() * 1e-5 + 1e-5);
            } else {
                assert_eq!(dot(&x, &y).to_bits(), reference.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn elementwise_kernels_bit_match_scalar_loops() {
        for n in 0..35usize {
            let x = awkward(n, 1.7);
            let y = awkward(n, 0.05);
            let mut out = vec![0.0f32; n];
            let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();

            add_into(&x, &y, &mut out);
            let want: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
            assert_eq!(bits(&out), bits(&want), "add n={n}");

            sub_into(&x, &y, &mut out);
            let want: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a - b).collect();
            assert_eq!(bits(&out), bits(&want), "sub n={n}");

            mul_into(&x, &y, &mut out);
            let want: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a * b).collect();
            assert_eq!(bits(&out), bits(&want), "mul n={n}");

            scale_assign(-0.73, &x, &mut out);
            let want: Vec<f32> = x.iter().map(|a| -0.73 * a).collect();
            assert_eq!(bits(&out), bits(&want), "scale_assign n={n}");

            let mut acc = y.clone();
            axpy(1.3, &x, &mut acc);
            let want: Vec<f32> = x.iter().zip(&y).map(|(a, b)| b + 1.3 * a).collect();
            assert_eq!(bits(&acc), bits(&want), "axpy n={n}");

            let mut scaled = x.clone();
            scale(&mut scaled, 0.21);
            let want: Vec<f32> = x.iter().map(|a| a * 0.21).collect();
            assert_eq!(bits(&scaled), bits(&want), "scale n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_rejects_mismatched_lengths() {
        dot(&[1.0; 9], &[1.0; 8]);
    }
}
