//! The shared KGE model interface.

use kgrec_graph::{EntityId, RelationId, Triple};

/// A trainable knowledge-graph embedding model.
///
/// Scores are oriented so that **higher means more plausible** — the
/// translation-distance models return the negated distance. This keeps
/// ranking code uniform across model families.
///
/// `Send + Sync` is part of the contract: link-prediction evaluation
/// shards test triples across worker threads that score against a shared
/// `&self`. Every backend is a plain embedding-table struct, so the
/// bounds are free.
pub trait KgeModel: Send + Sync {
    /// Embedding dimension `d`.
    fn dim(&self) -> usize;

    /// Number of entities the model was sized for.
    fn num_entities(&self) -> usize;

    /// Number of relations the model was sized for.
    fn num_relations(&self) -> usize;

    /// Plausibility score of the triple (higher = more plausible).
    fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32;

    /// The entity latent vector `e_k`.
    fn entity_embedding(&self, e: EntityId) -> &[f32];

    /// The relation latent vector `r_k`.
    fn relation_embedding(&self, r: RelationId) -> &[f32];

    /// One SGD step on a (positive, negative) triple pair; returns the
    /// pair's loss *before* the update.
    fn train_pair(&mut self, pos: Triple, neg: Triple, lr: f32) -> f32;

    /// SGD steps over a pre-drawn batch of (positive, negative) pairs,
    /// pushing each pair's loss onto `losses` in order.
    ///
    /// The default applies `train_pair` sequentially, so the parameter
    /// trajectory and the per-pair losses are exactly those of the
    /// unbatched loop; implementations may override to amortise per-pair
    /// setup but must preserve both properties (the trainer accumulates
    /// the returned losses in pair order, and the golden evaluation
    /// transcript pins the resulting parameters bit-for-bit).
    fn train_batch(&mut self, pairs: &[(Triple, Triple)], lr: f32, losses: &mut Vec<f32>) {
        for &(pos, neg) in pairs {
            losses.push(self.train_pair(pos, neg, lr));
        }
    }

    /// Applies per-epoch constraints (norm projections). Default: nothing.
    fn post_epoch(&mut self) {}

    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;
}
