//! `kglint` — run the static checks over synthetic scenario bundles or
//! over the workspace source tree.
//!
//! ```text
//! kglint [--scenario NAME]... [--seed N] [--strict] [--max-hops H] [--no-split]
//!        [--json] [--json-out FILE]
//! kglint --src [ROOT] [--strict] [--json] [--json-out FILE]
//! ```
//!
//! With no `--scenario` the full synthetic family is checked. `--src`
//! switches to *detlint*, the token-stream source rules (`SA0xx` +
//! `MD006` — see `kgrec_check::srclint`), scanning every crate's `src/`
//! tree under `ROOT` (default `.`).
//!
//! Output: human-readable findings by default; `--json` replaces stdout
//! with a machine-readable document, `--json-out FILE` writes the same
//! document to `FILE` while keeping the human output (what CI uploads
//! as an artifact).
//!
//! Exit codes, both modes: **0** clean (or only findings that don't
//! fail the run), **1** the report fails (errors, or any finding under
//! `--strict`), **2** usage or I/O error.

use kgrec_check::json::{findings_json, json_str};
use kgrec_check::srclint::{self, SrcScanReport};
use kgrec_check::{default_model_hyperparams, CheckBundle, CheckReport, Severity};
use kgrec_data::negative::labeled_eval_set;
use kgrec_data::split::ratio_split;
use kgrec_data::synth::{generate, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn scenario_by_name(name: &str) -> Option<ScenarioConfig> {
    match name {
        "tiny" => Some(ScenarioConfig::tiny()),
        "movielens-100k" => Some(ScenarioConfig::movielens_100k_like()),
        "movielens-1m" => Some(ScenarioConfig::movielens_1m_like()),
        "book-crossing" => Some(ScenarioConfig::book_crossing_like()),
        "lastfm" => Some(ScenarioConfig::lastfm_like()),
        "amazon" => Some(ScenarioConfig::amazon_product_like()),
        "yelp" => Some(ScenarioConfig::yelp_like()),
        "bing-news" => Some(ScenarioConfig::bing_news_like()),
        "weibo" => Some(ScenarioConfig::weibo_like()),
        _ => None,
    }
}

const ALL_SCENARIOS: &[&str] = &[
    "tiny",
    "movielens-100k",
    "movielens-1m",
    "book-crossing",
    "lastfm",
    "amazon",
    "yelp",
    "bing-news",
    "weibo",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: kglint [--scenario NAME]... [--seed N] [--strict] [--max-hops H] [--no-split]\n\
         \x20             [--json] [--json-out FILE]\n\
         \x20      kglint --src [ROOT] [--strict] [--json] [--json-out FILE]\n\
         scenarios: {}",
        ALL_SCENARIOS.join(", ")
    );
    ExitCode::from(2)
}

/// Shared output options.
struct Output {
    /// Replace stdout with the JSON document.
    json: bool,
    /// Also write the JSON document to this file.
    json_out: Option<String>,
}

impl Output {
    /// Emits the JSON document per the flags; returns false on I/O error.
    fn emit(&self, doc: &str) -> bool {
        if self.json {
            println!("{doc}");
        }
        if let Some(path) = &self.json_out {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("kglint: cannot write {path}: {e}");
                return false;
            }
        }
        true
    }
}

/// Renders the source-scan report as the `--json` document.
fn src_json(report: &SrcScanReport, strict: bool) -> String {
    let rules: Vec<String> = srclint::src_rules()
        .iter()
        .map(|r| {
            format!(
                "    {{\"code\": {}, \"severity\": {}, \"summary\": {}}}",
                json_str(r.code()),
                json_str(r.severity().label()),
                json_str(r.summary())
            )
        })
        .collect();
    format!(
        "{{\n  \"generator\": \"kglint\",\n  \"mode\": \"src\",\n  \"strict\": {},\n  \
         \"failed\": {},\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \
         \"errors\": {},\n  \"warnings\": {},\n  \"rules\": [\n{}\n  ],\n  \
         \"findings\": {}\n}}",
        strict,
        report.fails(strict),
        report.files_scanned,
        report.suppressed,
        report.count(Severity::Error),
        report.count(Severity::Warning),
        rules.join(",\n"),
        findings_json(&report.findings, 4)
    )
}

/// Runs the source rules over the workspace under `root`.
fn run_src_scan(root: &str, strict: bool, out: &Output) -> ExitCode {
    let report = match srclint::scan_workspace(std::path::Path::new(root)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kglint: cannot scan workspace under {root}: {e}");
            return ExitCode::from(2);
        }
    };
    if !out.emit(&src_json(&report, strict)) {
        return ExitCode::from(2);
    }
    if !out.json {
        for d in &report.findings {
            println!("{d}");
        }
        println!(
            "kglint: source scan over {} file(s): {} error(s), {} warning(s), {} suppressed",
            report.files_scanned,
            report.count(Severity::Error),
            report.count(Severity::Warning),
            report.suppressed
        );
    }
    if report.fails(strict) {
        eprintln!(
            "kglint: FAILED ({} source finding(s){})",
            report.findings.len(),
            if strict { " in strict mode" } else { "" }
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One checked scenario, for the bundle-mode JSON document.
struct ScenarioResult {
    name: String,
    report: CheckReport,
    users: usize,
    items: usize,
    interactions: usize,
    entities: usize,
    triples: usize,
}

fn bundle_json(results: &[ScenarioResult], strict: bool, failed: bool) -> String {
    let scenarios: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"scenario\": {}, \"users\": {}, \"items\": {}, \"interactions\": {}, \
                 \"entities\": {}, \"triples\": {}, \"errors\": {}, \"warnings\": {}, \
                 \"infos\": {}, \"findings\": {}}}",
                json_str(&r.name),
                r.users,
                r.items,
                r.interactions,
                r.entities,
                r.triples,
                r.report.count(Severity::Error),
                r.report.count(Severity::Warning),
                r.report.count(Severity::Info),
                findings_json(&r.report.diagnostics, 6)
            )
        })
        .collect();
    format!(
        "{{\n  \"generator\": \"kglint\",\n  \"mode\": \"bundle\",\n  \"strict\": {},\n  \
         \"failed\": {},\n  \"scenario_count\": {},\n  \"scenarios\": [\n{}\n  ]\n}}",
        strict,
        failed,
        results.len(),
        scenarios.join(",\n")
    )
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut scenarios: Vec<String> = Vec::new();
    let mut seed = 2024u64;
    let mut strict = false;
    let mut max_hops = 3usize;
    let mut with_split = true;
    let mut src_root: Option<String> = None;
    let mut out = Output { json: false, json_out: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => match args.next() {
                Some(name) => scenarios.push(name),
                None => return usage(),
            },
            "--src" => {
                // Optional ROOT operand; flags keep their meaning.
                src_root = Some(match args.next() {
                    Some(next) if !next.starts_with("--") => next,
                    Some(flag) if flag == "--strict" => {
                        strict = true;
                        ".".to_owned()
                    }
                    Some(flag) if flag == "--json" => {
                        out.json = true;
                        ".".to_owned()
                    }
                    Some(flag) if flag == "--json-out" => match args.next() {
                        Some(path) => {
                            out.json_out = Some(path);
                            ".".to_owned()
                        }
                        None => return usage(),
                    },
                    Some(_) => return usage(),
                    None => ".".to_owned(),
                });
            }
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--max-hops" => match args.next().and_then(|s| s.parse().ok()) {
                Some(h) => max_hops = h,
                None => return usage(),
            },
            "--strict" => strict = true,
            "--json" => out.json = true,
            "--json-out" => match args.next() {
                Some(path) => out.json_out = Some(path),
                None => return usage(),
            },
            "--no-split" => with_split = false,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    if let Some(root) = src_root {
        return run_src_scan(&root, strict, &out);
    }
    if scenarios.is_empty() {
        scenarios = ALL_SCENARIOS.iter().map(|s| (*s).to_string()).collect();
    }

    let mut results: Vec<ScenarioResult> = Vec::new();
    let mut failed = false;
    for name in &scenarios {
        let Some(cfg) = scenario_by_name(name) else {
            eprintln!("kglint: unknown scenario '{name}'");
            return usage();
        };
        let synth = generate(&cfg, seed);
        let split;
        let pairs;
        let mut bundle = CheckBundle::new(&synth.dataset)
            .with_hyperparams(default_model_hyperparams())
            .with_max_hops(max_hops);
        if with_split {
            split = ratio_split(&synth.dataset.interactions, 0.2, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
            bundle = bundle.with_split(&split).with_eval_pairs(&pairs);
        }
        let report = CheckReport::run(&bundle);
        if !out.json {
            println!(
                "== {name}: {} users, {} items, {} interactions, {} entities, {} triples ==",
                synth.dataset.interactions.num_users(),
                synth.dataset.interactions.num_items(),
                synth.dataset.interactions.num_interactions(),
                synth.dataset.graph.num_entities(),
                synth.dataset.graph.num_triples()
            );
            print!("{}", report.render());
        }
        if report.fails(strict) {
            failed = true;
        }
        results.push(ScenarioResult {
            name: name.clone(),
            users: synth.dataset.interactions.num_users(),
            items: synth.dataset.interactions.num_items(),
            interactions: synth.dataset.interactions.num_interactions(),
            entities: synth.dataset.graph.num_entities(),
            triples: synth.dataset.graph.num_triples(),
            report,
        });
    }
    if !out.emit(&bundle_json(&results, strict, failed)) {
        return ExitCode::from(2);
    }
    if failed {
        eprintln!(
            "kglint: FAILED ({})",
            if strict { "errors or warnings in strict mode" } else { "errors" }
        );
        return ExitCode::FAILURE;
    }
    if !out.json {
        println!("kglint: all {} scenario(s) clean", scenarios.len());
    }
    ExitCode::SUCCESS
}
