//! Fixed-size neighbor sampling — the KGCN receptive field.
//!
//! KGCN (survey Section 4.3) samples a *fixed* number of neighbors per
//! entity so the propagation has a bounded, batchable receptive field:
//! sampling is with replacement when the degree is below the sample size.

use crate::graph::KnowledgeGraph;
use crate::ids::{EntityId, RelationId};
use rand::Rng;

/// Samples exactly `k` `(relation, neighbor)` pairs from the out-edges of
/// `e`, with replacement when `degree(e) < k`.
///
/// Returns an empty vector when `e` has no out-edges — callers treat such
/// entities as their own receptive field (KGCN pads with the entity
/// itself; that substitution lives at the model layer where the self
/// relation embedding is available).
pub fn sample_neighbors<R: Rng + ?Sized>(
    graph: &KnowledgeGraph,
    e: EntityId,
    k: usize,
    rng: &mut R,
) -> Vec<(RelationId, EntityId)> {
    // The RNG draw sequence here depends only on the degree and `k` — it
    // must stay identical to the pre-CSR tuple-slice implementation so the
    // golden transcripts hold.
    let degree = graph.degree(e);
    if degree == 0 || k == 0 {
        return Vec::new();
    }
    if degree <= k {
        let mut out = Vec::with_capacity(k);
        // Take everything once, then top up with replacement.
        for i in 0..degree {
            out.push(graph.edge_at(e, i));
        }
        while out.len() < k {
            out.push(graph.edge_at(e, rng.gen_range(0..degree)));
        }
        out
    } else {
        // Partial Fisher–Yates over indices: uniform without replacement.
        let mut idx: Vec<usize> = (0..degree).collect();
        for i in 0..k {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..k].iter().map(|&i| graph.edge_at(e, i)).collect()
    }
}

/// Samples the multi-hop receptive field of `e`: `fields[0]` is `[e]`,
/// `fields[h]` the `k^h` sampled entities at hop `h`, each aligned so that
/// entity `i` of hop `h` has its `k` sampled neighbors at positions
/// `i*k..(i+1)*k` of hop `h+1` (relations recorded alongside).
///
/// Dead-end entities are padded by repeating the entity itself with
/// relation `RelationId(0)` — models treat relation 0 as a generic
/// self/`interact` relation for padding purposes.
pub fn receptive_field<R: Rng + ?Sized>(
    graph: &KnowledgeGraph,
    e: EntityId,
    k: usize,
    hops: usize,
    rng: &mut R,
) -> Vec<Vec<(RelationId, EntityId)>> {
    assert!(k > 0, "receptive_field: k must be positive");
    let mut fields: Vec<Vec<(RelationId, EntityId)>> = Vec::with_capacity(hops + 1);
    fields.push(vec![(RelationId(0), e)]);
    for h in 0..hops {
        let prev = &fields[h];
        let mut next = Vec::with_capacity(prev.len() * k);
        for &(_, ent) in prev {
            let sampled = sample_neighbors(graph, ent, k, rng);
            if sampled.is_empty() {
                for _ in 0..k {
                    next.push((RelationId(0), ent));
                }
            } else {
                next.extend(sampled);
            }
        }
        fields.push(next);
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KgBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (KnowledgeGraph, [EntityId; 3]) {
        let mut b = KgBuilder::new();
        let ty = b.entity_type("t");
        let ea = b.entity("a", ty);
        let eb = b.entity("b", ty);
        let ec = b.entity("c", ty);
        let r = b.relation("r");
        b.triple(ea, r, eb);
        b.triple(ea, r, ec);
        (b.build(false), [ea, eb, ec])
    }

    #[test]
    fn sample_exact_size_with_replacement() {
        let (g, [a, ..]) = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_neighbors(&g, a, 5, &mut rng);
        assert_eq!(s.len(), 5);
        // Every sampled pair is a real edge.
        for &(r, t) in &s {
            assert!(g.contains(a, r, t));
        }
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let (g, [a, ..]) = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let s = sample_neighbors(&g, a, 1, &mut rng);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sample_dead_end_empty() {
        let (g, [_, b, _]) = toy();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample_neighbors(&g, b, 3, &mut rng).is_empty());
    }

    #[test]
    fn receptive_field_shapes() {
        let (g, [a, ..]) = toy();
        let mut rng = StdRng::seed_from_u64(4);
        let f = receptive_field(&g, a, 2, 2, &mut rng);
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].len(), 1);
        assert_eq!(f[1].len(), 2);
        assert_eq!(f[2].len(), 4);
    }

    #[test]
    fn receptive_field_pads_dead_ends_with_self() {
        let (g, [_, b, _]) = toy();
        let mut rng = StdRng::seed_from_u64(5);
        let f = receptive_field(&g, b, 3, 1, &mut rng);
        assert_eq!(f[1].len(), 3);
        assert!(f[1].iter().all(|&(_, t)| t == b));
    }

    #[test]
    fn zero_k_sample_empty() {
        let (g, [a, ..]) = toy();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(sample_neighbors(&g, a, 0, &mut rng).is_empty());
    }
}
