//! ProPPR-lite (Catherine & Cohen 2016): personalized recommendations
//! with probabilistic logic programming.
//!
//! ProPPR grounds logic rules ("recommend items liked by similar users",
//! "recommend items sharing attributes with liked items") into a proof
//! graph and scores by personalized PageRank over it with learned rule
//! weights. On a user–item KG the proof graph *is* the graph itself:
//! this implementation runs random-walk-with-restart from the user's
//! entity with per-relation transition weights, learned by BPR — each
//! relation weight plays the role of one rule weight.

use crate::common::{sample_observed, taxonomy_of};
use crate::pathbased::util::item_of_entity;
use kgrec_core::{CoreError, Recommender, Taxonomy, TrainContext};
use kgrec_data::dataset::UserItemGraph;
use kgrec_data::negative::sample_negative;
use kgrec_data::{ItemId, UserId};
use kgrec_linalg::{par, vector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// ProPPR-lite hyper-parameters.
#[derive(Debug, Clone)]
pub struct ProPprConfig {
    /// Restart probability of the walk.
    pub restart: f32,
    /// Power-iteration steps.
    pub iterations: usize,
    /// Rule-weight learning epochs.
    pub weight_epochs: usize,
    /// Learning rate for the rule (relation) weights.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProPprConfig {
    fn default() -> Self {
        Self { restart: 0.2, iterations: 8, weight_epochs: 6, learning_rate: 0.5, seed: 113 }
    }
}

/// The ProPPR-lite model.
#[derive(Debug)]
pub struct ProPpr {
    /// Hyper-parameters.
    pub config: ProPprConfig,
    /// Learned per-relation rule weights (softplus-positive parameters).
    rule_params: Vec<f32>,
    /// Cached per-user PPR mass over items (recomputed after learning).
    scores: Vec<Vec<f32>>,
    num_items: usize,
}

impl ProPpr {
    /// Creates an unfitted model.
    pub fn new(config: ProPprConfig) -> Self {
        Self { config, rule_params: Vec::new(), scores: Vec::new(), num_items: 0 }
    }

    /// Creates a model with default hyper-parameters.
    pub fn default_config() -> Self {
        Self::new(ProPprConfig::default())
    }

    /// The positive rule weight of a relation.
    fn rule_weight(&self, r: usize) -> f32 {
        vector::softplus(self.rule_params[r])
    }

    /// The learned rule weights, by relation id (after `fit`).
    pub fn rule_weights(&self) -> Vec<f32> {
        (0..self.rule_params.len()).map(|r| self.rule_weight(r)).collect()
    }

    /// Personalized PageRank mass over all entities from one user, using
    /// the model's own rule parameters.
    fn ppr(&self, uig: &UserItemGraph, user: UserId) -> Vec<f32> {
        self.ppr_with(uig, user, &self.rule_params)
    }

    /// [`Self::ppr`] against an explicit parameter vector — the
    /// finite-difference learner probes perturbed parameters without
    /// mutating the model, so probes for different relations can run on
    /// worker threads against a shared frozen `&self`.
    ///
    /// The softplus rule weights and each entity's total out-weight are
    /// invariant across the power iterations, so both are materialised
    /// once up front: softplus runs per *relation* instead of per edge
    /// per iteration. The per-edge update keeps the original expression
    /// shape (`((1−ρ)·m · w_r) / total`, division last), so every mass
    /// value is bit-identical to the unhoisted loop.
    fn ppr_with(&self, uig: &UserItemGraph, user: UserId, params: &[f32]) -> Vec<f32> {
        let g = &uig.graph;
        let n = g.num_entities();
        let src = uig.user_entities[user.index()].index();
        let w: Vec<f32> = params.iter().map(|&p| vector::softplus(p)).collect();
        let totals: Vec<f32> = (0..n)
            .map(|e| {
                g.rel_slice(kgrec_graph::EntityId(e as u32)).iter().map(|&r| w[r.index()]).sum()
            })
            .collect();
        let mut mass = vec![0.0f32; n];
        mass[src] = 1.0;
        let restart = self.config.restart;
        let mut next = vec![0.0f32; n];
        for _ in 0..self.config.iterations {
            next.fill(0.0);
            next[src] += restart;
            for e in 0..n {
                let m = mass[e];
                if m == 0.0 {
                    continue;
                }
                let rels = g.rel_slice(kgrec_graph::EntityId(e as u32));
                let tails = g.tail_slice(kgrec_graph::EntityId(e as u32));
                if rels.is_empty() {
                    // Dangling mass restarts.
                    next[src] += (1.0 - restart) * m;
                    continue;
                }
                let total = totals[e];
                if total <= 0.0 {
                    next[src] += (1.0 - restart) * m;
                    continue;
                }
                let s = (1.0 - restart) * m;
                for (&r, &t) in rels.iter().zip(tails.iter()) {
                    next[t.index()] += s * w[r.index()] / total;
                }
            }
            std::mem::swap(&mut mass, &mut next);
        }
        mass
    }
}

impl Recommender for ProPpr {
    fn name(&self) -> &'static str {
        "ProPPR"
    }

    fn fit_epochs(&self) -> usize {
        self.config.weight_epochs
    }

    fn taxonomy(&self) -> Taxonomy {
        taxonomy_of("ProPPR")
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        let uig = ctx.dataset.user_item_graph(ctx.train);
        let item_map = item_of_entity(&uig);
        self.num_items = ctx.num_items();
        self.rule_params = vec![0.5; uig.graph.num_relations().max(1)];
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let lr = self.config.learning_rate;
        let threads = par::resolve_threads(None);
        // Rule-weight learning: finite-difference BPR on the (few)
        // relation weights — the graph-structured objective has no cheap
        // analytic gradient, and ProPPR's own learner is also an
        // approximate gradient on walk parameters. One user PPR per
        // sampled pair keeps this tractable. Per sample, every relation's
        // probe perturbs the same frozen parameter vector (independent
        // probes → worker threads), and the updates are applied in
        // relation index order afterwards — the resulting weights are
        // identical at any thread count.
        let rels: Vec<usize> = (0..self.rule_params.len()).collect();
        for _ in 0..self.config.weight_epochs {
            for _ in 0..ctx.train.num_interactions().min(60) {
                let Some((u, pos)) = sample_observed(ctx.train, &mut rng) else { break };
                let Some(neg) = sample_negative(ctx.train, u, &mut rng) else { continue };
                let pe = uig.item_entities[pos.index()].index();
                let ne = uig.item_entities[neg.index()].index();
                let base = {
                    let m = self.ppr(&uig, u);
                    m[pe] - m[ne]
                };
                let g0 = -vector::sigmoid(-(base * 50.0)); // scaled BPR slope
                let eps = 0.1;
                let frozen: &Self = self;
                let grads = par::par_map(&rels, threads, |_, &r| {
                    let mut probe = frozen.rule_params.clone();
                    probe[r] += eps;
                    let m = frozen.ppr_with(&uig, u, &probe);
                    let plus = m[pe] - m[ne];
                    g0 * (plus - base) / eps * 50.0
                });
                for (r, grad) in grads.into_iter().enumerate() {
                    self.rule_params[r] -= lr * grad;
                }
            }
        }
        // Final scores from the learned weights: one independent PPR per
        // user, sharded across workers in user index order.
        let users: Vec<u32> = (0..ctx.num_users() as u32).collect();
        let frozen: &Self = self;
        let scores = par::par_map(&users, threads, |_, &u| {
            let mass = frozen.ppr(&uig, UserId(u));
            let mut out = vec![0.0f32; ctx.num_items()];
            for (e, &m) in mass.iter().enumerate() {
                if let Some(it) = item_map[e] {
                    out[it.index()] = m;
                }
            }
            out
        });
        self.scores = scores;
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.scores[user.index()][item.index()]
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::protocol::evaluate_ctr;
    use kgrec_data::negative::labeled_eval_set;
    use kgrec_data::split::ratio_split;
    use kgrec_data::synth::{generate, ScenarioConfig};

    #[test]
    fn beats_chance_on_planted_data() {
        let synth = generate(&ScenarioConfig::tiny(), 42);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = ProPpr::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        let rep = evaluate_ctr(&m, &pairs);
        assert!(rep.auc > 0.6, "AUC {}", rep.auc);
    }

    #[test]
    fn ppr_mass_is_a_distribution() {
        let synth = generate(&ScenarioConfig::tiny(), 3);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = ProPpr::new(ProPprConfig { weight_epochs: 0, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let uig = synth.dataset.user_item_graph(&split.train);
        let mass = m.ppr(&uig, UserId(0));
        let total: f32 = mass.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "total={total}");
        assert!(mass.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn rule_weights_stay_positive() {
        let synth = generate(&ScenarioConfig::tiny(), 4);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = ProPpr::new(ProPprConfig { weight_epochs: 2, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        assert!(m.rule_weights().iter().all(|&w| w > 0.0));
    }
}
