//! The full dataset bundle: interactions + item knowledge graph.
//!
//! Survey Section 4.1 distinguishes two graph constructions:
//!
//! * the **item graph** — items and their attributes only (CKE, DKN, MKR,
//!   RippleNet, KGCN…); here the dataset carries an item↔entity alignment;
//! * the **user–item graph** — users folded into the KG with an `interact`
//!   relation (CFKG, KGAT, and all path-based methods);
//!
//! [`KgDataset`] stores the first and can materialize the second from any
//! training matrix via [`KgDataset::user_item_graph`] (only *train*
//! interactions are folded in — folding test edges would leak labels).

use crate::ids::{ItemId, UserId};
use crate::interactions::InteractionMatrix;
use kgrec_graph::{id32, EntityId, KgBuilder, KnowledgeGraph, RelationId};

/// Name of the interaction relation in materialized user–item graphs.
pub const INTERACT_RELATION: &str = "interact";

/// Name of the user–user friendship relation in materialized user–item
/// graphs (survey §6, "User Side Information").
pub const FRIEND_RELATION: &str = "friend";

/// A recommendation dataset with knowledge-graph side information.
#[derive(Debug, Clone)]
pub struct KgDataset {
    /// All observed interactions (pre-split).
    pub interactions: InteractionMatrix,
    /// The item knowledge graph (items + attribute entities).
    pub graph: KnowledgeGraph,
    /// Alignment: `item_entities[j]` is the graph entity of item `v_j`.
    pub item_entities: Vec<EntityId>,
    /// Optional per-item token lists (synthetic "titles" for the news
    /// scenario; used by DKN-style models). Token ids index a vocabulary
    /// of size [`KgDataset::vocab_size`].
    pub item_words: Option<Vec<Vec<u32>>>,
    /// Vocabulary size when `item_words` is present, else 0.
    pub vocab_size: usize,
    /// Optional user–user social links (survey §6: user side
    /// information). Folded into [`KgDataset::user_item_graph`] as
    /// `friend` edges (both directions).
    pub social_links: Option<Vec<(UserId, UserId)>>,
}

/// A user–item graph materialized from a [`KgDataset`] and a train matrix.
#[derive(Debug, Clone)]
pub struct UserItemGraph {
    /// The combined graph (users + items + attributes).
    pub graph: KnowledgeGraph,
    /// Entity of user `u_i`.
    pub user_entities: Vec<EntityId>,
    /// Entity of item `v_j` in the combined graph.
    pub item_entities: Vec<EntityId>,
    /// The `interact` relation id in the combined graph.
    pub interact: RelationId,
    /// The inverse `interact_inv` relation id.
    pub interact_inv: RelationId,
}

impl KgDataset {
    /// Creates a dataset bundle.
    ///
    /// # Panics
    /// Panics if the alignment length differs from the item count or an
    /// aligned entity is out of range for the graph.
    pub fn new(
        interactions: InteractionMatrix,
        graph: KnowledgeGraph,
        item_entities: Vec<EntityId>,
    ) -> Self {
        assert_eq!(
            item_entities.len(),
            interactions.num_items(),
            "KgDataset: alignment must cover every item"
        );
        for e in &item_entities {
            assert!(e.index() < graph.num_entities(), "KgDataset: aligned entity out of range");
        }
        Self {
            interactions,
            graph,
            item_entities,
            item_words: None,
            vocab_size: 0,
            social_links: None,
        }
    }

    /// Attaches user–user social links (survey §6 extension). Links are
    /// interpreted as undirected friendships; both directions are folded
    /// into the user–item graph.
    pub fn with_social_links(mut self, links: Vec<(UserId, UserId)>) -> Self {
        for &(a, b) in &links {
            assert!(a.index() < self.interactions.num_users(), "social link user out of range");
            assert!(b.index() < self.interactions.num_users(), "social link user out of range");
        }
        self.social_links = Some(links);
        self
    }

    /// Attaches per-item token lists (for text-aware models).
    pub fn with_item_words(mut self, words: Vec<Vec<u32>>, vocab_size: usize) -> Self {
        assert_eq!(
            words.len(),
            self.interactions.num_items(),
            "with_item_words: one token list per item"
        );
        self.item_words = Some(words);
        self.vocab_size = vocab_size;
        self
    }

    /// Entity aligned with item `v`.
    pub fn entity_of(&self, v: ItemId) -> EntityId {
        self.item_entities[v.index()]
    }

    /// Reverse alignment: item for a graph entity, if any.
    pub fn item_of(&self, e: EntityId) -> Option<ItemId> {
        // Linear scan is fine: called only by explanation rendering.
        self.item_entities.iter().position(|&x| x == e).map(|i| ItemId(id32(i)))
    }

    /// Builds the user–item graph for a given training matrix: the item KG
    /// plus one entity per user and `interact`/`interact_inv` edges for
    /// every *training* interaction.
    pub fn user_item_graph(&self, train: &InteractionMatrix) -> UserItemGraph {
        let g = &self.graph;
        let mut b = KgBuilder::new();
        // Recreate entity types, entities and relations with stable ids by
        // inserting them in id order.
        for t in 0..g.num_entity_types() {
            b.entity_type(g.type_name(kgrec_graph::EntityTypeId(id32(t))));
        }
        for e in 0..g.num_entities() {
            let e = EntityId(id32(e));
            b.entity(g.entity_name(e), g.entity_type(e));
        }
        for r in 0..g.num_relations() {
            b.relation(g.relation_name(RelationId(id32(r))));
        }
        for t in g.iter_triples() {
            b.triple(t.head, t.rel, t.tail);
        }
        let user_ty = b.entity_type("user");
        let interact = b.relation(INTERACT_RELATION);
        let interact_inv = b.relation(&format!("{INTERACT_RELATION}_inv"));
        let user_entities: Vec<EntityId> =
            (0..train.num_users()).map(|u| b.entity(&format!("user:{u}"), user_ty)).collect();
        for u in 0..train.num_users() {
            let user = UserId(id32(u));
            let ue = user_entities[u];
            for &item in train.items_of(user) {
                let ie = self.item_entities[item.index()];
                b.triple(ue, interact, ie);
                b.triple(ie, interact_inv, ue);
            }
        }
        // User side information (survey §6): friendships as symmetric
        // `friend` edges between user entities.
        if let Some(links) = &self.social_links {
            let friend = b.relation(FRIEND_RELATION);
            for &(x, y) in links {
                if x != y {
                    b.triple(user_entities[x.index()], friend, user_entities[y.index()]);
                    b.triple(user_entities[y.index()], friend, user_entities[x.index()]);
                }
            }
        }
        // The base graph may already contain *_inv relations; we added our
        // own inverse edges explicitly, so build without auto-inverses.
        let graph = b.build(false);
        UserItemGraph {
            item_entities: self.item_entities.clone(),
            user_entities,
            interact,
            interact_inv,
            graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interactions::Interaction;

    fn toy() -> KgDataset {
        let mut b = KgBuilder::new();
        let tm = b.entity_type("item");
        let tg = b.entity_type("attr");
        let i0 = b.entity("item0", tm);
        let i1 = b.entity("item1", tm);
        let a = b.entity("attr0", tg);
        let r = b.relation("has_attr");
        b.triple(i0, r, a);
        b.triple(i1, r, a);
        let graph = b.build(true);
        let inter = InteractionMatrix::from_interactions(
            2,
            2,
            &[
                Interaction::implicit(UserId(0), ItemId(0)),
                Interaction::implicit(UserId(1), ItemId(1)),
            ],
        );
        KgDataset::new(inter, graph, vec![i0, i1])
    }

    #[test]
    fn alignment_roundtrip() {
        let d = toy();
        let e = d.entity_of(ItemId(1));
        assert_eq!(d.item_of(e), Some(ItemId(1)));
        assert_eq!(d.item_of(EntityId(2)), None); // the attribute entity
    }

    #[test]
    fn user_item_graph_adds_users_and_edges() {
        let d = toy();
        let uig = d.user_item_graph(&d.interactions);
        assert_eq!(uig.user_entities.len(), 2);
        // Users got fresh entities beyond the item KG's.
        assert!(uig.user_entities[0].index() >= d.graph.num_entities());
        // Each train interaction produced interact + interact_inv edges.
        let extra = uig.graph.num_triples() - d.graph.num_triples();
        assert_eq!(extra, 2 * d.interactions.num_interactions());
        // Edge is traversable both ways.
        let ue = uig.user_entities[0];
        let ie = uig.item_entities[0];
        assert!(uig.graph.contains(ue, uig.interact, ie));
        assert!(uig.graph.contains(ie, uig.interact_inv, ue));
    }

    #[test]
    fn user_item_graph_preserves_base_names() {
        let d = toy();
        let uig = d.user_item_graph(&d.interactions);
        assert_eq!(uig.graph.entity_name(EntityId(0)), "item0");
        assert_eq!(uig.graph.relation_name(RelationId(0)), "has_attr");
    }

    #[test]
    #[should_panic(expected = "alignment must cover every item")]
    fn alignment_length_checked() {
        let d = toy();
        let _ = KgDataset::new(d.interactions.clone(), d.graph.clone(), vec![]);
    }

    #[test]
    fn item_words_attach() {
        let d = toy().with_item_words(vec![vec![1, 2], vec![3]], 10);
        assert_eq!(d.vocab_size, 10);
        assert_eq!(d.item_words.as_ref().unwrap()[1], vec![3]);
    }

    #[test]
    fn social_links_fold_into_graph_symmetrically() {
        let d = toy().with_social_links(vec![(UserId(0), UserId(1))]);
        let uig = d.user_item_graph(&d.interactions);
        let friend = uig.graph.relation_by_name(super::FRIEND_RELATION).unwrap();
        let u0 = uig.user_entities[0];
        let u1 = uig.user_entities[1];
        assert!(uig.graph.contains(u0, friend, u1));
        assert!(uig.graph.contains(u1, friend, u0));
    }

    #[test]
    fn self_friendships_dropped() {
        let d = toy().with_social_links(vec![(UserId(0), UserId(0))]);
        let uig = d.user_item_graph(&d.interactions);
        let friend = uig.graph.relation_by_name(super::FRIEND_RELATION).unwrap();
        let u0 = uig.user_entities[0];
        assert!(!uig.graph.contains(u0, friend, u0));
    }

    #[test]
    #[should_panic(expected = "social link user out of range")]
    fn social_links_validated() {
        let _ = toy().with_social_links(vec![(UserId(0), UserId(9))]);
    }
}
