//! Property-based tests for the evaluation metrics.

use kgrec_core::metrics::{auc, hit_rate_at_k, mrr, ndcg_at_k, precision_at_k, recall_at_k};
use proptest::prelude::*;

fn arb_scored() -> impl Strategy<Value = Vec<(f32, bool)>> {
    prop::collection::vec(((-10.0f32..10.0), any::<bool>()), 2..50)
}

fn arb_ranking() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (2u32..40).prop_flat_map(|n| {
        let ranked = Just((0..n).collect::<Vec<u32>>()).prop_shuffle();
        let relevant = prop::collection::btree_set(0..n, 0..(n as usize).min(10))
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>());
        (ranked, relevant)
    })
}

/// Reference membership-by-linear-scan metrics, used to pin down the
/// binary-search implementations in `kgrec_core::metrics`. These mirror
/// the formulas independently; any divergence is a bug in the fast path.
mod reference {
    pub fn precision_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
        if ranked.is_empty() || k == 0 {
            return 0.0;
        }
        let k = k.min(ranked.len());
        let hits = ranked[..k].iter().filter(|i| relevant.contains(i)).count();
        hits as f64 / k as f64
    }

    pub fn recall_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
        if relevant.is_empty() || ranked.is_empty() || k == 0 {
            return 0.0;
        }
        let k = k.min(ranked.len());
        let hits = ranked[..k].iter().filter(|i| relevant.contains(i)).count();
        hits as f64 / relevant.len() as f64
    }

    pub fn ndcg_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
        if relevant.is_empty() || ranked.is_empty() || k == 0 {
            return 0.0;
        }
        let k = k.min(ranked.len());
        let mut dcg = 0.0f64;
        for (rank, item) in ranked[..k].iter().enumerate() {
            if relevant.contains(item) {
                dcg += 1.0 / ((rank + 2) as f64).log2();
            }
        }
        let ideal_hits = relevant.len().min(k);
        let idcg: f64 = (0..ideal_hits).map(|r| 1.0 / ((r + 2) as f64).log2()).sum();
        if idcg == 0.0 {
            0.0
        } else {
            dcg / idcg
        }
    }

    pub fn hit_rate_at_k(ranked: &[u32], relevant: &[u32], k: usize) -> f64 {
        if relevant.is_empty() || ranked.is_empty() || k == 0 {
            return 0.0;
        }
        let k = k.min(ranked.len());
        if ranked[..k].iter().any(|i| relevant.contains(i)) {
            1.0
        } else {
            0.0
        }
    }

    pub fn mrr(ranked: &[u32], relevant: &[u32]) -> f64 {
        for (rank, item) in ranked.iter().enumerate() {
            if relevant.contains(item) {
                return 1.0 / (rank + 1) as f64;
            }
        }
        0.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn binary_search_metrics_match_linear_scan_reference(
        (ranked, relevant) in arb_ranking(),
        k in 0usize..25,
    ) {
        // `relevant` comes from a btree_set, so it is sorted ascending —
        // the documented precondition of the binary-search fast path.
        prop_assert_eq!(
            precision_at_k(&ranked, &relevant, k),
            reference::precision_at_k(&ranked, &relevant, k)
        );
        prop_assert_eq!(
            recall_at_k(&ranked, &relevant, k),
            reference::recall_at_k(&ranked, &relevant, k)
        );
        prop_assert_eq!(
            ndcg_at_k(&ranked, &relevant, k),
            reference::ndcg_at_k(&ranked, &relevant, k)
        );
        prop_assert_eq!(
            hit_rate_at_k(&ranked, &relevant, k),
            reference::hit_rate_at_k(&ranked, &relevant, k)
        );
        prop_assert_eq!(mrr(&ranked, &relevant), reference::mrr(&ranked, &relevant));
    }

    #[test]
    fn auc_total_order_is_permutation_invariant(mut data in arb_scored(), rot in 0usize..50) {
        // With `total_cmp` the sort is a total order, so AUC cannot depend
        // on input order even when scores tie exactly.
        let a = auc(&data);
        let rot = rot % data.len().max(1);
        data.rotate_left(rot);
        prop_assert_eq!(a, auc(&data));
    }

    #[test]
    fn auc_in_unit_interval(data in arb_scored()) {
        if let Some(a) = auc(&data) {
            prop_assert!((0.0..=1.0).contains(&a), "auc={}", a);
        }
    }

    #[test]
    fn auc_label_flip_antisymmetry(mut data in arb_scored()) {
        // Make scores unique to avoid ties.
        for (i, d) in data.iter_mut().enumerate() {
            d.0 += i as f32 * 1e-3;
        }
        let a = auc(&data);
        let flipped: Vec<(f32, bool)> = data.iter().map(|&(s, l)| (s, !l)).collect();
        let b = auc(&flipped);
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert!((a + b - 1.0).abs() < 1e-6, "a={} b={}", a, b);
        }
    }

    #[test]
    fn auc_score_shift_invariant(data in arb_scored(), c in -5.0f32..5.0) {
        let shifted: Vec<(f32, bool)> = data.iter().map(|&(s, l)| (s + c, l)).collect();
        prop_assert_eq!(auc(&data), auc(&shifted));
    }

    #[test]
    fn ranking_metrics_in_unit_interval((ranked, relevant) in arb_ranking(), k in 1usize..20) {
        for m in [
            precision_at_k(&ranked, &relevant, k),
            recall_at_k(&ranked, &relevant, k),
            ndcg_at_k(&ranked, &relevant, k),
            hit_rate_at_k(&ranked, &relevant, k),
            mrr(&ranked, &relevant),
        ] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&m), "metric={}", m);
        }
    }

    #[test]
    fn recall_monotone_in_k((ranked, relevant) in arb_ranking()) {
        let mut prev = 0.0;
        for k in 1..=ranked.len() {
            let r = recall_at_k(&ranked, &relevant, k);
            prop_assert!(r + 1e-9 >= prev, "recall decreased at k={}", k);
            prev = r;
        }
    }

    #[test]
    fn hit_rate_monotone_in_k((ranked, relevant) in arb_ranking()) {
        let mut prev = 0.0;
        for k in 1..=ranked.len() {
            let h = hit_rate_at_k(&ranked, &relevant, k);
            prop_assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn full_list_recall_is_total((ranked, relevant) in arb_ranking()) {
        // Ranking is a permutation of all items, so recall@n = 1 whenever
        // the relevance set is nonempty.
        if !relevant.is_empty() {
            let r = recall_at_k(&ranked, &relevant, ranked.len());
            prop_assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn perfect_ranking_maximizes_ndcg((_, relevant) in arb_ranking(), n in 10u32..40) {
        if relevant.is_empty() || relevant.iter().any(|&r| r >= n) {
            return Ok(());
        }
        // Put all relevant items first.
        let mut ranked: Vec<u32> = relevant.clone();
        for i in 0..n {
            if !relevant.contains(&i) {
                ranked.push(i);
            }
        }
        let perfect = ndcg_at_k(&ranked, &relevant, ranked.len());
        prop_assert!((perfect - 1.0).abs() < 1e-9, "ndcg={}", perfect);
    }

    #[test]
    fn mrr_equals_one_iff_first_is_relevant((ranked, relevant) in arb_ranking()) {
        let m = mrr(&ranked, &relevant);
        if relevant.contains(&ranked[0]) {
            prop_assert!((m - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(m < 1.0);
        }
    }
}
