//! Interaction data, dataset abstractions and synthetic generators.
//!
//! Implements the data side of the survey:
//!
//! * [`interactions`] — the user feedback matrix `R ∈ {0,1}^{m×n}` of
//!   Section 3 (implicit by default, optional explicit ratings), stored
//!   CSR both user-major and item-major;
//! * [`split`] — per-user ratio and leave-one-out train/test splits;
//! * [`negative`] — unobserved-item negative samplers and CTR-style
//!   labeled evaluation sets;
//! * [`dataset`] — [`dataset::KgDataset`]: interactions + item knowledge
//!   graph + the item↔entity alignment, plus construction of the
//!   *user–item graph* variant (users and `interact` edges folded into
//!   the KG, as CFKG / KGAT / the path-based methods require);
//! * [`synth`] — scenario generators standing in for the datasets of
//!   Table 4 (MovieLens, Book-Crossing, Last.FM, Amazon, Yelp, Bing-News,
//!   Weibo): configurable size/sparsity with a *planted* topic model so KG
//!   structure genuinely predicts preference (see `DESIGN.md` §2);
//! * [`loader`] — TSV loaders for real interaction and triple dumps;
//! * [`registry`] — the machine-readable contents of Table 4;
//! * [`faults`] — deterministic dataset corruptions ([`faults::Fault`])
//!   for robustness testing: the fault-matrix suite and
//!   `eval_suite --inject-fault` drive every model through them under the
//!   training supervisor.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // generator loops index parallel tables

pub mod columnar;
pub mod dataset;
pub mod faults;
pub mod ids;
pub mod interactions;
pub mod loader;
pub mod negative;
pub mod registry;
pub mod shard;
pub mod split;
pub mod synth;

pub use columnar::{ColumnarBuilder, ColumnarInteractions};
pub use dataset::KgDataset;
pub use faults::{inject, Fault};
pub use ids::{ItemId, UserId};
pub use interactions::{Interaction, InteractionMatrix};
pub use shard::{EntityShard, ShardPlan, ShardViolation, ShardedDataset, UserShard};
pub use synth::{ScenarioConfig, SyntheticDataset};
