//! Negative sampling over unobserved items.
//!
//! Implicit-feedback training (BPR and all the CTR-style objectives in the
//! survey) contrasts observed pairs with sampled unobserved pairs
//! `(u, v′)` with `R_{uv′} = 0`. The samplers here draw uniformly from the
//! unobserved set by rejection against the interaction matrix — with the
//! standard guard that a user who has interacted with (almost) every item
//! falls back to an exhaustive scan.

use crate::ids::{ItemId, UserId};
use crate::interactions::InteractionMatrix;
use kgrec_graph::id32;
use rand::Rng;

/// Samples one item not interacted by `user`, uniformly.
///
/// Returns `None` when the user has interacted with every item.
pub fn sample_negative<R: Rng + ?Sized>(
    matrix: &InteractionMatrix,
    user: UserId,
    rng: &mut R,
) -> Option<ItemId> {
    let n = matrix.num_items();
    let deg = matrix.user_degree(user);
    if deg >= n {
        return None;
    }
    // Rejection sampling is efficient while the history is a small
    // fraction of the catalog (always true in recommendation data).
    if deg * 2 < n {
        loop {
            let cand = ItemId(rng.gen_range(0..id32(n)));
            if !matrix.contains(user, cand) {
                return Some(cand);
            }
        }
    }
    // Dense-history fallback: pick uniformly among the complement.
    let k = rng.gen_range(0..n - deg);
    let mut seen = 0usize;
    for i in 0..id32(n) {
        if !matrix.contains(user, ItemId(i)) {
            if seen == k {
                return Some(ItemId(i));
            }
            seen += 1;
        }
    }
    unreachable!("complement size was computed as n - deg > 0")
}

/// Samples `k` negatives for a user (with replacement across draws, each
/// draw uniform over unobserved items). Returns fewer than `k` only when
/// the user has no unobserved items.
pub fn sample_negatives<R: Rng + ?Sized>(
    matrix: &InteractionMatrix,
    user: UserId,
    k: usize,
    rng: &mut R,
) -> Vec<ItemId> {
    (0..k).filter_map(|_| sample_negative(matrix, user, rng)).collect()
}

/// A labeled user–item pair for CTR-style evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledPair {
    /// The user.
    pub user: UserId,
    /// The candidate item.
    pub item: ItemId,
    /// `true` for an observed (positive) interaction.
    pub positive: bool,
}

/// Builds a CTR evaluation set: every test interaction as a positive plus
/// `negatives_per_positive` sampled items the user interacted with in
/// *neither* train nor test.
pub fn labeled_eval_set<R: Rng + ?Sized>(
    train: &InteractionMatrix,
    test: &InteractionMatrix,
    negatives_per_positive: usize,
    rng: &mut R,
) -> Vec<LabeledPair> {
    let mut out = Vec::new();
    for (user, item, _) in test.iter() {
        out.push(LabeledPair { user, item, positive: true });
        let mut drawn = 0usize;
        let mut attempts = 0usize;
        let cap = negatives_per_positive * 50 + 100;
        while drawn < negatives_per_positive && attempts < cap {
            attempts += 1;
            if let Some(neg) = sample_negative(train, user, rng) {
                if !test.contains(user, neg) {
                    out.push(LabeledPair { user, item: neg, positive: false });
                    drawn += 1;
                }
            } else {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interactions::Interaction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> InteractionMatrix {
        InteractionMatrix::from_interactions(
            2,
            5,
            &[
                Interaction::implicit(UserId(0), ItemId(0)),
                Interaction::implicit(UserId(0), ItemId(1)),
                Interaction::implicit(UserId(1), ItemId(4)),
            ],
        )
    }

    #[test]
    fn negatives_never_observed() {
        let m = toy();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let neg = sample_negative(&m, UserId(0), &mut rng).unwrap();
            assert!(!m.contains(UserId(0), neg));
        }
    }

    #[test]
    fn full_history_returns_none() {
        let m = InteractionMatrix::from_interactions(
            1,
            2,
            &[
                Interaction::implicit(UserId(0), ItemId(0)),
                Interaction::implicit(UserId(0), ItemId(1)),
            ],
        );
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sample_negative(&m, UserId(0), &mut rng), None);
    }

    #[test]
    fn dense_history_fallback_uniform_support() {
        // User interacted with 3 of 4 items: only item 2 is free.
        let m = InteractionMatrix::from_interactions(
            1,
            4,
            &[
                Interaction::implicit(UserId(0), ItemId(0)),
                Interaction::implicit(UserId(0), ItemId(1)),
                Interaction::implicit(UserId(0), ItemId(3)),
            ],
        );
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            assert_eq!(sample_negative(&m, UserId(0), &mut rng), Some(ItemId(2)));
        }
    }

    #[test]
    fn sample_negatives_count() {
        let m = toy();
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(sample_negatives(&m, UserId(1), 3, &mut rng).len(), 3);
    }

    #[test]
    fn labeled_eval_set_composition() {
        let train = toy();
        let test = InteractionMatrix::from_interactions(
            2,
            5,
            &[Interaction::implicit(UserId(0), ItemId(2))],
        );
        let mut rng = StdRng::seed_from_u64(5);
        let set = labeled_eval_set(&train, &test, 2, &mut rng);
        let pos: Vec<_> = set.iter().filter(|p| p.positive).collect();
        let neg: Vec<_> = set.iter().filter(|p| !p.positive).collect();
        assert_eq!(pos.len(), 1);
        assert_eq!(neg.len(), 2);
        // Negatives avoid both train and test positives.
        for p in neg {
            assert!(!train.contains(p.user, p.item));
            assert!(!test.contains(p.user, p.item));
        }
    }
}
