//! Evaluation protocols: CTR prediction and top-K recommendation.
//!
//! These are the two protocols the surveyed papers report. The CTR
//! protocol scores labeled user–item pairs (positives from the test split
//! plus sampled negatives) and reports AUC / accuracy; the top-K protocol
//! ranks the full catalog per user, excludes training positives, and
//! reports Precision/Recall/NDCG/HitRate at the requested cutoffs plus
//! MRR.
//!
//! Both protocols have `_par` variants that shard the work (pairs /
//! users) across the deterministic worker pool of [`kgrec_linalg::par`];
//! reductions run in fixed input order, so the parallel reports are
//! bit-identical to the serial ones at any thread count.

use crate::metrics;
use crate::recommender::Recommender;
use kgrec_data::negative::LabeledPair;
use kgrec_data::shard::{even_ranges, ShardPlan};
use kgrec_data::{InteractionMatrix, UserId};
use kgrec_linalg::par;

/// CTR-protocol result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtrReport {
    /// Area under the ROC curve.
    pub auc: f64,
    /// Accuracy at the 0.5 sigmoid threshold applied to scores.
    pub accuracy: f64,
    /// Number of evaluated pairs.
    pub pairs: usize,
}

/// Top-K protocol result for one cutoff `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKAtCutoff {
    /// The cutoff.
    pub k: usize,
    /// Mean Precision@K over evaluated users.
    pub precision: f64,
    /// Mean Recall@K.
    pub recall: f64,
    /// Mean NDCG@K.
    pub ndcg: f64,
    /// Mean HitRate@K.
    pub hit_rate: f64,
}

/// Top-K protocol result.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKReport {
    /// Per-cutoff metrics, in the requested cutoff order.
    pub cutoffs: Vec<TopKAtCutoff>,
    /// Mean reciprocal rank (cutoff-free).
    pub mrr: f64,
    /// Number of users with at least one test positive.
    pub users_evaluated: usize,
}

/// Runs the CTR protocol serially: scores every labeled pair with the
/// model. Equivalent to [`evaluate_ctr_par`] with one thread.
///
/// Scores are squashed through a sigmoid for the accuracy threshold;
/// AUC is threshold-free so the squashing does not affect it.
pub fn evaluate_ctr<M: Recommender + ?Sized>(model: &M, pairs: &[LabeledPair]) -> CtrReport {
    evaluate_ctr_par(model, pairs, 1)
}

/// Runs the CTR protocol on up to `threads` workers.
///
/// Pairs are scored in index-addressed chunks and reassembled in input
/// order before the (serial) AUC/accuracy reduction, so the report is
/// bit-identical to the serial protocol for any thread count.
pub fn evaluate_ctr_par<M: Recommender + ?Sized>(
    model: &M,
    pairs: &[LabeledPair],
    threads: usize,
) -> CtrReport {
    let score_one =
        |p: &LabeledPair| (kgrec_linalg::vector::sigmoid(model.score(p.user, p.item)), p.positive);
    let scored: Vec<(f32, bool)> = if threads <= 1 || pairs.len() < 2 {
        pairs.iter().map(score_one).collect()
    } else {
        // Chunked so the per-item pool overhead amortizes over cheap
        // score calls; chunk boundaries cannot affect results because
        // scoring is per-pair and reassembly is in input order.
        let chunks: Vec<&[LabeledPair]> =
            even_ranges(pairs.len(), threads * 4).into_iter().map(|r| &pairs[r]).collect();
        par::par_map(&chunks, threads, |_, c| c.iter().map(score_one).collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    };
    CtrReport {
        auc: metrics::auc(&scored).unwrap_or(0.5),
        accuracy: metrics::accuracy(&scored, 0.5).unwrap_or(0.0),
        pairs: scored.len(),
    }
}

/// Runs the full-ranking top-K protocol serially. Equivalent to
/// [`evaluate_topk_par`] with one thread.
///
/// For each user with test positives, the model ranks all items except
/// the user's *training* positives; test items are the relevance set.
pub fn evaluate_topk<M: Recommender + ?Sized>(
    model: &M,
    train: &InteractionMatrix,
    test: &InteractionMatrix,
    ks: &[usize],
) -> TopKReport {
    evaluate_topk_par(model, train, test, ks, 1)
}

/// Runs the full-ranking top-K protocol on up to `threads` workers.
///
/// The test matrix is cut into [`ShardPlan::balanced`] user-range shards
/// (balanced by test-row count, never splitting a user); each worker
/// ranks its shard's users and computes their per-user metric
/// contributions independently. Shards are flattened in shard order —
/// ascending user order, exactly the serial loop's accumulation order —
/// before the serial mean reduction, so every metric is bit-identical to
/// [`evaluate_topk`] regardless of thread or shard count.
pub fn evaluate_topk_par<M: Recommender + ?Sized>(
    model: &M,
    train: &InteractionMatrix,
    test: &InteractionMatrix,
    ks: &[usize],
    threads: usize,
) -> TopKReport {
    let max_k = ks.iter().copied().max().unwrap_or(0);
    // Per-user contribution: [precision, recall, ndcg, hit] per cutoff,
    // plus MRR. `None` marks users without test positives.
    type UserContribution = Option<(Vec<[f64; 4]>, f64)>;
    let contribute = |u: u32| -> UserContribution {
        let user = UserId(u);
        let relevant: Vec<u32> = test.items_of(user).iter().map(|i| i.0).collect();
        if relevant.is_empty() {
            return None;
        }
        let exclude = train.items_of(user);
        let recs = model.recommend(user, max_k.max(model.num_items()), exclude);
        let ranked: Vec<u32> = recs.iter().map(|(i, _)| i.0).collect();
        let cutoffs: Vec<[f64; 4]> = ks
            .iter()
            .map(|&k| {
                [
                    metrics::precision_at_k(&ranked, &relevant, k),
                    metrics::recall_at_k(&ranked, &relevant, k),
                    metrics::ndcg_at_k(&ranked, &relevant, k),
                    metrics::hit_rate_at_k(&ranked, &relevant, k),
                ]
            })
            .collect();
        Some((cutoffs, metrics::mrr(&ranked, &relevant)))
    };
    // Over-shard 4x so row-imbalanced shards still keep workers busy.
    let plan = ShardPlan::balanced(test.columnar(), threads.max(1) * 4);
    let shard_ids: Vec<usize> = (0..plan.num_shards()).collect();
    let per_shard: Vec<Vec<UserContribution>> =
        par::par_map(&shard_ids, threads, |_, &s| plan.user_range(s).map(contribute).collect());
    let mut sums: Vec<[f64; 4]> = vec![[0.0; 4]; ks.len()];
    let mut mrr_sum = 0.0f64;
    let mut users = 0usize;
    for (cutoffs, mrr) in per_shard.into_iter().flatten().flatten() {
        users += 1;
        for (sum, contribution) in sums.iter_mut().zip(cutoffs) {
            for (s, c) in sum.iter_mut().zip(contribution) {
                *s += c;
            }
        }
        mrr_sum += mrr;
    }
    let denom = users.max(1) as f64;
    TopKReport {
        cutoffs: ks
            .iter()
            .zip(sums.iter())
            .map(|(&k, s)| TopKAtCutoff {
                k,
                precision: s[0] / denom,
                recall: s[1] / denom,
                ndcg: s[2] / denom,
                hit_rate: s[3] / denom,
            })
            .collect(),
        mrr: mrr_sum / denom,
        users_evaluated: users,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::recommender::TrainContext;
    use crate::taxonomy::{Taxonomy, UsageType};
    use kgrec_data::interactions::Interaction;
    use kgrec_data::ItemId;

    /// An oracle that knows the test set: scores test items highest.
    struct Oracle {
        test: InteractionMatrix,
    }

    impl Recommender for Oracle {
        fn name(&self) -> &'static str {
            "Oracle"
        }
        fn taxonomy(&self) -> Taxonomy {
            Taxonomy {
                method: "Oracle",
                venue: "none",
                year: 2026,
                usage: UsageType::EmbeddingBased,
                techniques: &[],
                reference: 0,
            }
        }
        fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
            Ok(())
        }
        fn score(&self, user: UserId, item: ItemId) -> f32 {
            if self.test.contains(user, item) {
                10.0
            } else {
                -10.0
            }
        }
        fn num_items(&self) -> usize {
            self.test.num_items()
        }
    }

    fn toy_split() -> (InteractionMatrix, InteractionMatrix) {
        let train = InteractionMatrix::from_interactions(
            2,
            6,
            &[
                Interaction::implicit(UserId(0), ItemId(0)),
                Interaction::implicit(UserId(1), ItemId(1)),
            ],
        );
        let test = InteractionMatrix::from_interactions(
            2,
            6,
            &[
                Interaction::implicit(UserId(0), ItemId(2)),
                Interaction::implicit(UserId(0), ItemId(3)),
                Interaction::implicit(UserId(1), ItemId(4)),
            ],
        );
        (train, test)
    }

    #[test]
    fn oracle_gets_perfect_topk() {
        let (train, test) = toy_split();
        let model = Oracle { test: test.clone() };
        let rep = evaluate_topk(&model, &train, &test, &[2]);
        assert_eq!(rep.users_evaluated, 2);
        let c = rep.cutoffs[0];
        assert!((c.recall - 1.0).abs() < 1e-12, "recall={}", c.recall);
        assert!((c.ndcg - 1.0).abs() < 1e-12);
        assert_eq!(c.hit_rate, 1.0);
        assert_eq!(rep.mrr, 1.0);
        // User 0 has 2 positives, user 1 has 1 -> precision@2 = (1.0 + 0.5)/2.
        assert!((c.precision - 0.75).abs() < 1e-12);
    }

    #[test]
    fn oracle_gets_perfect_ctr() {
        let (train, test) = toy_split();
        let model = Oracle { test: test.clone() };
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let pairs = kgrec_data::negative::labeled_eval_set(&train, &test, 2, &mut rng);
        let rep = evaluate_ctr(&model, &pairs);
        assert_eq!(rep.auc, 1.0);
        assert!(rep.accuracy > 0.99);
        assert_eq!(rep.pairs, pairs.len());
    }

    #[test]
    fn anti_oracle_gets_zero_auc() {
        let (train, test) = toy_split();
        struct Anti {
            test: InteractionMatrix,
        }
        impl Recommender for Anti {
            fn name(&self) -> &'static str {
                "Anti"
            }
            fn taxonomy(&self) -> Taxonomy {
                Taxonomy {
                    method: "Anti",
                    venue: "none",
                    year: 2026,
                    usage: UsageType::EmbeddingBased,
                    techniques: &[],
                    reference: 0,
                }
            }
            fn fit(&mut self, _ctx: &TrainContext<'_>) -> Result<(), CoreError> {
                Ok(())
            }
            fn score(&self, user: UserId, item: ItemId) -> f32 {
                if self.test.contains(user, item) {
                    -10.0
                } else {
                    10.0
                }
            }
            fn num_items(&self) -> usize {
                self.test.num_items()
            }
        }
        let model = Anti { test: test.clone() };
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
        let pairs = kgrec_data::negative::labeled_eval_set(&train, &test, 2, &mut rng);
        let rep = evaluate_ctr(&model, &pairs);
        assert_eq!(rep.auc, 0.0);
    }

    #[test]
    fn parallel_protocols_are_bit_identical_to_serial() {
        let (train, test) = toy_split();
        let model = Oracle { test: test.clone() };
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let pairs = kgrec_data::negative::labeled_eval_set(&train, &test, 3, &mut rng);
        let ctr_serial = evaluate_ctr(&model, &pairs);
        let topk_serial = evaluate_topk(&model, &train, &test, &[1, 2, 5]);
        for threads in [2, 4, 7] {
            assert_eq!(evaluate_ctr_par(&model, &pairs, threads), ctr_serial);
            assert_eq!(evaluate_topk_par(&model, &train, &test, &[1, 2, 5], threads), topk_serial);
        }
    }

    #[test]
    fn users_without_test_positives_skipped() {
        let train = InteractionMatrix::from_interactions(
            3,
            4,
            &[Interaction::implicit(UserId(0), ItemId(0))],
        );
        let test = InteractionMatrix::from_interactions(
            3,
            4,
            &[Interaction::implicit(UserId(1), ItemId(2))],
        );
        let model = Oracle { test: test.clone() };
        let rep = evaluate_topk(&model, &train, &test, &[1]);
        assert_eq!(rep.users_evaluated, 1);
    }
}
