//! SemRec (Shi et al. 2015): semantic-path user-based recommendation on
//! a weighted HIN.
//!
//! Scores propagate from similar users: `ŷ(u, i) = Σ_l θ_l · Σ_{u'}
//! s^l(u,u')·R(u',i) / Σ_{u'} s^l(u,u')`, where `s^l` is the PathSim
//! user–user similarity under meta-path `l`, and `R(u',i)` is the
//! neighbor's feedback value — the explicit rating when present (the
//! weighted-link formulation of the paper), else 1. Path weights `θ` are
//! learned with BPR.

use crate::common::{sample_observed, taxonomy_of};
use kgrec_core::{CoreError, Recommender, Taxonomy, TrainContext};
use kgrec_data::negative::sample_negative;
use kgrec_data::{InteractionMatrix, ItemId, UserId};
use kgrec_graph::pathsim::{pathsim_matrix, SimilarityMatrix};
use kgrec_graph::MetaPath;
use kgrec_linalg::vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SemRec hyper-parameters.
#[derive(Debug, Clone)]
pub struct SemRecConfig {
    /// Weight-learning epochs.
    pub weight_epochs: usize,
    /// Learning rate for `θ`.
    pub learning_rate: f32,
    /// Neighbors per user kept per meta-path.
    pub max_neighbors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SemRecConfig {
    fn default() -> Self {
        Self { weight_epochs: 15, learning_rate: 0.1, max_neighbors: 30, seed: 61 }
    }
}

/// The SemRec model.
#[derive(Debug)]
pub struct SemRec {
    /// Hyper-parameters.
    pub config: SemRecConfig,
    /// Per-path truncated user–user similarity.
    user_sims: Vec<SimilarityMatrix>,
    theta: Vec<f32>,
    train: Option<InteractionMatrix>,
}

impl SemRec {
    /// Creates an unfitted model.
    pub fn new(config: SemRecConfig) -> Self {
        Self { config, user_sims: Vec::new(), theta: Vec::new(), train: None }
    }

    /// Creates a model with default hyper-parameters.
    pub fn default_config() -> Self {
        Self::new(SemRecConfig::default())
    }

    /// Path-`l` score component for `(user, item)`.
    fn path_score(&self, l: usize, user: UserId, item: ItemId) -> f32 {
        let train = self.train.as_ref().expect("SemRec: fit before score");
        let sim = &self.user_sims[l];
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for &(u2, s) in sim.row(user.index()) {
            den += s;
            let neighbor = UserId(u2);
            if train.contains(neighbor, item) {
                // Weighted HIN: use the rating value when available.
                let items = train.items_of(neighbor);
                let idx = items.binary_search(&item).expect("contains checked");
                let r = train.ratings_of(neighbor)[idx];
                // Workspace convention (`kgrec_linalg::vector::finite_or`):
                // NaN marks an implicit interaction, so any non-finite
                // feedback — the sentinel itself or a corrupted rating —
                // degrades to the unweighted link value 1.
                num += s * vector::finite_or(r / 5.0, 1.0);
            }
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// The learned path weights (after `fit`).
    pub fn path_weights(&self) -> &[f32] {
        &self.theta
    }
}

impl Recommender for SemRec {
    fn name(&self) -> &'static str {
        "SemRec"
    }

    fn taxonomy(&self) -> Taxonomy {
        taxonomy_of("SemRec")
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        let uig = ctx.dataset.user_item_graph(ctx.train);
        let g = &uig.graph;
        // User–user meta-paths: collaborative U-I-U, and U-I-A-I-U per
        // attribute relation.
        let mut metapaths = vec![MetaPath::new(vec![uig.interact, uig.interact_inv])];
        for r in crate::pathbased::util::item_kg_base_relations(&uig) {
            let name = g.relation_name(r);
            if let Some(inv) = g.relation_by_name(&format!("{name}_inv")) {
                metapaths.push(MetaPath::new(vec![uig.interact, r, inv, uig.interact_inv]));
            }
        }
        self.user_sims = metapaths
            .iter()
            .map(|mp| {
                let mut m = pathsim_matrix(g, &uig.user_entities, mp);
                m.truncate_rows(self.config.max_neighbors);
                m
            })
            .collect();
        self.train = Some(ctx.train.clone());
        // Learn θ with BPR on the path scores.
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let l_count = self.user_sims.len();
        self.theta = vec![1.0 / l_count.max(1) as f32; l_count];
        let lr = self.config.learning_rate;
        for _ in 0..self.config.weight_epochs {
            for _ in 0..ctx.train.num_interactions().min(500) {
                let Some((u, pos)) = sample_observed(ctx.train, &mut rng) else { break };
                let Some(neg) = sample_negative(ctx.train, u, &mut rng) else { continue };
                let fp: Vec<f32> = (0..l_count).map(|l| self.path_score(l, u, pos)).collect();
                let fn_: Vec<f32> = (0..l_count).map(|l| self.path_score(l, u, neg)).collect();
                let x = vector::dot(&self.theta, &fp) - vector::dot(&self.theta, &fn_);
                let grad = -vector::sigmoid(-x);
                for l in 0..l_count {
                    self.theta[l] -= lr * grad * (fp[l] - fn_[l]);
                }
            }
        }
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        (0..self.user_sims.len()).map(|l| self.theta[l] * self.path_score(l, user, item)).sum()
    }

    fn num_items(&self) -> usize {
        self.train.as_ref().map_or(0, kgrec_data::InteractionMatrix::num_items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::protocol::evaluate_ctr;
    use kgrec_data::negative::labeled_eval_set;
    use kgrec_data::split::ratio_split;
    use kgrec_data::synth::{generate, ScenarioConfig};

    #[test]
    fn beats_chance_on_planted_data() {
        let synth = generate(&ScenarioConfig::tiny(), 42);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = SemRec::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        let rep = evaluate_ctr(&m, &pairs);
        assert!(rep.auc > 0.6, "AUC {}", rep.auc);
    }

    #[test]
    fn path_scores_bounded() {
        let synth = generate(&ScenarioConfig::tiny(), 3);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = SemRec::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        for l in 0..m.user_sims.len() {
            for u in 0..5u32 {
                for i in 0..5u32 {
                    let s = m.path_score(l, UserId(u), ItemId(i));
                    assert!((0.0..=1.0).contains(&s), "s={s}");
                }
            }
        }
    }

    #[test]
    fn isolated_user_scores_zero() {
        let synth = generate(&ScenarioConfig::tiny(), 4);
        // Remove user 0's history entirely.
        let filtered: Vec<_> = synth
            .dataset
            .interactions
            .iter()
            .filter(|(u, _, _)| u.0 != 0)
            .map(|(u, i, _)| kgrec_data::Interaction::implicit(u, i))
            .collect();
        let train = InteractionMatrix::from_interactions(
            synth.dataset.interactions.num_users(),
            synth.dataset.interactions.num_items(),
            &filtered,
        );
        let mut m = SemRec::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &train)).unwrap();
        // No interactions → no meta-path connectivity → zero score.
        assert_eq!(m.score(UserId(0), ItemId(0)), 0.0);
    }

    #[test]
    fn weights_sum_near_reasonable_range() {
        let synth = generate(&ScenarioConfig::tiny(), 6);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = SemRec::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        assert_eq!(m.path_weights().len(), 3); // U-I-U + two attribute paths
        assert!(m.path_weights().iter().all(|t| t.is_finite()));
    }
}
