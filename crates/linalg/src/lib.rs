//! Dense linear algebra substrate for the `kgrec` workspace.
//!
//! The surveyed knowledge-graph recommenders were originally implemented on
//! top of deep-learning frameworks with automatic differentiation. No such
//! framework is available here, so this crate provides the minimal, fast,
//! dependency-light substrate every model in `kgrec-models` is built on:
//!
//! * [`vector`] — free functions over `&[f32]` slices (dot, axpy, softmax, …);
//! * [`simd`] — the portable 8-lane blocked kernels behind [`vector`]:
//!   autovectorization-friendly fixed-width loops that keep the default
//!   accumulation order bit-identical to scalar code (relaxed only behind
//!   the `fast-math` cargo feature);
//! * [`matrix`] — a row-major dense [`matrix::Matrix`] with the product
//!   kernels the models need (matvec, outer products, Gram updates);
//! * [`embedding`] — [`embedding::EmbeddingTable`], the workhorse container
//!   for entity / relation / user / item latent vectors;
//! * [`init`] — seeded weight initializers (uniform, Xavier, Gaussian);
//! * [`optim`] — SGD / AdaGrad / Adam with support for sparse row updates;
//! * [`nn`] — dense layers, activations and a small MLP with hand-written
//!   backward passes;
//! * [`rnn`] — a vanilla recurrent cell with full back-propagation through
//!   time, used by the path-encoding recommenders (RKGE / KPRN style);
//! * [`stability`] — online loss-curve monitoring ([`stability::LossMonitor`]):
//!   NaN/∞ and divergence detection feeding the training supervisor;
//! * [`par`] — the deterministic worker pool ([`par::par_map`]):
//!   index-addressed sharding with fixed-order reduction, so parallel
//!   evaluation is bit-identical to serial at any thread count;
//! * [`scratch`] — [`scratch::Scratch`], a buffer arena that keeps the
//!   allocator off the per-triple training hot path;
//! * [`gradcheck`] — finite-difference gradient checking used throughout the
//!   test suites to validate every hand-derived gradient.
//!
//! All randomness is seeded explicitly; nothing in this crate reads global
//! RNG state, so training runs are reproducible bit-for-bit on one platform.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Hand-written numeric kernels index several slices in lockstep; the
// iterator rewrites clippy suggests obscure the math being transcribed.
#![allow(clippy::needless_range_loop)]

pub mod embedding;
pub mod gradcheck;
pub mod init;
pub mod matrix;
pub mod nn;
pub mod optim;
pub mod par;
pub mod rnn;
pub mod scratch;
pub mod simd;
pub mod stability;
pub mod vector;

pub use embedding::EmbeddingTable;
pub use matrix::Matrix;
pub use nn::{Activation, Dense, Mlp};
pub use optim::{Adagrad, Adam, Optimizer, Sgd};
pub use scratch::Scratch;
pub use stability::{DivergencePolicy, LossMonitor, LossVerdict};
