//! Reasoning-path explanations (survey Figure 1 and the explainability
//! thread of Section 4).
//!
//! Given a user–item graph, the explainer enumerates the paths connecting
//! the user's entity to a recommended item's entity — each path is a
//! "reason" of the kind the survey illustrates: *Avatar is recommended
//! because it shares the Sci-Fi genre with Interstellar, which Bob
//! watched*. Paths are ranked by a simple saliency: shorter paths first,
//! and among equal lengths, paths through lower-degree (more specific)
//! intermediate entities first.

use kgrec_data::dataset::UserItemGraph;
use kgrec_data::{ItemId, UserId};
use kgrec_graph::paths::{enumerate_paths, Path};

/// One explanation: a reasoning path and its rendered text.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The reasoning path (user entity → … → item entity).
    pub path: Path,
    /// Human-readable rendering.
    pub text: String,
    /// Saliency score (higher = more specific/shorter reasoning).
    pub saliency: f64,
}

/// Path-based explanation engine over a materialized user–item graph.
#[derive(Debug)]
pub struct Explainer<'a> {
    graph: &'a UserItemGraph,
    /// Maximum hops explored (default 3: user → item → attribute → item).
    pub max_hops: usize,
    /// Maximum number of candidate paths enumerated before ranking.
    pub max_paths: usize,
}

impl<'a> Explainer<'a> {
    /// Creates an explainer with the defaults used in the paper's example
    /// (3-hop reasoning, 32 candidate paths).
    pub fn new(graph: &'a UserItemGraph) -> Self {
        Self { graph, max_hops: 3, max_paths: 32 }
    }

    /// Explains why `item` could be recommended to `user`: the ranked
    /// reasoning paths between them. Empty when no path of length
    /// ≤ `max_hops` exists.
    ///
    /// The trivial 1-hop `interact` path (the user already consumed the
    /// item) is excluded — it explains nothing about a *new*
    /// recommendation.
    pub fn explain(&self, user: UserId, item: ItemId) -> Vec<Explanation> {
        let source = self.graph.user_entities[user.index()];
        let target = self.graph.item_entities[item.index()];
        let g = &self.graph.graph;
        let mut out: Vec<Explanation> =
            enumerate_paths(g, source, target, self.max_hops, self.max_paths)
                .into_iter()
                .filter(|p| !(p.len() == 1 && p.relations[0] == self.graph.interact))
                .map(|p| {
                    // Saliency: prefer short paths through specific entities.
                    let mut degree_penalty = 0.0f64;
                    for &e in &p.entities[1..p.entities.len() - 1] {
                        degree_penalty += (1.0 + g.degree(e) as f64).ln();
                    }
                    let saliency = 1.0 / (p.len() as f64 + 0.25 * degree_penalty);
                    let text = p.describe(g);
                    Explanation { path: p, text, saliency }
                })
                .collect();
        out.sort_by(|a, b| {
            b.saliency.partial_cmp(&a.saliency).unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_data::interactions::{Interaction, InteractionMatrix};
    use kgrec_data::KgDataset;
    use kgrec_graph::KgBuilder;

    /// The Figure 1 microcosm: Bob watched Interstellar; Avatar shares its
    /// genre.
    fn figure1_like() -> (KgDataset, InteractionMatrix) {
        let mut b = KgBuilder::new();
        let tm = b.entity_type("movie");
        let tg = b.entity_type("genre");
        let interstellar = b.entity("Interstellar", tm);
        let avatar = b.entity("Avatar", tm);
        let scifi = b.entity("Sci-Fi", tg);
        let r = b.relation("genre");
        b.triple(interstellar, r, scifi);
        b.triple(avatar, r, scifi);
        let graph = b.build(true);
        let train = InteractionMatrix::from_interactions(
            1,
            2,
            &[Interaction::implicit(UserId(0), ItemId(0))],
        );
        (KgDataset::new(train.clone(), graph, vec![interstellar, avatar]), train)
    }

    #[test]
    fn finds_genre_reasoning_path() {
        let (ds, train) = figure1_like();
        let uig = ds.user_item_graph(&train);
        let explainer = Explainer::new(&uig);
        let ex = explainer.explain(UserId(0), ItemId(1));
        assert!(!ex.is_empty(), "a genre path must exist");
        let best = &ex[0];
        assert!(best.text.contains("Interstellar"), "{}", best.text);
        assert!(best.text.contains("Sci-Fi"), "{}", best.text);
        assert!(best.text.contains("Avatar"), "{}", best.text);
        assert_eq!(best.path.len(), 3); // user -> Interstellar -> Sci-Fi -> Avatar
    }

    #[test]
    fn trivial_interact_path_excluded() {
        let (ds, train) = figure1_like();
        let uig = ds.user_item_graph(&train);
        let explainer = Explainer::new(&uig);
        // Explain the item the user already watched: the 1-hop interact
        // edge must not be offered as a reason.
        let ex = explainer.explain(UserId(0), ItemId(0));
        for e in &ex {
            assert!(e.path.len() > 1);
        }
    }

    #[test]
    fn no_connection_means_no_explanations() {
        let mut b = KgBuilder::new();
        let tm = b.entity_type("movie");
        let m0 = b.entity("m0", tm);
        let m1 = b.entity("m1", tm);
        let graph = b.build(true);
        let train = InteractionMatrix::from_interactions(
            1,
            2,
            &[Interaction::implicit(UserId(0), ItemId(0))],
        );
        let ds = KgDataset::new(train.clone(), graph, vec![m0, m1]);
        let uig = ds.user_item_graph(&train);
        let ex = Explainer::new(&uig).explain(UserId(0), ItemId(1));
        assert!(ex.is_empty());
    }

    #[test]
    fn saliency_sorted_descending() {
        let (ds, train) = figure1_like();
        let uig = ds.user_item_graph(&train);
        let ex = Explainer::new(&uig).explain(UserId(0), ItemId(1));
        for w in ex.windows(2) {
            assert!(w[0].saliency >= w[1].saliency);
        }
    }
}
