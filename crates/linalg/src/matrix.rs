//! Row-major dense matrices.
//!
//! [`Matrix`] is the parameter container for projection matrices (TransR's
//! `M_r`, RippleNet's relation matrices `R_i`, dense-layer weights). The
//! kernels here are exactly the ones the hand-written backward passes need:
//! `A·x`, `Aᵀ·x`, rank-1 updates (`A += α·x·yᵀ`) and outer products.

use crate::vector;

/// A dense row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec: size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Matrix–vector product `y = A·x` (`x.len() == cols`).
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for r in 0..self.rows {
            y[r] = vector::dot(self.row(r), x);
        }
        y
    }

    /// Transposed matrix–vector product `y = Aᵀ·x` (`x.len() == rows`).
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t: dimension mismatch");
        let mut y = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            vector::axpy(x[r], self.row(r), &mut y);
        }
        y
    }

    /// Rank-1 update `A += α · x · yᵀ` (`x.len() == rows`, `y.len() == cols`).
    ///
    /// This is the gradient accumulation kernel for any bilinear form
    /// `xᵀ A y`: `∂/∂A (xᵀ A y) = x yᵀ`.
    pub fn rank1_update(&mut self, alpha: f32, x: &[f32], y: &[f32]) {
        assert_eq!(x.len(), self.rows, "rank1_update: row mismatch");
        assert_eq!(y.len(), self.cols, "rank1_update: col mismatch");
        for r in 0..self.rows {
            let s = alpha * x[r];
            vector::axpy(s, y, self.row_mut(r));
        }
    }

    /// Dense matrix product `A·B`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                vector::axpy(a, brow, out.row_mut(r));
            }
        }
        out
    }

    /// Returns the transpose `Aᵀ`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// `A += α · B`, element-wise.
    pub fn add_scaled(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "add_scaled: row mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled: col mismatch");
        vector::axpy(alpha, &other.data, &mut self.data);
    }

    /// Sets every element to zero (for gradient buffers reused across steps).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        vector::norm(&self.data)
    }
}

/// Outer product `x · yᵀ` as a fresh matrix.
pub fn outer(x: &[f32], y: &[f32]) -> Matrix {
    let mut m = Matrix::zeros(x.len(), y.len());
    m.rank1_update(1.0, x, y);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let i = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(i.matvec(&x), x);
    }

    #[test]
    fn matvec_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose_matvec() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = vec![2.0, -1.0];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn rank1_update_matches_outer() {
        let mut a = Matrix::zeros(2, 3);
        a.rank1_update(2.0, &[1.0, -1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(a.data(), &[2.0, 4.0, 6.0, -2.0, -4.0, -6.0]);
        let o = outer(&[1.0, -1.0], &[1.0, 2.0, 3.0]);
        let mut scaled = o.clone();
        scaled.fill_zero();
        scaled.add_scaled(2.0, &o);
        assert_eq!(a, scaled);
    }

    #[test]
    fn matmul_associates_with_matvec() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = vec![5.0, 7.0];
        let ab = a.matmul(&b);
        let lhs = ab.matvec(&x);
        let rhs = a.matvec(&b.matvec(&x));
        for (l, r) in lhs.iter().zip(rhs.iter()) {
            assert!((l - r).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_involutive() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_vec_size_checked() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }
}
