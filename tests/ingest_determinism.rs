//! Incremental-ingest determinism: growing the columnar interaction
//! store by appending batches must be indistinguishable from building it
//! in one shot, and a warm start after an append must resume from the
//! checkpointed generation instead of retraining.
//!
//! Three guarantees are pinned:
//!
//! 1. **Byte-identity of the store** — one batch vs `k` appends over the
//!    same row stream produce byte-identical columns (FNV digest over
//!    every column, ratings compared by bit pattern).
//! 2. **Metric identity** — CTR and top-K reports computed against the
//!    appended store equal the one-shot reports exactly, at 1 and 4
//!    threads.
//! 3. **Warm-start-after-append** — `supervise_fit_checkpointed` on the
//!    grown dataset restores the generation saved before the append and
//!    reports `attempts == 0` (no retraining), per the crash-safe
//!    checkpoint protocol.

use kgrec_core::protocol::{evaluate_ctr_par, evaluate_topk_par};
use kgrec_core::supervisor::{supervise_fit_checkpointed, FitStatus, SupervisorConfig};
use kgrec_core::Recommender;
use kgrec_data::negative::labeled_eval_set;
use kgrec_data::split::ratio_split;
use kgrec_data::{Interaction, InteractionMatrix, ItemId, KgDataset, UserId};
use kgrec_graph::KgBuilder;
use kgrec_models::baselines::{BprMf, BprMfConfig};
use kgrec_store::CheckpointStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

const USERS: usize = 40;
const ITEMS: usize = 30;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("kgrec_ingest_determinism_{}", std::process::id()))
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic, deliberately messy row stream: unsorted, with
/// duplicate `(user, item)` pairs, mixed implicit/rated rows, and
/// timestamps on roughly half the rows.
fn row_stream(seed: u64, rows: usize) -> Vec<Interaction> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows)
        .map(|k| {
            let user = UserId(rng.gen_range(0..USERS as u32));
            let item = ItemId(rng.gen_range(0..ITEMS as u32));
            let rating =
                if rng.gen_range(0..2) == 0 { Some(rng.gen_range(1u32..=5) as f32) } else { None };
            let timestamp = if rng.gen_range(0..2) == 0 { Some(1_000 + k as u64) } else { None };
            Interaction { user, item, rating, timestamp }
        })
        .collect()
}

/// Builds the matrix by one-shot construction over the whole stream.
fn one_shot(rows: &[Interaction]) -> InteractionMatrix {
    InteractionMatrix::from_interactions(USERS, ITEMS, rows)
}

/// Builds the matrix by an initial build over the first chunk followed
/// by `k - 1` appends over the remaining chunks, preserving stream order.
fn k_appends(rows: &[Interaction], k: usize) -> InteractionMatrix {
    let chunk = rows.len().div_ceil(k).max(1);
    let mut parts = rows.chunks(chunk);
    let mut m = InteractionMatrix::from_interactions(USERS, ITEMS, parts.next().unwrap_or(&[]));
    for batch in parts {
        m = m.append(batch);
    }
    m
}

/// A minimal item KG so the supervisor has a dataset to hand to `fit`.
fn toy_dataset(interactions: InteractionMatrix) -> KgDataset {
    let mut b = KgBuilder::new();
    let ty = b.entity_type("item");
    let ents: Vec<_> = (0..ITEMS).map(|i| b.entity(&format!("i{i}"), ty)).collect();
    let attr_ty = b.entity_type("attr");
    let a = b.entity("a0", attr_ty);
    let r = b.relation("attr");
    for &e in &ents {
        b.triple(e, r, a);
    }
    KgDataset::new(interactions, b.build(true), ents)
}

#[test]
fn k_appends_build_byte_identical_store() {
    let rows = row_stream(41, 400);
    let reference = one_shot(&rows);
    assert!(reference.columnar().validate().is_empty());
    let want = reference.columnar().digest();
    for k in [1, 2, 3, 5, 8] {
        let grown = k_appends(&rows, k);
        assert!(grown.columnar().validate().is_empty(), "k={k}");
        assert_eq!(grown.columnar().digest(), want, "k={k} appends diverged from one-shot build");
        assert_eq!(grown.num_interactions(), reference.num_interactions());
    }
}

#[test]
fn appended_store_yields_identical_eval_metrics() {
    let rows = row_stream(42, 500);
    let reference = one_shot(&rows);
    let grown = k_appends(&rows, 4);
    assert_eq!(grown.columnar().digest(), reference.columnar().digest());

    // Same seeds on byte-identical stores must reproduce the split, the
    // labeled pairs, the fitted model, and every metric exactly.
    let reports = [&reference, &grown].map(|m| {
        let split = ratio_split(m, 0.2, 7);
        let mut rng = StdRng::seed_from_u64(9);
        let pairs = labeled_eval_set(&split.train, &split.test, 2, &mut rng);
        let mut model = BprMf::new(BprMfConfig { epochs: 4, ..BprMfConfig::default() });
        let dataset = toy_dataset(m.clone());
        let ctx = kgrec_core::TrainContext { dataset: &dataset, train: &split.train };
        model.fit(&ctx).expect("fit");
        let ctr1 = evaluate_ctr_par(&model, &pairs, 1);
        let ctr4 = evaluate_ctr_par(&model, &pairs, 4);
        let topk1 = evaluate_topk_par(&model, &split.train, &split.test, &[5, 10], 1);
        let topk4 = evaluate_topk_par(&model, &split.train, &split.test, &[5, 10], 4);
        (ctr1, ctr4, topk1, topk4)
    });
    let [(ctr1_a, ctr4_a, topk1_a, topk4_a), (ctr1_b, ctr4_b, topk1_b, topk4_b)] = reports;
    assert_eq!(ctr1_a, ctr1_b, "serial CTR report diverged after append");
    assert_eq!(ctr4_a, ctr4_b, "4-thread CTR report diverged after append");
    assert_eq!(topk1_a, topk1_b, "serial top-K report diverged after append");
    assert_eq!(topk4_a, topk4_b, "4-thread top-K report diverged after append");
    assert_eq!(ctr1_a, ctr4_a, "CTR thread count leaked into the report");
    assert_eq!(topk1_a, topk4_a, "top-K thread count leaked into the report");
}

#[test]
fn warm_start_after_append_resumes_from_checkpoint() {
    let rows = row_stream(43, 300);
    let base = one_shot(&rows[..200]);
    let dataset = toy_dataset(base.clone());
    let config = SupervisorConfig::default();
    let dir = scratch("warm_start_after_append");
    let store = CheckpointStore::open(&dir).expect("open store");

    // Cold fit on the base store: trains and saves generation 1.
    let mut model = BprMf::new(BprMfConfig { epochs: 4, ..BprMfConfig::default() });
    let cold = supervise_fit_checkpointed(&mut model, &dataset, &base, &config, Some(&store));
    assert_eq!(cold.status, FitStatus::Ok);
    assert!(cold.attempts >= 1, "cold start must actually train");

    // Ingest a batch, then "restart": a fresh model over the grown store
    // must warm-start from the saved generation, not retrain.
    let grown = base.append(&rows[200..]);
    assert!(grown.num_interactions() > base.num_interactions());
    let grown_dataset = toy_dataset(grown.clone());
    let mut resumed = BprMf::new(BprMfConfig { epochs: 4, ..BprMfConfig::default() });
    let warm =
        supervise_fit_checkpointed(&mut resumed, &grown_dataset, &grown, &config, Some(&store));
    assert_eq!(warm.status, FitStatus::Ok);
    assert_eq!(warm.attempts, 0, "append must not force a full retrain");
    let reason = warm.reason.expect("warm start reason");
    assert!(reason.contains("warm start"), "unexpected reason: {reason}");

    // The restored factors are the checkpointed ones, bit for bit.
    let saved: Vec<u32> = model.item_factors().data().iter().map(|x| x.to_bits()).collect();
    let restored: Vec<u32> = resumed.item_factors().data().iter().map(|x| x.to_bits()).collect();
    assert_eq!(saved, restored, "warm start restored different bytes");
    let _ = std::fs::remove_dir_all(&dir);
}
