//! PGPR-lite (Xian et al. 2019): policy-guided path reasoning.
//!
//! Recommendation as a Markov decision process on the user–item graph: an
//! agent starts at the user's entity, walks `T` hops, and is rewarded
//! when it lands on an item the scoring function likes. The policy is a
//! bilinear scorer `π(a=(r,e') | u) ∝ exp(e'ᵀ·M·u + b_r)` over the
//! current entity's out-edges, trained with REINFORCE; entity embeddings
//! come from a frozen TransE pre-trained on the same graph (the paper
//! likewise scores rewards with a pre-trained KGE). Recommendations are
//! read off the visit×reward statistics of post-training rollouts, and
//! each recommended item carries the **reasoning path** the agent
//! followed — PGPR's headline feature.

use crate::common::taxonomy_of;
use kgrec_core::{CoreError, Recommender, Taxonomy, TrainContext};
use kgrec_data::{ItemId, UserId};
use kgrec_graph::paths::Path;
use kgrec_graph::{EntityId, RelationId};
use kgrec_kge::{train as kge_train, KgeModel, TrainConfig, TransE};
use kgrec_linalg::{vector, Matrix};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// PGPR-lite hyper-parameters.
#[derive(Debug, Clone)]
pub struct PgprLiteConfig {
    /// TransE embedding dimension.
    pub dim: usize,
    /// Rollout horizon `T`.
    pub horizon: usize,
    /// Training episodes per user.
    pub episodes_per_user: usize,
    /// Evaluation rollouts per user (builds the score table).
    pub eval_rollouts: usize,
    /// Policy learning rate.
    pub learning_rate: f32,
    /// TransE pre-training epochs.
    pub kge_epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PgprLiteConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            horizon: 3,
            episodes_per_user: 30,
            eval_rollouts: 60,
            learning_rate: 0.01,
            kge_epochs: 20,
            seed: 73,
        }
    }
}

/// The PGPR-lite model.
#[derive(Debug)]
pub struct PgprLite {
    /// Hyper-parameters.
    pub config: PgprLiteConfig,
    /// Dense per-user item scores from evaluation rollouts.
    scores: Vec<Vec<f32>>,
    /// Best reasoning path found per (user, item).
    best_paths: Vec<Vec<Option<Path>>>,
    num_items: usize,
}

struct PolicyState {
    kge: TransE,
    m: Matrix,
    rel_bias: Vec<f32>,
}

impl PolicyState {
    /// Unnormalized action scores for the out-edges of `cur`.
    fn action_scores(&self, user_vec: &[f32], actions: &[(RelationId, EntityId)]) -> Vec<f32> {
        let mu = self.m.matvec(user_vec);
        actions
            .iter()
            .map(|&(r, e)| {
                vector::dot(self.kge.entities().row(e.index()), &mu) + self.rel_bias[r.index()]
            })
            .collect()
    }
}

impl PgprLite {
    /// Creates an unfitted model.
    pub fn new(config: PgprLiteConfig) -> Self {
        Self { config, scores: Vec::new(), best_paths: Vec::new(), num_items: 0 }
    }

    /// Creates a model with default hyper-parameters.
    pub fn default_config() -> Self {
        Self::new(PgprLiteConfig::default())
    }

    /// The reasoning path behind a recommendation, when the agent found
    /// one (PGPR's interpretability output).
    pub fn reasoning_path(&self, user: UserId, item: ItemId) -> Option<&Path> {
        self.best_paths[user.index()][item.index()].as_ref()
    }
}

impl Recommender for PgprLite {
    fn name(&self) -> &'static str {
        "PGPR"
    }

    fn taxonomy(&self) -> Taxonomy {
        taxonomy_of("PGPR")
    }

    fn prepare_retry(&mut self, attempt: u32) -> bool {
        self.config.learning_rate *= 0.5;
        self.config.seed = self.config.seed.wrapping_add(u64::from(attempt)).wrapping_mul(31);
        true
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let uig = ctx.dataset.user_item_graph(ctx.train);
        let g = &uig.graph;
        self.num_items = ctx.num_items();
        // Frozen KGE backbone.
        let mut kge =
            TransE::new(&mut rng, g.num_entities(), g.num_relations().max(1), self.config.dim, 1.0);
        kge_train(
            &mut kge,
            g,
            &TrainConfig {
                epochs: self.config.kge_epochs,
                learning_rate: 0.05,
                seed: self.config.seed.wrapping_add(1),
                threads: None,
            },
        );
        let mut policy = PolicyState {
            kge,
            m: Matrix::identity(self.config.dim),
            rel_bias: vec![0.0; g.num_relations().max(1)],
        };
        let item_map = crate::pathbased::util::item_of_entity(&uig);
        let lr = self.config.learning_rate;
        let horizon = self.config.horizon;
        // Reward: TransE plausibility of (user, interact, item), squashed.
        let reward_of = |policy: &PolicyState, u: usize, item_ent: EntityId| -> f32 {
            vector::sigmoid(policy.kge.score(uig.user_entities[u], uig.interact, item_ent) + 2.0)
        };
        // --- REINFORCE training ---
        for u in 0..ctx.num_users() {
            let user_vec = policy.kge.entities().row(uig.user_entities[u].index()).to_vec();
            for _ in 0..self.config.episodes_per_user {
                // Rollout, recording (actions, chosen index, probs).
                let mut cur = uig.user_entities[u];
                // Trajectory record: (available actions, chosen index,
                // action probabilities) per step.
                type Step = (Vec<(RelationId, EntityId)>, usize, Vec<f32>);
                let mut steps: Vec<Step> = Vec::new();
                for _ in 0..horizon {
                    let actions: Vec<(RelationId, EntityId)> = g
                        .rel_slice(cur)
                        .iter()
                        .copied()
                        .zip(g.tail_slice(cur).iter().copied())
                        .collect();
                    if actions.is_empty() {
                        break;
                    }
                    let mut probs = policy.action_scores(&user_vec, &actions);
                    vector::softmax_in_place(&mut probs);
                    // Sample.
                    let mut pick = 0usize;
                    let mut target = rng.gen::<f32>();
                    for (i, &p) in probs.iter().enumerate() {
                        target -= p;
                        pick = i;
                        if target <= 0.0 {
                            break;
                        }
                    }
                    cur = actions[pick].1;
                    steps.push((actions, pick, probs));
                }
                // Terminal reward only when landing on an item not in the
                // user's history (novel recommendation).
                let reward = match item_map[cur.index()] {
                    Some(item) if !ctx.train.contains(UserId(u as u32), item) => {
                        reward_of(&policy, u, cur)
                    }
                    Some(_) => 0.2, // revisiting history: small shaping reward
                    None => 0.0,
                };
                if reward == 0.0 {
                    continue;
                }
                // Policy gradient: ∇ log π(a) = (1[a] − π)·∇scores.
                let mu = policy.m.matvec(&user_vec);
                let _ = mu;
                for (actions, pick, probs) in &steps {
                    for (i, &(r, e)) in actions.iter().enumerate() {
                        let coeff = (if i == *pick { 1.0 } else { 0.0 }) - probs[i];
                        // score = e'ᵀ M u + b_r → dscore/dM = e' uᵀ.
                        let ev = policy.kge.entities().row(e.index()).to_vec();
                        policy.m.rank1_update(lr * reward * coeff, &ev, &user_vec);
                        policy.rel_bias[r.index()] += lr * reward * coeff;
                    }
                }
            }
        }
        // --- Evaluation rollouts: build score table and best paths ---
        let mut scores = vec![vec![0.0f32; ctx.num_items()]; ctx.num_users()];
        let mut best_paths: Vec<Vec<Option<Path>>> =
            vec![vec![None; ctx.num_items()]; ctx.num_users()];
        for u in 0..ctx.num_users() {
            let user_vec = policy.kge.entities().row(uig.user_entities[u].index()).to_vec();
            for _ in 0..self.config.eval_rollouts {
                let mut cur = uig.user_entities[u];
                let mut ents = vec![cur];
                let mut rels: Vec<RelationId> = Vec::new();
                for _ in 0..horizon {
                    let actions: Vec<(RelationId, EntityId)> = g
                        .rel_slice(cur)
                        .iter()
                        .copied()
                        .zip(g.tail_slice(cur).iter().copied())
                        .collect();
                    if actions.is_empty() {
                        break;
                    }
                    let mut probs = policy.action_scores(&user_vec, &actions);
                    vector::softmax_in_place(&mut probs);
                    let mut pick = 0usize;
                    let mut target = rng.gen::<f32>();
                    for (i, &p) in probs.iter().enumerate() {
                        target -= p;
                        pick = i;
                        if target <= 0.0 {
                            break;
                        }
                    }
                    cur = actions[pick].1;
                    ents.push(cur);
                    rels.push(actions[pick].0);
                    if let Some(item) = item_map[cur.index()] {
                        let r = reward_of(&policy, u, cur);
                        scores[u][item.index()] += r;
                        let slot = &mut best_paths[u][item.index()];
                        if slot.is_none() {
                            *slot = Some(Path { entities: ents.clone(), relations: rels.clone() });
                        }
                    }
                }
            }
        }
        self.scores = scores;
        self.best_paths = best_paths;
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.scores[user.index()][item.index()]
    }

    fn num_items(&self) -> usize {
        self.num_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::protocol::evaluate_topk;
    use kgrec_data::split::ratio_split;
    use kgrec_data::synth::{generate, ScenarioConfig};

    #[test]
    fn finds_test_items_better_than_nothing() {
        let synth = generate(&ScenarioConfig::tiny(), 42);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = PgprLite::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let rep = evaluate_topk(&m, &split.train, &split.test, &[10]);
        // PGPR only scores reached items; on the tiny planted data the
        // policy must still do clearly better than the 10/60 ≈ 0.17
        // random hit-rate baseline.
        assert!(rep.cutoffs[0].hit_rate > 0.25, "hit rate {}", rep.cutoffs[0].hit_rate);
    }

    #[test]
    fn reasoning_paths_start_at_user_end_at_item() {
        let synth = generate(&ScenarioConfig::tiny(), 1);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = PgprLite::new(PgprLiteConfig {
            episodes_per_user: 5,
            eval_rollouts: 20,
            ..Default::default()
        });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let mut found = false;
        for u in 0..synth.dataset.interactions.num_users() {
            for i in 0..synth.dataset.interactions.num_items() {
                if let Some(p) = m.reasoning_path(UserId(u as u32), ItemId(i as u32)) {
                    found = true;
                    assert!(!p.is_empty() && p.len() <= m.config.horizon);
                }
            }
        }
        assert!(found, "at least one reasoning path must be recorded");
    }

    #[test]
    fn scores_nonnegative_and_bounded_by_rollouts() {
        let synth = generate(&ScenarioConfig::tiny(), 2);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = PgprLite::new(PgprLiteConfig {
            episodes_per_user: 2,
            eval_rollouts: 10,
            ..Default::default()
        });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        for u in 0..synth.dataset.interactions.num_users() as u32 {
            for i in 0..synth.dataset.interactions.num_items() as u32 {
                let s = m.score(UserId(u), ItemId(i));
                assert!(s >= 0.0);
                // Each rollout can add at most `horizon` rewards ≤ 1.
                assert!(s <= (m.config.eval_rollouts * m.config.horizon) as f32);
            }
        }
    }
}
