//! Generation-numbered checkpoint directories.
//!
//! On-disk layout:
//!
//! ```text
//! <dir>/
//!   gen-000001/model.snap     oldest retained generation
//!   gen-000002/model.snap
//!   gen-000003/model.snap     newest generation
//!   MANIFEST                  human-readable ledger of retained generations
//!   LAST_GOOD                 number of the generation to try first
//! ```
//!
//! Every file is written through [`crate::atomic::write_atomic`], so a
//! crash at any point leaves a directory the loader can still interpret.
//! The bookkeeping files are *hints*, not trust anchors: recovery survives
//! a missing manifest or a dangling last-good pointer by falling back to a
//! directory scan, and trust comes from each snapshot's own CRCs.
//!
//! Recovery order in [`CheckpointStore::load_into`]:
//! 1. the generation named by `LAST_GOOD`, if any;
//! 2. every other on-disk generation, newest first;
//! 3. give up with [`StoreError::NoUsableGeneration`] — the caller's cue
//!    to fall back to fresh training.

use crate::error::StoreError;
use crate::persist::{read_verified, snapshot_bytes, Persistable};
use crate::snapshot::SnapshotReader;
use crate::{atomic::write_atomic, crc::crc32};
use std::fs;
use std::path::{Path, PathBuf};

/// File name of the snapshot inside each generation directory.
pub const SNAPSHOT_FILE: &str = "model.snap";
/// File name of the manifest ledger.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// File name of the last-good pointer.
pub const LAST_GOOD_FILE: &str = "LAST_GOOD";
const MANIFEST_HEADER: &str = "kgrec-checkpoint-manifest v1";

/// One manifest ledger entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationInfo {
    /// Generation number.
    pub number: u64,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// CRC32 of the entire snapshot file.
    pub crc: u32,
    /// Free-form note recorded at save time (e.g. `epoch=4 loss=0.1234`).
    pub note: String,
}

/// Outcome of a successful recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Generation the model state was restored from.
    pub generation: u64,
    /// Generations that were tried first and rejected, with the reason.
    pub skipped: Vec<(u64, String)>,
}

/// A generation-numbered checkpoint directory for one model.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("create checkpoint dir {}", dir.display()), e))?;
        Ok(Self { dir, retain: 3 })
    }

    /// Sets how many generations to keep (minimum 1). Default: 3.
    #[must_use]
    pub fn with_retention(mut self, keep: usize) -> Self {
        self.retain = keep.max(1);
        self
    }

    /// The checkpoint directory root.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the manifest ledger.
    #[must_use]
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    /// Path of the last-good pointer file.
    #[must_use]
    pub fn last_good_path(&self) -> PathBuf {
        self.dir.join(LAST_GOOD_FILE)
    }

    /// Directory of generation `n`.
    #[must_use]
    pub fn generation_dir(&self, n: u64) -> PathBuf {
        self.dir.join(format!("gen-{n:06}"))
    }

    /// Snapshot path of generation `n`.
    #[must_use]
    pub fn snapshot_path(&self, n: u64) -> PathBuf {
        self.generation_dir(n).join(SNAPSHOT_FILE)
    }

    /// Generation numbers currently on disk, ascending. Malformed directory
    /// names are ignored — the scan is a recovery path and must not fail on
    /// litter.
    #[must_use]
    pub fn generations(&self) -> Vec<u64> {
        let mut out = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if let Some(n) =
                    name.to_str().and_then(|s| s.strip_prefix("gen-")).and_then(|s| s.parse().ok())
                {
                    if self.snapshot_path(n).exists() {
                        out.push(n);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The generation named by the last-good pointer, if the pointer file
    /// exists and parses.
    #[must_use]
    pub fn last_good(&self) -> Option<u64> {
        let text = fs::read_to_string(self.last_good_path()).ok()?;
        text.trim().parse().ok()
    }

    /// Parses the manifest ledger. A missing manifest yields an empty list
    /// (it is a hint, not a trust anchor); a malformed one is an error.
    ///
    /// # Errors
    /// [`StoreError::Manifest`] if the file exists but cannot be parsed.
    pub fn manifest(&self) -> Result<Vec<GenerationInfo>, StoreError> {
        let path = self.manifest_path();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::io(format!("read {}", path.display()), e)),
        };
        let mut lines = text.lines();
        match lines.next() {
            Some(MANIFEST_HEADER) => {}
            other => {
                return Err(StoreError::Manifest {
                    detail: format!("bad manifest header: {other:?}"),
                })
            }
        }
        let mut out = Vec::new();
        for line in lines {
            if line.is_empty() || line.starts_with("model ") || line.starts_with("config ") {
                continue;
            }
            out.push(parse_manifest_line(line)?);
        }
        Ok(out)
    }

    /// Saves `model` as the next generation, updates the manifest and the
    /// last-good pointer, and prunes generations beyond the retention
    /// policy. Returns the new generation number.
    ///
    /// # Errors
    /// Encoding or I/O errors; on failure the previous generations and
    /// pointer are left intact.
    pub fn save(&self, model: &dyn Persistable, note: &str) -> Result<u64, StoreError> {
        let bytes = snapshot_bytes(model)?;
        let next = self.generations().last().copied().unwrap_or(0) + 1;
        let gen_dir = self.generation_dir(next);
        fs::create_dir_all(&gen_dir)
            .map_err(|e| StoreError::io(format!("create {}", gen_dir.display()), e))?;
        write_atomic(&self.snapshot_path(next), &bytes)?;

        // Prune before rewriting the ledger so the manifest reflects what
        // is actually on disk. Never prune the generation just written.
        let mut gens = self.generations();
        while gens.len() > self.retain {
            let victim = gens.remove(0);
            if victim == next {
                break;
            }
            let _ = fs::remove_dir_all(self.generation_dir(victim));
        }

        let entry = GenerationInfo {
            number: next,
            bytes: bytes.len() as u64,
            crc: crc32(&bytes),
            note: note.replace(['\n', '\r'], " "),
        };
        self.rewrite_manifest(model, &entry)?;
        write_atomic(&self.last_good_path(), format!("{next}\n").as_bytes())?;
        Ok(next)
    }

    fn rewrite_manifest(
        &self,
        model: &dyn Persistable,
        new_entry: &GenerationInfo,
    ) -> Result<(), StoreError> {
        let retained = self.generations();
        let mut previous = self.manifest().unwrap_or_default();
        previous.retain(|e| retained.contains(&e.number) && e.number != new_entry.number);
        previous.push(new_entry.clone());
        previous.sort_by_key(|e| e.number);

        let mut text = String::new();
        text.push_str(MANIFEST_HEADER);
        text.push('\n');
        text.push_str(&format!("model {}\n", model.snapshot_id()));
        text.push_str(&format!("config {:016x}\n", model.config_hash()));
        for e in &previous {
            text.push_str(&format!(
                "gen {} bytes={} crc={:08x} note={}\n",
                e.number, e.bytes, e.crc, e.note
            ));
        }
        write_atomic(&self.manifest_path(), text.as_bytes())
    }

    /// Restores the most recent usable generation into `model`.
    ///
    /// Tries the last-good pointer first, then every other generation
    /// newest-first. Each rejected candidate is recorded in
    /// [`Recovery::skipped`] with the reason.
    ///
    /// # Errors
    /// [`StoreError::NoUsableGeneration`] when every candidate is rejected
    /// — the caller should fall back to fresh training.
    pub fn load_into(&self, model: &mut dyn Persistable) -> Result<Recovery, StoreError> {
        let mut candidates = Vec::new();
        if let Some(lg) = self.last_good() {
            candidates.push(lg);
        }
        let mut gens = self.generations();
        gens.reverse();
        for g in gens {
            if !candidates.contains(&g) {
                candidates.push(g);
            }
        }

        let mut skipped = Vec::new();
        for g in candidates {
            match SnapshotReader::open(&self.snapshot_path(g))
                .and_then(|reader| read_verified(&reader, model))
            {
                Ok(()) => return Ok(Recovery { generation: g, skipped }),
                Err(e) => skipped.push((g, e.to_string())),
            }
        }
        Err(StoreError::NoUsableGeneration { tried: skipped.len() })
    }
}

fn parse_manifest_line(line: &str) -> Result<GenerationInfo, StoreError> {
    let bad = || StoreError::Manifest { detail: format!("bad manifest line: {line}") };
    let rest = line.strip_prefix("gen ").ok_or_else(bad)?;
    let (num, rest) = rest.split_once(' ').ok_or_else(bad)?;
    let number = num.parse().map_err(|_| bad())?;
    let (bytes_kv, rest) = rest.split_once(' ').ok_or_else(bad)?;
    let bytes = bytes_kv.strip_prefix("bytes=").ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let (crc_kv, rest) = rest.split_once(' ').ok_or_else(bad)?;
    let crc_hex = crc_kv.strip_prefix("crc=").ok_or_else(bad)?;
    let crc = u32::from_str_radix(crc_hex, 16).map_err(|_| bad())?;
    let note = rest.strip_prefix("note=").ok_or_else(bad)?.to_string();
    Ok(GenerationInfo { number, bytes, crc, note })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Section, SnapshotWriter};

    struct Probe {
        values: Vec<f32>,
    }

    impl Persistable for Probe {
        fn snapshot_id(&self) -> &'static str {
            "probe"
        }
        fn write_state(&self, writer: &mut SnapshotWriter) -> Result<(), StoreError> {
            let mut s = Section::new();
            s.put_u64(self.values.len() as u64);
            s.put_f32s(&self.values);
            writer.add("values", s)
        }
        fn read_state(&mut self, reader: &SnapshotReader) -> Result<(), StoreError> {
            let mut c = reader.section("values")?;
            let n = c.take_u64()? as usize;
            if n != self.values.len() {
                return Err(StoreError::ShapeMismatch {
                    section: "values".to_string(),
                    detail: format!("stored {n}, live {}", self.values.len()),
                });
            }
            self.values.copy_from_slice(&c.take_f32s(n)?);
            Ok(())
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kgrec_store_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_assigns_increasing_generations_and_updates_pointer() {
        let dir = scratch("gens");
        let store = CheckpointStore::open(&dir).expect("open");
        let probe = Probe { values: vec![1.0, 2.0] };
        assert_eq!(store.save(&probe, "first").expect("save"), 1);
        assert_eq!(store.save(&probe, "second").expect("save"), 2);
        assert_eq!(store.generations(), vec![1, 2]);
        assert_eq!(store.last_good(), Some(2));
        let manifest = store.manifest().expect("manifest");
        assert_eq!(manifest.len(), 2);
        assert_eq!(manifest[1].note, "second");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_restores_newest_generation() {
        let dir = scratch("load");
        let store = CheckpointStore::open(&dir).expect("open");
        store.save(&Probe { values: vec![1.0, 1.0] }, "g1").expect("save");
        store.save(&Probe { values: vec![2.5, -2.5] }, "g2").expect("save");
        let mut restored = Probe { values: vec![0.0, 0.0] };
        let rec = store.load_into(&mut restored).expect("load");
        assert_eq!(rec.generation, 2);
        assert!(rec.skipped.is_empty());
        assert_eq!(restored.values[0].to_bits(), 2.5f32.to_bits());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = scratch("fallback");
        let store = CheckpointStore::open(&dir).expect("open");
        store.save(&Probe { values: vec![1.0] }, "good").expect("save");
        store.save(&Probe { values: vec![9.0] }, "doomed").expect("save");
        // Flip a payload bit in generation 2.
        let path = store.snapshot_path(2);
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");

        let mut restored = Probe { values: vec![0.0] };
        let rec = store.load_into(&mut restored).expect("load");
        assert_eq!(rec.generation, 1);
        assert_eq!(rec.skipped.len(), 1);
        assert_eq!(rec.skipped[0].0, 2);
        assert_eq!(restored.values[0].to_bits(), 1.0f32.to_bits());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_reports_no_usable_generation() {
        let dir = scratch("empty");
        let store = CheckpointStore::open(&dir).expect("open");
        let mut probe = Probe { values: vec![0.0] };
        assert!(matches!(
            store.load_into(&mut probe),
            Err(StoreError::NoUsableGeneration { tried: 0 })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_prunes_oldest_but_keeps_last_good() {
        let dir = scratch("retain");
        let store = CheckpointStore::open(&dir).expect("open").with_retention(2);
        let probe = Probe { values: vec![4.0] };
        for note in ["a", "b", "c", "d"] {
            store.save(&probe, note).expect("save");
        }
        assert_eq!(store.generations(), vec![3, 4]);
        assert_eq!(store.last_good(), Some(4));
        let manifest = store.manifest().expect("manifest");
        assert_eq!(manifest.iter().map(|e| e.number).collect::<Vec<_>>(), vec![3, 4]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dangling_last_good_is_survivable() {
        let dir = scratch("dangling");
        let store = CheckpointStore::open(&dir).expect("open");
        store.save(&Probe { values: vec![7.0] }, "only").expect("save");
        write_atomic(&store.last_good_path(), b"999999\n").expect("dangle");
        let mut restored = Probe { values: vec![0.0] };
        let rec = store.load_into(&mut restored).expect("load");
        assert_eq!(rec.generation, 1);
        assert_eq!(rec.skipped.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips_notes() {
        let line = "gen 12 bytes=3456 crc=deadbeef note=epoch=3 loss=0.5";
        let info = parse_manifest_line(line).expect("parse");
        assert_eq!(info.number, 12);
        assert_eq!(info.bytes, 3456);
        assert_eq!(info.crc, 0xDEAD_BEEF);
        assert_eq!(info.note, "epoch=3 loss=0.5");
    }
}
