//! Embedding tables: the latent-vector containers of every surveyed model.
//!
//! [`EmbeddingTable`] stores `n` rows of dimension `d` contiguously, indexed
//! by dense `usize` ids (the id newtypes of `kgrec-graph` / `kgrec-data`
//! convert to row indices). Contiguous storage plus dense-ids-instead-of-
//! hash-maps follows the performance guidance this workspace is built under.

use crate::init;
use crate::vector;
use rand::Rng;

/// A dense `n × d` table of latent vectors.
#[derive(Debug, PartialEq)]
pub struct EmbeddingTable {
    dim: usize,
    data: Vec<f32>,
}

impl Clone for EmbeddingTable {
    fn clone(&self) -> Self {
        Self { dim: self.dim, data: self.data.clone() }
    }

    /// Reuses the existing allocation when capacities allow, so repeated
    /// snapshots of a model (`train_guarded`) stop hitting the allocator.
    fn clone_from(&mut self, source: &Self) {
        self.dim = source.dim;
        self.data.clone_from(&source.data);
    }
}

impl EmbeddingTable {
    /// Creates a zero-initialized table with `n` rows of dimension `dim`.
    pub fn zeros(n: usize, dim: usize) -> Self {
        assert!(dim > 0, "EmbeddingTable: dim must be positive");
        Self { dim, data: vec![0.0; n * dim] }
    }

    /// Creates a table initialized with `U[-scale, scale)`.
    pub fn uniform<R: Rng + ?Sized>(rng: &mut R, n: usize, dim: usize, scale: f32) -> Self {
        let mut t = Self::zeros(n, dim);
        init::uniform(rng, &mut t.data, -scale, scale);
        t
    }

    /// Creates a table with the TransE initialization `U[-6/√d, 6/√d)`.
    pub fn transe_init<R: Rng + ?Sized>(rng: &mut R, n: usize, dim: usize) -> Self {
        let mut t = Self::zeros(n, dim);
        init::transe_uniform(rng, &mut t.data, dim);
        t
    }

    /// Creates a table initialized with Xavier-uniform fan `(dim, dim)`.
    pub fn xavier<R: Rng + ?Sized>(rng: &mut R, n: usize, dim: usize) -> Self {
        let mut t = Self::zeros(n, dim);
        init::xavier_uniform(rng, &mut t.data, dim, dim);
        t
    }

    /// Creates a table initialized with `N(0, std²)`.
    pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, n: usize, dim: usize, std: f32) -> Self {
        let mut t = Self::zeros(n, dim);
        init::gaussian(rng, &mut t.data, 0.0, std);
        t
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the table has zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Embedding dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Immutable row accessor.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable row accessor.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Two distinct mutable rows at once (for pairwise update rules).
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn rows_mut2(&mut self, a: usize, b: usize) -> (&mut [f32], &mut [f32]) {
        assert_ne!(a, b, "rows_mut2: identical indices");
        let d = self.dim;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * d);
            (&mut lo[a * d..(a + 1) * d], &mut hi[..d])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * d);
            let bslice = &mut lo[b * d..(b + 1) * d];
            (&mut hi[..d], bslice)
        }
    }

    /// Raw flat parameter view (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Raw flat mutable parameter view (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Applies `row += alpha * delta` to row `i`.
    #[inline]
    pub fn add_to_row(&mut self, i: usize, alpha: f32, delta: &[f32]) {
        vector::axpy(alpha, delta, self.row_mut(i));
    }

    /// Normalizes every row to unit Euclidean norm (zero rows untouched).
    pub fn normalize_rows(&mut self) {
        for i in 0..self.len() {
            vector::normalize(self.row_mut(i));
        }
    }

    /// Projects every row onto the Euclidean ball of radius `r`.
    pub fn project_rows_to_ball(&mut self, r: f32) {
        for i in 0..self.len() {
            vector::project_to_ball(self.row_mut(i), r);
        }
    }

    /// Dot product between two rows of (possibly different) tables.
    #[inline]
    pub fn row_dot(&self, i: usize, other: &EmbeddingTable, j: usize) -> f32 {
        vector::dot(self.row(i), other.row(j))
    }

    /// Mean of a set of rows into a fresh vector; zero vector when `ids` is
    /// empty (the standard convention for users with no history).
    pub fn mean_of_rows(&self, ids: &[usize]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        if ids.is_empty() {
            return out;
        }
        for &i in ids {
            vector::axpy(1.0, self.row(i), &mut out);
        }
        vector::scale(&mut out, 1.0 / ids.len() as f32);
        out
    }

    /// Sum of squared parameters (for L2 regularization reporting).
    pub fn l2_norm_sq(&self) -> f32 {
        vector::norm_sq(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rows_are_disjoint_slices() {
        let mut t = EmbeddingTable::zeros(3, 4);
        t.row_mut(1).fill(2.0);
        assert_eq!(t.row(0), &[0.0; 4]);
        assert_eq!(t.row(1), &[2.0; 4]);
        assert_eq!(t.row(2), &[0.0; 4]);
    }

    #[test]
    fn rows_mut2_both_orders() {
        let mut t = EmbeddingTable::zeros(4, 2);
        {
            let (a, b) = t.rows_mut2(1, 3);
            a.fill(1.0);
            b.fill(3.0);
        }
        {
            let (a, b) = t.rows_mut2(2, 0);
            a.fill(2.0);
            b.fill(0.5);
        }
        assert_eq!(t.row(0), &[0.5, 0.5]);
        assert_eq!(t.row(1), &[1.0, 1.0]);
        assert_eq!(t.row(2), &[2.0, 2.0]);
        assert_eq!(t.row(3), &[3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "identical indices")]
    fn rows_mut2_same_index_panics() {
        let mut t = EmbeddingTable::zeros(2, 2);
        let _ = t.rows_mut2(1, 1);
    }

    #[test]
    fn normalize_rows_unit() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = EmbeddingTable::uniform(&mut rng, 5, 8, 1.0);
        t.normalize_rows();
        for i in 0..5 {
            assert!((vector::norm(t.row(i)) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn mean_of_rows_empty_is_zero() {
        let t = EmbeddingTable::zeros(2, 3);
        assert_eq!(t.mean_of_rows(&[]), vec![0.0; 3]);
    }

    #[test]
    fn mean_of_rows_average() {
        let mut t = EmbeddingTable::zeros(2, 2);
        t.row_mut(0).copy_from_slice(&[1.0, 3.0]);
        t.row_mut(1).copy_from_slice(&[3.0, 5.0]);
        assert_eq!(t.mean_of_rows(&[0, 1]), vec![2.0, 4.0]);
    }

    #[test]
    fn seeded_tables_reproducible() {
        let a = EmbeddingTable::xavier(&mut StdRng::seed_from_u64(11), 4, 4);
        let b = EmbeddingTable::xavier(&mut StdRng::seed_from_u64(11), 4, 4);
        assert_eq!(a, b);
    }
}
