//! The full model zoo on one dataset: every implemented method of the
//! survey's taxonomy trained and evaluated side by side.
//!
//! ```bash
//! cargo run --release -p kgrec-bench --example model_zoo
//! ```

use kgrec_bench::{evaluate_model, par, print_eval_table, standard_split};
use kgrec_data::synth::{generate, ScenarioConfig};
use kgrec_models::registry::all_models;

fn main() {
    let synth = generate(&ScenarioConfig::tiny(), 2024);
    let split = standard_split(&synth, 7);
    let threads = par::resolve_threads(None);
    let mut rows = Vec::new();
    for mut model in all_models(false) {
        print!("training {:<12}\r", model.name());
        if let Some(row) = evaluate_model(model.as_mut(), &synth, &split, 11, threads) {
            rows.push(row);
        }
    }
    rows.sort_by(|a, b| b.auc.partial_cmp(&a.auc).unwrap_or(std::cmp::Ordering::Equal));
    print_eval_table("model zoo (tiny synthetic scenario, sorted by AUC)", &rows);
}
