//! A tiny buffer arena for gradient scratch space.
//!
//! The KGE `apply`/`train_pair` hot paths need a handful of
//! embedding-dimension temporaries per triple. Allocating them fresh per
//! triple (the pre-kernel-layer behaviour) puts the allocator on the
//! critical path of every SGD step; [`Scratch`] amortises that to one
//! allocation per buffer per trainer lifetime.
//!
//! Ownership convention (see DESIGN.md §9): the *trainer* owns the arena,
//! kernels `take` buffers at entry and `put` them back before returning.
//! A taken buffer is zero-filled at the requested length, so kernels may
//! accumulate into it without clearing first.

/// A pool of reusable `Vec<f32>` buffers.
///
/// Not thread-safe by design — each trainer owns its own arena, mirroring
/// the one-model-per-worker sharding of the evaluation pool.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
}

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a zero-filled buffer of length `len`, reusing a pooled
    /// allocation when one is available.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<f32>) {
        self.pool.push(buf);
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_at_requested_len() {
        let mut s = Scratch::new();
        let mut b = s.take(4);
        b.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        s.put(b);
        let again = s.take(3);
        assert_eq!(again, vec![0.0; 3]);
    }

    #[test]
    fn pool_reuses_allocation() {
        let mut s = Scratch::new();
        let b = s.take(8);
        let ptr = b.as_ptr();
        s.put(b);
        assert_eq!(s.pooled(), 1);
        let again = s.take(8);
        assert_eq!(again.as_ptr(), ptr, "pooled buffer must be reused, not reallocated");
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn growing_take_works() {
        let mut s = Scratch::new();
        let b = s.take(2);
        s.put(b);
        let big = s.take(64);
        assert_eq!(big.len(), 64);
        assert!(big.iter().all(|&v| v == 0.0));
    }
}
