//! MD007 — data-layout integrity: columnar stores, CSR adjacency, shard
//! plans.
//!
//! The flat-array data layer trades pointer safety for packed columns;
//! this rule is the safety net. It re-runs the structural scans the
//! stores expose (`ColumnarInteractions::validate`,
//! `CsrAdjacency::validate`, `ShardPlan::validate`) and converts every
//! violation into an exact diagnostic: monotone offset arrays, aligned
//! column lengths, in-range item/entity/relation ids, item-major index
//! agreement, and — when a shard plan is attached — full coverage with no
//! user split across shards.

use crate::bundle::CheckBundle;
use crate::diagnostic::{Diagnostic, Severity, Subject};
use crate::rules::Rule;
use kgrec_data::columnar::ColumnarViolation;
use kgrec_data::InteractionMatrix;
use kgrec_graph::CsrViolation;

/// MD007: flat-array layout integrity (columnar / CSR / shard plan).
pub struct ShardIntegrity;

const CODE: &str = "MD007";

fn columnar_diags(label: &str, matrix: &InteractionMatrix) -> Vec<Diagnostic> {
    matrix
        .columnar()
        .validate()
        .into_iter()
        .map(|v| {
            let subject = match &v {
                ColumnarViolation::UserOffsetNotMonotone { index } => Subject::User(*index as u32),
                ColumnarViolation::ItemsNotSorted { user, .. } => Subject::User(user.0),
                ColumnarViolation::ItemOutOfRange { item, .. } => Subject::Item(item.0),
                _ => Subject::Dataset,
            };
            Diagnostic::new(CODE, Severity::Error, subject, format!("{label} store: {v}"))
        })
        .collect()
}

impl Rule for ShardIntegrity {
    fn code(&self) -> &'static str {
        CODE
    }

    fn summary(&self) -> &'static str {
        "columnar/CSR/shard layouts structurally sound (offsets monotone, ids in range, no user split across shards)"
    }

    fn check(&self, bundle: &CheckBundle<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();

        // Interaction stores: the full matrix plus both split halves.
        out.extend(columnar_diags("interaction", &bundle.dataset.interactions));
        if let Some(split) = bundle.split {
            out.extend(columnar_diags("train", &split.train));
            out.extend(columnar_diags("test", &split.test));
        }

        // KG adjacency.
        let g = &bundle.dataset.graph;
        for v in g.csr().validate(g.num_entities(), g.num_relations()) {
            let subject = match &v {
                CsrViolation::OffsetNotMonotone { index } => Subject::Entity(*index as u32),
                CsrViolation::HeadMismatch { edge, .. }
                | CsrViolation::TailOutOfRange { edge, .. }
                | CsrViolation::RelOutOfRange { edge, .. } => Subject::Triple(*edge),
                _ => Subject::Graph,
            };
            out.push(Diagnostic::new(CODE, Severity::Error, subject, format!("adjacency: {v}")));
        }

        // Shard plan, when attached: validated against the training
        // store it partitions (the matrix `CheckBundle::train` returns).
        if let Some(plan) = bundle.shard_plan {
            for v in plan.validate(bundle.train().columnar()) {
                let subject = match &v {
                    kgrec_data::ShardViolation::UserSplitAcrossShards { index, .. } => {
                        Subject::User(plan.user_bounds()[*index])
                    }
                    _ => Subject::Dataset,
                };
                out.push(Diagnostic::new(
                    CODE,
                    Severity::Error,
                    subject,
                    format!("shard plan: {v}"),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_data::synth::{generate, ScenarioConfig};
    use kgrec_data::{split::ratio_split, ShardPlan};

    #[test]
    fn clean_bundle_stays_clean() {
        let synth = generate(&ScenarioConfig::tiny(), 3);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 5);
        let plan = ShardPlan::balanced(split.train.columnar(), 4);
        let bundle = CheckBundle::new(&synth.dataset).with_split(&split).with_shard_plan(&plan);
        assert!(ShardIntegrity.check(&bundle).is_empty());
    }

    #[test]
    fn split_user_fires_with_boundary_user_subject() {
        let synth = generate(&ScenarioConfig::tiny(), 3);
        let good = ShardPlan::balanced(synth.dataset.interactions.columnar(), 3);
        let mut rows = good.row_bounds().to_vec();
        rows[1] += 1; // cut through the boundary user's history
        let bad = ShardPlan::from_raw_parts(good.num_users(), good.user_bounds().to_vec(), rows);
        let bundle = CheckBundle::new(&synth.dataset).with_shard_plan(&bad);
        let diags = ShardIntegrity.check(&bundle);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "MD007");
        assert_eq!(diags[0].subject, Subject::User(good.user_bounds()[1]));
        assert!(diags[0].message.contains("splits a user across shards"));
    }
}
