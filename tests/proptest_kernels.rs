//! Property tests pinning the kernel-layer rewrites to their allocating
//! predecessors, bit for bit.
//!
//! The PR 5 kernel work (unrolled dot, `*_into` vector ops, blocked
//! matmul/transpose, select-based top-K, sparse `Dense` paths, fused KGE
//! score kernels, batched trainer) is only safe because every rewrite is
//! bitwise-identical to the code it replaced — the golden eval transcript
//! depends on it. Each property here re-implements the reference
//! semantics naively and compares with `to_bits`, so any future
//! "optimization" that drifts even one ULP fails loudly. (The trainer's
//! reference is the frozen-minibatch algorithm of DESIGN.md §10, not the
//! retired per-pair SGD loop.)
//!
//! TransH/TransD fused scores have no public accessors for their normal/
//! projection tables, so their bit-identity is pinned by the golden
//! transcript and the in-crate gradcheck tests instead.

use kgrec_graph::KgBuilder;
use kgrec_kge::trainer::{corrupt, train, TrainConfig};
use kgrec_kge::{DistMult, GradBatch, KgeModel, TransE, TransR};
use kgrec_linalg::{vector, Activation, Dense, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;

/// Values with planted exact ±0.0 — the removed `a == 0.0` matmul branch
/// and the skipped-zero gradient paths must stay bit-safe around them.
fn arb_val() -> impl Strategy<Value = f32> {
    (0u8..8, -5.0f32..5.0).prop_map(|(sel, v)| match sel {
        0 => 0.0,
        1 => -0.0,
        _ => v,
    })
}

fn arb_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(arb_val(), n)
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// The full-sort predecessor of `vector::top_k_indices`.
fn top_k_by_full_sort(x: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| x[b].partial_cmp(&x[a]).unwrap_or(Ordering::Equal).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dot_matches_scalar_reference(n in 0usize..40, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..n).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let b: Vec<f32> = (0..n).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let mut reference = 0.0f32;
        for i in 0..n {
            reference += a[i] * b[i];
        }
        prop_assert_eq!(vector::dot(&a, &b).to_bits(), reference.to_bits());
    }

    #[test]
    fn into_variants_match_allocating(
        (a, b) in (0usize..32).prop_flat_map(|n| (arb_vec(n), arb_vec(n))),
    ) {
        let n = a.len();
        let mut out = vec![1.0f32; n]; // nonzero: outputs must be overwritten
        vector::add_into(&a, &b, &mut out);
        prop_assert_eq!(bits(&out), bits(&vector::add(&a, &b)));
        vector::sub_into(&a, &b, &mut out);
        prop_assert_eq!(bits(&out), bits(&vector::sub(&a, &b)));
        vector::mul_into(&a, &b, &mut out);
        prop_assert_eq!(bits(&out), bits(&vector::hadamard(&a, &b)));
        let alpha = 2.5f32;
        vector::scale_assign(alpha, &a, &mut out);
        let reference: Vec<f32> = a.iter().map(|x| alpha * x).collect();
        prop_assert_eq!(bits(&out), bits(&reference));
    }

    #[test]
    fn blocked_matmul_matches_naive(
        r in 1usize..9, k in 1usize..80, c in 1usize..9,
        seed in 0u64..64,
    ) {
        // k spans past K_BLOCK=64 so multi-block accumulation is covered.
        let mut runner = StdRng::seed_from_u64(seed);
        let plant = |rng: &mut StdRng, n: usize| -> Vec<f32> {
            (0..n)
                .map(|_| match rng.gen_range(0u8..4) {
                    0 => 0.0,
                    1 => -0.0,
                    _ => rng.gen_range(-4.0f32..4.0),
                })
                .collect()
        };
        let a = Matrix::from_vec(r, k, plant(&mut runner, r * k));
        let b = Matrix::from_vec(k, c, plant(&mut runner, k * c));
        let out = a.matmul(&b);
        let mut reference = vec![0.0f32; r * c];
        for i in 0..r {
            for kk in 0..k {
                for j in 0..c {
                    reference[i * c + j] += a.get(i, kk) * b.get(kk, j);
                }
            }
        }
        prop_assert_eq!(bits(out.data()), bits(&reference));
    }

    #[test]
    fn blocked_transpose_matches_naive(r in 1usize..70, c in 1usize..70, seed in 0u64..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::from_vec(r, c, (0..r * c).map(|_| rng.gen_range(-5.0f32..5.0)).collect());
        let t = a.transpose();
        prop_assert_eq!(t.rows(), c);
        prop_assert_eq!(t.cols(), r);
        for i in 0..r {
            for j in 0..c {
                prop_assert_eq!(t.get(j, i).to_bits(), a.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn top_k_select_matches_full_sort(
        xs in prop::collection::vec(
            (0u8..10, -3.0f32..3.0).prop_map(|(sel, v)| match sel {
                0..=2 => 1.0,
                3..=5 => 0.5,
                6 | 7 => -1.0,
                _ => v,
            }),
            0..50,
        ),
        k in 0usize..55,
    ) {
        // Heavy ties on purpose: the select path must keep the
        // tie-break-by-index order of the full sort exactly.
        prop_assert_eq!(vector::top_k_indices(&xs, k), top_k_by_full_sort(&xs, k));
    }

    #[test]
    fn dense_sparse_paths_match_dense(
        input in 1usize..12,
        output in 1usize..8,
        seed in 0u64..1000,
        active_bits in prop::collection::vec(any::<bool>(), 12),
    ) {
        let active: Vec<usize> = (0..input).filter(|&j| active_bits[j]).collect();
        let x: Vec<f32> = (0..input).map(|j| if active_bits[j] { 1.0 } else { 0.0 }).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dense = Dense::new(&mut rng, input, output, Activation::Sigmoid);
        let mut sparse = dense.clone();

        let y_dense = dense.forward(&x);
        let y_sparse = sparse.forward_sparse(&active);
        prop_assert_eq!(bits(&y_dense), bits(&y_sparse));

        let dl: Vec<f32> = y_dense.iter().map(|y| y - 0.25).collect();
        dense.backward(&dl);
        sparse.backward_sparse(&dl);
        dense.step_sgd(0.05, 0.0);
        sparse.step_sgd_sparse(0.05, &active);
        prop_assert_eq!(bits(dense.weights().data()), bits(sparse.weights().data()));
        prop_assert_eq!(bits(dense.bias()), bits(sparse.bias()));
    }

    #[test]
    fn fused_dense_backward_step_matches_unfused(
        input in 1usize..10,
        output in 1usize..8,
        seed in 0u64..500,
        l2_sel in 0u8..3,
    ) {
        let l2 = match l2_sel {
            0 => 0.0f32,
            1 => 1e-5,
            _ => 0.02,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut unfused = Dense::new(&mut rng, input, output, Activation::Sigmoid);
        let mut fused = unfused.clone();
        let x: Vec<f32> = (0..input).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let y = unfused.forward(&x);
        let _ = fused.forward(&x);
        let dl: Vec<f32> = y.iter().map(|v| v - 0.3).collect();
        let dx_a = unfused.backward(&dl);
        unfused.step_sgd(0.05, l2);
        let dx_b = fused.backward_step_sgd(&dl, 0.05, l2);
        prop_assert_eq!(bits(&dx_a), bits(&dx_b));
        prop_assert_eq!(bits(unfused.weights().data()), bits(fused.weights().data()));
        prop_assert_eq!(bits(unfused.bias()), bits(fused.bias()));
    }

    #[test]
    fn fused_sparse_backward_step_matches_unfused(
        input in 1usize..12,
        output in 1usize..8,
        seed in 0u64..500,
        active_bits in prop::collection::vec(any::<bool>(), 12),
    ) {
        let active: Vec<usize> = (0..input).filter(|&j| active_bits[j]).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut unfused = Dense::new(&mut rng, input, output, Activation::Tanh);
        let mut fused = unfused.clone();
        let y = unfused.forward_sparse(&active);
        let _ = fused.forward_sparse(&active);
        let dl: Vec<f32> = y.iter().map(|v| 0.7 - v).collect();
        unfused.backward_sparse(&dl);
        unfused.step_sgd(0.05, 1e-5);
        fused.backward_sparse_step_sgd(&dl, 0.05, 1e-5);
        prop_assert_eq!(bits(unfused.weights().data()), bits(fused.weights().data()));
        prop_assert_eq!(bits(unfused.bias()), bits(fused.bias()));
    }

    #[test]
    fn transe_fused_score_matches_reference(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = TransE::new(&mut rng, 6, 3, 9, 1.0);
        for (h, r, t) in [(0u32, 0u32, 1u32), (2, 1, 3), (4, 2, 5)] {
            let hv = m.entity_embedding(kgrec_graph::EntityId(h));
            let rv = m.relation_embedding(kgrec_graph::RelationId(r));
            let tv = m.entity_embedding(kgrec_graph::EntityId(t));
            let mut reference = 0.0f32;
            for i in 0..hv.len() {
                let d = hv[i] + rv[i] - tv[i];
                reference += d * d;
            }
            let got = m.distance(
                kgrec_graph::EntityId(h),
                kgrec_graph::RelationId(r),
                kgrec_graph::EntityId(t),
            );
            prop_assert_eq!(got.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn distmult_fused_score_matches_reference(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = DistMult::new(&mut rng, 6, 3, 9);
        let (h, r, t) = (kgrec_graph::EntityId(1), kgrec_graph::RelationId(2), kgrec_graph::EntityId(4));
        let hv = m.entity_embedding(h);
        let rv = m.relation_embedding(r);
        let tv = m.entity_embedding(t);
        let mut reference = 0.0f32;
        for i in 0..hv.len() {
            reference += hv[i] * rv[i] * tv[i];
        }
        prop_assert_eq!(m.score(h, r, t).to_bits(), reference.to_bits());
    }

    #[test]
    fn transr_fused_score_matches_materialized(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = TransR::new(&mut rng, 6, 3, 7, 4, 1.0);
        let (h, r, t) = (kgrec_graph::EntityId(0), kgrec_graph::RelationId(1), kgrec_graph::EntityId(3));
        let proj = m.projection(r);
        let mh = proj.matvec(m.entity_embedding(h));
        let mt = proj.matvec(m.entity_embedding(t));
        let rv = m.relation_embedding(r);
        let mut reference = 0.0f32;
        for i in 0..rv.len() {
            let v = mh[i] + rv[i] - mt[i];
            reference += v * v;
        }
        prop_assert_eq!(m.distance(h, r, t).to_bits(), reference.to_bits());
    }

    #[test]
    fn batched_trainer_matches_frozen_minibatch_reference(seed in 0u64..40, train_seed in 0u64..40) {
        // 90 entities × 3 ring relations = 270 triples: more than one
        // 256-pair chunk per epoch, so the chunk-boundary re-freeze and
        // the 64-pair sub-batch application order are both exercised.
        let mut b = KgBuilder::new();
        let ty = b.entity_type("t");
        let n = 90usize;
        let es: Vec<_> = (0..n).map(|i| b.entity(&format!("e{i}"), ty)).collect();
        let rels = [b.relation("r0"), b.relation("r1"), b.relation("r2")];
        for i in 0..n {
            for (k, &r) in rels.iter().enumerate() {
                b.triple(es[i], r, es[(i + k + 1) % n]);
            }
        }
        let g = b.build(false);
        let config = TrainConfig { epochs: 3, learning_rate: 0.05, seed: train_seed, threads: None };

        let mut rng = StdRng::seed_from_u64(seed);
        let mut batched = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        let mut reference = batched.clone();

        let curve = train(&mut batched, &g, &config);

        // Naive re-implementation of the deterministic batched semantics:
        // shuffle, corrupt in triple order, then per 256-pair chunk record
        // every gradient against the *chunk-start* parameters and apply
        // the 64-pair sub-batches in index order. Must be RNG-, loss- and
        // parameter-identical at every thread count.
        let mut trng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..g.num_triples()).collect();
        let mut ref_curve = Vec::new();
        for _ in 0..config.epochs {
            for i in (1..order.len()).rev() {
                let j = trng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut total = 0.0f64;
            for chunk in order.chunks(256) {
                let pairs: Vec<_> = chunk
                    .iter()
                    .map(|&idx| {
                        let pos = g.triple_at(idx);
                        (pos, corrupt(&g, pos, &mut trng))
                    })
                    .collect();
                let frozen = reference.clone();
                for sub in pairs.chunks(64) {
                    let mut gb = GradBatch::new();
                    for &(pos, neg) in sub {
                        total += f64::from(frozen.grad_pair(pos, neg, &mut gb));
                    }
                    reference.apply_grads(&gb, config.learning_rate);
                }
            }
            reference.post_epoch();
            ref_curve.push((total / order.len().max(1) as f64) as f32);
        }

        prop_assert_eq!(bits(&curve), bits(&ref_curve));
        for e in 0..g.num_entities() {
            let eid = kgrec_graph::EntityId(e as u32);
            prop_assert_eq!(
                bits(batched.entity_embedding(eid)),
                bits(reference.entity_embedding(eid))
            );
        }
    }
}
