//! Property tests for the SIMD kernel layer and the deterministic
//! parallel trainer.
//!
//! Two invariants keep the PR's performance work honest:
//!
//! 1. the 8-lane kernels in `kgrec_linalg::simd` are bit-identical to
//!    their scalar predecessors (the default build keeps a single
//!    sequential accumulator; only the opt-in `fast-math` feature may
//!    reassociate), and
//! 2. the batched KGE trainer produces bit-identical loss curves and
//!    embeddings at every worker count — sub-batch boundaries and the
//!    gradient application order depend only on the data, never on the
//!    thread count.
//!
//! Both are load-bearing for the golden eval transcript, which must stay
//! byte-identical between `--threads 1` and `--threads 4`.

use kgrec_graph::{EntityId, KgBuilder, KnowledgeGraph, RelationId};
use kgrec_kge::trainer::{train, TrainConfig};
use kgrec_kge::{DistMult, KgeModel, TransD, TransE, TransH, TransR};
use kgrec_linalg::simd;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn arb_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-4.0f32..4.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The default dot keeps one sequential accumulator: lane blocking
    /// must not change a single bit relative to the naive loop.
    #[test]
    fn simd_dot_is_bitwise_sequential(
        (a, b) in (0usize..41).prop_flat_map(|n| (arb_vec(n), arb_vec(n))),
    ) {
        let mut reference = 0.0f32;
        for i in 0..a.len() {
            reference += a[i] * b[i];
        }
        prop_assert_eq!(simd::dot(&a, &b).to_bits(), reference.to_bits());
    }

    /// Elementwise kernels are trivially lane-parallel; each output
    /// element must still equal the scalar expression exactly.
    #[test]
    fn simd_elementwise_kernels_match_scalar(
        (a, b) in (0usize..41).prop_flat_map(|n| (arb_vec(n), arb_vec(n))),
        alpha in -3.0f32..3.0,
    ) {
        let n = a.len();
        let mut out = vec![1.0f32; n];
        simd::add_into(&a, &b, &mut out);
        let reference: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        prop_assert_eq!(bits(&out), bits(&reference));
        simd::sub_into(&a, &b, &mut out);
        let reference: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        prop_assert_eq!(bits(&out), bits(&reference));
        simd::mul_into(&a, &b, &mut out);
        let reference: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
        prop_assert_eq!(bits(&out), bits(&reference));
        simd::scale_assign(alpha, &a, &mut out);
        let reference: Vec<f32> = a.iter().map(|x| alpha * x).collect();
        prop_assert_eq!(bits(&out), bits(&reference));
        let mut acc = b.clone();
        simd::axpy(alpha, &a, &mut acc);
        let reference: Vec<f32> = a.iter().zip(&b).map(|(x, y)| y + alpha * x).collect();
        prop_assert_eq!(bits(&acc), bits(&reference));
        let mut scaled = a.clone();
        simd::scale(&mut scaled, alpha);
        let reference: Vec<f32> = a.iter().map(|x| x * alpha).collect();
        prop_assert_eq!(bits(&scaled), bits(&reference));
    }
}

/// A small two-relation graph with enough structure for a few epochs of
/// every KGE family.
fn train_graph(entities: usize) -> KnowledgeGraph {
    let mut b = KgBuilder::new();
    let ty = b.entity_type("t");
    let es: Vec<_> = (0..entities).map(|i| b.entity(&format!("e{i}"), ty)).collect();
    let r0 = b.relation("r0");
    let r1 = b.relation("r1");
    for i in 0..entities {
        b.triple(es[i], r0, es[(i + 1) % entities]);
        b.triple(es[i], r1, es[(i + 3) % entities]);
        if i % 2 == 0 {
            b.triple(es[i], r0, es[(i + 2) % entities]);
        }
    }
    b.build(false)
}

/// Snapshots every parameter a model exposes through the `KgeModel`
/// accessors, as bits.
fn embedding_bits<M: KgeModel>(m: &M, graph: &KnowledgeGraph) -> Vec<u32> {
    let mut out = Vec::new();
    for e in 0..graph.num_entities() {
        out.extend(bits(m.entity_embedding(EntityId(e as u32))));
    }
    for r in 0..graph.num_relations() {
        out.extend(bits(m.relation_embedding(RelationId(r as u32))));
    }
    out
}

/// Trains one freshly seeded model at the given worker count and returns
/// (loss-curve bits, embedding bits).
fn train_at<M, F>(
    graph: &KnowledgeGraph,
    build: &F,
    seed: u64,
    threads: usize,
) -> (Vec<u32>, Vec<u32>)
where
    M: KgeModel,
    F: Fn(&mut StdRng) -> M,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = build(&mut rng);
    let config =
        TrainConfig { epochs: 4, learning_rate: 0.05, seed: seed ^ 0x5EED, threads: Some(threads) };
    let curve = train(&mut model, graph, &config);
    (bits(&curve), embedding_bits(&model, graph))
}

/// Asserts thread-count invariance for one model family: identical loss
/// curve and identical final embeddings at 1, 2, 4 and 7 workers.
fn assert_thread_invariant<M, F>(graph: &KnowledgeGraph, build: F, seed: u64)
where
    M: KgeModel,
    F: Fn(&mut StdRng) -> M,
{
    let (serial_curve, serial_emb) = train_at(graph, &build, seed, 1);
    for threads in [2usize, 4, 7] {
        let (curve, emb) = train_at(graph, &build, seed, threads);
        assert_eq!(curve, serial_curve, "loss curve drifted at threads={threads}");
        assert_eq!(emb, serial_emb, "embeddings drifted at threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn transe_training_is_thread_count_invariant(seed in 0u64..500, dim in 4usize..10) {
        let graph = train_graph(9);
        assert_thread_invariant(
            &graph,
            |rng| TransE::new(rng, graph.num_entities(), graph.num_relations(), dim, 1.0),
            seed,
        );
    }

    #[test]
    fn transh_training_is_thread_count_invariant(seed in 0u64..500, dim in 4usize..10) {
        let graph = train_graph(9);
        assert_thread_invariant(
            &graph,
            |rng| TransH::new(rng, graph.num_entities(), graph.num_relations(), dim, 1.0),
            seed,
        );
    }

    #[test]
    fn transr_training_is_thread_count_invariant(seed in 0u64..500, dim in 4usize..10) {
        let graph = train_graph(9);
        assert_thread_invariant(
            &graph,
            |rng| {
                TransR::new(rng, graph.num_entities(), graph.num_relations(), dim, dim / 2, 1.0)
            },
            seed,
        );
    }

    #[test]
    fn transd_training_is_thread_count_invariant(seed in 0u64..500, dim in 4usize..10) {
        let graph = train_graph(9);
        assert_thread_invariant(
            &graph,
            |rng| TransD::new(rng, graph.num_entities(), graph.num_relations(), dim, 1.0),
            seed,
        );
    }

    #[test]
    fn distmult_training_is_thread_count_invariant(seed in 0u64..500, dim in 4usize..10) {
        let graph = train_graph(9);
        assert_thread_invariant(
            &graph,
            |rng| DistMult::new(rng, graph.num_entities(), graph.num_relations(), dim),
            seed,
        );
    }
}
