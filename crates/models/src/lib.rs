//! Recommender implementations covering the survey's full taxonomy.
//!
//! One faithful, laptop-scale member of every cell of Table 3:
//!
//! | family | models |
//! |---|---|
//! | baselines (KG-free) | [`baselines::MostPop`], [`baselines::ItemKnn`], [`baselines::BprMf`] |
//! | embedding-based | [`embedding::Cke`], [`embedding::Cfkg`], [`embedding::Mkr`], [`embedding::Ktup`], [`embedding::DknLite`], [`embedding::Entity2Rec`] |
//! | path-based | [`pathbased::HeteMf`], [`pathbased::HeteCf`], [`pathbased::HeteRec`], [`pathbased::SemRec`], [`pathbased::FmgLite`], [`pathbased::Rkge`], [`pathbased::PgprLite`], [`pathbased::McRecLite`] |
//! | unified | [`unified::RippleNet`], [`unified::Kgcn`], [`unified::Kgat`], [`unified::AkupmLite`] |
//!
//! Every model implements [`kgrec_core::Recommender`], carries its Table 3
//! [`kgrec_core::Taxonomy`], trains with hand-derived gradients, and is
//! deterministic given its seed. Simplifications relative to the original
//! papers are documented on each type and in `DESIGN.md` §4.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Hand-derived gradient code indexes several slices in lockstep; the
// iterator rewrites clippy suggests obscure the equations being
// transcribed from the papers.
#![allow(clippy::needless_range_loop)]

pub mod baselines;
pub mod common;
pub mod embedding;
pub mod pathbased;
mod persist;
pub mod registry;
pub mod unified;
