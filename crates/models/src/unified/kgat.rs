//! KGAT (Wang et al. 2019): knowledge graph attention network.
//!
//! Users, items and attributes live in one *collaborative knowledge
//! graph*. A TransR model trained on that graph provides both the initial
//! entity embeddings and the attentive edge coefficients
//! `α(h,r,t) ∝ (M_r·t)ᵀ·tanh(M_r·h + r)`; one bi-interaction embedding-
//! propagation layer (survey Eq. 34) refines every entity, the final
//! representation is the layer concatenation `e* = e⁰ ⊕ e¹`, and the BPR
//! loss trains the whole CF side. Training alternates the TransR (KG)
//! pass and the CF pass, as in the paper.
//!
//! Simplifications: one propagation layer (the paper sweeps 1–3) and
//! `tanh` in place of LeakyReLU; attention coefficients are treated as
//! constants inside the CF backward pass (they are refreshed from TransR
//! every epoch).

use crate::common::{sample_observed, taxonomy_of};
use kgrec_core::{CoreError, Recommender, Taxonomy, TrainContext};
use kgrec_data::negative::sample_negative;
use kgrec_data::{ItemId, UserId};
use kgrec_graph::{EntityId, KnowledgeGraph};
use kgrec_kge::trainer::corrupt;
use kgrec_kge::{KgeModel, TransR};
use kgrec_linalg::{vector, EmbeddingTable, Matrix};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// KGAT hyper-parameters.
#[derive(Debug, Clone)]
pub struct KgatConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// CF learning rate.
    pub learning_rate: f32,
    /// KG (TransR) learning rate.
    pub kg_learning_rate: f32,
    /// L2 regularization.
    pub l2: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KgatConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            epochs: 15,
            learning_rate: 0.05,
            kg_learning_rate: 0.02,
            l2: 1e-5,
            seed: 97,
        }
    }
}

/// The KGAT model.
#[derive(Debug)]
pub struct Kgat {
    /// Hyper-parameters.
    pub config: KgatConfig,
    /// Base entity embeddings `e⁰` (the CF-trainable copy).
    base: EmbeddingTable,
    /// Propagated embeddings `e¹`, refreshed by `propagate`.
    layer1: EmbeddingTable,
    w1: Matrix,
    w2: Matrix,
    /// Per-entity attention-normalized neighbor lists.
    att_edges: Vec<Vec<(u32, f32)>>,
    user_entities: Vec<EntityId>,
    item_entities: Vec<EntityId>,
}

impl Kgat {
    /// Creates an unfitted model.
    pub fn new(config: KgatConfig) -> Self {
        Self {
            config,
            base: EmbeddingTable::zeros(0, 1),
            layer1: EmbeddingTable::zeros(0, 1),
            w1: Matrix::zeros(0, 0),
            w2: Matrix::zeros(0, 0),
            att_edges: Vec::new(),
            user_entities: Vec::new(),
            item_entities: Vec::new(),
        }
    }

    /// Creates a model with default hyper-parameters.
    pub fn default_config() -> Self {
        Self::new(KgatConfig::default())
    }

    /// Recomputes the attention coefficients from the current TransR
    /// parameters: `α(h,r,t) ∝ exp((M_r·t)ᵀ tanh(M_r·h + r))`, normalized
    /// over each head's out-edges.
    fn refresh_attention(&mut self, graph: &KnowledgeGraph, kge: &TransR) {
        let n = graph.num_entities();
        let mut edges: Vec<Vec<(u32, f32)>> = Vec::with_capacity(n);
        for h in 0..n as u32 {
            let head = EntityId(h);
            let rels = graph.rel_slice(head);
            let tails = graph.tail_slice(head);
            if rels.is_empty() {
                edges.push(Vec::new());
                continue;
            }
            let mut scores: Vec<f32> = rels
                .iter()
                .zip(tails.iter())
                .map(|(&r, &t)| {
                    let m = kge.projection(r);
                    let mut mh = m.matvec(kge.entity_embedding(head));
                    vector::axpy(1.0, kge.relation_embedding(r), &mut mh);
                    mh.iter_mut().for_each(|x| *x = x.tanh());
                    let mt = m.matvec(kge.entity_embedding(t));
                    vector::dot(&mt, &mh)
                })
                .collect();
            vector::softmax_in_place(&mut scores);
            edges.push(tails.iter().zip(scores.iter()).map(|(&t, &a)| (t.0, a)).collect());
        }
        self.att_edges = edges;
    }

    /// Full-graph propagation: `e¹_i = tanh(W₁(e⁰_i + ê_i)) +
    /// tanh(W₂(e⁰_i ⊙ ê_i))` with `ê_i = Σ α·e⁰_t` (Eq. 34,
    /// bi-interaction aggregator).
    fn propagate(&mut self) {
        let n = self.base.len();
        let d = self.base.dim();
        let mut out = EmbeddingTable::zeros(n, d);
        for i in 0..n {
            let mut agg = vec![0.0f32; d];
            for &(t, a) in &self.att_edges[i] {
                vector::axpy(a, self.base.row(t as usize), &mut agg);
            }
            let e0 = self.base.row(i);
            let sum = vector::add(e0, &agg);
            let had = vector::hadamard(e0, &agg);
            let mut p1 = self.w1.matvec(&sum);
            p1.iter_mut().for_each(|x| *x = x.tanh());
            let mut p2 = self.w2.matvec(&had);
            p2.iter_mut().for_each(|x| *x = x.tanh());
            let row = out.row_mut(i);
            for k in 0..d {
                row[k] = p1[k] + p2[k];
            }
        }
        self.layer1 = out;
    }

    /// Final representation `e* = e⁰ ⊕ e¹`.
    fn final_vec(&self, e: EntityId) -> Vec<f32> {
        self.base.row(e.index()).iter().chain(self.layer1.row(e.index()).iter()).copied().collect()
    }

    /// Accumulates the gradient of the final representation into the base
    /// table, back-propagating the `e¹` half through the propagation.
    fn apply_final_grad(&mut self, e: EntityId, grad: &[f32], lr: f32) {
        let d = self.base.dim();
        let (g0, g1) = grad.split_at(d);
        // Recompute this entity's forward pieces for the backward pass.
        let i = e.index();
        let mut agg = vec![0.0f32; d];
        for &(t, a) in &self.att_edges[i] {
            vector::axpy(a, self.base.row(t as usize), &mut agg);
        }
        let e0 = self.base.row(i).to_vec();
        let sum = vector::add(&e0, &agg);
        let had = vector::hadamard(&e0, &agg);
        let mut t1 = self.w1.matvec(&sum);
        t1.iter_mut().for_each(|x| *x = x.tanh());
        let mut t2 = self.w2.matvec(&had);
        t2.iter_mut().for_each(|x| *x = x.tanh());
        let dp1: Vec<f32> = g1.iter().zip(t1.iter()).map(|(g, o)| g * (1.0 - o * o)).collect();
        let dp2: Vec<f32> = g1.iter().zip(t2.iter()).map(|(g, o)| g * (1.0 - o * o)).collect();
        let dsum = self.w1.matvec_t(&dp1);
        let dhad = self.w2.matvec_t(&dp2);
        self.w1.rank1_update(-lr, &dp1, &sum);
        self.w2.rank1_update(-lr, &dp2, &had);
        // de0 = g0 + dsum + dhad ⊙ agg ; dagg = dsum + dhad ⊙ e0.
        let de0: Vec<f32> = (0..d).map(|k| g0[k] + dsum[k] + dhad[k] * agg[k]).collect();
        let dagg: Vec<f32> = (0..d).map(|k| dsum[k] + dhad[k] * e0[k]).collect();
        self.base.add_to_row(i, -lr, &de0);
        let edges = self.att_edges[i].clone();
        for (t, a) in edges {
            let scaled: Vec<f32> = dagg.iter().map(|x| a * x).collect();
            self.base.add_to_row(t as usize, -lr, &scaled);
        }
    }
}

impl Recommender for Kgat {
    fn name(&self) -> &'static str {
        "KGAT"
    }

    fn taxonomy(&self) -> Taxonomy {
        taxonomy_of("KGAT")
    }

    fn prepare_retry(&mut self, attempt: u32) -> bool {
        self.config.learning_rate *= 0.5;
        self.config.kg_learning_rate *= 0.5;
        self.config.seed = self.config.seed.wrapping_add(u64::from(attempt)).wrapping_mul(31);
        true
    }

    fn fit(&mut self, ctx: &TrainContext<'_>) -> Result<(), CoreError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let d = self.config.dim;
        let uig = ctx.dataset.user_item_graph(ctx.train);
        let graph = uig.graph.clone();
        self.user_entities = uig.user_entities.clone();
        self.item_entities = uig.item_entities.clone();
        let mut kge =
            TransR::new(&mut rng, graph.num_entities(), graph.num_relations().max(1), d, d, 1.0);
        self.base =
            EmbeddingTable::uniform(&mut rng, graph.num_entities(), d, 1.0 / (d as f32).sqrt());
        let mut w1 = Matrix::zeros(d, d);
        kgrec_linalg::init::xavier_uniform(&mut rng, w1.data_mut(), d, d);
        let mut w2 = Matrix::zeros(d, d);
        kgrec_linalg::init::xavier_uniform(&mut rng, w2.data_mut(), d, d);
        self.w1 = w1;
        self.w2 = w2;
        let lr = self.config.learning_rate;
        let kg_lr = self.config.kg_learning_rate;
        let l2 = self.config.l2;
        let num_triples = graph.num_triples();
        for _ in 0..self.config.epochs {
            // --- KG pass: TransR on the collaborative KG ---
            for _ in 0..num_triples.min(2000) {
                let pos = graph.triple_at(rng.gen_range(0..num_triples));
                let neg = corrupt(&graph, pos, &mut rng);
                kge.train_pair(pos, neg, kg_lr);
            }
            kge.post_epoch();
            self.refresh_attention(&graph, &kge);
            self.propagate();
            // --- CF pass: BPR over final representations ---
            for _ in 0..ctx.train.num_interactions() {
                let Some((u, pos)) = sample_observed(ctx.train, &mut rng) else { break };
                let Some(neg) = sample_negative(ctx.train, u, &mut rng) else { continue };
                let ue = self.user_entities[u.index()];
                let pe = self.item_entities[pos.index()];
                let ne = self.item_entities[neg.index()];
                let uvec = self.final_vec(ue);
                let pvec = self.final_vec(pe);
                let nvec = self.final_vec(ne);
                let x = vector::dot(&uvec, &pvec) - vector::dot(&uvec, &nvec);
                let g = -vector::sigmoid(-x);
                // BPR grads on the final (concatenated) representations.
                let du: Vec<f32> =
                    (0..uvec.len()).map(|k| g * (pvec[k] - nvec[k]) + l2 * uvec[k]).collect();
                let dp: Vec<f32> = uvec.iter().map(|x| g * x).collect();
                let dn: Vec<f32> = uvec.iter().map(|x| -g * x).collect();
                self.apply_final_grad(ue, &du, lr);
                self.apply_final_grad(pe, &dp, lr);
                self.apply_final_grad(ne, &dn, lr);
            }
            // Refresh the propagated layer after the CF updates.
            self.propagate();
        }
        Ok(())
    }

    fn score(&self, user: UserId, item: ItemId) -> f32 {
        let u = self.final_vec(self.user_entities[user.index()]);
        let v = self.final_vec(self.item_entities[item.index()]);
        vector::dot(&u, &v)
    }

    fn num_items(&self) -> usize {
        self.item_entities.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::protocol::evaluate_ctr;
    use kgrec_data::negative::labeled_eval_set;
    use kgrec_data::split::ratio_split;
    use kgrec_data::synth::{generate, ScenarioConfig};

    #[test]
    fn beats_chance_on_planted_data() {
        let synth = generate(&ScenarioConfig::tiny(), 42);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = Kgat::default_config();
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = labeled_eval_set(&split.train, &split.test, 4, &mut rng);
        let rep = evaluate_ctr(&m, &pairs);
        assert!(rep.auc > 0.65, "AUC {}", rep.auc);
    }

    #[test]
    fn attention_rows_are_distributions() {
        let synth = generate(&ScenarioConfig::tiny(), 3);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = Kgat::new(KgatConfig { epochs: 1, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        for row in &m.att_edges {
            if !row.is_empty() {
                let s: f32 = row.iter().map(|&(_, a)| a).sum();
                assert!((s - 1.0).abs() < 1e-3, "sum={s}");
            }
        }
    }

    #[test]
    fn final_vec_is_layer_concatenation() {
        let synth = generate(&ScenarioConfig::tiny(), 4);
        let split = ratio_split(&synth.dataset.interactions, 0.2, 1);
        let mut m = Kgat::new(KgatConfig { epochs: 1, ..Default::default() });
        m.fit(&TrainContext::new(&synth.dataset, &split.train)).unwrap();
        let e = m.item_entities[0];
        let v = m.final_vec(e);
        assert_eq!(v.len(), 2 * m.config.dim);
        assert_eq!(&v[..m.config.dim], m.base.row(e.index()));
        assert_eq!(&v[m.config.dim..], m.layer1.row(e.index()));
    }
}
