//! Performance trajectory recording: per-model phase timings and
//! suite-level throughput, serialized to `BENCH_eval.json`.
//!
//! `eval_suite --bench` is the writer; each run is one point in the
//! repo's perf trajectory (the ROADMAP's "as fast as the hardware
//! allows" north star needs a recorded baseline to regress against).
//! The JSON is hand-rolled — the workspace is dependency-free by
//! constraint — and deliberately flat so `jq`/CI diffing stays trivial.
//!
//! Timings are wall-clock and therefore machine- and load-dependent;
//! everything else in the file (model set, scenarios, row counts) is
//! deterministic. Consumers must treat `*_secs` fields as indicative,
//! not comparable across machines.

use crate::{ModelReport, PhaseTimings};
use std::io::Write;
use std::path::Path;

/// Default output path, relative to the invocation directory.
pub const BENCH_PATH: &str = "BENCH_eval.json";

/// One (model × scenario) timing entry.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Model name.
    pub model: String,
    /// Scenario name.
    pub scenario: String,
    /// Supervisor outcome label (`ok` / `retried` / `degraded` / `failed`).
    pub outcome: String,
    /// Phase timings and row counts for this cell.
    pub timings: PhaseTimings,
}

impl BenchEntry {
    /// Builds the entry for one evaluated model.
    pub fn from_report(scenario: &str, report: &ModelReport) -> Self {
        Self {
            model: report.model.to_owned(),
            scenario: scenario.to_owned(),
            outcome: report.outcome.status.label().to_owned(),
            timings: report.timings,
        }
    }
}

/// The suite-level benchmark report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Worker threads the measured run used.
    pub threads: usize,
    /// Available hardware parallelism of the host that took the
    /// measurement. `speedup_vs_serial` below 1.0 is expected, not a
    /// regression, whenever `threads > host_threads` (CI runners are
    /// often single-CPU); recording the host lets a reader tell the two
    /// apart.
    pub host_threads: usize,
    /// Wall-clock seconds of the measured (possibly parallel) run.
    pub wall_secs: f64,
    /// Wall-clock seconds of the single-threaded comparison run, when one
    /// was taken.
    pub serial_wall_secs: Option<f64>,
    /// Evaluation rows (ranked users + scored CTR pairs) per wall-clock
    /// second of the measured run.
    pub rows_per_sec: f64,
    /// Summed training wall-clock across every (model × scenario) cell.
    pub fit_secs_total: f64,
    /// Training rows (epochs × interactions, summed over cells) per
    /// second of summed training wall-clock — the fit-path throughput
    /// the SIMD/parallel-training work targets.
    pub fit_rows_per_sec: f64,
    /// Number of scenarios covered.
    pub scenarios: usize,
    /// Per-(model × scenario) entries.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Assembles a report from per-scenario model reports.
    ///
    /// `runs` pairs each scenario name with its reports; `wall_secs` is
    /// the measured wall-clock of the whole evaluation pass.
    pub fn new(runs: &[(String, Vec<ModelReport>)], threads: usize, wall_secs: f64) -> Self {
        let entries: Vec<BenchEntry> = runs
            .iter()
            .flat_map(|(scenario, reports)| {
                reports.iter().map(move |r| BenchEntry::from_report(scenario, r))
            })
            .collect();
        let rows: usize =
            entries.iter().map(|e| e.timings.users_ranked + e.timings.pairs_scored).sum();
        let rows_per_sec = if wall_secs > 0.0 { rows as f64 / wall_secs } else { 0.0 };
        let fit_secs_total: f64 = entries.iter().map(|e| e.timings.fit_secs).sum();
        let fit_rows: usize = entries.iter().map(|e| e.timings.fit_rows).sum();
        let fit_rows_per_sec =
            if fit_secs_total > 0.0 { fit_rows as f64 / fit_secs_total } else { 0.0 };
        Self {
            threads,
            host_threads: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get),
            wall_secs,
            serial_wall_secs: None,
            rows_per_sec,
            fit_secs_total,
            fit_rows_per_sec,
            scenarios: runs.len(),
            entries,
        }
    }

    /// Records the single-threaded comparison wall-clock.
    pub fn with_serial_baseline(mut self, serial_wall_secs: f64) -> Self {
        self.serial_wall_secs = Some(serial_wall_secs);
        self
    }

    /// Speedup of the measured run over the serial baseline (> 1 means
    /// the pool won), when a baseline was recorded.
    pub fn speedup(&self) -> Option<f64> {
        self.serial_wall_secs.filter(|_| self.wall_secs > 0.0).map(|serial| serial / self.wall_secs)
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"generator\": \"eval_suite --bench\",\n");
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str(&format!("  \"wall_secs\": {},\n", json_f64(self.wall_secs)));
        match self.serial_wall_secs {
            Some(v) => s.push_str(&format!("  \"serial_wall_secs\": {},\n", json_f64(v))),
            None => s.push_str("  \"serial_wall_secs\": null,\n"),
        }
        match self.speedup() {
            Some(v) => s.push_str(&format!("  \"speedup_vs_serial\": {},\n", json_f64(v))),
            None => s.push_str("  \"speedup_vs_serial\": null,\n"),
        }
        s.push_str(&format!("  \"rows_per_sec\": {},\n", json_f64(self.rows_per_sec)));
        s.push_str(&format!("  \"fit_secs_total\": {},\n", json_f64(self.fit_secs_total)));
        s.push_str(&format!("  \"fit_rows_per_sec\": {},\n", json_f64(self.fit_rows_per_sec)));
        s.push_str(&format!("  \"scenarios\": {},\n", self.scenarios));
        s.push_str("  \"models\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let t = &e.timings;
            s.push_str(&format!(
                "    {{\"model\": {}, \"scenario\": {}, \"outcome\": {}, \
                 \"fit_secs\": {}, \"score_secs\": {}, \"rank_secs\": {}, \
                 \"pairs_scored\": {}, \"users_ranked\": {}, \
                 \"fit_rows\": {}, \"fit_epochs\": {}, \
                 \"fit_rows_per_sec\": {}, \"epochs_per_sec\": {}}}{}\n",
                json_str(&e.model),
                json_str(&e.scenario),
                json_str(&e.outcome),
                json_f64(t.fit_secs),
                json_f64(t.score_secs),
                json_f64(t.rank_secs),
                t.pairs_scored,
                t.users_ranked,
                t.fit_rows,
                t.fit_epochs,
                json_f64(t.fit_rows_per_sec()),
                json_f64(t.epochs_per_sec()),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON document to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// JSON-safe float: finite values print as-is, non-finite ones (a model
/// bug upstream, but the report must never be invalid JSON) become null.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

/// Minimal JSON string escaping — model/scenario names are ASCII today,
/// but a future name must not be able to corrupt the document.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_core::{FitOutcome, FitStatus};
    use std::time::Duration;

    fn fake_report(model: &'static str, users: usize, pairs: usize) -> ModelReport {
        ModelReport {
            model,
            family: "baseline".into(),
            outcome: FitOutcome {
                status: FitStatus::Ok,
                attempts: 1,
                elapsed: Duration::from_millis(10),
                reason: None,
                overshoot: None,
            },
            row: None,
            timings: PhaseTimings {
                fit_secs: 0.01,
                score_secs: 0.002,
                rank_secs: 0.005,
                pairs_scored: pairs,
                users_ranked: users,
                fit_rows: 300,
                fit_epochs: 30,
            },
        }
    }

    #[test]
    fn report_counts_rows_and_speedup() {
        let runs = vec![
            ("tiny".to_owned(), vec![fake_report("A", 30, 100), fake_report("B", 30, 100)]),
            ("tiny(x0.30)".to_owned(), vec![fake_report("A", 10, 40)]),
        ];
        let report = BenchReport::new(&runs, 4, 2.0).with_serial_baseline(6.0);
        assert_eq!(report.entries.len(), 3);
        assert_eq!(report.scenarios, 2);
        assert_eq!(report.rows_per_sec, f64::from(30 + 100 + 30 + 100 + 10 + 40) / 2.0);
        assert_eq!(report.speedup(), Some(3.0));
        // 3 cells × 300 fit rows over 3 × 0.01s of training wall-clock.
        assert!((report.fit_secs_total - 0.03).abs() < 1e-12);
        assert!((report.fit_rows_per_sec - 900.0 / 0.03).abs() < 1e-6);
    }

    #[test]
    fn fit_throughput_appears_in_model_rows() {
        let runs = vec![("tiny".to_owned(), vec![fake_report("A", 5, 10)])];
        let json = BenchReport::new(&runs, 1, 1.0).to_json();
        // 300 rows / 30 epochs over 0.01s of fit.
        assert!(json.contains("\"fit_rows\": 300"), "{json}");
        assert!(json.contains("\"fit_epochs\": 30"), "{json}");
        assert!(json.contains("\"fit_rows_per_sec\": 30000.000000"), "{json}");
        assert!(json.contains("\"epochs_per_sec\": 3000.000000"), "{json}");
    }

    #[test]
    fn json_is_structurally_sound() {
        let runs = vec![("tiny".to_owned(), vec![fake_report("Most\"Pop", 5, 10)])];
        let json = BenchReport::new(&runs, 2, 0.5).to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"speedup_vs_serial\": null"));
        assert!(json.contains("Most\\\"Pop"), "quotes must be escaped: {json}");
    }

    #[test]
    fn non_finite_timings_stay_valid_json() {
        let mut r = fake_report("A", 1, 1);
        r.timings.fit_secs = f64::NAN;
        let runs = vec![("tiny".to_owned(), vec![r])];
        let json = BenchReport::new(&runs, 1, 1.0).to_json();
        assert!(json.contains("\"fit_secs\": null"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn write_to_round_trips() {
        let dir = std::env::temp_dir().join("kgrec_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(BENCH_PATH);
        let runs = vec![("tiny".to_owned(), vec![fake_report("A", 2, 3)])];
        let report = BenchReport::new(&runs, 1, 1.0);
        report.write_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, report.to_json());
        std::fs::remove_file(&path).ok();
    }
}
