//! First-order optimizers with sparse row-update support.
//!
//! The recommenders update only the embedding rows touched by a minibatch,
//! so optimizer state must be addressable at arbitrary offsets within a
//! parameter tensor. [`Optimizer::step_at`] takes the flat offset of the
//! slice being updated; the stateful optimizers keep their moment buffers
//! sized to the whole tensor and index them by that offset.
//!
//! The convention throughout `kgrec` is *gradient descent*: callers pass the
//! gradient of the **loss** and the optimizer subtracts the scaled update.

/// Common interface for the per-tensor optimizers.
pub trait Optimizer {
    /// Applies one update to `param`, a slice living at flat offset
    /// `offset` within the tensor this optimizer was created for, given the
    /// corresponding loss gradient `grad`.
    ///
    /// # Panics
    /// Panics if `param.len() != grad.len()` or if the slice reaches past
    /// the length the optimizer was created with (for stateful optimizers).
    fn step_at(&mut self, offset: usize, param: &mut [f32], grad: &[f32]);

    /// Convenience for dense tensors: updates the whole parameter vector.
    fn step(&mut self, param: &mut [f32], grad: &[f32]) {
        self.step_at(0, param, grad);
    }

    /// Marks the beginning of a new optimizer step (minibatch). Stateless
    /// optimizers ignore this; Adam uses it for bias correction.
    fn begin_step(&mut self) {}

    /// The current base learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the base learning rate (for schedules / decay).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional decoupled L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    /// L2 coefficient applied as `param -= lr * l2 * param` per update.
    pub l2: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and no weight decay.
    pub fn new(lr: f32) -> Self {
        Self { lr, l2: 0.0 }
    }

    /// Creates SGD with learning rate `lr` and L2 coefficient `l2`.
    pub fn with_l2(lr: f32, l2: f32) -> Self {
        Self { lr, l2 }
    }
}

impl Optimizer for Sgd {
    fn step_at(&mut self, _offset: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "Sgd: dimension mismatch");
        let lr = self.lr;
        let l2 = self.l2;
        for (p, g) in param.iter_mut().zip(grad.iter()) {
            *p -= lr * (g + l2 * *p);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// AdaGrad: per-coordinate adaptive learning rates.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    accum: Vec<f32>,
    /// L2 coefficient folded into the gradient before accumulation.
    pub l2: f32,
}

impl Adagrad {
    /// Creates AdaGrad state for a tensor of `n` parameters.
    pub fn new(n: usize, lr: f32) -> Self {
        Self { lr, eps: 1e-8, accum: vec![0.0; n], l2: 0.0 }
    }
}

impl Optimizer for Adagrad {
    fn step_at(&mut self, offset: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "Adagrad: dimension mismatch");
        assert!(
            offset + param.len() <= self.accum.len(),
            "Adagrad: slice out of range for optimizer state"
        );
        let lr = self.lr;
        let eps = self.eps;
        let l2 = self.l2;
        let acc = &mut self.accum[offset..offset + param.len()];
        for ((p, &g0), a) in param.iter_mut().zip(grad.iter()).zip(acc.iter_mut()) {
            let g = g0 + l2 * *p;
            *a += g * g;
            *p -= lr * g / (a.sqrt() + eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam with global step-count bias correction.
///
/// For sparse updates the bias correction uses the global step counter `t`,
/// which matches the "lazy Adam" behaviour of the frameworks the original
/// papers used.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    /// Decoupled weight-decay coefficient (AdamW-style).
    pub l2: f32,
}

impl Adam {
    /// Creates Adam state for a tensor of `n` parameters with the standard
    /// hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(n: usize, lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            l2: 0.0,
        }
    }

    /// Current global step count.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn step_at(&mut self, offset: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "Adam: dimension mismatch");
        assert!(
            offset + param.len() <= self.m.len(),
            "Adam: slice out of range for optimizer state"
        );
        // Callers that never call begin_step still get correct behaviour:
        // treat each step_at as its own step in that case is wrong for
        // minibatches, so we lazily start step 1 instead.
        let t = self.t.max(1);
        let bc1 = 1.0 - self.beta1.powi(t as i32);
        let bc2 = 1.0 - self.beta2.powi(t as i32);
        let lr = self.lr;
        let (b1, b2, eps, l2) = (self.beta1, self.beta2, self.eps, self.l2);
        let m = &mut self.m[offset..offset + param.len()];
        let v = &mut self.v[offset..offset + param.len()];
        for i in 0..param.len() {
            let g = grad[i];
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            param[i] -= lr * (mhat / (vhat.sqrt() + eps) + l2 * param[i]);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(x) = Σ (x_i - target_i)^2 — gradient 2(x - t).
    fn quad_grad(x: &[f32], target: &[f32]) -> Vec<f32> {
        x.iter().zip(target.iter()).map(|(a, b)| 2.0 * (a - b)).collect()
    }

    fn converges<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        let target = [1.0f32, -2.0, 0.5];
        let mut x = [0.0f32; 3];
        for _ in 0..steps {
            opt.begin_step();
            let g = quad_grad(&x, &target);
            opt.step(&mut x, &g);
        }
        x.iter().zip(target.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(converges(Sgd::new(0.1), 200) < 1e-3);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        assert!(converges(Adagrad::new(3, 0.5), 500) < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(converges(Adam::new(3, 0.05), 500) < 1e-2);
    }

    #[test]
    fn sgd_l2_shrinks_weights() {
        let mut opt = Sgd::with_l2(0.1, 1.0);
        let mut x = [1.0f32];
        opt.step(&mut x, &[0.0]);
        assert!((x[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn sparse_offsets_keep_independent_state() {
        let mut opt = Adagrad::new(4, 0.1);
        let mut a = [1.0f32, 1.0];
        let mut b = [1.0f32, 1.0];
        // Hammer the first slice; the second slice's accumulator must be
        // untouched, so its first update has the full step size.
        for _ in 0..50 {
            opt.step_at(0, &mut a, &[1.0, 1.0]);
        }
        let before = b[0];
        opt.step_at(2, &mut b, &[1.0, 1.0]);
        let first_step_b = before - b[0];
        // A fresh accumulator gives step ≈ lr; the hammered one is much smaller.
        assert!(first_step_b > 0.09, "first_step_b={first_step_b}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn adam_offset_bounds_checked() {
        let mut opt = Adam::new(2, 0.1);
        let mut x = [0.0f32, 0.0];
        opt.step_at(1, &mut x, &[1.0, 1.0]);
    }

    #[test]
    fn learning_rate_schedule_settable() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
