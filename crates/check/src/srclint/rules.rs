//! The source-rule registry: determinism and hot-path checks over the
//! token stream.
//!
//! | code | severity | scope | checks |
//! |---|---|---|---|
//! | `SA001` | error | models, kge, linalg, bench | `HashMap`/`HashSet` in deterministic crates (iteration order feeds accumulators or output) |
//! | `SA002` | error | models, kge, linalg | wall-clock (`Instant`/`SystemTime`) or unseeded RNG in model/trainer logic |
//! | `SA003` | warning | models, kge, linalg, bench | `par`-worker results combined in completion order (channels, `lock().push`) |
//! | `SA004` | warning | core, bench | float `==`/`!=` against a float literal in metrics code |
//! | `SA005` | warning | data, graph | truncating `as u32`/`u16`/`u8` casts on id spaces |
//! | `SA006` | warning | models, kge | `unwrap`/`expect` inside `supervise_fit`-covered fit paths |
//! | `SA007` | error | store, kge, models, core | direct `File::create`/`fs::write` in persistence paths — use the atomic writer |
//! | `SA008` | error | serve | heap allocation inside serving request-path functions (`serve`/`rank_candidates`/`candidates_for`) — use the `ServeScratch` arena |
//! | `MD006` | warning | models, kge | allocating vector ops inside epoch loops (lexer-accurate port) |
//!
//! `SA000` (unused or malformed `kglint::allow`) is emitted by the
//! engine in [`super`], not by a rule here. Test code (`#[cfg(test)]`
//! modules, `#[test]` functions) is exempt from every rule.

use super::context::FileCx;
use super::lexer::{Tok, TokKind};
use crate::diagnostic::{Diagnostic, Severity, Subject};

/// One lexed, context-annotated source file, as the rules see it.
#[derive(Debug)]
pub struct SourceFile {
    /// Path used in diagnostics (relative to the scan root).
    pub path: String,
    /// The token stream.
    pub tokens: Vec<Tok>,
    /// Per-token scope context.
    pub cx: FileCx,
}

/// A single source-level check over a [`SourceFile`].
pub trait SrcRule {
    /// Stable diagnostic code (`SA001`, …).
    fn code(&self) -> &'static str;
    /// Severity of every finding this rule emits.
    fn severity(&self) -> Severity;
    /// One-line description of what the rule checks.
    fn summary(&self) -> &'static str;
    /// Path prefixes (relative to the workspace root) the rule covers.
    fn scopes(&self) -> &'static [&'static str];
    /// Runs the rule over one file already known to be in scope.
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic>;

    /// Whether `path` falls under one of the rule's scope prefixes.
    fn applies_to(&self, path: &str) -> bool {
        self.scopes().iter().any(|s| path.starts_with(s))
    }
}

/// The full source-rule registry, in stable code order.
pub fn src_rules() -> Vec<Box<dyn SrcRule>> {
    vec![
        Box::new(HashIteration),
        Box::new(WallClockRng),
        Box::new(CompletionOrder),
        Box::new(FloatEquality),
        Box::new(TruncatingIdCast),
        Box::new(FitPathUnwrap),
        Box::new(RawPersistenceWrite),
        Box::new(ServePathAllocation),
        Box::new(EpochAllocation),
    ]
}

/// Crates whose numeric results must be bit-identical at any thread
/// count — the determinism surface of PR 4/PR 6.
const DETERMINISM_CRATES: &[&str] =
    &["crates/models/", "crates/kge/", "crates/linalg/", "crates/bench/"];

fn diag(rule: &dyn SrcRule, file: &SourceFile, line: usize, message: String) -> Diagnostic {
    Diagnostic::new(
        rule.code(),
        rule.severity(),
        Subject::Source { file: file.path.clone(), line },
        message,
    )
}

/// True when token `i` is an identifier equal to `name`.
fn ident_is(tokens: &[Tok], i: usize, name: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
}

/// True when token `i` is punctuation equal to `p`.
fn punct_is(tokens: &[Tok], i: usize, p: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
}

/// `SA001` — hash-ordered collections in deterministic crates.
///
/// `HashMap`/`HashSet` iteration order varies run to run (and with the
/// hasher's seed), so any accumulation or output fed from it silently
/// breaks the bit-identity contract. The fix is `BTreeMap`/`BTreeSet`
/// or an explicitly sorted snapshot before iteration.
pub struct HashIteration;

impl SrcRule for HashIteration {
    fn code(&self) -> &'static str {
        "SA001"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "HashMap/HashSet in a deterministic crate — iteration order is nondeterministic; \
         use BTreeMap/BTreeSet or a sorted snapshot"
    }
    fn scopes(&self) -> &'static [&'static str] {
        DETERMINISM_CRATES
    }
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (i, tok) in file.tokens.iter().enumerate() {
            if file.cx.in_test[i] || tok.kind != TokKind::Ident {
                continue;
            }
            if tok.text == "HashMap" || tok.text == "HashSet" {
                out.push(diag(
                    self,
                    file,
                    tok.line,
                    format!(
                        "`{}` in a crate whose results must be bit-identical across runs — \
                         iteration order is nondeterministic; use `BTree{}` or sort a snapshot \
                         before iterating",
                        tok.text,
                        &tok.text[4..],
                    ),
                ));
            }
        }
        out
    }
}

/// `SA002` — wall-clock reads or unseeded RNG in model/trainer logic.
///
/// `Instant::now`/`SystemTime::now` make training trajectories depend
/// on machine load, and `thread_rng`/`from_entropy` reseed from the OS.
/// Wall-clock belongs only in the bench layer's `PhaseTimings`; every
/// RNG in a model must be seeded from the run configuration.
pub struct WallClockRng;

impl SrcRule for WallClockRng {
    fn code(&self) -> &'static str {
        "SA002"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "wall-clock read or unseeded RNG in model/trainer logic — wall-clock may only flow \
         into PhaseTimings; RNGs must be seeded from config"
    }
    fn scopes(&self) -> &'static [&'static str] {
        &["crates/models/", "crates/kge/", "crates/linalg/"]
    }
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for (i, tok) in toks.iter().enumerate() {
            if file.cx.in_test[i] || tok.kind != TokKind::Ident {
                continue;
            }
            let clock = (tok.text == "Instant" || tok.text == "SystemTime")
                && punct_is(toks, i + 1, "::")
                && ident_is(toks, i + 2, "now");
            let rng = tok.text == "thread_rng" || tok.text == "from_entropy";
            if clock {
                out.push(diag(
                    self,
                    file,
                    tok.line,
                    format!(
                        "`{}::now()` in model/trainer logic — timing belongs in the bench \
                         layer's PhaseTimings, not in anything that shapes results",
                        tok.text
                    ),
                ));
            } else if rng {
                out.push(diag(
                    self,
                    file,
                    tok.line,
                    format!(
                        "`{}` draws OS entropy — seed the RNG from the run configuration \
                         (e.g. `StdRng::seed_from_u64`) so runs are reproducible",
                        tok.text
                    ),
                ));
            }
        }
        out
    }
}

/// `SA003` — parallel results combined in completion order.
///
/// The deterministic pool (`kgrec_linalg::par`) returns results in
/// *input index order*; combining worker output through a channel or by
/// pushing into a shared `Mutex`-guarded collection recovers them in
/// *completion order* instead, which varies with scheduling.
pub struct CompletionOrder;

impl SrcRule for CompletionOrder {
    fn code(&self) -> &'static str {
        "SA003"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "parallel results combined in completion order (channel recv or lock().push) — \
         use index-addressed slots / par_map's input-order return"
    }
    fn scopes(&self) -> &'static [&'static str] {
        DETERMINISM_CRATES
    }
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for (i, tok) in toks.iter().enumerate() {
            if file.cx.in_test[i] || tok.kind != TokKind::Ident {
                continue;
            }
            if tok.text == "mpsc" || tok.text == "Receiver" {
                out.push(diag(
                    self,
                    file,
                    tok.line,
                    format!(
                        "`{}` collects worker results in completion order — use \
                         index-addressed result slots (see `kgrec_linalg::par`)",
                        tok.text
                    ),
                ));
            } else if tok.text == "recv" && punct_is(toks, i + 1, "(") {
                out.push(diag(
                    self,
                    file,
                    tok.line,
                    "channel `recv()` yields results in completion order — use \
                     index-addressed result slots (see `kgrec_linalg::par`)"
                        .to_owned(),
                ));
            } else if tok.text == "lock" && punct_is(toks, i + 1, "(") {
                // `…lock()… .push(…)` / `.extend(…)` within one statement:
                // growth of a shared collection under a lock appends in
                // whatever order workers arrive.
                let mut j = i + 1;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.kind == TokKind::Punct && (t.text == ";" || t.text == "{" || t.text == "}")
                    {
                        break;
                    }
                    if t.kind == TokKind::Ident
                        && (t.text == "push" || t.text == "extend")
                        && punct_is(toks, j + 1, "(")
                    {
                        out.push(diag(
                            self,
                            file,
                            t.line,
                            format!(
                                "`lock()…{}()` grows a shared collection in worker-completion \
                                 order — use index-addressed slots, or suppress with a reason \
                                 if order provably cannot matter",
                                t.text
                            ),
                        ));
                        break;
                    }
                    j += 1;
                }
            }
        }
        out
    }
}

/// `SA004` — float `==`/`!=` in metrics code.
///
/// Exact float equality in a metric is almost always a rounding-fragile
/// guard; restructure the comparison (`> 0.0`, `abs() < eps`, integer
/// counts) so the metric cannot flip on the last ulp.
pub struct FloatEquality;

impl SrcRule for FloatEquality {
    fn code(&self) -> &'static str {
        "SA004"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "float ==/!= against a float literal in metrics code — restructure the comparison \
         so the metric cannot flip on the last ulp"
    }
    fn scopes(&self) -> &'static [&'static str] {
        &["crates/core/", "crates/bench/"]
    }
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for (i, tok) in toks.iter().enumerate() {
            if file.cx.in_test[i] || tok.kind != TokKind::Punct {
                continue;
            }
            if tok.text != "==" && tok.text != "!=" {
                continue;
            }
            let prev_float = i > 0 && toks[i - 1].kind == TokKind::Float;
            // Allow for a unary minus: `== -1.0`.
            let next_float = match toks.get(i + 1) {
                Some(t) if t.kind == TokKind::Float => true,
                Some(t) if t.kind == TokKind::Punct && t.text == "-" => {
                    toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Float)
                }
                _ => false,
            };
            if prev_float || next_float {
                out.push(diag(
                    self,
                    file,
                    tok.line,
                    format!(
                        "exact float `{}` comparison in metrics code — prefer an inequality \
                         or an epsilon, so results cannot flip on the last ulp",
                        tok.text
                    ),
                ));
            }
        }
        out
    }
}

/// `SA005` — truncating `as` casts on id spaces.
///
/// Ids are dense `u32`s; a raw `as u32` on a `usize` index silently
/// wraps past 4 billion and scrambles every table indexed by the id.
/// `kgrec_graph::id32` is the checked narrowing that panics instead.
pub struct TruncatingIdCast;

impl SrcRule for TruncatingIdCast {
    fn code(&self) -> &'static str {
        "SA005"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "truncating `as u32`/`u16`/`u8` cast in an id-space crate — use the checked \
         `kgrec_graph::id32` narrowing"
    }
    fn scopes(&self) -> &'static [&'static str] {
        &["crates/data/", "crates/graph/"]
    }
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for (i, tok) in toks.iter().enumerate() {
            if file.cx.in_test[i] || tok.kind != TokKind::Ident || tok.text != "as" {
                continue;
            }
            if let Some(target) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                if matches!(target.text.as_str(), "u32" | "u16" | "u8") {
                    out.push(diag(
                        self,
                        file,
                        tok.line,
                        format!(
                            "`as {}` silently truncates a wide index into the id space — \
                             use the checked `kgrec_graph::id32` (or `try_from`) instead",
                            target.text
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// `SA006` — `unwrap`/`expect` inside supervised fit paths.
///
/// `supervise_fit` turns a panic into a retry/degraded outcome, but a
/// panic that a `Result` or a restructure could avoid still costs the
/// model its training run. Covered functions: `fit`, `fit_epochs`, and
/// anything starting with `train` (the KGE trainer entry points),
/// closures included.
pub struct FitPathUnwrap;

/// Whether `name` is one of the fit-path entry points SA006 covers.
fn covered_fit_fn(name: &str) -> bool {
    name == "fit" || name == "fit_epochs" || name.starts_with("train")
}

impl SrcRule for FitPathUnwrap {
    fn code(&self) -> &'static str {
        "SA006"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "unwrap/expect inside a supervise_fit-covered fit path — return an Err or \
         restructure so the invariant is expressed without a panic"
    }
    fn scopes(&self) -> &'static [&'static str] {
        &["crates/models/", "crates/kge/"]
    }
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for (i, tok) in toks.iter().enumerate() {
            if file.cx.in_test[i] || tok.kind != TokKind::Ident {
                continue;
            }
            if (tok.text == "unwrap" || tok.text == "expect") && punct_is(toks, i + 1, "(") {
                let Some(f) = file.cx.fn_of[i] else { continue };
                let fn_name = &file.cx.fns[f];
                if covered_fit_fn(fn_name) {
                    out.push(diag(
                        self,
                        file,
                        tok.line,
                        format!(
                            "`{}()` inside `fn {fn_name}` — a panic here costs the model its \
                             supervised training run; return an Err or restructure the \
                             invariant away",
                            tok.text
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// `SA007` — raw file writes in model/persistence paths.
///
/// A crash between `File::create` and the final `write_all` leaves a torn
/// file exactly where a reader expects a snapshot — the failure mode the
/// recovery matrix proves the store survives, but only because every
/// persistence path goes through `kgrec_store::atomic::write_atomic`
/// (temp file + fsync + rename + parent fsync). The atomic writer itself
/// and the fault injector (which plants torn files on purpose) carry
/// `kglint::allow(SA007, …)` with their reasons.
pub struct RawPersistenceWrite;

impl SrcRule for RawPersistenceWrite {
    fn code(&self) -> &'static str {
        "SA007"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "direct File::create/fs::write in a persistence path — a crash mid-write leaves a \
         torn file; use kgrec_store::atomic::write_atomic"
    }
    fn scopes(&self) -> &'static [&'static str] {
        &["crates/store/", "crates/kge/", "crates/models/", "crates/core/"]
    }
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for (i, tok) in toks.iter().enumerate() {
            if file.cx.in_test[i] || tok.kind != TokKind::Ident {
                continue;
            }
            let creates = tok.text == "File"
                && punct_is(toks, i + 1, "::")
                && ident_is(toks, i + 2, "create");
            let writes = tok.text == "fs"
                && punct_is(toks, i + 1, "::")
                && ident_is(toks, i + 2, "write")
                && punct_is(toks, i + 3, "(");
            if creates || writes {
                let call = if creates { "File::create" } else { "fs::write" };
                out.push(diag(
                    self,
                    file,
                    tok.line,
                    format!(
                        "`{call}` in a persistence path — a crash mid-write leaves a torn \
                         file where a reader expects a snapshot; use \
                         `kgrec_store::atomic::write_atomic` (temp + fsync + rename)",
                    ),
                ));
            }
        }
        out
    }
}

/// `SA008` — heap allocation on the serving request path.
///
/// The two-stage serving pipeline promises allocation-free steady-state
/// requests: every buffer a request needs lives in the reusable
/// per-worker `kgrec_serve::ServeScratch` arena, sized once at startup.
/// An allocation that sneaks into the request path shows up as tail
/// latency (and, under load, allocator contention) that no unit test
/// catches. Covered functions — closures included — are the request
/// path proper: `serve`, `rank_candidates`, and `candidates_for`.
/// Setup, ingest, and reload code in the same crate may allocate
/// freely. A provably-amortized allocation (e.g. a grow-once path)
/// can be waived with `kglint::allow(SA008, reason)`.
pub struct ServePathAllocation;

/// Whether `name` is one of the request-path functions SA008 covers.
fn covered_serve_fn(name: &str) -> bool {
    name == "serve" || name == "rank_candidates" || name == "candidates_for"
}

impl SrcRule for ServePathAllocation {
    fn code(&self) -> &'static str {
        "SA008"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "heap allocation inside a serving request-path function — pre-size the buffer in \
         ServeScratch instead"
    }
    fn scopes(&self) -> &'static [&'static str] {
        &["crates/serve/"]
    }
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for (i, tok) in toks.iter().enumerate() {
            if file.cx.in_test[i] || tok.kind != TokKind::Ident {
                continue;
            }
            let Some(f) = file.cx.fn_of[i] else { continue };
            if !covered_serve_fn(&file.cx.fns[f]) {
                continue;
            }
            let ctor = matches!(tok.text.as_str(), "Vec" | "String" | "Box")
                && punct_is(toks, i + 1, "::")
                && ident_is(toks, i + 2, "new");
            let mac = matches!(tok.text.as_str(), "vec" | "format") && punct_is(toks, i + 1, "!");
            let method =
                matches!(tok.text.as_str(), "to_vec" | "collect" | "to_string" | "to_owned")
                    && punct_is(toks, i + 1, "(");
            if ctor || mac || method {
                let call = if ctor {
                    format!("{}::new()", tok.text)
                } else if mac {
                    format!("{}!", tok.text)
                } else {
                    format!(".{}()", tok.text)
                };
                out.push(diag(
                    self,
                    file,
                    tok.line,
                    format!(
                        "`{call}` allocates inside `fn {}` on the serving request path — \
                         pre-size the buffer in `ServeScratch` (or waive a provably-amortized \
                         allocation with a reasoned `kglint::allow`)",
                        file.cx.fns[f]
                    ),
                ));
            }
        }
        out
    }
}

/// `MD006` — allocating vector ops inside epoch loops.
///
/// Lexer-accurate port of the PR 5 line heuristic: the kernel layer
/// keeps an allocating and an `*_into`/in-place flavor of every binary
/// vector op; allocating inside a training epoch loop is the regression
/// the kernel work removed. Unlike the predecessor this sees through
/// block comments, strings, and multi-line loop headers.
pub struct EpochAllocation;

/// The allocating `kgrec_linalg::vector` calls with in-place variants.
const ALLOCATING_OPS: &[&str] = &["add", "sub", "hadamard", "softmax"];

impl SrcRule for EpochAllocation {
    fn code(&self) -> &'static str {
        "MD006"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "allocating vector op inside an epoch loop — use the `*_into` or in-place kernel \
         variant"
    }
    fn scopes(&self) -> &'static [&'static str] {
        &["crates/models/", "crates/kge/"]
    }
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for (i, tok) in toks.iter().enumerate() {
            if file.cx.in_test[i] || !file.cx.in_epoch_loop[i] {
                continue;
            }
            if tok.kind == TokKind::Ident
                && tok.text == "vector"
                && punct_is(toks, i + 1, "::")
                && toks.get(i + 2).is_some_and(|t| ALLOCATING_OPS.contains(&t.text.as_str()))
                && punct_is(toks, i + 3, "(")
            {
                out.push(diag(
                    self,
                    file,
                    toks[i + 2].line,
                    format!(
                        "allocating `vector::{}(…)` inside an epoch loop — use the `*_into` \
                         or in-place kernel variant",
                        toks[i + 2].text
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let rules = src_rules();
        let codes: BTreeSet<&str> = rules.iter().map(|r| r.code()).collect();
        assert_eq!(codes.len(), rules.len(), "duplicate rule codes");
        for r in &rules {
            assert!(!r.summary().is_empty());
            assert!(!r.scopes().is_empty());
            assert_eq!(r.code().len(), 5, "malformed code {}", r.code());
        }
    }

    #[test]
    fn scoping_is_prefix_based() {
        let rule = TruncatingIdCast;
        assert!(rule.applies_to("crates/data/src/synth.rs"));
        assert!(rule.applies_to("crates/graph/src/ids.rs"));
        assert!(!rule.applies_to("crates/models/src/lib.rs"));
    }
}
