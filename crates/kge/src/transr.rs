//! TransR (Lin et al. 2015): entities and relations in separate spaces.
//!
//! Each relation `r` owns a projection matrix `M_r ∈ ℝ^{k×d}` mapping
//! entity space (dim `d`) into relation space (dim `k`):
//! `d(h,r,t) = ‖M_r·h + r − M_r·t‖²`. CKE and KGAT pre-train their entity
//! representations with exactly this model.

use crate::grad::{GradBatch, GradOp};
use crate::model::KgeModel;
use kgrec_graph::{EntityId, RelationId, Triple};
use kgrec_linalg::{vector, EmbeddingTable, Matrix, Scratch};
use rand::Rng;

/// Grad-batch table id of the entity table.
const T_ENT: u8 = 0;
/// Grad-batch table id of the relation table.
const T_REL: u8 = 1;
/// Grad-batch table id of the per-relation projection matrices.
const T_PROJ: u8 = 2;

/// The TransR model. Entity dim and relation dim may differ.
#[derive(Debug)]
pub struct TransR {
    entities: EmbeddingTable,
    relations: EmbeddingTable,
    projections: Vec<Matrix>,
    scratch: Scratch,
    /// Ranking margin `γ`.
    pub margin: f32,
}

impl Clone for TransR {
    fn clone(&self) -> Self {
        Self {
            entities: self.entities.clone(),
            relations: self.relations.clone(),
            projections: self.projections.clone(),
            scratch: Scratch::new(),
            margin: self.margin,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.entities.clone_from(&source.entities);
        self.relations.clone_from(&source.relations);
        // Vec::clone_from reuses both the outer vector and, through
        // Matrix::clone_from, each projection's data allocation.
        self.projections.clone_from(&source.projections);
        self.margin = source.margin;
    }
}

impl TransR {
    /// Creates a TransR model with `entity_dim`-dim entities and
    /// `relation_dim`-dim relation space. Projections start at identity
    /// (plus noise) as in the reference implementation.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        num_entities: usize,
        num_relations: usize,
        entity_dim: usize,
        relation_dim: usize,
        margin: f32,
    ) -> Self {
        let entities = EmbeddingTable::transe_init(rng, num_entities, entity_dim);
        let relations = EmbeddingTable::transe_init(rng, num_relations, relation_dim);
        let mut projections = Vec::with_capacity(num_relations);
        for _ in 0..num_relations {
            let mut m = Matrix::zeros(relation_dim, entity_dim);
            for i in 0..relation_dim.min(entity_dim) {
                m.set(i, i, 1.0);
            }
            // Small symmetric noise so relations differentiate.
            for v in m.data_mut().iter_mut() {
                *v += rng.gen_range(-0.05f32..0.05);
            }
            projections.push(m);
        }
        Self { entities, relations, projections, scratch: Scratch::new(), margin }
    }

    /// Projected translation distance; see module docs.
    ///
    /// Fused: each relation-space component is produced as two row dot
    /// products and squared immediately — same values and accumulation
    /// order as materialising `M_r·h` and `M_r·t` first, with no
    /// temporaries.
    pub fn distance(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
        let m = &self.projections[r.index()];
        let hv = self.entities.row(h.index());
        let tv = self.entities.row(t.index());
        let rv = self.relations.row(r.index());
        let mut acc = 0.0f32;
        for i in 0..rv.len() {
            let v = vector::dot(m.row(i), hv) + rv[i] - vector::dot(m.row(i), tv);
            acc += v * v;
        }
        acc
    }

    /// Residual `v = M_r(h − t) + r` in relation space.
    #[cfg(test)]
    fn residual(&self, h: EntityId, r: RelationId, t: EntityId) -> Vec<f32> {
        let m = &self.projections[r.index()];
        let hv = self.entities.row(h.index());
        let tv = self.entities.row(t.index());
        let u: Vec<f32> = hv.iter().zip(tv.iter()).map(|(a, b)| a - b).collect();
        let mut v = m.matvec(&u);
        vector::axpy(1.0, self.relations.row(r.index()), &mut v);
        v
    }

    /// Gradients: `∂d/∂r = 2v`, `∂d/∂h = 2Mᵀv`, `∂d/∂t = −2Mᵀv`,
    /// `∂d/∂M = 2·v·(h−t)ᵀ`.
    fn apply(&mut self, triple: Triple, scale: f32, lr: f32) {
        let d_e = self.entities.dim();
        let d_r = self.relations.dim();
        let mut u = self.scratch.take(d_e);
        let mut v = self.scratch.take(d_r);
        let mut two_v = self.scratch.take(d_r);
        let mut grad_h = self.scratch.take(d_e);
        {
            let hv = self.entities.row(triple.head.index());
            let tv = self.entities.row(triple.tail.index());
            vector::sub_into(hv, tv, &mut u);
            let m = &self.projections[triple.rel.index()];
            m.matvec_into(&u, &mut v);
            vector::axpy(1.0, self.relations.row(triple.rel.index()), &mut v);
            vector::scale_assign(2.0, &v, &mut two_v);
            m.matvec_t_into(&two_v, &mut grad_h);
        }

        self.relations.add_to_row(triple.rel.index(), -lr * scale, &two_v);
        self.entities.add_to_row(triple.head.index(), -lr * scale, &grad_h);
        self.entities.add_to_row(triple.tail.index(), lr * scale, &grad_h);
        self.projections[triple.rel.index()].rank1_update(-lr * scale * 2.0, &v, &u);
        // Per-update constraints: the paper bounds ‖e‖, ‖r‖ and ‖M_r·e‖;
        // bounding the Frobenius norm of M_r is the cheap sufficient
        // stand-in for the last one.
        vector::project_to_ball(self.entities.row_mut(triple.head.index()), 1.0);
        vector::project_to_ball(self.entities.row_mut(triple.tail.index()), 1.0);
        vector::project_to_ball(self.relations.row_mut(triple.rel.index()), 1.0);
        let m = &mut self.projections[triple.rel.index()];
        let bound = 2.0 * (m.rows() as f32).sqrt();
        let norm = m.frobenius_norm();
        if norm > bound {
            let ratio = bound / norm;
            for x in m.data_mut().iter_mut() {
                *x *= ratio;
            }
        }
        self.scratch.put(u);
        self.scratch.put(v);
        self.scratch.put(two_v);
        self.scratch.put(grad_h);
    }

    /// Records the ops of `apply(triple, scale, lr)` into `out` without
    /// touching any parameter. The residual chain `u = h − t`,
    /// `v = M_r·u + r`, `2v`, `Mᵀ·2v` is staged through arena segments so
    /// every recorded vector shares `apply`'s exact accumulation order.
    fn record_apply(&self, triple: Triple, scale: f32, out: &mut GradBatch) {
        let d_e = self.entities.dim();
        let d_r = self.relations.dim();
        let m = &self.projections[triple.rel.index()];
        let seg_u = out.alloc(d_e);
        {
            let hv = self.entities.row(triple.head.index());
            let tv = self.entities.row(triple.tail.index());
            vector::sub_into(hv, tv, out.seg_mut(seg_u));
        }
        let seg_v = out.alloc(d_r);
        {
            let (v, [u]) = out.seg_mut_with(seg_v, [seg_u]);
            m.matvec_into(u, v);
            vector::axpy(1.0, self.relations.row(triple.rel.index()), v);
        }
        let seg_2v = out.alloc(d_r);
        {
            let (two_v, [v]) = out.seg_mut_with(seg_2v, [seg_v]);
            vector::scale_assign(2.0, v, two_v);
        }
        let seg_gh = out.alloc(d_e);
        {
            let (gh, [two_v]) = out.seg_mut_with(seg_gh, [seg_2v]);
            m.matvec_t_into(two_v, gh);
        }
        out.push_op(GradOp::AddRow { table: T_REL, row: triple.rel.0, coeff: scale, seg: seg_2v });
        out.push_op(GradOp::AddRow { table: T_ENT, row: triple.head.0, coeff: scale, seg: seg_gh });
        out.push_op(GradOp::AddRow {
            table: T_ENT,
            row: triple.tail.0,
            coeff: -scale,
            seg: seg_gh,
        });
        out.push_op(GradOp::Rank1 {
            table: T_PROJ,
            row: triple.rel.0,
            coeff: 2.0 * scale,
            v: seg_v,
            u: seg_u,
        });
        out.push_op(GradOp::ProjectBall { table: T_ENT, row: triple.head.0, radius: 1.0 });
        out.push_op(GradOp::ProjectBall { table: T_ENT, row: triple.tail.0, radius: 1.0 });
        out.push_op(GradOp::ProjectBall { table: T_REL, row: triple.rel.0, radius: 1.0 });
        out.push_op(GradOp::ClampFrobenius { table: T_PROJ, row: triple.rel.0 });
    }

    /// Read access to the entity table.
    pub fn entities(&self) -> &EmbeddingTable {
        &self.entities
    }

    /// Adds a raw delta to one entity row. Joint-training recommenders
    /// (CKE, KGAT) back-propagate their interaction loss into the
    /// structural embeddings through this hook.
    pub fn entity_row_add(&mut self, e: EntityId, delta: &[f32]) {
        self.entities.add_to_row(e.index(), 1.0, delta);
        // Maintain the model's ‖e‖ ≤ 1 invariant under external updates.
        kgrec_linalg::vector::project_to_ball(self.entities.row_mut(e.index()), 1.0);
    }

    /// The projection matrix of a relation.
    pub fn projection(&self, r: RelationId) -> &Matrix {
        &self.projections[r.index()]
    }
}

impl KgeModel for TransR {
    fn dim(&self) -> usize {
        self.entities.dim()
    }

    fn num_entities(&self) -> usize {
        self.entities.len()
    }

    fn num_relations(&self) -> usize {
        self.relations.len()
    }

    fn score(&self, h: EntityId, r: RelationId, t: EntityId) -> f32 {
        -self.distance(h, r, t)
    }

    fn entity_embedding(&self, e: EntityId) -> &[f32] {
        self.entities.row(e.index())
    }

    fn relation_embedding(&self, r: RelationId) -> &[f32] {
        self.relations.row(r.index())
    }

    fn train_pair(&mut self, pos: Triple, neg: Triple, lr: f32) -> f32 {
        let loss = self.margin + self.distance(pos.head, pos.rel, pos.tail)
            - self.distance(neg.head, neg.rel, neg.tail);
        if loss > 0.0 {
            self.apply(pos, 1.0, lr);
            self.apply(neg, -1.0, lr);
            loss
        } else {
            0.0
        }
    }

    fn supports_grad_batches(&self) -> bool {
        true
    }

    fn grad_pair(&self, pos: Triple, neg: Triple, out: &mut GradBatch) -> f32 {
        let loss = self.margin + self.distance(pos.head, pos.rel, pos.tail)
            - self.distance(neg.head, neg.rel, neg.tail);
        if loss > 0.0 {
            self.record_apply(pos, 1.0, out);
            self.record_apply(neg, -1.0, out);
            loss
        } else {
            0.0
        }
    }

    fn apply_grads(&mut self, batch: &GradBatch, lr: f32) {
        for op in batch.ops() {
            match *op {
                GradOp::AddRow { table, row, coeff, seg } => {
                    let t = if table == T_ENT { &mut self.entities } else { &mut self.relations };
                    t.add_to_row(row as usize, -lr * coeff, batch.seg(seg));
                }
                GradOp::Rank1 { row, coeff, v, u, .. } => {
                    self.projections[row as usize].rank1_update(
                        -lr * coeff,
                        batch.seg(v),
                        batch.seg(u),
                    );
                }
                GradOp::ProjectBall { table, row, radius } => {
                    let t = if table == T_ENT { &mut self.entities } else { &mut self.relations };
                    vector::project_to_ball(t.row_mut(row as usize), radius);
                }
                GradOp::ClampFrobenius { row, .. } => {
                    let m = &mut self.projections[row as usize];
                    let bound = 2.0 * (m.rows() as f32).sqrt();
                    let norm = m.frobenius_norm();
                    if norm > bound {
                        let ratio = bound / norm;
                        for x in m.data_mut().iter_mut() {
                            *x *= ratio;
                        }
                    }
                }
                GradOp::NormalizeRow { .. } => {
                    unreachable!("TransR records no NormalizeRow ops")
                }
            }
        }
    }

    fn post_epoch(&mut self) {
        self.entities.project_rows_to_ball(1.0);
        self.relations.project_rows_to_ball(1.0);
    }

    fn name(&self) -> &'static str {
        "TransR"
    }
}

impl kgrec_store::Persistable for TransR {
    fn snapshot_id(&self) -> &'static str {
        "kge.transr"
    }

    fn write_state(
        &self,
        writer: &mut kgrec_store::SnapshotWriter,
    ) -> Result<(), kgrec_store::StoreError> {
        writer.add("entities", crate::persist::table_section(&self.entities))?;
        writer.add("relations", crate::persist::table_section(&self.relations))?;
        writer.add("projections", crate::persist::matrices_section(&self.projections))?;
        writer.add("hyper", crate::persist::scalar_section(self.margin))
    }

    fn read_state(
        &mut self,
        reader: &kgrec_store::SnapshotReader,
    ) -> Result<(), kgrec_store::StoreError> {
        let ent = crate::persist::read_table(reader, "entities", &self.entities)?;
        let rel = crate::persist::read_table(reader, "relations", &self.relations)?;
        let projs = crate::persist::read_matrices(reader, "projections", &self.projections)?;
        let margin = crate::persist::read_scalar(reader, "hyper")?;
        self.entities.data_mut().copy_from_slice(&ent);
        self.relations.data_mut().copy_from_slice(&rel);
        for (m, data) in self.projections.iter_mut().zip(&projs) {
            m.data_mut().copy_from_slice(data);
        }
        self.margin = margin;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgrec_linalg::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> TransR {
        let mut rng = StdRng::seed_from_u64(31);
        TransR::new(&mut rng, 4, 2, 5, 3, 1.0)
    }

    #[test]
    fn dims_can_differ() {
        let m = model();
        assert_eq!(m.dim(), 5);
        assert_eq!(m.relation_embedding(RelationId(0)).len(), 3);
    }

    #[test]
    fn head_gradient_matches_finite_difference() {
        let m = model();
        let (h, r, t) = (EntityId(0), RelationId(1), EntityId(2));
        let v = m.residual(h, r, t);
        let two_v: Vec<f32> = v.iter().map(|x| 2.0 * x).collect();
        let grad_h = m.projections[r.index()].matvec_t(&two_v);
        let mut params = m.entities.row(h.index()).to_vec();
        let m2 = m.clone();
        gradcheck::assert_gradient(&mut params, &grad_h, 1e-3, 1e-2, |p| {
            let mut mm = m2.clone();
            mm.entities.row_mut(h.index()).copy_from_slice(p);
            mm.distance(h, r, t)
        });
    }

    #[test]
    fn projection_gradient_matches_finite_difference() {
        let m = model();
        let (h, r, t) = (EntityId(0), RelationId(1), EntityId(2));
        let v = m.residual(h, r, t);
        let hv = m.entities.row(h.index());
        let tv = m.entities.row(t.index());
        let u: Vec<f32> = hv.iter().zip(tv.iter()).map(|(a, b)| a - b).collect();
        // ∂d/∂M = 2·v·uᵀ, flattened row-major.
        let mut grad_m = Matrix::zeros(3, 5);
        grad_m.rank1_update(2.0, &v, &u);
        let mut params = m.projections[r.index()].data().to_vec();
        let analytic = grad_m.data().to_vec();
        let m2 = m.clone();
        gradcheck::assert_gradient(&mut params, &analytic, 1e-3, 1e-2, |p| {
            let mut mm = m2.clone();
            mm.projections[r.index()] = Matrix::from_vec(3, 5, p.to_vec());
            mm.distance(h, r, t)
        });
    }

    #[test]
    fn training_separates_pos_from_neg() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = TransR::new(&mut rng, 6, 2, 6, 6, 1.0);
        let pos = Triple::new(EntityId(0), RelationId(0), EntityId(1));
        let neg = Triple::new(EntityId(0), RelationId(0), EntityId(2));
        for _ in 0..300 {
            m.train_pair(pos, neg, 0.02);
            m.post_epoch();
        }
        assert!(m.score(pos.head, pos.rel, pos.tail) > m.score(neg.head, neg.rel, neg.tail));
    }
}
