//! Diagnostic values produced by the checker rules.

use std::fmt;

/// How bad a finding is.
///
/// Ordered: `Info < Warning < Error`, so `max()` over a report yields the
/// worst finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; never fails a check run.
    Info,
    /// Suspicious; fails a run only in strict mode.
    Warning,
    /// A defect that will corrupt training or evaluation; always fails.
    Error,
}

impl Severity {
    /// Display label (`info` / `warning` / `error`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a diagnostic is about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Subject {
    /// The dataset bundle as a whole.
    Dataset,
    /// The knowledge graph as a whole.
    Graph,
    /// The train/test split.
    Split,
    /// The CTR evaluation pair set.
    EvalSet,
    /// The model registry / taxonomy tables.
    Registry,
    /// A graph entity.
    Entity(u32),
    /// A relation type.
    Relation(u32),
    /// A stored triple, by index into the head-major sorted fact order
    /// (`graph.triple_at(i)` / `graph.iter_triples()`).
    Triple(usize),
    /// An item.
    Item(u32),
    /// A user.
    User(u32),
    /// A named model.
    Model(String),
    /// A meta-path schema, rendered as `r1->r2->r3`.
    MetaPath(String),
    /// A model hyper-parameter.
    Param {
        /// Owning model name.
        model: String,
        /// Parameter name.
        name: String,
    },
    /// A named float buffer attached for auditing.
    Values(String),
    /// A source location (`path:line`), used by the source-scanning rules.
    Source {
        /// Path of the offending file, as given to the scanner.
        file: String,
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Dataset => write!(f, "dataset"),
            Subject::Graph => write!(f, "graph"),
            Subject::Split => write!(f, "split"),
            Subject::EvalSet => write!(f, "eval-set"),
            Subject::Registry => write!(f, "registry"),
            Subject::Entity(e) => write!(f, "entity {e}"),
            Subject::Relation(r) => write!(f, "relation {r}"),
            Subject::Triple(i) => write!(f, "triple {i}"),
            Subject::Item(i) => write!(f, "item {i}"),
            Subject::User(u) => write!(f, "user {u}"),
            Subject::Model(m) => write!(f, "model {m}"),
            Subject::MetaPath(p) => write!(f, "meta-path {p}"),
            Subject::Param { model, name } => write!(f, "param {model}.{name}"),
            Subject::Values(n) => write!(f, "values {n}"),
            Subject::Source { file, line } => write!(f, "{file}:{line}"),
        }
    }
}

/// One checker finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule code (`KG001`, `DS002`, `MD003`, …).
    pub code: &'static str,
    /// Severity of this particular finding.
    pub severity: Severity,
    /// Human-readable description of the defect.
    pub message: String,
    /// What the finding is about.
    pub subject: Subject,
}

impl Diagnostic {
    /// Convenience constructor.
    pub fn new(
        code: &'static str,
        severity: Severity,
        subject: Subject,
        message: impl Into<String>,
    ) -> Self {
        Self { code, severity, message: message.into(), subject }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}: {}", self.severity, self.code, self.subject, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_worst_last() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(
            [Severity::Warning, Severity::Error, Severity::Info].iter().max(),
            Some(&Severity::Error)
        );
    }

    #[test]
    fn display_is_greppable() {
        let d = Diagnostic::new(
            "KG001",
            Severity::Error,
            Subject::Triple(7),
            "tail entity 99 out of range (graph has 10 entities)",
        );
        let s = d.to_string();
        assert!(s.contains("error"));
        assert!(s.contains("[KG001]"));
        assert!(s.contains("triple 7"));
    }
}
