//! Criterion microbenches for the graph substrate: ripple-set
//! construction, PathSim matrices, path enumeration, neighbor sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use kgrec_data::synth::{generate, ScenarioConfig};
use kgrec_data::UserId;
use kgrec_graph::pathsim::pathsim_matrix;
use kgrec_graph::ripple::ripple_sets;
use kgrec_graph::sample::receptive_field;
use kgrec_graph::{EntityId, MetaPath, RelationId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_graph(c: &mut Criterion) {
    let synth = generate(&ScenarioConfig::movielens_100k_like(), 3);
    let data = &synth.dataset;
    let graph = &data.graph;
    let seeds: Vec<EntityId> = data
        .interactions
        .items_of(UserId(0))
        .iter()
        .map(|&i| data.item_entities[i.index()])
        .collect();

    c.bench_function("ripple_sets_h2_m16", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            ripple_sets(graph, &seeds, 2, 16, true, &mut rng)
        });
    });

    let mp = MetaPath::new(vec![
        RelationId(0),
        graph
            .relation_by_name(&format!("{}_inv", graph.relation_name(RelationId(0))))
            .expect("inverse exists"),
    ]);
    c.bench_function("pathsim_matrix_500_items", |b| {
        b.iter(|| pathsim_matrix(graph, &data.item_entities, &mp));
    });

    c.bench_function("receptive_field_k4_h2", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            receptive_field(graph, data.item_entities[0], 4, 2, &mut rng)
        });
    });

    let uig = data.user_item_graph(&data.interactions);
    c.bench_function("enumerate_paths_3hop", |b| {
        b.iter(|| {
            kgrec_graph::paths::enumerate_paths(
                &uig.graph,
                uig.user_entities[0],
                uig.item_entities[10],
                3,
                32,
            )
        });
    });
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
