//! Epoch-level checkpointed training: [`train_guarded`] semantics plus a
//! [`CheckpointStore`] the trainer saves into after every healthy epoch
//! and resumes from on restart.
//!
//! Each checkpoint snapshot carries, alongside the model's own sections, a
//! `trainer` section with the number of completed epochs and a fingerprint
//! of the training configuration (seed, learning rate, epoch target,
//! triple count). On [`train_checkpointed`]:
//!
//! 1. **Resume** — the store's most recent usable generation is restored
//!    when its fingerprint matches; training continues from the recorded
//!    epoch. The RNG draws of completed epochs are replayed (see
//!    [`crate::trainer::train_with_from`]), so a resumed run finishes with
//!    parameters bit-identical to an uninterrupted one.
//! 2. **Train** — every healthy epoch is checkpointed (atomic write, new
//!    generation, last-good pointer). A failed save never aborts training;
//!    it is counted in the report.
//! 3. **Abort** — on divergence the model rolls back to the best in-memory
//!    snapshot, exactly like [`train_guarded`]; when none exists (the
//!    first epoch after a resume exploded) the store's last good
//!    generation is restored from disk instead of discarding the model.
//!
//! [`train_guarded`]: crate::trainer::train_guarded

use crate::model::KgeModel;
use crate::trainer::{train_with_from, GuardedReport, TrainConfig, TrainControl};
use kgrec_graph::KnowledgeGraph;
use kgrec_linalg::stability::{DivergencePolicy, LossMonitor, LossVerdict};
use kgrec_store::{
    config_hash, CheckpointStore, Persistable, Section, SnapshotReader, SnapshotWriter, StoreError,
};

/// Fingerprint of everything that determines the training trajectory: a
/// checkpoint is only resumable under the configuration that produced it.
#[must_use]
pub fn train_fingerprint(config: &TrainConfig, graph: &KnowledgeGraph) -> u64 {
    let seed = format!("seed={}", config.seed);
    let lr = format!("lr={:08x}", config.learning_rate.to_bits());
    let epochs = format!("epochs={}", config.epochs);
    let triples = format!("triples={}", graph.num_triples());
    config_hash(&[&seed, &lr, &epochs, &triples])
}

/// A model plus its training progress, persisted as one snapshot.
///
/// Restoring rejects snapshots whose trainer fingerprint differs before
/// touching the model, so a checkpoint from another configuration can
/// never contaminate a resume.
struct TrainerSnapshot<'a, M: Persistable> {
    model: &'a mut M,
    epochs_done: u64,
    fingerprint: u64,
    seed: u64,
}

impl<M: Persistable> Persistable for TrainerSnapshot<'_, M> {
    fn snapshot_id(&self) -> &'static str {
        self.model.snapshot_id()
    }

    fn config_hash(&self) -> u64 {
        self.model.config_hash()
    }

    fn snapshot_seed(&self) -> u64 {
        self.seed
    }

    fn write_state(&self, writer: &mut SnapshotWriter) -> Result<(), StoreError> {
        self.model.write_state(writer)?;
        let mut s = Section::new();
        s.put_u64(self.epochs_done);
        s.put_u64(self.fingerprint);
        writer.add("trainer", s)
    }

    fn read_state(&mut self, reader: &SnapshotReader) -> Result<(), StoreError> {
        let mut c = reader.section("trainer")?;
        let done = c.take_u64()?;
        let fingerprint = c.take_u64()?;
        if fingerprint != self.fingerprint {
            return Err(StoreError::ModelMismatch {
                detail: format!(
                    "trainer fingerprint {fingerprint:016x} differs from live {:016x} \
                     (other seed/lr/epochs/graph)",
                    self.fingerprint
                ),
            });
        }
        self.model.read_state(reader)?;
        self.epochs_done = done;
        Ok(())
    }
}

/// What [`train_checkpointed`] did.
#[derive(Debug, Clone)]
pub struct CheckpointedReport {
    /// The guarded-training outcome of the epochs that ran this session.
    pub guarded: GuardedReport,
    /// Generation the session warm-started from, if any.
    pub resumed_from: Option<u64>,
    /// First epoch of this session (0 for a cold start; equals the epoch
    /// target when the checkpoint was already complete).
    pub start_epoch: usize,
    /// Checkpoints written this session.
    pub saved: usize,
    /// Checkpoint writes that failed. Training continues regardless; a
    /// non-zero count means resume-on-crash protection is degraded.
    pub save_errors: usize,
    /// Generation restored from disk after an abort that had no in-memory
    /// snapshot to roll back to, if disk recovery succeeded.
    pub disk_rollback: Option<u64>,
}

impl CheckpointedReport {
    /// Whether the final parameters are usable (training completed, or the
    /// model was rolled back to a healthy state in memory or from disk).
    #[must_use]
    pub fn usable(&self) -> bool {
        self.guarded.usable()
    }
}

/// Trains like [`crate::trainer::train_guarded`], checkpointing every
/// healthy epoch into `store` and resuming from the store's last good
/// generation when one matches the configuration.
pub fn train_checkpointed<M>(
    model: &mut M,
    graph: &KnowledgeGraph,
    config: &TrainConfig,
    policy: DivergencePolicy,
    store: &CheckpointStore,
) -> CheckpointedReport
where
    M: KgeModel + Clone + Persistable,
{
    let fingerprint = train_fingerprint(config, graph);
    let mut resumed_from = None;
    let mut start_epoch = 0usize;
    {
        let mut view = TrainerSnapshot { model, epochs_done: 0, fingerprint, seed: config.seed };
        if let Ok(recovery) = store.load_into(&mut view) {
            start_epoch = usize::try_from(view.epochs_done).unwrap_or(0).min(config.epochs);
            resumed_from = Some(recovery.generation);
        }
    }

    let mut monitor = LossMonitor::new(policy);
    let mut snapshot: Option<M> = None;
    let mut abort: Option<(usize, LossVerdict, f32)> = None;
    let mut saved = 0usize;
    let mut save_errors = 0usize;
    let curve = train_with_from(model, graph, config, start_epoch, |m, stats| {
        match monitor.observe(stats.mean_loss) {
            LossVerdict::Healthy => {
                if monitor.best_loss() == Some(stats.mean_loss) {
                    match &mut snapshot {
                        Some(s) => s.clone_from(m),
                        None => snapshot = Some(m.clone()),
                    }
                }
                let view = TrainerSnapshot {
                    model: &mut *m,
                    epochs_done: (stats.epoch + 1) as u64,
                    fingerprint,
                    seed: config.seed,
                };
                let note = format!("epoch={} loss={:.6}", stats.epoch, stats.mean_loss);
                match store.save(&view, &note) {
                    Ok(_) => saved += 1,
                    Err(_) => save_errors += 1,
                }
                TrainControl::Continue
            }
            verdict => {
                abort = Some((stats.epoch, verdict, stats.mean_loss));
                TrainControl::Stop
            }
        }
    });

    let mut rolled_back = false;
    let mut disk_rollback = None;
    let (aborted_at, reason) = match abort {
        None => (None, None),
        Some((epoch, verdict, loss)) => {
            if let Some(s) = snapshot {
                *model = s;
                rolled_back = true;
            } else {
                // Nothing healthy in memory this session — fall back to
                // the last good generation on disk (resume-from-last-good
                // instead of discarding the model).
                let mut view =
                    TrainerSnapshot { model, epochs_done: 0, fingerprint, seed: config.seed };
                if let Ok(recovery) = store.load_into(&mut view) {
                    disk_rollback = Some(recovery.generation);
                    rolled_back = true;
                }
            }
            let why = match verdict {
                LossVerdict::NonFinite => format!("non-finite epoch loss {loss}"),
                LossVerdict::Diverging => match monitor.best_loss() {
                    Some(best) => format!("loss {loss} diverged from best {best}"),
                    None => format!("loss {loss} above the divergence ceiling"),
                },
                LossVerdict::Healthy => unreachable!("healthy verdicts never abort"),
            };
            (Some(epoch), Some(why))
        }
    };
    CheckpointedReport {
        guarded: GuardedReport { curve, aborted_at, rolled_back, reason },
        resumed_from,
        start_epoch,
        saved,
        save_errors,
        disk_rollback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transe::TransE;
    use kgrec_graph::KgBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;

    fn toy_graph() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        let ty = b.entity_type("t");
        let es: Vec<_> = (0..8).map(|i| b.entity(&format!("e{i}"), ty)).collect();
        let r = b.relation("r");
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    b.triple(es[i], r, es[j]);
                }
            }
        }
        for i in 4..8 {
            for j in 4..8 {
                if i != j {
                    b.triple(es[i], r, es[j]);
                }
            }
        }
        b.build(false)
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kgrec_kge_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(epochs: usize) -> TrainConfig {
        TrainConfig { epochs, learning_rate: 0.05, seed: 21, threads: Some(1) }
    }

    #[test]
    fn cold_start_trains_and_checkpoints_every_epoch() {
        let g = toy_graph();
        let dir = scratch("cold");
        let store = CheckpointStore::open(&dir).expect("open").with_retention(3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        let report = train_checkpointed(&mut m, &g, &cfg(5), DivergencePolicy::default(), &store);
        assert!(report.usable());
        assert_eq!(report.start_epoch, 0);
        assert_eq!(report.saved, 5);
        assert_eq!(report.save_errors, 0);
        assert_eq!(store.generations().len(), 3, "retention keeps 3");
        assert_eq!(store.last_good(), Some(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_run_is_bit_identical_to_uninterrupted() {
        let g = toy_graph();
        // Uninterrupted reference: 8 epochs straight.
        let mut rng = StdRng::seed_from_u64(2);
        let mut reference = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        let dir_a = scratch("ref");
        let store_a = CheckpointStore::open(&dir_a).expect("open");
        let ra =
            train_checkpointed(&mut reference, &g, &cfg(8), DivergencePolicy::default(), &store_a);
        assert!(ra.usable());

        // Interrupted run: 3 epochs (simulated crash), then resume to 8.
        // The epoch target is part of the fingerprint, so the "crash" is a
        // full 8-epoch run whose checkpoints stop after epoch 3.
        let dir_b = scratch("resume");
        let store_b = CheckpointStore::open(&dir_b).expect("open").with_retention(10);
        let mut rng = StdRng::seed_from_u64(2);
        let mut crashed = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        let fingerprint = train_fingerprint(&cfg(8), &g);
        let mut stop_after = 0;
        train_with_from(&mut crashed, &g, &cfg(8), 0, |m, stats| {
            let view = TrainerSnapshot {
                model: &mut *m,
                epochs_done: (stats.epoch + 1) as u64,
                fingerprint,
                seed: cfg(8).seed,
            };
            store_b.save(&view, "pre-crash").expect("save");
            stop_after += 1;
            if stop_after >= 3 {
                TrainControl::Stop
            } else {
                TrainControl::Continue
            }
        });

        // "Restart the process": fresh init, resume from the store.
        let mut rng = StdRng::seed_from_u64(999); // different init — must not matter
        let mut resumed = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        let rb =
            train_checkpointed(&mut resumed, &g, &cfg(8), DivergencePolicy::default(), &store_b);
        assert_eq!(rb.start_epoch, 3);
        assert_eq!(rb.resumed_from, Some(3));
        assert!(rb.usable());

        for (a, b) in reference.entities().data().iter().zip(resumed.entities().data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "resumed parameters must be bit-identical");
        }
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn foreign_fingerprint_is_not_resumed() {
        let g = toy_graph();
        let dir = scratch("foreign");
        let store = CheckpointStore::open(&dir).expect("open");
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        train_checkpointed(&mut m, &g, &cfg(3), DivergencePolicy::default(), &store);

        // Same store, different seed: every generation's fingerprint
        // mismatches, so this is a cold start, not a resume.
        let mut other_cfg = cfg(3);
        other_cfg.seed = 77;
        let mut rng = StdRng::seed_from_u64(4);
        let mut m2 = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        let report =
            train_checkpointed(&mut m2, &g, &other_cfg, DivergencePolicy::default(), &store);
        assert_eq!(report.resumed_from, None);
        assert_eq!(report.start_epoch, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_checkpoint_short_circuits_training() {
        let g = toy_graph();
        let dir = scratch("done");
        let store = CheckpointStore::open(&dir).expect("open");
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        let first = train_checkpointed(&mut m, &g, &cfg(4), DivergencePolicy::default(), &store);
        assert!(first.usable());

        let mut rng = StdRng::seed_from_u64(6);
        let mut m2 = TransE::new(&mut rng, g.num_entities(), g.num_relations(), 8, 1.0);
        let second = train_checkpointed(&mut m2, &g, &cfg(4), DivergencePolicy::default(), &store);
        assert_eq!(second.start_epoch, 4, "nothing left to train");
        assert!(second.guarded.curve.is_empty());
        assert!(second.usable());
        for (a, b) in m.entities().data().iter().zip(m2.entities().data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
