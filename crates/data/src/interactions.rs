//! The user feedback matrix `R` (survey Section 3).
//!
//! `R_{ij} = 1` when an implicit interaction between user `u_i` and item
//! `v_j` was observed. [`InteractionMatrix`] is a facade over the columnar
//! store of [`crate::columnar`]: sorted user/item/rating/timestamp columns
//! behind per-user `u32` offsets, plus an item-major index — the models
//! scan both directions (user histories for preference propagation, item
//! audiences for ItemKNN and diffusion).

use crate::columnar::ColumnarInteractions;
use crate::ids::{ItemId, UserId};
use kgrec_graph::id32;

/// One observed user–item interaction, optionally carrying an explicit
/// rating (e.g. the 1–5 stars of MovieLens) and a timestamp for the
/// sequential models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interaction {
    /// The interacting user.
    pub user: UserId,
    /// The interacted item.
    pub item: ItemId,
    /// Explicit rating when the dataset has one.
    pub rating: Option<f32>,
    /// Event time when the dataset has one (arbitrary monotone units).
    pub timestamp: Option<u64>,
}

impl Interaction {
    /// An implicit interaction with no rating or timestamp.
    pub fn implicit(user: UserId, item: ItemId) -> Self {
        Self { user, item, rating: None, timestamp: None }
    }

    /// An explicit interaction with a rating.
    pub fn rated(user: UserId, item: ItemId, rating: f32) -> Self {
        Self { user, item, rating: Some(rating), timestamp: None }
    }
}

/// The binary feedback matrix `R ∈ {0,1}^{m×n}` with optional ratings,
/// stored columnar (see [`ColumnarInteractions`]).
#[derive(Debug, Clone)]
pub struct InteractionMatrix {
    cols: ColumnarInteractions,
}

impl InteractionMatrix {
    /// Builds the matrix from interactions. Duplicate `(user, item)` pairs
    /// are collapsed keeping the first occurrence of the input order
    /// (stable sort + first-wins dedup, deterministic for a fixed input).
    ///
    /// # Panics
    /// Panics if any interaction references a user or item out of range.
    pub fn from_interactions(
        num_users: usize,
        num_items: usize,
        interactions: &[Interaction],
    ) -> Self {
        Self { cols: ColumnarInteractions::from_interactions(num_users, num_items, interactions) }
    }

    /// Wraps an already-built columnar store (the streaming generators and
    /// the ingest path construct columns directly).
    pub fn from_columnar(cols: ColumnarInteractions) -> Self {
        Self { cols }
    }

    /// Number of users `m`.
    pub fn num_users(&self) -> usize {
        self.cols.num_users()
    }

    /// Number of items `n`.
    pub fn num_items(&self) -> usize {
        self.cols.num_items()
    }

    /// Number of observed interactions `|R|`.
    pub fn num_interactions(&self) -> usize {
        self.cols.num_rows()
    }

    /// Density `|R| / (m·n)`.
    pub fn density(&self) -> f64 {
        if self.num_users() == 0 || self.num_items() == 0 {
            0.0
        } else {
            self.num_interactions() as f64 / (self.num_users() * self.num_items()) as f64
        }
    }

    /// Items interacted by `user`, sorted by item id.
    pub fn items_of(&self, user: UserId) -> &[ItemId] {
        self.cols.items_of(user)
    }

    /// Ratings aligned with [`Self::items_of`] (`NaN` for implicit entries).
    pub fn ratings_of(&self, user: UserId) -> &[f32] {
        self.cols.ratings_of(user)
    }

    /// Timestamps aligned with [`Self::items_of`]
    /// ([`crate::columnar::NO_TIMESTAMP`] for rows without an event time).
    pub fn timestamps_of(&self, user: UserId) -> &[u64] {
        self.cols.timestamps_of(user)
    }

    /// Users who interacted with `item`, sorted by user id.
    pub fn users_of(&self, item: ItemId) -> &[UserId] {
        self.cols.users_of(item)
    }

    /// Whether `R_{user,item} = 1`.
    pub fn contains(&self, user: UserId, item: ItemId) -> bool {
        self.cols.contains(user, item)
    }

    /// Out-degree of a user (history length).
    pub fn user_degree(&self, user: UserId) -> usize {
        self.cols.user_degree(user)
    }

    /// Popularity of an item (audience size).
    pub fn item_degree(&self, item: ItemId) -> usize {
        self.cols.item_degree(item)
    }

    /// Iterates over all `(user, item, rating)` triples, user-major.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, ItemId, f32)> + '_ {
        (0..self.num_users()).flat_map(move |u| {
            let user = UserId(id32(u));
            self.items_of(user)
                .iter()
                .zip(self.ratings_of(user).iter())
                .map(move |(&i, &r)| (user, i, r))
        })
    }

    /// Item popularity vector, length `n`.
    pub fn item_popularity(&self) -> Vec<usize> {
        (0..self.num_items()).map(|i| self.item_degree(ItemId(id32(i)))).collect()
    }

    /// Merges an interaction batch into a new matrix: existing rows win
    /// over appended rows, first occurrence wins within the batch — the
    /// incremental-ingest entry point (see [`ColumnarInteractions::append`]).
    pub fn append(&self, batch: &[Interaction]) -> Self {
        Self { cols: self.cols.append(batch) }
    }

    /// The underlying columnar store (sharding, integrity checks, and
    /// byte-identity digests read it directly).
    pub fn columnar(&self) -> &ColumnarInteractions {
        &self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> InteractionMatrix {
        InteractionMatrix::from_interactions(
            3,
            4,
            &[
                Interaction::implicit(UserId(0), ItemId(1)),
                Interaction::rated(UserId(0), ItemId(3), 5.0),
                Interaction::implicit(UserId(2), ItemId(1)),
                Interaction::implicit(UserId(2), ItemId(0)),
            ],
        )
    }

    #[test]
    fn shapes_and_counts() {
        let m = toy();
        assert_eq!(m.num_users(), 3);
        assert_eq!(m.num_items(), 4);
        assert_eq!(m.num_interactions(), 4);
        assert!((m.density() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn user_major_access() {
        let m = toy();
        assert_eq!(m.items_of(UserId(0)), &[ItemId(1), ItemId(3)]);
        assert_eq!(m.items_of(UserId(1)), &[] as &[ItemId]);
        assert_eq!(m.items_of(UserId(2)), &[ItemId(0), ItemId(1)]);
        assert_eq!(m.user_degree(UserId(2)), 2);
    }

    #[test]
    fn item_major_access() {
        let m = toy();
        assert_eq!(m.users_of(ItemId(1)), &[UserId(0), UserId(2)]);
        assert_eq!(m.users_of(ItemId(2)), &[] as &[UserId]);
        assert_eq!(m.item_degree(ItemId(1)), 2);
    }

    #[test]
    fn ratings_aligned_with_items() {
        let m = toy();
        let r = m.ratings_of(UserId(0));
        assert!(r[0].is_nan());
        assert_eq!(r[1], 5.0);
    }

    #[test]
    fn contains_binary_search() {
        let m = toy();
        assert!(m.contains(UserId(0), ItemId(3)));
        assert!(!m.contains(UserId(1), ItemId(0)));
    }

    #[test]
    fn duplicates_collapsed() {
        let m = InteractionMatrix::from_interactions(
            1,
            2,
            &[
                Interaction::implicit(UserId(0), ItemId(1)),
                Interaction::implicit(UserId(0), ItemId(1)),
            ],
        );
        assert_eq!(m.num_interactions(), 1);
    }

    #[test]
    fn iter_covers_everything() {
        let m = toy();
        assert_eq!(m.iter().count(), 4);
        assert!(m.iter().any(|(u, i, r)| u == UserId(0) && i == ItemId(3) && r == 5.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        InteractionMatrix::from_interactions(1, 1, &[Interaction::implicit(UserId(1), ItemId(0))]);
    }

    #[test]
    fn popularity_vector() {
        let m = toy();
        assert_eq!(m.item_popularity(), vec![1, 2, 0, 1]);
    }

    #[test]
    fn append_merges_batches() {
        let m = toy();
        let grown = m.append(&[
            Interaction::implicit(UserId(1), ItemId(2)),
            Interaction::rated(UserId(0), ItemId(3), 1.0), // loses to existing
        ]);
        assert_eq!(grown.num_interactions(), 5);
        assert_eq!(grown.items_of(UserId(1)), &[ItemId(2)]);
        assert_eq!(grown.ratings_of(UserId(0))[1], 5.0);
    }
}
